//! End-to-end integration: world generation → initial sweep →
//! longitudinal campaign → notification → exhibits, asserting the
//! paper's headline findings hold in miniature.

use spfail::prober::{RoundStatus, SnapshotStatus};
use spfail::report::pipeline::{Context, SetFilter};
use spfail::report::all_exhibits;
use spfail::world::Timeline;

fn ctx() -> &'static Context {
    use std::sync::OnceLock;
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(|| Context::run(0.01, 0xE2E))
}

#[test]
fn headline_vulnerable_fraction_is_plausible() {
    let ctx = ctx();
    // Paper: 7,212 vulnerable addresses = 17% of tested (reachable SMTP)
    // servers, 3.9% of all addresses.
    let vulnerable = ctx.campaign.tracked.len() as f64;
    let total = ctx.world.hosts.len() as f64;
    let rate = vulnerable / total;
    assert!(
        (0.015..0.10).contains(&rate),
        "vulnerable address share {rate}"
    );
}

#[test]
fn headline_eighty_percent_remain_vulnerable() {
    let ctx = ctx();
    let snapshot = &ctx.campaign.snapshot;
    let patched = snapshot
        .values()
        .filter(|s| **s == SnapshotStatus::Patched)
        .count() as f64;
    let vulnerable = snapshot
        .values()
        .filter(|s| **s == SnapshotStatus::Vulnerable)
        .count() as f64;
    let share = vulnerable / (patched + vulnerable);
    assert!(
        share > 0.70,
        "the strong majority must remain vulnerable, got {share}"
    );
    assert!(patched > 0.0, "but some patching must be visible");
}

#[test]
fn no_false_positives_in_detection() {
    let ctx = ctx();
    for &host in &ctx.campaign.tracked {
        assert!(
            ctx.world.host(host).profile.initially_vulnerable(),
            "every host classified vulnerable must actually run vulnerable libSPF2"
        );
    }
}

#[test]
fn public_disclosure_outpaces_private_notification() {
    let ctx = ctx();
    // Count hosts first observed patched in (private, public] vs
    // (public, end] — the paper's central comparison.
    let between = ctx
        .campaign
        .tracked
        .iter()
        .filter(|&&h| {
            ctx.campaign.first_patched_day(h).is_some_and(|d| {
                d > Timeline::PRIVATE_NOTIFICATION && d <= Timeline::PUBLIC_DISCLOSURE
            })
        })
        .count();
    let after = ctx
        .campaign
        .tracked
        .iter()
        .filter(|&&h| {
            ctx.campaign
                .first_patched_day(h)
                .is_some_and(|d| d > Timeline::PUBLIC_DISCLOSURE)
        })
        .count();
    assert!(
        after >= between,
        "post-disclosure patching ({after}) must be at least the \
         between-disclosures window ({between})"
    );
}

#[test]
fn vulnerable_providers_never_patch() {
    let ctx = ctx();
    for d in ctx.set_domains(SetFilter::TopProviders) {
        for &h in &ctx.world.domain(d).hosts {
            let profile = &ctx.world.host(h).profile;
            if profile.initially_vulnerable() {
                assert_eq!(profile.patch_day, None, "§7.5: providers stayed vulnerable");
            }
        }
    }
}

#[test]
fn notification_funnel_holds_paper_shape() {
    let ctx = ctx();
    let f = &ctx.funnel;
    assert!(f.sent > 0);
    let bounce_rate = f.bounced as f64 / f.sent as f64;
    assert!(
        (0.15..0.50).contains(&bounce_rate),
        "bounce rate {bounce_rate} (paper 31.6%)"
    );
    let delivered = (f.sent - f.bounced).max(1);
    let open_rate = f.opened as f64 / delivered as f64;
    assert!(
        (0.05..0.30).contains(&open_rate),
        "open rate {open_rate} (paper 12%)"
    );
    // Notification-driven patching is marginal.
    assert!(f.patched_between_disclosures <= f.opened);
}

#[test]
fn all_exhibits_build_and_are_nonempty() {
    let ctx = ctx();
    let exhibits = all_exhibits(ctx);
    assert_eq!(
        exhibits.len(),
        19,
        "7 tables + 7 figures + the funnel + the attribution, resilience, \
         trace-profile, and cache-efficiency extensions"
    );
    for exhibit in &exhibits {
        assert!(
            !exhibit.rendered.trim().is_empty(),
            "exhibit {} rendered empty",
            exhibit.id
        );
        assert!(
            !exhibit.json.is_null(),
            "exhibit {} has no JSON payload",
            exhibit.id
        );
    }
    let ids: Vec<&str> = exhibits.iter().map(|e| e.id).collect();
    for expected in [
        "table1", "table2", "table3", "table4", "table5", "table6", "table7", "fig2", "fig3",
        "fig4", "fig5", "fig6", "fig7", "fig8", "funnel",
    ] {
        assert!(ids.contains(&expected), "missing exhibit {expected}");
    }
}

#[test]
fn longitudinal_statuses_are_monotone_after_inference() {
    let ctx = ctx();
    for &host in ctx.campaign.tracked.iter().take(200) {
        let mut last: Option<RoundStatus> = None;
        for (day, _) in &ctx.campaign.rounds {
            let status = ctx.campaign.inferred_status(host, *day);
            if status == RoundStatus::Inconclusive {
                continue;
            }
            if let Some(RoundStatus::Patched) = last {
                assert_ne!(
                    status,
                    RoundStatus::Vulnerable,
                    "host {host:?} regressed from patched to vulnerable"
                );
            }
            last = Some(status);
        }
    }
}

#[test]
fn spam_churn_domains_go_unknown_in_snapshot() {
    let ctx = ctx();
    for &d in &ctx.campaign.vulnerable_domains {
        if ctx.world.domain(d).spam_churn {
            assert_eq!(
                ctx.campaign.snapshot.get(&d),
                Some(&SnapshotStatus::Unknown),
                "churned domains cannot be conclusively re-measured in February"
            );
        }
    }
}

/// The full paper-scale run (~440K domains). Takes ~15 s in release,
/// minutes in debug; run explicitly with:
/// `cargo test --release -p spfail --test end_to_end -- --ignored`
#[test]
#[ignore = "full paper scale; run with --ignored in release"]
fn full_scale_reproduces_headline_counts() {
    let ctx = Context::run(1.0, 0x5bf2_a117);
    // Paper §7.1/§8: 7,212 vulnerable addresses (17% of tested servers),
    // 18,660 vulnerable domains, on ~180K unique addresses.
    let hosts = ctx.world.hosts.len();
    assert!(
        (150_000..230_000).contains(&hosts),
        "unique addresses {hosts} (paper ~186K)"
    );
    let vulnerable_hosts = ctx.campaign.tracked.len();
    assert!(
        (5_500..9_500).contains(&vulnerable_hosts),
        "vulnerable addresses {vulnerable_hosts} (paper 7,212)"
    );
    let vulnerable_domains = ctx.campaign.vulnerable_domains.len();
    assert!(
        (14_000..23_000).contains(&vulnerable_domains),
        "vulnerable domains {vulnerable_domains} (paper 18,660)"
    );
    // §7.7 funnel at full scale.
    assert!(
        (5_000..10_000).contains(&ctx.funnel.sent),
        "notifications {} (paper 6,488)",
        ctx.funnel.sent
    );
    let bounce_rate = ctx.funnel.bounced as f64 / ctx.funnel.sent as f64;
    assert!(
        (0.2..0.4).contains(&bounce_rate),
        "bounce rate {bounce_rate} (paper 31.6%)"
    );
    // Figure 2: ~15% patched, ~80%+ still vulnerable.
    let patched = ctx
        .campaign
        .snapshot
        .values()
        .filter(|s| **s == SnapshotStatus::Patched)
        .count();
    assert!(
        spfail::report::stats::consistent_with(patched, vulnerable_domains, 0.15)
            || (0.10..0.22).contains(&(patched as f64 / vulnerable_domains as f64)),
        "patched {patched}/{vulnerable_domains} vs paper ~15%"
    );
}

#[test]
fn campaign_is_deterministic_across_runs() {
    let a = Context::run(0.004, 42);
    let b = Context::run(0.004, 42);
    assert_eq!(a.campaign.tracked, b.campaign.tracked);
    assert_eq!(a.campaign.vulnerable_domains, b.campaign.vulnerable_domains);
    assert_eq!(a.funnel, b.funnel);
    for ((day_a, statuses_a), (day_b, statuses_b)) in
        a.campaign.rounds.iter().zip(b.campaign.rounds.iter())
    {
        assert_eq!(day_a, day_b);
        assert_eq!(statuses_a, statuses_b);
    }
}
