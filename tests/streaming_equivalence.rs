//! The streaming engine's headline guarantee, tested end to end:
//! bounded-memory campaigns are **bit-for-bit identical** to eager ones.
//!
//! 1. **The mode matrix.** Seeds × shard counts × fault profile on/off:
//!    the streaming engine's [`CampaignSummary`] (mask column, tracked
//!    set, rounds, snapshot, ethics audit, network totals) and trace
//!    export equal the eager engine's, byte for byte.
//! 2. **Every exhibit.** All entries of `EXHIBIT_REGISTRY` built from a
//!    streaming run equal the eager build — rendered text and JSON.
//! 3. **Cross-mode kill-and-resume.** A checkpoint written by either
//!    engine resumes under the *other* engine to the same measurements:
//!    the aggregate section makes streamed checkpoints eager-readable
//!    and vice versa. Resume *output* equality is the contract — the
//!    checkpoint files themselves legitimately differ across modes (an
//!    eager checkpoint carries per-host `init` lines, a streamed one
//!    the `aggregate v1` mask column and pruned worker state).

use spfail::netsim::{FaultPlan, FaultProfile, FlakyWindow, SimDuration};
use spfail::prober::{
    CampaignBuilder, CampaignRun, CampaignState, CampaignSummary, RetryPolicy, Session,
    StreamedCampaign, TraceConfig,
};
use spfail::report::{all_exhibits, all_exhibits_streaming, Context, StreamContext};
use spfail::world::{World, WorldConfig};

const SEEDS: [u64; 3] = [11, 2024, 77];
const SCALE: f64 = 0.002;

fn config(seed: u64) -> WorldConfig {
    WorldConfig {
        scale: SCALE,
        ..WorldConfig::small(seed)
    }
}

/// The tests/session_checkpoint.rs combined fault regime.
fn combined_profile() -> FaultProfile {
    FaultProfile {
        dns: FaultPlan {
            drop_chance: 0.05,
            servfail_chance: 0.05,
            truncate_chance: 0.1,
            ..FaultPlan::NONE
        },
        smtp: FaultPlan {
            tempfail_chance: 0.05,
            reset_chance: 0.05,
            ..FaultPlan::NONE
        },
        flaky_fraction: 0.2,
        window: Some(FlakyWindow::new(SimDuration::from_mins(360), 0.6)),
    }
}

fn builder(shards: usize, faults: bool) -> CampaignBuilder {
    let mut builder = CampaignBuilder::new()
        .shards(shards)
        .trace(TraceConfig::enabled());
    if faults {
        builder = builder
            .faults(combined_profile())
            .retry(RetryPolicy::standard());
    }
    builder
}

/// The two runs' cross-mode output — summary and trace — byte for byte.
fn assert_same_measurement(eager: &CampaignRun, streamed: &CampaignRun, label: &str) {
    let eager_summary = CampaignSummary::from_data(&eager.data);
    assert_eq!(
        eager_summary, streamed.summary,
        "{label}: campaign summary diverged"
    );
    // The longitudinal data agrees too, minus `initial` (deliberately
    // empty in streaming mode: the mask column is its record).
    assert_eq!(eager.data.tracked, streamed.data.tracked, "{label}");
    assert_eq!(eager.data.rounds, streamed.data.rounds, "{label}");
    assert_eq!(eager.data.snapshot, streamed.data.snapshot, "{label}");
    assert_eq!(
        eager.data.vulnerable_domains, streamed.data.vulnerable_domains,
        "{label}"
    );
    assert_eq!(eager.data.ethics, streamed.data.ethics, "{label}");
    assert_eq!(eager.data.network, streamed.data.network, "{label}");
    assert!(streamed.data.initial.results.is_empty(), "{label}");
    match (&eager.trace, &streamed.trace) {
        (Some(e), Some(s)) => {
            assert_eq!(e.to_jsonl(), s.to_jsonl(), "{label}: trace JSONL diverged");
            assert_eq!(
                e.to_collapsed(),
                s.to_collapsed(),
                "{label}: collapsed stacks diverged"
            );
        }
        (None, None) => {}
        _ => panic!("{label}: one run traced, the other did not"),
    }
}

/// The mode matrix: streaming ≡ eager for every seed × shard count ×
/// fault regime, traces included.
#[test]
fn streaming_matrix_is_byte_identical_to_eager() {
    for seed in SEEDS {
        for shards in [1usize, 4] {
            for faults in [false, true] {
                let world = World::generate(config(seed));
                let eager = builder(shards, faults).run(&world);
                let streamed = builder(shards, faults).run_streaming(config(seed));
                assert_same_measurement(
                    &eager,
                    &streamed.run,
                    &format!("seed {seed}, {shards} shard(s), faults {faults}"),
                );
                // Retention invariant: exactly the vulnerable domains,
                // with their full MX groups.
                assert_eq!(
                    streamed.population.domain_count(),
                    streamed.run.summary.vulnerable_domains.len()
                );
            }
        }
    }
}

/// Every registry exhibit built from a streaming pipeline run equals the
/// eager build — id, rendered text, and JSON.
#[test]
fn all_exhibits_match_across_modes() {
    let (scale, seed) = (0.004, 7);
    let eager = Context::run(scale, seed);
    let streaming = StreamContext::run(scale, seed);
    let eager_exhibits = all_exhibits(&eager);
    let streaming_exhibits = all_exhibits_streaming(&streaming);
    assert_eq!(eager_exhibits.len(), streaming_exhibits.len());
    for (e, s) in eager_exhibits.iter().zip(&streaming_exhibits) {
        assert_eq!(e.id, s.id);
        assert_eq!(e.title, s.title);
        assert_eq!(e.rendered, s.rendered, "exhibit {} diverged", e.id);
        assert_eq!(
            serde_json::to_string(&e.json).expect("serialize"),
            serde_json::to_string(&s.json).expect("serialize"),
            "exhibit {} JSON diverged",
            e.id
        );
    }
}

/// A streamed session's checkpoint text round-trips through the parser
/// at every round boundary — the `aggregate v1` section included — and
/// re-serialises to the same bytes (a canonical fixed point).
#[test]
fn streamed_checkpoint_text_round_trips_at_every_boundary() {
    let streamed = StreamedCampaign::sweep(builder(4, true), config(2024));
    let mut session = streamed.session().expect("handoff state is self-consistent");
    loop {
        let state = session.to_state();
        let text = state.to_text();
        assert!(
            text.contains("aggregate v1"),
            "a streamed checkpoint must carry the versioned aggregate section"
        );
        let parsed = CampaignState::parse(&text)
            .unwrap_or_else(|e| panic!("boundary {}: {e}", session.rounds_done()));
        assert_eq!(parsed, state, "boundary {}", session.rounds_done());
        assert_eq!(
            parsed.to_text(),
            text,
            "boundary {}: not a fixed point",
            session.rounds_done()
        );
        if session.advance_round().is_none() {
            break;
        }
    }
}

/// Kill an *eager* campaign at a round boundary and resume it under the
/// *streaming* engine: same measurements as the uninterrupted eager run.
#[test]
fn eager_checkpoint_resumes_under_streaming_engine() {
    for kill_at in [0usize, 3] {
        let world = World::generate(config(11));
        let reference = builder(4, false).run(&world);

        // The eager half, killed at the boundary.
        let world = World::generate(config(11));
        let mut session = builder(4, false).session(&world);
        session.initial_sweep();
        for _ in 0..kill_at {
            session.advance_round();
        }
        let text = session.to_state().to_text();
        drop(session);

        // The streaming half: adopt the checkpoint, finish the campaign.
        let state = CampaignState::parse(&text).expect("eager checkpoint parses");
        let streamed = StreamedCampaign::adopt(state, config(11));
        let mut session = streamed.session().expect("adopted state is self-consistent");
        assert_eq!(session.rounds_done(), kill_at);
        while session.advance_round().is_some() {}
        let resumed = session.finish();

        assert_eq!(
            CampaignSummary::from_data(&reference.data),
            resumed.summary,
            "killed at round {kill_at}"
        );
        assert_eq!(reference.data.rounds, resumed.data.rounds);
        assert_eq!(reference.data.snapshot, resumed.data.snapshot);
    }
}

/// Kill a *streaming* campaign at a round boundary and resume it under
/// the *eager* engine against a materialized world: same measurements.
#[test]
fn streamed_checkpoint_resumes_under_eager_engine() {
    for kill_at in [0usize, 3] {
        let world = World::generate(config(77));
        let reference = builder(4, false).run(&world);

        // The streaming half, killed at the boundary.
        let streamed = StreamedCampaign::sweep(builder(4, false), config(77));
        let mut session = streamed.session().expect("handoff state is self-consistent");
        for _ in 0..kill_at {
            session.advance_round();
        }
        let text = session.to_state().to_text();
        drop(session);
        drop(streamed);

        // The eager half: restore against a materialized world.
        let world = World::generate(config(77));
        let state = CampaignState::parse(&text).expect("streamed checkpoint parses");
        let mut session =
            Session::from_state(state, &world).expect("streamed checkpoint restores eagerly");
        assert_eq!(session.rounds_done(), kill_at);
        while session.advance_round().is_some() {}
        let resumed = session.finish();

        assert_eq!(
            CampaignSummary::from_data(&reference.data),
            resumed.summary,
            "killed at round {kill_at}"
        );
        assert_eq!(reference.data.rounds, resumed.data.rounds);
        assert_eq!(reference.data.snapshot, resumed.data.snapshot);
    }
}

/// Toggling the mode across *multiple* kill boundaries in one campaign —
/// eager → streaming → eager — still lands on the eager reference.
#[test]
fn mode_toggles_across_boundaries_stay_identical() {
    let world = World::generate(config(2024));
    let reference = builder(1, false).run(&world);

    // Leg 1 (eager): initial sweep only, then checkpoint.
    let world = World::generate(config(2024));
    let mut session = builder(1, false).session(&world);
    session.initial_sweep();
    let text = session.to_state().to_text();
    drop(session);

    // Leg 2 (streaming): two rounds, then checkpoint.
    let state = CampaignState::parse(&text).expect("parses");
    let streamed = StreamedCampaign::adopt(state, config(2024));
    let mut session = streamed.session().expect("adopts");
    session.advance_round();
    session.advance_round();
    let text = session.to_state().to_text();
    drop(session);
    drop(streamed);

    // Leg 3 (eager): finish.
    let state = CampaignState::parse(&text).expect("parses");
    let mut session = Session::from_state(state, &world).expect("restores");
    assert_eq!(session.rounds_done(), 2);
    while session.advance_round().is_some() {}
    let resumed = session.finish();

    assert_eq!(CampaignSummary::from_data(&reference.data), resumed.summary);
    assert_eq!(reference.data.snapshot, resumed.data.snapshot);
}
