//! Fault-injection integration tests: the measurement must stay *sound*
//! (no false positives, monotone inference) even when the simulated
//! network behaves badly — in the spirit of smoltcp's adverse-condition
//! examples.

use spfail::prober::{CampaignBuilder, RoundStatus};
use spfail::world::{World, WorldConfig};

fn hostile_world(seed: u64) -> World {
    let mut config = WorldConfig {
        seed,
        scale: 0.005,
        ..WorldConfig::default()
    };
    // Crank every adverse behaviour well past its calibrated value.
    config.flaky_rate = 0.35;
    config.blacklist_rate = 0.9;
    config.greylist_rate = 0.4;
    config.alexa_rates.smtp_failure = 0.5;
    config.two_week_rates.smtp_failure = 0.5;
    World::generate(config)
}

#[test]
fn no_false_positives_under_heavy_faults() {
    let world = hostile_world(0xFA01);
    let data = CampaignBuilder::new().run(&world).data;
    for &host in &data.tracked {
        assert!(
            world.host(host).profile.initially_vulnerable(),
            "faults may cost recall, never precision"
        );
    }
}

#[test]
fn longitudinal_never_regresses_under_faults() {
    let world = hostile_world(0xFA02);
    let data = CampaignBuilder::new().run(&world).data;
    for &host in &data.tracked {
        let profile = &world.host(host).profile;
        // A round measured "Patched" must never precede the host's true
        // patch day.
        if let Some(first) = data.first_patched_day(host) {
            let truth = profile.patch_day.expect("only patching hosts flip");
            assert!(
                first >= truth,
                "host {host:?} observed patched on day {first} before its \
                 true patch day {truth}"
            );
        }
        // And a round measured "Vulnerable" must never follow it.
        if let Some(last) = data.last_vulnerable_day(host) {
            if let Some(truth) = profile.patch_day {
                assert!(
                    last < truth,
                    "host {host:?} observed vulnerable on day {last} after \
                     patching on day {truth}"
                );
            }
        }
    }
}

#[test]
fn conclusiveness_degrades_but_campaign_completes() {
    let world = hostile_world(0xFA03);
    let data = CampaignBuilder::new().run(&world).data;
    assert!(!data.rounds.is_empty());
    // With 90% of hosts blacklisting, late rounds must be mostly
    // inconclusive — the Figure 5 decay, exaggerated.
    let inconclusive_share = |idx: usize| {
        let (_, statuses) = &data.rounds[idx];
        if statuses.is_empty() {
            return 0.0;
        }
        statuses
            .values()
            .filter(|s| **s == RoundStatus::Inconclusive)
            .count() as f64
            / statuses.len() as f64
    };
    let early = inconclusive_share(0);
    let late = inconclusive_share(data.rounds.len() - 1);
    assert!(
        late > early,
        "blacklisting must erode conclusiveness over time ({early} -> {late})"
    );
    assert!(late > 0.5, "late rounds mostly inconclusive, got {late}");
}

#[test]
fn greylisting_does_not_break_the_initial_sweep() {
    let world = hostile_world(0xFA04);
    let data = CampaignBuilder::new().run(&world).data;
    // Greylisting hosts are retried after 8 minutes; with 40% of hosts
    // greylisting, the sweep must still measure a healthy share of the
    // truly vulnerable, reachable hosts.
    let measurable: Vec<_> = world
        .initially_vulnerable_hosts()
        .into_iter()
        .filter(|&h| {
            let p = &world.host(h).profile;
            p.connect == spfail::mta::ConnectPolicy::Accept
                && p.quirk == spfail::mta::SmtpQuirk::None
        })
        .collect();
    if measurable.is_empty() {
        return;
    }
    let found = measurable
        .iter()
        .filter(|h| data.tracked.contains(h))
        .count();
    let recall = found as f64 / measurable.len() as f64;
    assert!(
        recall > 0.45,
        "even a hostile network leaves the sweep usable, recall {recall}"
    );
}

#[test]
fn deterministic_even_under_faults() {
    let a = CampaignBuilder::new().run(&hostile_world(0xFA05)).data;
    let b = CampaignBuilder::new().run(&hostile_world(0xFA05)).data;
    assert_eq!(a.tracked, b.tracked);
    assert_eq!(a.snapshot.len(), b.snapshot.len());
    for (x, y) in a.rounds.iter().zip(b.rounds.iter()) {
        assert_eq!(x, y);
    }
}
