//! The fault matrix: every injected fault type, with and without the
//! retry policy, must leave the campaign *sound* (no false positives,
//! dark hosts reported `Inconclusive`, never `Patched`), must surface
//! its per-fault-type counter in [`CampaignData::network`], and must
//! keep the sharded engine bit-for-bit equal to the sequential
//! reference — the determinism guarantee survives every fault profile.

use spfail::netsim::{FaultPlan, FaultProfile, FlakyWindow, MetricsSnapshot, SimDuration};
use spfail::prober::{CampaignBuilder, CampaignData, RetryPolicy, RoundStatus};
use spfail::world::{World, WorldConfig};

fn build_world(seed: u64, scale: f64) -> World {
    World::generate(WorldConfig {
        scale,
        ..WorldConfig::small(seed)
    })
}

/// Extracts a single fault's counter from the merged network snapshot.
type CounterFn = fn(&MetricsSnapshot) -> u64;

/// One row of the matrix: a named single-fault profile plus the counter
/// in the merged network snapshot that must record its injections.
fn fault_rows() -> Vec<(&'static str, FaultProfile, CounterFn)> {
    vec![
        (
            "dns-timeout",
            FaultProfile {
                dns: FaultPlan::dns_timeout(0.1),
                ..FaultProfile::NONE
            },
            |m| m.datagrams_dropped,
        ),
        (
            "dns-servfail",
            FaultProfile {
                dns: FaultPlan::dns_servfail(0.1),
                ..FaultProfile::NONE
            },
            |m| m.dns_servfails,
        ),
        (
            "dns-truncate",
            FaultProfile {
                dns: FaultPlan::dns_truncate(0.2),
                ..FaultProfile::NONE
            },
            |m| m.dns_truncated,
        ),
        (
            "smtp-tempfail",
            FaultProfile {
                smtp: FaultPlan::smtp_tempfail(0.15),
                ..FaultProfile::NONE
            },
            |m| m.smtp_tempfails,
        ),
        (
            "smtp-reset",
            FaultProfile {
                smtp: FaultPlan::smtp_reset(0.15),
                ..FaultProfile::NONE
            },
            |m| m.connection_resets,
        ),
        (
            "flaky-window",
            FaultProfile {
                flaky_fraction: 0.3,
                window: Some(FlakyWindow::new(SimDuration::from_mins(240), 0.5)),
                ..FaultProfile::NONE
            },
            |m| m.window_closed_probes,
        ),
    ]
}

/// Soundness under fault load: faults may cost recall, never precision,
/// and a host that stayed dark is never conclusively mis-measured. A
/// `Patched` report before the host's true patch day would be exactly
/// the false `NotVulnerable` the graceful-degradation verdicts exist to
/// prevent.
fn assert_sound(world: &World, data: &CampaignData, label: &str) {
    for &host in &data.tracked {
        assert!(
            world.host(host).profile.initially_vulnerable(),
            "{label}: tracked host {host:?} is a false positive"
        );
    }
    for (day, statuses) in &data.rounds {
        for (&host, &status) in statuses {
            if status == RoundStatus::Patched {
                let patch_day = world.host(host).profile.patch_day;
                assert!(
                    patch_day.is_some_and(|d| d <= *day),
                    "{label}: host {host:?} reported Patched on day {day} but its \
                     true patch day is {patch_day:?} — a dark host must stay \
                     Inconclusive, never flip to not-vulnerable"
                );
            }
        }
    }
}

#[test]
fn every_fault_type_with_and_without_retry_is_sound_and_shard_invariant() {
    for (name, profile, counter) in fault_rows() {
        for (retry_name, retry) in [
            ("no-retry", RetryPolicy::NONE),
            ("retry", RetryPolicy::standard()),
        ] {
            let label = format!("{name}/{retry_name}");
            let world = build_world(0xFACE, 0.002);
            let reference = CampaignBuilder::new()
                .faults(profile)
                .retry(retry)
                .run(&world)
                .data;
            assert_sound(&world, &reference, &label);
            assert!(
                counter(&reference.network) > 0,
                "{label}: the fault's counter must flow into CampaignData::network"
            );

            let world = build_world(0xFACE, 0.002);
            let sharded = CampaignBuilder::new()
                .shards(4)
                .faults(profile)
                .retry(retry)
                .run(&world)
                .data;
            assert_eq!(
                reference, sharded,
                "{label}: 4-shard run must be bit-for-bit equal to sequential"
            );
        }
    }
}

#[test]
fn combined_profile_is_bitwise_equal_across_shard_counts_and_seeds() {
    let profile = FaultProfile {
        dns: FaultPlan {
            drop_chance: 0.05,
            servfail_chance: 0.05,
            truncate_chance: 0.1,
            ..FaultPlan::NONE
        },
        smtp: FaultPlan {
            tempfail_chance: 0.05,
            reset_chance: 0.05,
            ..FaultPlan::NONE
        },
        flaky_fraction: 0.2,
        window: Some(FlakyWindow::new(SimDuration::from_mins(360), 0.6)),
    };
    for seed in [11u64, 2024, 77] {
        let reference = CampaignBuilder::new()
            .faults(profile)
            .retry(RetryPolicy::standard())
            .run(&build_world(seed, 0.002))
            .data;
        for shards in [1usize, 2, 4, 8] {
            let sharded = CampaignBuilder::new()
                .shards(shards)
                .faults(profile)
                .retry(RetryPolicy::standard())
                .run(&build_world(seed, 0.002))
                .data;
            assert_eq!(
                reference, sharded,
                "seed={seed} shards={shards}: fault-laden runs must merge identically"
            );
        }
    }
}

#[test]
fn retry_recovers_vulnerable_host_recall_under_dns_timeouts() {
    let seed = 0xD05;
    let scale = 0.004;
    let profile = FaultProfile {
        dns: FaultPlan::dns_timeout(0.1),
        ..FaultProfile::NONE
    };
    let world = build_world(seed, scale);
    // Ground truth: vulnerable AND reachable AND actually validating —
    // the hosts a fault-free campaign could have measured.
    let measurable: Vec<_> = world
        .initially_vulnerable_hosts()
        .into_iter()
        .filter(|&h| {
            let p = &world.host(h).profile;
            p.connect == spfail::mta::ConnectPolicy::Accept
                && matches!(
                    p.quirk,
                    spfail::mta::SmtpQuirk::None | spfail::mta::SmtpQuirk::RejectMessage(_)
                )
        })
        .collect();
    assert!(!measurable.is_empty(), "fixture must have measurable hosts");

    let no_retry = CampaignBuilder::new()
        .faults(profile)
        .run(&build_world(seed, scale))
        .data;
    let with_retry = CampaignBuilder::new()
        .faults(profile)
        .retry(RetryPolicy::standard())
        .run(&build_world(seed, scale))
        .data;

    let recall = |data: &CampaignData| {
        let found = measurable
            .iter()
            .filter(|h| data.tracked.contains(h))
            .count();
        found as f64 / measurable.len() as f64
    };
    let bare = recall(&no_retry);
    let retried = recall(&with_retry);
    assert!(
        retried >= bare,
        "retry must recover at least the no-retry recall: {retried:.3} < {bare:.3}"
    );

    // The counters behind the false-negative-rate figure must be live.
    assert_eq!(no_retry.network.probe_retries, 0);
    assert!(no_retry.network.datagrams_dropped > 0);
    assert!(with_retry.network.probe_retries > 0);

    // Hosts that stayed dark are reported Inconclusive, never patched.
    assert_sound(&world, &no_retry, "dns-timeout/no-retry");
    assert_sound(&world, &with_retry, "dns-timeout/retry");
}
