//! Shard-count invariance of the parallel campaign engine.
//!
//! `CampaignBuilder::new().shards(n)` partitions the tracked hosts across
//! `n` workers, each probing through an isolated DNS directory, query
//! log, and clock. Because every probe draws its randomness from a
//! stream derived from the probe's own identity, and hosts carry their
//! blacklisting counters and contact history with them, the merged
//! result must be **identical** to the sequential reference engine —
//! field by field, for every shard count, on every seed.

use std::collections::BTreeMap;

use spfail_prober::{CampaignBuilder, CampaignData, RoundStatus};
use spfail_world::{DomainId, HostId, Timeline, World, WorldConfig};

fn build_world(seed: u64, scale: f64) -> World {
    World::generate(WorldConfig {
        scale,
        ..WorldConfig::small(seed)
    })
}

/// Field-by-field comparison with labelled failures, ending in a
/// whole-struct equality check so nothing added to `CampaignData`
/// later can silently escape the harness.
fn assert_equivalent(reference: &CampaignData, sharded: &CampaignData, label: &str) {
    // Initial sweep: same host set, and for each host the same probe
    // outcomes (ids, transaction endings, classifications).
    let ref_hosts: BTreeMap<HostId, _> =
        reference.initial.results.iter().map(|(&h, r)| (h, r)).collect();
    let sh_hosts: BTreeMap<HostId, _> =
        sharded.initial.results.iter().map(|(&h, r)| (h, r)).collect();
    assert_eq!(
        ref_hosts.keys().collect::<Vec<_>>(),
        sh_hosts.keys().collect::<Vec<_>>(),
        "{label}: initial sweep host sets differ"
    );
    for (host, result) in &ref_hosts {
        assert_eq!(
            Some(result),
            sh_hosts.get(host),
            "{label}: initial result for {host:?} differs"
        );
    }

    assert_eq!(
        reference.tracked, sharded.tracked,
        "{label}: tracked host lists differ"
    );
    assert_eq!(
        reference.vulnerable_domains, sharded.vulnerable_domains,
        "{label}: vulnerable domain lists differ"
    );

    // Longitudinal rounds: same days in the same order, same per-host
    // statuses each round.
    assert_eq!(
        reference.rounds.len(),
        sharded.rounds.len(),
        "{label}: round counts differ"
    );
    for ((ref_day, ref_statuses), (sh_day, sh_statuses)) in
        reference.rounds.iter().zip(&sharded.rounds)
    {
        assert_eq!(ref_day, sh_day, "{label}: round days differ");
        let ref_sorted: BTreeMap<HostId, RoundStatus> =
            ref_statuses.iter().map(|(&h, &s)| (h, s)).collect();
        let sh_sorted: BTreeMap<HostId, RoundStatus> =
            sh_statuses.iter().map(|(&h, &s)| (h, s)).collect();
        assert_eq!(
            ref_sorted, sh_sorted,
            "{label}: day-{ref_day} round statuses differ"
        );
    }

    // Final snapshot: same per-domain verdicts.
    let ref_snapshot: BTreeMap<DomainId, _> =
        reference.snapshot.iter().map(|(&d, &s)| (d, s)).collect();
    let sh_snapshot: BTreeMap<DomainId, _> =
        sharded.snapshot.iter().map(|(&d, &s)| (d, s)).collect();
    assert_eq!(ref_snapshot, sh_snapshot, "{label}: snapshots differ");

    // Ethics counters: waits and admissions add across shards, so the
    // merged audit must equal the sequential one exactly.
    assert_eq!(
        reference.ethics, sharded.ethics,
        "{label}: ethics audits differ"
    );

    // Backstop: any field added to CampaignData later is compared too.
    assert_eq!(reference, sharded, "{label}: campaign data differs");
}

#[test]
fn sharded_engine_matches_sequential_for_all_shard_counts() {
    for &seed in &[11u64, 2024, 77] {
        for &scale in &[0.002f64, 0.004] {
            let reference = CampaignBuilder::new().run(&build_world(seed, scale)).data;
            assert!(
                !reference.tracked.is_empty(),
                "seed={seed} scale={scale}: fixture must track some hosts"
            );
            for &shards in &[1usize, 2, 4, 8] {
                let world = build_world(seed, scale);
                let sharded = CampaignBuilder::new().shards(shards).run(&world).data;
                assert_equivalent(
                    &reference,
                    &sharded,
                    &format!("seed={seed} scale={scale} shards={shards}"),
                );
            }
        }
    }
}

#[test]
fn sharded_runs_are_reproducible_across_repeats() {
    let first = CampaignBuilder::new().shards(4).run(&build_world(5, 0.003)).data;
    let second = CampaignBuilder::new().shards(4).run(&build_world(5, 0.003)).data;
    assert_eq!(first, second, "same seed + shard count must reproduce");
}

#[test]
fn shard_count_beyond_host_count_still_matches() {
    let world = build_world(9, 0.002);
    let reference = CampaignBuilder::new().run(&build_world(9, 0.002)).data;
    // More shards than tracked hosts leaves some workers idle; the
    // merge must not care.
    let sharded = CampaignBuilder::new().shards(64).run(&world).data;
    assert_eq!(reference, sharded);
}

#[test]
fn sharded_engine_leaves_world_clock_at_snapshot_day() {
    let world = build_world(11, 0.002);
    let _ = CampaignBuilder::new().shards(4).run(&world);
    assert_eq!(world.clock.now(), Timeline::day_to_time(Timeline::END));
}
