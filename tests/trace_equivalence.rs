//! Trace-level shard equivalence: the structured trace of a sharded
//! campaign must be **byte-for-bit identical** to the sequential run's —
//! the same guarantee `tests/parallel.rs` makes for campaign *data*,
//! extended to telemetry. Mirrors the parallel/fault_matrix methodology:
//! several seeds × shard counts 1/2/4/8, with and without the combined
//! fault profile.

use spfail::netsim::{FaultPlan, FaultProfile, FlakyWindow, SimDuration};
use spfail::prober::{CampaignBuilder, RetryPolicy, TraceConfig};
use spfail::trace::Trace;
use spfail::world::{World, WorldConfig};

const SEEDS: [u64; 3] = [11, 2024, 77];
const SHARDS: [usize; 3] = [2, 4, 8];
const SCALE: f64 = 0.002;

fn build_world(seed: u64) -> World {
    World::generate(WorldConfig {
        scale: SCALE,
        ..WorldConfig::small(seed)
    })
}

/// The fault_matrix.rs combined regime: everything at once.
fn combined_profile() -> FaultProfile {
    FaultProfile {
        dns: FaultPlan {
            drop_chance: 0.05,
            servfail_chance: 0.05,
            truncate_chance: 0.1,
            ..FaultPlan::NONE
        },
        smtp: FaultPlan {
            tempfail_chance: 0.05,
            reset_chance: 0.05,
            ..FaultPlan::NONE
        },
        flaky_fraction: 0.2,
        window: Some(FlakyWindow::new(SimDuration::from_mins(360), 0.6)),
    }
}

fn run_trace(world: &World, builder: CampaignBuilder) -> Trace {
    builder
        .trace(TraceConfig::enabled())
        .run(world)
        .trace
        .expect("tracing was requested")
}

/// Every record in a campaign trace satisfies the structural invariants.
fn assert_valid(trace: &Trace) {
    assert!(!trace.is_empty(), "a campaign trace records probes");
    for record in &trace.records {
        record
            .validate()
            .unwrap_or_else(|e| panic!("invalid record {record:?}: {e}"));
    }
}

/// Compare via the exported byte forms, not just structural equality —
/// the exporters are part of the determinism contract.
fn assert_byte_identical(reference: &Trace, candidate: &Trace, label: &str) {
    assert_eq!(
        reference, candidate,
        "{label}: trace structure diverged from sequential"
    );
    assert_eq!(
        reference.to_jsonl(),
        candidate.to_jsonl(),
        "{label}: JSONL export diverged"
    );
    assert_eq!(
        reference.to_collapsed(),
        candidate.to_collapsed(),
        "{label}: collapsed-stack export diverged"
    );
}

#[test]
fn sharded_traces_match_sequential_without_faults() {
    for seed in SEEDS {
        let world = build_world(seed);
        let reference = run_trace(&world, CampaignBuilder::new());
        assert_valid(&reference);
        for shards in SHARDS {
            let world = build_world(seed);
            let sharded = run_trace(&world, CampaignBuilder::new().shards(shards));
            assert_byte_identical(
                &reference,
                &sharded,
                &format!("seed {seed}, {shards} shards, no faults"),
            );
        }
    }
}

#[test]
fn sharded_traces_match_sequential_under_combined_faults() {
    for seed in SEEDS {
        let world = build_world(seed);
        let builder = CampaignBuilder::new()
            .faults(combined_profile())
            .retry(RetryPolicy::standard());
        let reference = run_trace(&world, builder);
        assert_valid(&reference);
        for shards in SHARDS {
            let world = build_world(seed);
            let sharded = run_trace(&world, builder.shards(shards));
            assert_byte_identical(
                &reference,
                &sharded,
                &format!("seed {seed}, {shards} shards, combined faults"),
            );
        }
    }
}

/// The ISSUE's acceptance configuration, verbatim: 8 shards, combined
/// faults, the default retry policy.
#[test]
fn acceptance_configuration_is_byte_identical() {
    let seed = 2024;
    let world = build_world(seed);
    let builder = CampaignBuilder::new()
        .faults(combined_profile())
        .retry(RetryPolicy::default());
    let sequential = run_trace(&world, builder);
    assert_valid(&sequential);

    let world = build_world(seed);
    let sharded = run_trace(&world, builder.shards(8));
    assert_byte_identical(&sequential, &sharded, "acceptance: shards(8)+combined");
}

/// Shard count 1 goes through the sequential engine by construction, so
/// also check a trace-enabled run still produces the same campaign data
/// as an untraced one: observation must not perturb the measurement.
#[test]
fn tracing_does_not_perturb_campaign_data() {
    let world = build_world(11);
    let untraced = CampaignBuilder::new().run(&world);
    let world = build_world(11);
    let traced = CampaignBuilder::new()
        .trace(TraceConfig::enabled())
        .run(&world);
    assert!(untraced.trace.is_none());
    assert_eq!(untraced.data, traced.data);
}
