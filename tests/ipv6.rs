//! IPv6 paths through the SPF engine: `ip6` mechanisms, AAAA-based `a`
//! matching, and the nibble forms of the `i`/`v` macros.

use std::collections::HashMap;

use spfail::dns::resolver::{LookupError, LookupOutcome};
use spfail::dns::{Name, RData, Record, RecordType};
use spfail::libspf2::LibSpf2Expander;
use spfail::spf::eval::{Evaluator, SpfDns, TraceEvent};
use spfail::spf::expand::{CompliantExpander, MacroContext, MacroExpander};
use spfail::spf::macrostring::MacroString;
use spfail::spf::result::SpfResult;

#[derive(Default)]
struct V6Zone {
    records: HashMap<(Name, RecordType), Vec<Record>>,
}

impl V6Zone {
    fn add(&mut self, name: &str, rdata: RData) {
        let name = Name::parse(name).expect("valid name");
        self.records
            .entry((name.clone(), rdata.record_type()))
            .or_default()
            .push(Record::new(name, 300, rdata));
    }
}

impl SpfDns for V6Zone {
    fn lookup(&mut self, name: &Name, rtype: RecordType) -> Result<LookupOutcome, LookupError> {
        match self.records.get(&(name.to_lowercase(), rtype)) {
            Some(records) => Ok(LookupOutcome::Records(records.clone().into())),
            None => Ok(LookupOutcome::NxDomain),
        }
    }
}

fn check(zone: &mut V6Zone, client: &str) -> SpfResult {
    let mut expander = CompliantExpander;
    let mut eval = Evaluator::new(zone, &mut expander);
    eval.check_host(client.parse().expect("ip"), "user", "example.com")
}

#[test]
fn ip6_mechanism_matches_prefixes() {
    let mut zone = V6Zone::default();
    zone.add("example.com", RData::txt("v=spf1 ip6:2001:db8:100::/48 -all"));
    assert_eq!(check(&mut zone, "2001:db8:100::25"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "2001:db8:100:ffff::1"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "2001:db8:200::25"), SpfResult::Fail);
    // An IPv4 client never matches an ip6 mechanism.
    assert_eq!(check(&mut zone, "192.0.2.1"), SpfResult::Fail);
}

#[test]
fn a_mechanism_uses_aaaa_for_v6_clients() {
    let mut zone = V6Zone::default();
    zone.add("example.com", RData::txt("v=spf1 a -all"));
    zone.add(
        "example.com",
        RData::Aaaa("2001:db8::25".parse().expect("ip")),
    );
    assert_eq!(check(&mut zone, "2001:db8::25"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "2001:db8::26"), SpfResult::Fail);

    // The evaluator must have asked for AAAA, not A.
    let mut expander = CompliantExpander;
    let mut eval = Evaluator::new(&mut zone, &mut expander);
    eval.check_host("2001:db8::25".parse().expect("ip"), "user", "example.com");
    assert!(eval.trace().iter().any(|e| matches!(
        e,
        TraceEvent::Query {
            rtype: RecordType::AAAA,
            ..
        }
    )));
    assert!(!eval.trace().iter().any(|e| matches!(
        e,
        TraceEvent::Query {
            rtype: RecordType::A,
            ..
        }
    )));
}

#[test]
fn ip4_and_ip6_mechanisms_coexist() {
    let mut zone = V6Zone::default();
    zone.add(
        "example.com",
        RData::txt("v=spf1 ip4:192.0.2.0/24 ip6:2001:db8::/32 -all"),
    );
    assert_eq!(check(&mut zone, "192.0.2.9"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "2001:db8::9"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "198.51.100.9"), SpfResult::Fail);
    assert_eq!(check(&mut zone, "2001:db9::9"), SpfResult::Fail);
}

#[test]
fn i_macro_expands_to_nibbles_for_v6() {
    let ctx = MacroContext::new("u", "example.com", "2001:db8::1".parse().expect("ip"));
    let out = CompliantExpander
        .expand(&MacroString::parse("%{ir}.%{v}.arpa").expect("macro"), &ctx, false)
        .expect("expands");
    // 32 nibbles reversed + ip6.arpa — the standard reverse-zone shape.
    assert!(out.ends_with(".ip6.arpa"));
    assert!(out.starts_with("1.0.0.0."));
    assert_eq!(out.split('.').count(), 32 + 2); // 32 nibbles + ip6 + arpa
}

#[test]
fn exists_with_v6_macro_is_usable() {
    let mut zone = V6Zone::default();
    // The full reversed nibble string distinguishes individual addresses
    // (the rightmost reversed labels are the *high-order* nibbles, which
    // neighbouring addresses share — a truncated %{i6r} would not work).
    zone.add(
        "example.com",
        RData::txt("v=spf1 exists:%{ir}.list.example.com -all"),
    );
    let ctx = MacroContext::new("u", "example.com", "2001:db8::1".parse().expect("ip"));
    let listed = CompliantExpander
        .expand(
            &MacroString::parse("%{ir}.list.example.com").expect("macro"),
            &ctx,
            false,
        )
        .expect("expands");
    zone.add(&listed, RData::A("127.0.0.2".parse().expect("ip")));
    assert_eq!(check(&mut zone, "2001:db8::1"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "2001:db8::2"), SpfResult::Fail);
}

#[test]
fn vulnerable_expander_handles_v6_macros_benignly() {
    // The buggy reversal path operates on nibble labels just the same;
    // with lowercase macros it stays benign and merely mangles the name.
    let ctx = MacroContext::new("u", "example.com", "2001:db8::1".parse().expect("ip"));
    let mut vulnerable = LibSpf2Expander::vulnerable();
    let out = vulnerable
        .expand(&MacroString::parse("%{i1r}").expect("macro"), &ctx, false)
        .expect("expands");
    // reversed nibbles start with [1, 0, 0, ...]; the duplicated first
    // label makes it "1.1.0.0....".
    assert!(out.starts_with("1.1.0.0."));
    assert!(!vulnerable.heap().corrupted());
}
