//! Tier-1 conformance suite: corpus replay, the embedded RFC 7208
//! vectors, and a seeded differential fuzz run that must classify every
//! divergence against the named quirk allowlist.
//!
//! `SPFAIL_CONFORMANCE_CASES` overrides the differential case count (CI
//! runs a larger fixed-seed smoke in release mode).

use spfail::conformance::{generate_case, oracle, regressions, rfc_corpus, run_case, shrink};
use spfail::conformance::oracle::Verdict;

/// The fixed fuzz seed; shared with the CI smoke job.
const SEED: u64 = 0x5bf5_fa11;

fn case_count() -> usize {
    match std::env::var("SPFAIL_CONFORMANCE_CASES") {
        Ok(value) => value
            .parse()
            .unwrap_or_else(|_| panic!("bad SPFAIL_CONFORMANCE_CASES {value:?}")),
        Err(_) => 5000,
    }
}

/// The committed regression corpus replays clean.
#[test]
fn corpus_replay() {
    let failures = regressions::replay_all();
    assert!(failures.is_empty(), "{failures:#?}");
}

/// Every embedded openspf-style vector holds for the compliant evaluator
/// and the patched libSPF2 emulation.
#[test]
fn rfc7208_vector_corpus() {
    let mut failures = Vec::new();
    for vector in rfc_corpus::rfc_vectors() {
        failures.extend(rfc_corpus::check_vector(&vector));
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

/// The compiled-policy evaluator is behaviourally identical to the
/// interpretive one — verdict, query spelling, explanation — for every
/// expansion profile, on cold and warm caches, across the embedded
/// RFC 7208 vector corpus and the full generator sweep.
#[test]
fn compiled_evaluator_matches_interpretive() {
    for vector in rfc_corpus::rfc_vectors() {
        let divergences = oracle::diff_compiled(&vector.case);
        assert!(
            divergences.is_empty(),
            "RFC vector {}: {divergences:#?}",
            vector.name
        );
    }
    let count = case_count();
    for index in 0..count {
        let case = generate_case(SEED, index as u64);
        let divergences = oracle::diff_compiled(&case);
        assert!(
            divergences.is_empty(),
            "case {index} (seed {SEED:#x}): {divergences:#?}\n{}",
            case.to_script(),
        );
    }
}

/// The seeded differential run: zero unclassified divergences, and the
/// generator actually reaches the fingerprint quirks (a degenerate
/// grammar would pass vacuously).
#[test]
fn seeded_differential_run_is_fully_classified() {
    let count = case_count();
    let mut quirk_counts = std::collections::BTreeMap::new();
    for index in 0..count {
        let case = generate_case(SEED, index as u64);
        let report = run_case(&case);
        for profile in &report.profiles {
            if let Verdict::KnownQuirk(names) = &profile.verdict {
                for name in names {
                    *quirk_counts.entry(*name).or_insert(0usize) += 1;
                }
            }
        }
        let bugs = report.bugs();
        if !bugs.is_empty() {
            // Minimize before failing so the report is a committable
            // reproducer, not a 40-line generated blob.
            let minimal = shrink(&case, |candidate| !run_case(candidate).bugs().is_empty());
            let minimal_bugs = run_case(&minimal).bugs();
            panic!(
                "case {index} (seed {SEED:#x}) produced unclassified divergences:\n\
                 {bugs:#?}\n\nminimized reproducer:\n{}\nminimized bugs: {minimal_bugs:#?}",
                minimal.to_script(),
            );
        }
    }
    for required in [
        "dup-first-reversed-label",
        "sign-extended-escape",
        "lowercase-hex-escape",
        "no-expansion",
        "macro-unsupported",
    ] {
        assert!(
            quirk_counts.get(required).copied().unwrap_or(0) > 0,
            "quirk {required} never observed over {count} cases: {quirk_counts:?}",
        );
    }
}
