//! Golden-snapshot test for the report pipeline: a tiny fixed campaign
//! must reproduce the committed `exhibits_small.json` and the rendered
//! resilience table byte-for-byte. Any intentional change to an exhibit
//! regenerates the fixtures with `UPDATE_SNAPSHOTS=1 cargo test --test
//! report_snapshot`.

use std::path::PathBuf;

use spfail::report::{all_exhibits, Context};

/// Small but non-degenerate: every set filter stays populated.
const SCALE: f64 = 0.01;
const SEED: u64 = 0x5bf2_a117;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

fn check_snapshot(name: &str, actual: &str) {
    let path = fixture(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path:?} ({e}); run with UPDATE_SNAPSHOTS=1 to create it")
    });
    assert!(
        expected == actual,
        "snapshot {name} drifted; if the change is intentional, regenerate with \
         UPDATE_SNAPSHOTS=1 cargo test --test report_snapshot\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}",
    );
}

#[test]
fn small_campaign_snapshots_are_stable() {
    let ctx = Context::run(SCALE, SEED);
    let exhibits = all_exhibits(&ctx);

    // The same JSON assembly as the `experiments` binary: one object
    // keyed by exhibit id, pretty-printed.
    let mut json_out = serde_json::Map::new();
    for exhibit in &exhibits {
        json_out.insert(exhibit.id.to_string(), exhibit.json.clone());
    }
    let json = format!(
        "{}\n",
        serde_json::to_string_pretty(&serde_json::Value::Object(json_out)).expect("serialize"),
    );
    check_snapshot("exhibits_small.json", &json);

    let resilience = exhibits
        .iter()
        .find(|e| e.id == "resilience")
        .expect("resilience exhibit present");
    check_snapshot("resilience_small.txt", &resilience.rendered);

    let trace_profile = exhibits
        .iter()
        .find(|e| e.id == "trace_profile")
        .expect("trace_profile exhibit present");
    check_snapshot("trace_profile_small.txt", &trace_profile.rendered);
}

/// Two independent pipeline runs in the *same process* build every
/// exhibit byte-identically. Each `HashMap`/`HashSet` instance draws its
/// own hash seed, so any exhibit whose output leaked a map's iteration
/// order would diverge between the two builds — this pins the
/// iteration-order audit (every exhibit sorts or re-keys into `BTreeMap`
/// before rendering) as a regression test.
#[test]
fn exhibits_are_iteration_order_independent() {
    let first = Context::run(0.004, 7);
    let second = Context::run(0.004, 7);
    let a = all_exhibits(&first);
    let b = all_exhibits(&second);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.rendered, y.rendered, "exhibit {} leaks iteration order", x.id);
        assert_eq!(
            serde_json::to_string(&x.json).expect("serialize"),
            serde_json::to_string(&y.json).expect("serialize"),
            "exhibit {} JSON leaks iteration order",
            x.id
        );
    }
}
