//! Measurement transparency of the compiled-policy cache: a campaign
//! run with the cache enabled (the default) must be **byte-for-bit
//! identical** in every observable — `CampaignData`, trace JSONL and
//! collapsed-stack exports, all report exhibits — to the same campaign
//! with `policy_cache(false)`, across seeds, shard counts, and fault
//! regimes. The cache may only remove redundant *work* (parsing,
//! interpretation, zone walks), never change a measurement.
//!
//! Also pinned here: checkpoints never serialise the cache — a resumed
//! session starts cold and still reproduces the warm run exactly.

use spfail::netsim::{FaultPlan, FaultProfile, FlakyWindow, SimDuration};
use spfail::prober::{
    CampaignBuilder, CampaignRun, CampaignState, RetryPolicy, Session, TraceConfig,
};
use spfail::world::{Timeline, World, WorldConfig};

const SEEDS: [u64; 3] = [11, 2024, 77];
const SCALE: f64 = 0.002;

fn build_world(seed: u64) -> World {
    World::generate(WorldConfig {
        scale: SCALE,
        ..WorldConfig::small(seed)
    })
}

/// The tests/trace_equivalence.rs combined fault regime.
fn combined_profile() -> FaultProfile {
    FaultProfile {
        dns: FaultPlan {
            drop_chance: 0.05,
            servfail_chance: 0.05,
            truncate_chance: 0.1,
            ..FaultPlan::NONE
        },
        smtp: FaultPlan {
            tempfail_chance: 0.05,
            reset_chance: 0.05,
            ..FaultPlan::NONE
        },
        flaky_fraction: 0.2,
        window: Some(FlakyWindow::new(SimDuration::from_mins(360), 0.6)),
    }
}

/// Campaign data and the trace byte exports must agree exactly.
fn assert_same_observables(cached: &CampaignRun, uncached: &CampaignRun, label: &str) {
    assert_eq!(
        cached.data, uncached.data,
        "{label}: campaign data diverged"
    );
    match (&cached.trace, &uncached.trace) {
        (Some(c), Some(u)) => {
            assert_eq!(c.to_jsonl(), u.to_jsonl(), "{label}: trace JSONL diverged");
            assert_eq!(
                c.to_collapsed(),
                u.to_collapsed(),
                "{label}: collapsed-stack export diverged"
            );
        }
        (None, None) => {}
        _ => panic!("{label}: one run traced, the other did not"),
    }
}

/// The transparency matrix: seeds × shard counts × fault profile
/// on/off, traced, cache on (default) vs `policy_cache(false)`.
#[test]
fn cache_on_and_off_are_byte_identical() {
    for seed in SEEDS {
        for shards in [1usize, 4] {
            for faults in [false, true] {
                let mut builder = CampaignBuilder::new()
                    .shards(shards)
                    .trace(TraceConfig::enabled());
                if faults {
                    builder = builder
                        .faults(combined_profile())
                        .retry(RetryPolicy::standard());
                }
                let world = build_world(seed);
                let cached = builder.run(&world);
                let world = build_world(seed);
                let uncached = builder.policy_cache(false).run(&world);
                let label = format!("seed {seed}, {shards} shard(s), faults {faults}");
                assert_same_observables(&cached, &uncached, &label);

                // The cache did real work in the cached run — the
                // equality above is not vacuous. Under active fault
                // injection the soundness gates refuse to replay
                // (faulted transcripts are not reusable), so only the
                // clean configurations must show hits.
                let stats = cached.cache.expect("cache on by default");
                if !faults {
                    assert!(stats.hits > 0, "{label}: cache never hit");
                    assert!(stats.interned > 0, "{label}: nothing interned");
                }
                assert!(uncached.cache.is_none(), "{label}: disabled run kept stats");
            }
        }
    }
}

/// Every report exhibit built from the two campaigns is byte-identical
/// (the cache-efficiency exhibit reads the pipeline's own live tallies,
/// which `Context::from_campaign` deliberately does not carry).
#[test]
fn report_exhibits_are_identical_cache_on_and_off() {
    let seed = 2024;
    let world = build_world(seed);
    let cached = CampaignBuilder::new().shards(4).run(&world);
    let world = build_world(seed);
    let uncached = CampaignBuilder::new()
        .shards(4)
        .policy_cache(false)
        .run(&world);

    let cached_ctx = spfail::report::Context::from_campaign(build_world(seed), cached.data);
    let uncached_ctx = spfail::report::Context::from_campaign(build_world(seed), uncached.data);
    let cached_exhibits = spfail::report::all_exhibits(&cached_ctx);
    let uncached_exhibits = spfail::report::all_exhibits(&uncached_ctx);
    assert_eq!(cached_exhibits.len(), uncached_exhibits.len());
    for (c, u) in cached_exhibits.iter().zip(&uncached_exhibits) {
        assert_eq!(c.id, u.id);
        assert_eq!(c.rendered, u.rendered, "exhibit {} diverged", c.id);
        assert_eq!(
            serde_json::to_string(&c.json).expect("serialize"),
            serde_json::to_string(&u.json).expect("serialize"),
            "exhibit {} JSON diverged",
            c.id
        );
    }
}

/// Kill a warm-cached session mid-campaign and resume: the restored
/// workers start with *cold* caches, and the final run is still
/// byte-for-bit the uninterrupted warm run. (This is what makes not
/// serialising the cache sound.)
#[test]
fn resume_with_cold_cache_matches_uninterrupted_warm_run() {
    let mid = Timeline::all_round_days().len() / 2;
    for shards in [1usize, 4] {
        let builder = CampaignBuilder::new()
            .shards(shards)
            .trace(TraceConfig::enabled());
        let world = build_world(77);
        let reference = builder.run(&world);

        let world = build_world(77);
        let mut session = builder.session(&world);
        session.initial_sweep();
        while session.advance_round().is_some() {
            if session.rounds_done() == mid {
                // Serialise, discard, rebuild — a process death at the
                // round boundary, minus the filesystem.
                let text = session.to_state().to_text();
                drop(session);
                let state = CampaignState::parse(&text).expect("checkpoint parses");
                session = Session::from_state(state, &world).expect("checkpoint restores");
            }
        }
        let resumed = session.finish();
        assert_same_observables(
            &reference,
            &resumed,
            &format!("{shards} shard(s), killed at round {mid}"),
        );
    }
}

/// The checkpoint text records the cache *configuration flag* but never
/// the cache contents — no policy text, no memoised verdicts.
#[test]
fn checkpoint_text_does_not_serialize_the_cache() {
    let world = build_world(11);
    let mut session = CampaignBuilder::new().session(&world);
    session.initial_sweep();
    session.advance_round();
    let warm = session.stats();
    let _ = warm; // the session has probed; any cache it holds is warm
    let text = session.to_state().to_text();
    drop(session);

    for marker in ["v=spf1", "policy", "cache", "intern", "memo", "script"] {
        assert!(
            !text.to_lowercase().contains(marker),
            "checkpoint text leaks cache state (found {marker:?})"
        );
    }

    // The flag itself round-trips: a cache-off session checkpoints and
    // restores as cache-off (observable only through run.cache).
    let world = build_world(11);
    let mut session = CampaignBuilder::new().policy_cache(false).session(&world);
    session.initial_sweep();
    let text = session.to_state().to_text();
    drop(session);
    let state = CampaignState::parse(&text).expect("parses");
    let mut session = Session::from_state(state, &world).expect("restores");
    while session.advance_round().is_some() {}
    assert!(
        session.finish().cache.is_none(),
        "policy_cache(false) did not survive the checkpoint round trip"
    );
}
