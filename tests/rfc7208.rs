//! RFC 7208 conformance scenarios, modelled on the RFC's Appendix A
//! example zone. These exercise the SPF engine exactly as a validating
//! MTA would.

use std::collections::HashMap;
use std::net::IpAddr;

use spfail::dns::resolver::{LookupError, LookupOutcome};
use spfail::dns::{Name, RData, Record, RecordType};
use spfail::spf::eval::{Evaluator, SpfDns};
use spfail::spf::expand::CompliantExpander;
use spfail::spf::result::SpfResult;
use spfail::spf::{CompiledEvaluator, PolicyCache};

/// The RFC's example.com zone (Appendix A), plus helpers.
#[derive(Default)]
struct Zone {
    records: HashMap<(Name, RecordType), Vec<Record>>,
}

impl Zone {
    fn add(&mut self, name: &str, rdata: RData) {
        let name = Name::parse(name).expect("valid name");
        self.records
            .entry((name.clone(), rdata.record_type()))
            .or_default()
            .push(Record::new(name, 3600, rdata));
    }

    fn rfc_appendix_a() -> Zone {
        let mut z = Zone::default();
        // Hosts.
        z.add("example.com", RData::A("192.0.2.10".parse().expect("ip")));
        z.add("example.com", RData::A("192.0.2.11".parse().expect("ip")));
        z.add("amy.example.com", RData::A("192.0.2.65".parse().expect("ip")));
        z.add("bob.example.com", RData::A("192.0.2.66".parse().expect("ip")));
        z.add("mail-a.example.com", RData::A("192.0.2.129".parse().expect("ip")));
        z.add("mail-b.example.com", RData::A("192.0.2.130".parse().expect("ip")));
        z.add("mail-c.example.org", RData::A("192.0.2.140".parse().expect("ip")));
        // MX records.
        for (pref, exchange) in [(10, "mail-a.example.com"), (20, "mail-b.example.com")] {
            z.add(
                "example.com",
                RData::Mx {
                    preference: pref,
                    exchange: Name::parse(exchange).expect("valid"),
                },
            );
        }
        z
    }

    fn with_policy(mut self, policy: &str) -> Zone {
        self.add("example.com", RData::txt(policy));
        self
    }
}

impl SpfDns for Zone {
    fn lookup(&mut self, name: &Name, rtype: RecordType) -> Result<LookupOutcome, LookupError> {
        match self.records.get(&(name.to_lowercase(), rtype)) {
            Some(records) => Ok(LookupOutcome::Records(records.clone().into())),
            None => {
                // NODATA when the name exists with other types.
                let exists = self
                    .records
                    .keys()
                    .any(|(n, _)| n == &name.to_lowercase());
                if exists {
                    Ok(LookupOutcome::NoRecords)
                } else {
                    Ok(LookupOutcome::NxDomain)
                }
            }
        }
    }
}

fn check(zone: &mut Zone, client: &str) -> SpfResult {
    let ip: IpAddr = client.parse().expect("ip");
    let interpretive = {
        let mut expander = CompliantExpander;
        let mut eval = Evaluator::new(zone, &mut expander);
        eval.check_host(ip, "strong-bad", "example.com")
    };
    // Every scenario doubles as a differential vector: the compiled
    // evaluator must agree, both compiling cold and replaying from the
    // warm cache.
    let mut cache = PolicyCache::new();
    for pass in ["cold", "warm"] {
        let mut expander = CompliantExpander;
        let mut eval = CompiledEvaluator::new(zone, &mut expander, &mut cache);
        let compiled = eval.check_host(ip, "strong-bad", "example.com");
        assert_eq!(
            compiled, interpretive,
            "compiled evaluator diverged from interpretive ({pass} cache)"
        );
    }
    interpretive
}

// --- RFC 7208 Appendix A.1: simple examples --------------------------------

#[test]
fn a1_plus_all_passes_anyone() {
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 +all");
    assert_eq!(check(&mut zone, "203.0.113.1"), SpfResult::Pass);
}

#[test]
fn a1_a_minus_all() {
    // "v=spf1 a -all" — hosts 192.0.2.10/11 pass, others fail.
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 a -all");
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "192.0.2.11"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "192.0.2.65"), SpfResult::Fail);
}

#[test]
fn a1_a_colon_domain() {
    // "v=spf1 a:example.org -all": example.org has no A records here.
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 a:example.org -all");
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::Fail);
}

#[test]
fn a1_mx_minus_all() {
    // "v=spf1 mx -all" — the two MX hosts pass.
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 mx -all");
    assert_eq!(check(&mut zone, "192.0.2.129"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "192.0.2.130"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::Fail);
}

#[test]
fn a1_mx_with_cidr() {
    // "v=spf1 mx/30 mx:example.org/30 -all": 192.0.2.128/30 covers both
    // MX hosts and their /30 neighbours.
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 mx/30 -all");
    assert_eq!(check(&mut zone, "192.0.2.131"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "192.0.2.132"), SpfResult::Fail);
}

#[test]
fn a1_ip4_with_cidr() {
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 ip4:192.0.2.128/28 -all");
    assert_eq!(check(&mut zone, "192.0.2.129"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "192.0.2.140"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "192.0.2.1"), SpfResult::Fail);
}

// --- Result semantics (§2.6, §8) -------------------------------------------

#[test]
fn neutral_qualifier() {
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 ?all");
    assert_eq!(check(&mut zone, "203.0.113.1"), SpfResult::Neutral);
}

#[test]
fn softfail_qualifier() {
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 a ~all");
    assert_eq!(check(&mut zone, "203.0.113.1"), SpfResult::SoftFail);
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::Pass);
}

#[test]
fn none_when_no_record() {
    let mut zone = Zone::rfc_appendix_a();
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::None);
}

#[test]
fn first_match_wins() {
    // §4.6.2: mechanisms are evaluated left to right; the first match's
    // qualifier decides.
    let mut zone =
        Zone::rfc_appendix_a().with_policy("v=spf1 -ip4:192.0.2.10 +a -all");
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::Fail);
    assert_eq!(check(&mut zone, "192.0.2.11"), SpfResult::Pass);
}

// --- Evaluation limits (§4.6.4) ---------------------------------------------

#[test]
fn ten_lookup_terms_is_the_ceiling() {
    // Exactly 10 DNS-querying terms is fine...
    let terms: Vec<String> = (0..10).map(|_| "a".to_string()).collect();
    let mut zone =
        Zone::rfc_appendix_a().with_policy(&format!("v=spf1 {} +all", terms.join(" ")));
    assert_eq!(check(&mut zone, "203.0.113.1"), SpfResult::Pass);
    // ... the eleventh is PermError.
    let terms: Vec<String> = (0..11).map(|_| "a".to_string()).collect();
    let mut zone =
        Zone::rfc_appendix_a().with_policy(&format!("v=spf1 {} +all", terms.join(" ")));
    assert_eq!(check(&mut zone, "203.0.113.1"), SpfResult::PermError);
}

#[test]
fn ip_mechanisms_do_not_count_against_the_limit() {
    let terms: Vec<String> = (0..30).map(|i| format!("ip4:198.51.100.{i}")).collect();
    let mut zone =
        Zone::rfc_appendix_a().with_policy(&format!("v=spf1 {} -all", terms.join(" ")));
    assert_eq!(check(&mut zone, "198.51.100.7"), SpfResult::Pass);
}

// --- Macros in policies (§7) -------------------------------------------------

#[test]
fn exists_with_ip_macro() {
    let mut zone = Zone::rfc_appendix_a()
        .with_policy("v=spf1 exists:%{ir}.sbl.example.com -all");
    zone.add(
        "65.2.0.192.sbl.example.com",
        RData::A("127.0.0.2".parse().expect("ip")),
    );
    // 192.0.2.65 is listed; it "passes" (the RFC's DNSBL-style example,
    // typically used with a - qualifier in practice).
    assert_eq!(check(&mut zone, "192.0.2.65"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "192.0.2.66"), SpfResult::Fail);
}

#[test]
fn include_with_macro_domain() {
    let mut zone =
        Zone::rfc_appendix_a().with_policy("v=spf1 include:_spf.%{d2} -all");
    zone.add("_spf.example.com", RData::txt("v=spf1 ip4:203.0.113.0/24"));
    assert_eq!(check(&mut zone, "203.0.113.99"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "198.51.100.1"), SpfResult::Fail);
}

#[test]
fn exists_with_plain_ip_macro() {
    // %{i} expands to the client IP in its natural (unreversed) form.
    let mut zone = Zone::rfc_appendix_a()
        .with_policy("v=spf1 exists:%{i}.allowed.example.com -all");
    zone.add(
        "192.0.2.65.allowed.example.com",
        RData::A("127.0.0.2".parse().expect("ip")),
    );
    assert_eq!(check(&mut zone, "192.0.2.65"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "192.0.2.66"), SpfResult::Fail);
}

#[test]
fn validated_domain_macro_expands_to_unknown() {
    // §7.3 discourages %{p}; the compliant expander never performs the
    // PTR dance and substitutes the literal "unknown" instead, exactly
    // as the RFC allows for an unresolved validated domain.
    let mut zone = Zone::rfc_appendix_a()
        .with_policy("v=spf1 exists:%{p}._pvalid.example.com -all");
    zone.add(
        "unknown._pvalid.example.com",
        RData::A("127.0.0.2".parse().expect("ip")),
    );
    assert_eq!(check(&mut zone, "192.0.2.65"), SpfResult::Pass);

    // Without the "unknown" marker record the mechanism never matches.
    let mut zone = Zone::rfc_appendix_a()
        .with_policy("v=spf1 exists:%{p}._pvalid.example.com -all");
    assert_eq!(check(&mut zone, "192.0.2.65"), SpfResult::Fail);
}

// --- ptr mechanism (§5.5, Appendix A.1 "v=spf1 ptr -all") ---------------------

#[test]
fn ptr_matches_with_forward_confirmation() {
    // "v=spf1 ptr -all": mail-a's reverse record names a host inside
    // example.com, and mail-a's A record confirms the claim.
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 ptr -all");
    zone.add(
        "129.2.0.192.in-addr.arpa",
        RData::Ptr(Name::parse("mail-a.example.com").expect("valid")),
    );
    assert_eq!(check(&mut zone, "192.0.2.129"), SpfResult::Pass);
    // A client with no reverse mapping at all cannot match.
    assert_eq!(check(&mut zone, "192.0.2.130"), SpfResult::Fail);
}

#[test]
fn spoofed_ptr_without_forward_record_fails() {
    // An attacker controls their own reverse zone and claims to be
    // amy.example.com — but amy's A record points elsewhere, so the
    // forward-confirmation step rejects the claim.
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 ptr -all");
    zone.add(
        "1.113.0.203.in-addr.arpa",
        RData::Ptr(Name::parse("amy.example.com").expect("valid")),
    );
    assert_eq!(check(&mut zone, "203.0.113.1"), SpfResult::Fail);
}

#[test]
fn confirmed_ptr_outside_target_domain_fails() {
    // mail-c.example.org reverse-maps and forward-confirms correctly,
    // but it is not a subdomain of example.com, so "ptr" must not match.
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 ptr -all");
    zone.add(
        "140.2.0.192.in-addr.arpa",
        RData::Ptr(Name::parse("mail-c.example.org").expect("valid")),
    );
    assert_eq!(check(&mut zone, "192.0.2.140"), SpfResult::Fail);
}

// --- include terms and the lookup limit (§4.6.4) -------------------------------

#[test]
fn includes_count_against_the_lookup_limit() {
    // Each include is a DNS-querying term. Ten non-matching includes
    // followed by +all still pass...
    let mk = |n: usize| -> Zone {
        let terms: Vec<String> =
            (0..n).map(|i| format!("include:_s{i}.example.com")).collect();
        let mut zone = Zone::rfc_appendix_a()
            .with_policy(&format!("v=spf1 {} +all", terms.join(" ")));
        for i in 0..n {
            zone.add(&format!("_s{i}.example.com"), RData::txt("v=spf1 ?all"));
        }
        zone
    };
    assert_eq!(check(&mut mk(10), "203.0.113.1"), SpfResult::Pass);
    // ... the eleventh include trips the §4.6.4 ceiling.
    assert_eq!(check(&mut mk(11), "203.0.113.1"), SpfResult::PermError);
}

#[test]
fn nested_includes_share_the_global_limit() {
    // A chain of includes nested one inside the next draws from the
    // same global budget as a flat list.
    let mk = |depth: usize| -> Zone {
        let mut zone =
            Zone::rfc_appendix_a().with_policy("v=spf1 include:_n0.example.com +all");
        for i in 0..depth - 1 {
            zone.add(
                &format!("_n{i}.example.com"),
                RData::txt(&format!("v=spf1 include:_n{}.example.com ?all", i + 1)),
            );
        }
        zone.add(&format!("_n{}.example.com", depth - 1), RData::txt("v=spf1 ?all"));
        zone
    };
    // Ten chained includes in total: the budget is exactly spent.
    assert_eq!(check(&mut mk(10), "203.0.113.1"), SpfResult::Pass);
    // An eleventh link exhausts it mid-chain.
    assert_eq!(check(&mut mk(11), "203.0.113.1"), SpfResult::PermError);
}

// --- Multiple / malformed records (§3.2, §4.5) --------------------------------

#[test]
fn unrelated_txt_records_are_transparent() {
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 a -all");
    zone.add("example.com", RData::txt("v=verify123 site-ownership"));
    zone.add("example.com", RData::txt("some random text"));
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::Pass);
}

#[test]
fn duplicate_spf_records_are_permerror() {
    let mut zone = Zone::rfc_appendix_a()
        .with_policy("v=spf1 a -all")
        .with_policy("v=spf1 mx -all");
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::PermError);
}

#[test]
fn case_insensitive_version_and_mechanisms() {
    let mut zone = Zone::rfc_appendix_a().with_policy("V=SpF1 A -ALL");
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "203.0.113.1"), SpfResult::Fail);
}

// --- redirect (§6.1) -----------------------------------------------------------

#[test]
fn redirect_chains_and_inherits_sender_domain() {
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 redirect=_spf.example.com");
    // %{d} inside the redirected record refers to the *redirect target*
    // domain (the current domain), while %{o} stays the sender's.
    zone.add(
        "_spf.example.com",
        RData::txt("v=spf1 a:%{o} -all"),
    );
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "203.0.113.1"), SpfResult::Fail);
}

#[test]
fn mechanisms_before_redirect_win() {
    let mut zone = Zone::rfc_appendix_a()
        .with_policy("v=spf1 ip4:198.51.100.0/24 redirect=_spf.example.com");
    zone.add("_spf.example.com", RData::txt("v=spf1 -all"));
    assert_eq!(check(&mut zone, "198.51.100.1"), SpfResult::Pass);
    assert_eq!(check(&mut zone, "203.0.113.1"), SpfResult::Fail);
}

#[test]
fn all_before_redirect_makes_redirect_inert() {
    // §6.1: redirect= is only used when the record's mechanisms ran out
    // without a match — an `all` term always matches first, even when the
    // redirect target would give a different answer.
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 ~all redirect=_spf.example.com");
    zone.add("_spf.example.com", RData::txt("v=spf1 +all"));
    assert_eq!(check(&mut zone, "203.0.113.1"), SpfResult::SoftFail);
}

#[test]
fn duplicate_redirect_modifier_is_permerror() {
    // §6: redirect appearing twice is a syntax error for the whole record.
    let mut zone = Zone::rfc_appendix_a()
        .with_policy("v=spf1 redirect=_spf.example.com redirect=_spf.example.com");
    zone.add("_spf.example.com", RData::txt("v=spf1 +all"));
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::PermError);
}

#[test]
fn duplicate_exp_modifier_is_permerror() {
    let mut zone = Zone::rfc_appendix_a()
        .with_policy("v=spf1 -all exp=explain.example.com exp=explain.example.com");
    zone.add("explain.example.com", RData::txt("go away"));
    assert_eq!(check(&mut zone, "192.0.2.10"), SpfResult::PermError);
}

#[test]
fn exp_expansion_uses_macros_from_the_failing_check() {
    // §6.2: the explanation TXT is macro-expanded with the connection's
    // context — client IP, sender, and the domain whose policy failed.
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 mx -all exp=explain.example.com");
    zone.add(
        "explain.example.com",
        RData::txt("%{i} is not a listed MX for %{s}"),
    );
    let mut expander = CompliantExpander;
    let mut eval = Evaluator::new(&mut zone, &mut expander);
    let result = eval.check_host(
        "203.0.113.1".parse().expect("ip"),
        "strong-bad",
        "example.com",
    );
    assert_eq!(result, SpfResult::Fail);
    assert_eq!(
        eval.explanation(),
        Some("203.0.113.1 is not a listed MX for strong-bad@example.com"),
    );

    // The compiled evaluator expands the same explanation.
    let mut cache = PolicyCache::new();
    let mut expander = CompliantExpander;
    let mut eval = CompiledEvaluator::new(&mut zone, &mut expander, &mut cache);
    let result = eval.check_host(
        "203.0.113.1".parse().expect("ip"),
        "strong-bad",
        "example.com",
    );
    assert_eq!(result, SpfResult::Fail);
    assert_eq!(
        eval.explanation(),
        Some("203.0.113.1 is not a listed MX for strong-bad@example.com"),
    );
}

#[test]
fn exp_is_ignored_on_non_fail_results() {
    let mut zone = Zone::rfc_appendix_a().with_policy("v=spf1 mx ~all exp=explain.example.com");
    zone.add("explain.example.com", RData::txt("unused"));
    let mut expander = CompliantExpander;
    let mut eval = Evaluator::new(&mut zone, &mut expander);
    let result = eval.check_host(
        "203.0.113.1".parse().expect("ip"),
        "strong-bad",
        "example.com",
    );
    assert_eq!(result, SpfResult::SoftFail);
    assert_eq!(eval.explanation(), None);
}
