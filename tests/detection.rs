//! Cross-crate detection matrix: every SPF implementation behaviour,
//! driven through a real simulated SMTP conversation, must classify back
//! to itself from the DNS queries alone.

use std::sync::Arc;

use spfail::dns::{Directory, QueryLog, SpfTestAuthority};
use spfail::libspf2::MacroBehavior;
use spfail::mta::{Mta, MtaConfig, SpfStage};
use spfail::netsim::{SimClock, SimRng};
use spfail::prober::classify;
use spfail::smtp::address::EmailAddress;
use spfail::smtp::command::Command;

struct Rig {
    directory: Directory,
    log: QueryLog,
    clock: SimClock,
}

impl Rig {
    fn new() -> Rig {
        let log = QueryLog::new();
        let directory = Directory::new();
        directory.register(Arc::new(SpfTestAuthority::new(
            SpfTestAuthority::default_origin(),
            log.clone(),
        )));
        Rig {
            directory,
            log,
            clock: SimClock::new(),
        }
    }

    fn probe(&self, config: MtaConfig, id: &str) -> spfail::prober::Classification {
        let mut mta = Mta::new(
            config,
            "198.51.100.77".parse().expect("ip"),
            self.directory.clone(),
            self.clock.clone(),
            SimRng::new(7),
        );
        let origin = SpfTestAuthority::default_origin();
        let sender = EmailAddress::new(
            "mmj7yzdm0tbk",
            &format!("{id}.sde.{}", origin.to_ascii()),
        )
        .expect("valid address");

        let log_start = self.log.len();
        mta.connect("203.0.113.25".parse().expect("ip"));
        let (mut session, _) = mta.open_session();
        session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
        session.handle(&Command::MailFrom(sender));
        session.handle(&Command::RcptTo(
            EmailAddress::parse("postmaster@x.test").expect("valid"),
        ));
        session.handle(&Command::Data);
        session.handle_message("");
        classify(&self.log.entries_from(log_start), id, "sde", &origin)
    }
}

#[test]
fn every_behaviour_classifies_back_to_itself() {
    let rig = Rig::new();
    let cases = [
        (MacroBehavior::Compliant, MacroBehavior::Compliant, "c1"),
        (
            MacroBehavior::VulnerableLibSpf2,
            MacroBehavior::VulnerableLibSpf2,
            "v1",
        ),
        // Patched libSPF2 is indistinguishable from compliant on the wire
        // — that is the point of the longitudinal measurement.
        (MacroBehavior::PatchedLibSpf2, MacroBehavior::Compliant, "p1"),
        (MacroBehavior::NoExpansion, MacroBehavior::NoExpansion, "n1"),
        (
            MacroBehavior::ReverseNoTruncate,
            MacroBehavior::ReverseNoTruncate,
            "r1",
        ),
        (
            MacroBehavior::TruncateNoReverse,
            MacroBehavior::TruncateNoReverse,
            "t1",
        ),
        (
            MacroBehavior::IgnoreTransformers,
            MacroBehavior::IgnoreTransformers,
            "i1",
        ),
        (
            MacroBehavior::EmptyExpansion,
            MacroBehavior::EmptyExpansion,
            "e1",
        ),
        (
            MacroBehavior::MacroUnsupported,
            MacroBehavior::MacroUnsupported,
            "m1",
        ),
    ];
    for (behavior, expected, id) in cases {
        let mut config = MtaConfig::compliant("mx.matrix.test");
        config.spf_impls = vec![behavior];
        config.reject_on_spf_fail = false;
        let classification = rig.probe(config, id);
        assert!(
            classification.spf_triggered,
            "{behavior:?}: SPF must have been triggered"
        );
        assert!(
            classification.behaviors.contains(&expected),
            "{behavior:?} classified as {:?}",
            classification.behaviors
        );
        assert_eq!(
            classification.behaviors.len(),
            1,
            "{behavior:?} must yield exactly one pattern"
        );
    }
}

#[test]
fn vulnerable_is_detectable_at_both_validation_stages() {
    let rig = Rig::new();
    for (stage, id) in [(SpfStage::OnMailFrom, "s1"), (SpfStage::OnData, "s2")] {
        let mut config = MtaConfig::vulnerable("mx.stage.test");
        config.spf_stage = stage;
        config.reject_on_spf_fail = false;
        let classification = rig.probe(config, id);
        assert!(
            classification.vulnerable(),
            "stage {stage:?} must still reveal the fingerprint to a full \
             (BlankMsg-style) transaction"
        );
    }
}

#[test]
fn chained_filters_show_multiple_patterns() {
    let rig = Rig::new();
    let mut config = MtaConfig::vulnerable("mx.chained.test");
    config.spf_impls = vec![
        MacroBehavior::VulnerableLibSpf2,
        MacroBehavior::NoExpansion,
    ];
    config.reject_on_spf_fail = false;
    let classification = rig.probe(config, "x9");
    assert!(classification.multi_pattern());
    assert!(classification.vulnerable());
    assert!(classification.erroneous_non_vulnerable());
}

#[test]
fn patching_changes_the_wire_signature() {
    let rig = Rig::new();
    let mut config = MtaConfig::vulnerable("mx.patchme.test");
    config.reject_on_spf_fail = false;
    let before = rig.probe(config.clone(), "w1");
    assert!(before.vulnerable());
    config.apply_patch();
    let after = rig.probe(config, "w2");
    assert!(!after.vulnerable());
    assert!(after.compliant_only());
}

#[test]
fn no_spf_host_is_inconclusive() {
    let rig = Rig::new();
    let mut config = MtaConfig::compliant("mx.nospf.test");
    config.spf_stage = SpfStage::Never;
    let classification = rig.probe(config, "z1");
    assert!(!classification.spf_triggered);
    assert!(!classification.conclusive());
}
