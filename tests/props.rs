//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use spfail::dns::{wire, Message, Name, RData, Record, RecordType};
use spfail::libspf2::{LibSpf2Expander, MemSim};
use spfail::netsim::{EventQueue, SimRng, SimTime};
use spfail::smtp::command::Command;
use spfail::smtp::reply::Reply;
use spfail::spf::expand::{
    apply_transform, url_escape, CompliantExpander, MacroContext, MacroExpander,
};
use spfail::spf::macrostring::{MacroString, MacroTransform};
use spfail::spf::record::SpfRecord;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z0-9][a-z0-9-]{0,14}".prop_map(|s| s)
}

fn arb_name() -> impl Strategy<Value = Name> {
    prop::collection::vec(arb_label(), 0..6)
        .prop_filter_map("name too long", |labels| Name::from_labels(labels).ok())
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        "[ -~]{0,300}".prop_map(|s| RData::txt(&s)),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata())
        .prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
}

// ---------------------------------------------------------------------------
// DNS wire format
// ---------------------------------------------------------------------------

proptest! {
    /// encode → decode is the identity for any well-formed message.
    #[test]
    fn wire_round_trip(
        id in any::<u16>(),
        qname in arb_name(),
        answers in prop::collection::vec(arb_record(), 0..6),
    ) {
        let mut message = Message::query(id, qname, RecordType::TXT);
        message.answers = answers;
        let encoded = wire::encode(&message);
        let decoded = wire::decode(&encoded).expect("well-formed messages decode");
        prop_assert_eq!(&decoded, &message);
        // Compression must never change the decoded meaning.
        let plain = wire::encode_uncompressed(&message);
        prop_assert_eq!(wire::decode(&plain).expect("decodes"), message);
        prop_assert!(encoded.len() <= plain.len());
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn wire_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = wire::decode(&bytes);
    }

    /// Name parsing accepts what it produces.
    #[test]
    fn name_display_parse_round_trip(name in arb_name()) {
        let text = name.to_ascii();
        let reparsed = Name::parse(&text).expect("display form parses");
        prop_assert_eq!(reparsed, name);
    }

    /// Subdomain relations are consistent with concatenation.
    #[test]
    fn concat_makes_subdomains(prefix in arb_label(), base in arb_name()) {
        if let Ok(child) = base.child(&prefix) {
            prop_assert!(child.is_subdomain_of(&base));
            prop_assert_eq!(child.parent(), base.clone());
            prop_assert_eq!(
                child.strip_suffix(&base).expect("is a subdomain"),
                vec![prefix]
            );
        }
    }
}

// ---------------------------------------------------------------------------
// SPF macros and records
// ---------------------------------------------------------------------------

proptest! {
    /// The macro parser never panics, on anything.
    #[test]
    fn macro_parse_never_panics(input in "[ -~]{0,60}") {
        let _ = MacroString::parse(&input);
    }

    /// The record parser never panics, on anything.
    #[test]
    fn record_parse_never_panics(input in "[ -~]{0,120}") {
        let _ = SpfRecord::parse(&input);
    }

    /// Pure literal macro-strings expand to themselves.
    #[test]
    fn literal_expansion_is_identity(input in "[a-z0-9.-]{1,40}") {
        let ms = MacroString::parse(&input).expect("literals parse");
        let ctx = MacroContext::new("u", "example.com", "192.0.2.1".parse().expect("ip"));
        let out = CompliantExpander.expand(&ms, &ctx, false).expect("expands");
        prop_assert_eq!(out, input);
    }

    /// Reversing twice with full retention restores the label multiset
    /// order.
    #[test]
    fn double_reverse_is_identity(labels in prop::collection::vec(arb_label(), 1..6)) {
        let value = labels.join(".");
        let reverse = MacroTransform { digits: None, reverse: true, delimiters: vec![] };
        let once = apply_transform(&value, &reverse);
        let twice = apply_transform(&once, &reverse);
        prop_assert_eq!(twice, value);
    }

    /// Truncation keeps exactly min(n, len) labels — the *rightmost* ones.
    #[test]
    fn truncation_keeps_rightmost(
        labels in prop::collection::vec(arb_label(), 1..8),
        n in 1u32..10,
    ) {
        let value = labels.join(".");
        let transform = MacroTransform { digits: Some(n), reverse: false, delimiters: vec![] };
        let out = apply_transform(&value, &transform);
        let kept: Vec<&str> = out.split('.').collect();
        let expected = labels.len().min(n as usize);
        prop_assert_eq!(kept.len(), expected);
        let last_label = labels.last().map(String::as_str);
        prop_assert_eq!(kept.last().copied(), last_label);
    }

    /// url_escape output contains only unreserved characters and percent
    /// escapes, and is decodable back to the input.
    #[test]
    fn url_escape_is_reversible(input in "[ -~]{0,40}") {
        let escaped = url_escape(&input);
        // Alphabet check.
        let mut chars = escaped.chars().peekable();
        let mut decoded = Vec::new();
        while let Some(c) = chars.next() {
            if c == '%' {
                let hi = chars.next().expect("two hex digits follow %");
                let lo = chars.next().expect("two hex digits follow %");
                decoded.push(
                    u8::from_str_radix(&format!("{hi}{lo}"), 16).expect("valid hex"),
                );
            } else {
                prop_assert!(c.is_ascii_alphanumeric() || "-._~".contains(c));
                decoded.push(c as u8);
            }
        }
        prop_assert_eq!(String::from_utf8(decoded).expect("ascii"), input);
    }

    /// The vulnerable expander is benign (no heap corruption) whenever no
    /// URL escaping is requested — the property the whole measurement
    /// methodology rests on.
    #[test]
    fn vulnerable_expander_is_benign_without_url_escape(
        local in "[a-z0-9]{1,12}",
        domain_labels in prop::collection::vec(arb_label(), 1..6),
        digits in prop::option::of(1u32..5),
        reverse in any::<bool>(),
    ) {
        let domain = domain_labels.join(".");
        let macro_text = match (digits, reverse) {
            (Some(n), true) => format!("%{{d{n}r}}"),
            (Some(n), false) => format!("%{{d{n}}}"),
            (None, true) => "%{dr}".to_string(),
            (None, false) => "%{d}".to_string(),
        };
        let ms = MacroString::parse(&macro_text).expect("valid macro");
        let ctx = MacroContext::new(&local, &domain, "192.0.2.1".parse().expect("ip"));
        let mut expander = LibSpf2Expander::vulnerable();
        let _ = expander.expand(&ms, &ctx, false).expect("expansion succeeds");
        prop_assert!(
            !expander.heap().corrupted(),
            "lowercase macros must never corrupt memory"
        );
    }

    /// Heap overruns are always bounded by the configured cap.
    #[test]
    fn overruns_are_bounded(
        domain_labels in prop::collection::vec(arb_label(), 2..8),
    ) {
        let domain = domain_labels.join(".");
        let ms = MacroString::parse("%{D1R}").expect("valid macro");
        let ctx = MacroContext::new("u", &domain, "192.0.2.1".parse().expect("ip"));
        let mut expander = LibSpf2Expander::vulnerable();
        let _ = expander.expand(&ms, &ctx, false).expect("expansion succeeds");
        prop_assert!(expander.heap().max_overrun() <= 100);
    }
}

// ---------------------------------------------------------------------------
// Zone files
// ---------------------------------------------------------------------------

proptest! {
    /// render → parse is the identity on zones (modulo record order).
    #[test]
    fn zonefile_round_trip(
        origin in arb_name().prop_filter("origin must be non-root", |n| !n.is_root()),
        records in prop::collection::vec((arb_label(), arb_rdata()), 0..8),
    ) {
        use spfail::dns::{parse_zone, render_zone, ZoneBuilder};
        let mut builder = ZoneBuilder::new(origin.clone());
        let mut skipped = 0;
        for (label, rdata) in records {
            // TXT strings from arb_rdata may contain characters the text
            // format cannot round-trip byte-exactly after tokenisation
            // (backslashes, semicolons inside quotes are fine; control
            // chars are not generated). Owner must fit under the origin.
            match origin.child(&label) {
                Ok(owner) => {
                    builder = builder.record(spfail::dns::Record::new(owner, 300, rdata));
                }
                Err(_) => skipped += 1,
            }
        }
        let zone = builder.build();
        let rendered = render_zone(&zone);
        let reparsed = parse_zone(&rendered).expect("rendered zones parse");
        prop_assert_eq!(reparsed.origin(), zone.origin());
        let canonical = |z: &spfail::dns::Zone| {
            let mut rows: Vec<String> = z.records().map(|r| r.to_string()).collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(canonical(&reparsed), canonical(&zone));
        let _ = skipped;
    }

    /// The zone-file parser never panics on arbitrary printable text.
    #[test]
    fn zonefile_parse_never_panics(input in "[ -~\n]{0,300}") {
        use spfail::dns::parse_zone;
        let _ = parse_zone(&input);
    }
}

// ---------------------------------------------------------------------------
// SMTP
// ---------------------------------------------------------------------------

proptest! {
    /// Command render/parse round-trips for addresses the generator emits.
    #[test]
    fn command_round_trip(local in "[a-z0-9]{1,10}", domain_labels in prop::collection::vec(arb_label(), 1..4)) {
        let address = spfail::smtp::address::EmailAddress::new(
            &local,
            &domain_labels.join("."),
        ).expect("valid address");
        for command in [
            Command::MailFrom(address.clone()),
            Command::RcptTo(address),
            Command::Ehlo("probe.test".into()),
        ] {
            prop_assert_eq!(Command::parse(&command.to_line()), Some(command));
        }
    }

    /// Reply wire round-trip for arbitrary codes and simple texts.
    #[test]
    fn reply_round_trip(code in 200u16..600, text in "[ -~&&[^\r\n]]{0,40}") {
        let reply = Reply::new(code, &text);
        prop_assert_eq!(Reply::parse(&reply.to_wire()), Some(reply));
    }

    /// The command parser never panics.
    #[test]
    fn command_parse_never_panics(line in "[ -~]{0,80}") {
        let _ = Command::parse(&line);
    }
}

// ---------------------------------------------------------------------------
// Simulation substrate
// ---------------------------------------------------------------------------

proptest! {
    /// Event queues pop in non-decreasing time order regardless of push
    /// order.
    #[test]
    fn event_queue_orders(times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::EPOCH;
        let mut count = 0;
        while let Some((at, _)) = queue.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Forked RNG streams are reproducible.
    #[test]
    fn rng_forks_reproducible(seed in any::<u64>(), label in "[a-z]{1,10}") {
        use rand::RngCore;
        let parent = SimRng::new(seed);
        let mut a = parent.fork(&label);
        let mut b = parent.fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// MemSim never lets an out-of-bounds write corrupt in-bounds data.
    #[test]
    fn memsim_containment(
        size in 1usize..64,
        writes in prop::collection::vec((0usize..128, any::<u8>()), 0..64),
    ) {
        let mut mem = MemSim::new();
        let id = mem.alloc(size);
        let mut shadow = vec![0u8; size];
        for (offset, value) in writes {
            mem.write(id, offset, value);
            if offset < size {
                shadow[offset] = value;
            }
        }
        prop_assert_eq!(mem.read(id), shadow.as_slice());
        let in_bounds_only = mem.overflow_events().iter().all(|e| e.offset >= size);
        prop_assert!(in_bounds_only);
    }
}
