//! Property-based tests on the core data structures and invariants.
//!
//! The harness is hand-rolled on top of [`SimRng`]: each property runs a
//! fixed number of cases, every case drawing its inputs from a stream
//! forked off a per-property seed. Failures are therefore perfectly
//! reproducible (there is no time- or thread-dependent entropy), and no
//! external property-testing crate is needed.

use spfail::dns::{wire, Message, Name, RData, Record, RecordType};
use spfail::libspf2::{LibSpf2Expander, MemSim};
use spfail::netsim::{EventQueue, Histogram, SimClock, SimDuration, SimRng, SimTime};
use spfail::prober::{partition_hosts, shard_of, HostMask, OnlineAggregate};
use spfail::trace::{parse_collapsed, Phase, Profile, SpanKind, Trace, TraceConfig, Tracer};
use spfail::smtp::command::Command;
use spfail::smtp::reply::Reply;
use spfail::spf::expand::{
    apply_transform, url_escape, CompliantExpander, MacroContext, MacroExpander,
};
use spfail::spf::macrostring::{MacroString, MacroTransform};
use spfail::spf::record::SpfRecord;
use spfail::world::{HostId, LazyWorld, World, WorldConfig};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

const CASES: u64 = 64;

/// One deterministic RNG per case, derived from the property's name.
fn cases(property: &str) -> Vec<SimRng> {
    let base = SimRng::new(0x5bf5_fa11).fork(property);
    (0..CASES).map(|i| base.fork_idx("case", i)).collect()
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

const LABEL_START: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
const LABEL_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";

/// A DNS label: `[a-z0-9][a-z0-9-]{0,14}`.
fn gen_label(rng: &mut SimRng) -> String {
    let mut out = String::new();
    out.push(LABEL_START[rng.below(LABEL_START.len() as u64) as usize] as char);
    for _ in 0..rng.below(15) {
        out.push(LABEL_REST[rng.below(LABEL_REST.len() as u64) as usize] as char);
    }
    out
}

/// A name of 0..6 labels that satisfies the length limits.
fn gen_name(rng: &mut SimRng) -> Name {
    loop {
        let labels: Vec<String> = (0..rng.below(6)).map(|_| gen_label(rng)).collect();
        if let Ok(name) = Name::from_labels(labels) {
            return name;
        }
    }
}

/// A label with each letter independently upper- or lowercased.
fn gen_mixed_label(rng: &mut SimRng) -> String {
    gen_label(rng)
        .chars()
        .map(|c| {
            if rng.chance(0.5) {
                c.to_ascii_uppercase()
            } else {
                c
            }
        })
        .collect()
}

/// The reference model for a name is just its label list; a mixed-case
/// one exercises the canonical-form machinery in the compact [`Name`].
fn gen_mixed_labels(rng: &mut SimRng, max: u64) -> Vec<String> {
    loop {
        let labels: Vec<String> = (0..rng.below(max)).map(|_| gen_mixed_label(rng)).collect();
        if Name::from_labels(&labels).is_ok() {
            return labels;
        }
    }
}

/// A printable-ASCII string of up to `max` characters.
fn gen_printable(rng: &mut SimRng, max: u64) -> String {
    (0..rng.below(max + 1))
        .map(|_| (b' ' + rng.below(95) as u8) as char)
        .collect()
}

fn gen_bytes(rng: &mut SimRng, max: u64) -> Vec<u8> {
    (0..rng.below(max + 1))
        .map(|_| rng.below(256) as u8)
        .collect()
}

fn gen_rdata(rng: &mut SimRng) -> RData {
    match rng.below(7) {
        0 => {
            let octets = [
                rng.below(256) as u8,
                rng.below(256) as u8,
                rng.below(256) as u8,
                rng.below(256) as u8,
            ];
            RData::A(octets.into())
        }
        1 => {
            let mut octets = [0u8; 16];
            for b in &mut octets {
                *b = rng.below(256) as u8;
            }
            RData::Aaaa(octets.into())
        }
        2 => RData::Mx {
            preference: rng.below(u64::from(u16::MAX) + 1) as u16,
            exchange: gen_name(rng),
        },
        3 => RData::txt(&gen_printable(rng, 300)),
        4 => RData::Ns(gen_name(rng)),
        5 => RData::Cname(gen_name(rng)),
        _ => RData::Ptr(gen_name(rng)),
    }
}

fn gen_record(rng: &mut SimRng) -> Record {
    Record::new(gen_name(rng), rng.below(1 << 32) as u32, gen_rdata(rng))
}

// ---------------------------------------------------------------------------
// DNS wire format
// ---------------------------------------------------------------------------

/// encode → decode is the identity for any well-formed message.
#[test]
fn wire_round_trip() {
    for mut rng in cases("wire_round_trip") {
        let id = rng.below(u64::from(u16::MAX) + 1) as u16;
        let qname = gen_name(&mut rng);
        let answers: Vec<Record> = (0..rng.below(6)).map(|_| gen_record(&mut rng)).collect();
        let mut message = Message::query(id, qname, RecordType::TXT);
        message.answers = answers;
        let encoded = wire::encode(&message);
        let decoded = wire::decode(&encoded).expect("well-formed messages decode");
        assert_eq!(decoded, message);
        // Compression must never change the decoded meaning.
        let plain = wire::encode_uncompressed(&message);
        assert_eq!(wire::decode(&plain).expect("decodes"), message);
        assert!(encoded.len() <= plain.len());
    }
}

/// The decoder never panics on arbitrary bytes.
#[test]
fn wire_decode_never_panics() {
    for mut rng in cases("wire_decode_never_panics") {
        let bytes = gen_bytes(&mut rng, 200);
        let _ = wire::decode(&bytes);
    }
}

/// A 12-byte header with `qdcount` questions declared.
fn wire_header(qdcount: u16) -> Vec<u8> {
    let mut out = vec![0u8; 12];
    out[0] = 0x12;
    out[1] = 0x34;
    out[4] = (qdcount >> 8) as u8;
    out[5] = (qdcount & 0xff) as u8;
    out
}

/// A compression pointer aimed at its own first byte must be rejected,
/// not chased forever.
#[test]
fn wire_self_pointer_is_rejected() {
    let mut bytes = wire_header(1);
    // The question name starts at offset 12 and points at offset 12.
    bytes.extend_from_slice(&[0xc0, 12]);
    bytes.extend_from_slice(&[0, 16, 0, 1]); // TXT IN
    assert_eq!(wire::decode(&bytes), Err(wire::WireError::BadPointer));
}

/// Pointers may only move backwards; a forward target is rejected even
/// though it would terminate.
#[test]
fn wire_forward_pointer_is_rejected() {
    let mut bytes = wire_header(1);
    // Points past itself at a perfectly valid root label.
    bytes.extend_from_slice(&[0xc0, 14, 0]);
    bytes.extend_from_slice(&[0, 16, 0, 1]);
    assert_eq!(wire::decode(&bytes), Err(wire::WireError::BadPointer));
}

/// A backwards-only pointer chain that is deeper than the hop limit is
/// cut off: question `i` chases `i` pointers, so 34 questions put the
/// last name at 33 hops — one past the 32-hop cap.
#[test]
fn wire_deep_pointer_chain_is_cut_off() {
    let questions = 34usize;
    let mut bytes = wire_header(questions as u16);
    let mut name_offsets = Vec::new();
    for i in 0..questions {
        name_offsets.push(bytes.len());
        if i == 0 {
            bytes.extend_from_slice(&[1, b'a', 0]);
        } else {
            let target = name_offsets[i - 1];
            bytes.extend_from_slice(&[
                1,
                b'a',
                0xc0 | (target >> 8) as u8,
                (target & 0xff) as u8,
            ]);
        }
        bytes.extend_from_slice(&[0, 16, 0, 1]);
    }
    assert_eq!(wire::decode(&bytes), Err(wire::WireError::BadPointer));
    // One question fewer sits exactly at the cap and decodes fine.
    let questions = 33usize;
    let mut bytes = wire_header(questions as u16);
    let mut name_offsets = Vec::new();
    for i in 0..questions {
        name_offsets.push(bytes.len());
        if i == 0 {
            bytes.extend_from_slice(&[1, b'a', 0]);
        } else {
            let target = name_offsets[i - 1];
            bytes.extend_from_slice(&[
                1,
                b'a',
                0xc0 | (target >> 8) as u8,
                (target & 0xff) as u8,
            ]);
        }
        bytes.extend_from_slice(&[0, 16, 0, 1]);
    }
    let message = wire::decode(&bytes).expect("a chain at the cap decodes");
    assert_eq!(message.questions.len(), 33);
    assert_eq!(message.questions[32].name.label_count(), 33);
}

/// A message that ends in the middle of a pointer (or a label) reports
/// truncation rather than reading out of bounds.
#[test]
fn wire_truncated_pointer_is_rejected() {
    let mut bytes = wire_header(1);
    bytes.push(0xc0); // pointer high byte, then EOF
    assert_eq!(wire::decode(&bytes), Err(wire::WireError::Truncated));

    let mut bytes = wire_header(1);
    bytes.extend_from_slice(&[5, b'a', b'b']); // label claims 5, has 2
    assert_eq!(wire::decode(&bytes), Err(wire::WireError::Truncated));
}

/// The reserved `0b01`/`0b10` label-type prefixes are rejected loudly.
#[test]
fn wire_reserved_label_types_are_rejected() {
    for prefix in [0x40u8, 0x80u8] {
        let mut bytes = wire_header(1);
        bytes.extend_from_slice(&[prefix | 1, b'a', 0]);
        bytes.extend_from_slice(&[0, 16, 0, 1]);
        assert_eq!(
            wire::decode(&bytes),
            Err(wire::WireError::ReservedLabelType(prefix)),
        );
    }
}

/// Mutation fuzz: take a valid (compressed) encoding and corrupt it —
/// random byte flips and truncations. The decoder must always return,
/// and whatever it accepts must re-encode without panicking.
#[test]
fn wire_mutated_messages_never_panic() {
    for mut rng in cases("wire_mutated_messages_never_panic") {
        // Shared suffixes force real compression pointers into the wire.
        let apex = gen_name(&mut rng);
        let mut message = Message::query(
            rng.below(u64::from(u16::MAX) + 1) as u16,
            apex.clone(),
            RecordType::TXT,
        );
        for _ in 0..rng.below(4) {
            let mut record = gen_record(&mut rng);
            if let Ok(child) = apex.child(&gen_label(&mut rng)) {
                record.name = child;
            }
            message.answers.push(record);
        }
        let encoded = wire::encode(&message);

        for _ in 0..8 {
            let mut mutated = encoded.clone();
            match rng.below(3) {
                0 => {
                    let cut = rng.below(mutated.len() as u64 + 1) as usize;
                    mutated.truncate(cut);
                }
                _ => {
                    for _ in 0..1 + rng.below(4) {
                        if mutated.is_empty() {
                            break;
                        }
                        let at = rng.below(mutated.len() as u64) as usize;
                        mutated[at] = rng.below(256) as u8;
                    }
                }
            }
            if let Ok(decoded) = wire::decode(&mutated) {
                let _ = wire::encode(&decoded);
            }
        }
    }
}

/// Name parsing accepts what it produces.
#[test]
fn name_display_parse_round_trip() {
    for mut rng in cases("name_display_parse_round_trip") {
        let name = gen_name(&mut rng);
        let text = name.to_ascii();
        let reparsed = Name::parse(&text).expect("display form parses");
        assert_eq!(reparsed, name);
    }
}

/// Subdomain relations are consistent with concatenation.
#[test]
fn concat_makes_subdomains() {
    for mut rng in cases("concat_makes_subdomains") {
        let prefix = gen_label(&mut rng);
        let base = gen_name(&mut rng);
        if let Ok(child) = base.child(&prefix) {
            assert!(child.is_subdomain_of(&base));
            assert_eq!(child.parent(), base);
            assert_eq!(
                child.strip_suffix(&base).expect("is a subdomain"),
                vec![prefix]
            );
        }
    }
}

/// parse → wire → decode → to_ascii is the identity on the original
/// spelling, even for mixed-case names (the canonical form is for
/// comparisons only — the wire always carries the spelling as typed).
#[test]
fn name_wire_round_trip_preserves_spelling() {
    for mut rng in cases("name_wire_round_trip_preserves_spelling") {
        let labels = gen_mixed_labels(&mut rng, 6);
        let name = Name::from_labels(&labels).expect("generator keeps names legal");
        let text = name.to_ascii();
        let reparsed = Name::parse(&text).expect("display form parses");
        assert_eq!(reparsed.to_ascii(), text, "parse must keep the spelling");
        let mut message = Message::query(7, name.clone(), RecordType::A);
        message.answers = vec![Record::new(name.clone(), 60, RData::txt("x"))];
        for encoded in [wire::encode(&message), wire::encode_uncompressed(&message)] {
            let decoded = wire::decode(&encoded).expect("well-formed messages decode");
            assert_eq!(decoded.question().expect("question").name.to_ascii(), text);
            assert_eq!(decoded.answers[0].name.to_ascii(), text);
        }
    }
}

/// The compact name agrees with a plain `Vec<String>` label model on
/// every structural operation, and its comparisons are case-insensitive
/// where the model's are not.
#[test]
fn name_ops_match_label_list_model() {
    for mut rng in cases("name_ops_match_label_list_model") {
        let model = gen_mixed_labels(&mut rng, 5);
        let name = Name::from_labels(&model).expect("legal");

        // Label iteration reproduces the model exactly.
        let seen: Vec<&str> = name.labels().collect();
        assert_eq!(seen, model.iter().map(String::as_str).collect::<Vec<_>>());
        assert_eq!(name.label_count(), model.len());

        // parent() drops the leftmost label, like the model's tail.
        assert_eq!(
            name.parent().labels().collect::<Vec<_>>(),
            model.iter().skip(1).map(String::as_str).collect::<Vec<_>>()
        );

        // concat() at every split point rebuilds the same name, and
        // strip_suffix() inverts it with the original spelling.
        for split in 0..=model.len() {
            let prefix = Name::from_labels(&model[..split]).expect("legal");
            let suffix = Name::from_labels(&model[split..]).expect("legal");
            let rebuilt = prefix.concat(&suffix).expect("fits");
            assert_eq!(rebuilt, name);
            assert_eq!(rebuilt.to_ascii(), name.to_ascii());
            assert_eq!(name.strip_suffix(&suffix), Some(model[..split].to_vec()));
        }

        // Comparisons fold case; the model's Vec equality does not.
        let folded: Vec<String> = model.iter().map(|l| l.to_ascii_lowercase()).collect();
        let lower = Name::from_labels(&folded).expect("legal");
        assert_eq!(lower, name, "names compare case-insensitively");
        if folded != model {
            assert_ne!(lower.to_ascii(), name.to_ascii(), "spelling is preserved");
        }
    }
}

/// Compression round-trips on pathological messages where many owners
/// share deep suffixes under different spellings.
#[test]
fn compression_round_trips_on_shared_suffixes() {
    for mut rng in cases("compression_round_trips_on_shared_suffixes") {
        // A deep base name every record hangs off.
        let base = Name::from_labels(gen_mixed_labels(&mut rng, 4)).expect("legal");
        let mut message = Message::query(9, base.clone(), RecordType::TXT);
        let mut expected_spellings = vec![base.to_ascii()];
        for _ in 0..rng.range(2, 10) {
            // Walk down a random number of levels from a random ancestor
            // so suffixes repeat at every depth, some respelled.
            let mut owner = base.clone();
            for _ in 0..rng.below(3) {
                owner = owner.parent();
            }
            for _ in 0..rng.below(3) {
                let Ok(child) = owner.child(&gen_mixed_label(&mut rng)) else {
                    break;
                };
                owner = child;
            }
            expected_spellings.push(owner.to_ascii());
            message.answers.push(Record::new(owner, 60, RData::txt("t")));
        }
        let compressed = wire::encode(&message);
        let plain = wire::encode_uncompressed(&message);
        assert!(compressed.len() <= plain.len());
        let decoded = wire::decode(&compressed).expect("decodes");
        assert_eq!(decoded, message, "equality is case-insensitive");
        // Spelling survives modulo compression: a shared suffix takes the
        // spelling of its first occurrence, so compare case-folded.
        for (record, spelling) in decoded.answers.iter().zip(&expected_spellings[1..]) {
            assert_eq!(
                record.name.to_ascii().to_ascii_lowercase(),
                spelling.to_ascii_lowercase()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// SPF macros and records
// ---------------------------------------------------------------------------

/// The macro parser never panics, on anything.
#[test]
fn macro_parse_never_panics() {
    for mut rng in cases("macro_parse_never_panics") {
        let _ = MacroString::parse(&gen_printable(&mut rng, 60));
    }
}

/// The record parser never panics, on anything.
#[test]
fn record_parse_never_panics() {
    for mut rng in cases("record_parse_never_panics") {
        let _ = SpfRecord::parse(&gen_printable(&mut rng, 120));
    }
}

/// Pure literal macro-strings expand to themselves.
#[test]
fn literal_expansion_is_identity() {
    const LITERAL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.-";
    for mut rng in cases("literal_expansion_is_identity") {
        let input: String = (0..rng.range(1, 41))
            .map(|_| LITERAL[rng.below(LITERAL.len() as u64) as usize] as char)
            .collect();
        let ms = MacroString::parse(&input).expect("literals parse");
        let ctx = MacroContext::new("u", "example.com", "192.0.2.1".parse().expect("ip"));
        let out = CompliantExpander.expand(&ms, &ctx, false).expect("expands");
        assert_eq!(out, input);
    }
}

/// Reversing twice with full retention restores the label order.
#[test]
fn double_reverse_is_identity() {
    for mut rng in cases("double_reverse_is_identity") {
        let labels: Vec<String> = (0..rng.range(1, 6)).map(|_| gen_label(&mut rng)).collect();
        let value = labels.join(".");
        let reverse = MacroTransform {
            digits: None,
            reverse: true,
            delimiters: vec![],
        };
        let once = apply_transform(&value, &reverse);
        let twice = apply_transform(&once, &reverse);
        assert_eq!(twice, value);
    }
}

/// Truncation keeps exactly min(n, len) labels — the *rightmost* ones.
#[test]
fn truncation_keeps_rightmost() {
    for mut rng in cases("truncation_keeps_rightmost") {
        let labels: Vec<String> = (0..rng.range(1, 8)).map(|_| gen_label(&mut rng)).collect();
        let n = rng.range(1, 10) as u32;
        let value = labels.join(".");
        let transform = MacroTransform {
            digits: Some(n),
            reverse: false,
            delimiters: vec![],
        };
        let out = apply_transform(&value, &transform);
        let kept: Vec<&str> = out.split('.').collect();
        let expected = labels.len().min(n as usize);
        assert_eq!(kept.len(), expected);
        assert_eq!(kept.last().copied(), labels.last().map(String::as_str));
    }
}

/// url_escape output contains only unreserved characters and percent
/// escapes, and is decodable back to the input.
#[test]
fn url_escape_is_reversible() {
    for mut rng in cases("url_escape_is_reversible") {
        let input = gen_printable(&mut rng, 40);
        let escaped = url_escape(&input);
        let mut chars = escaped.chars();
        let mut decoded = Vec::new();
        while let Some(c) = chars.next() {
            if c == '%' {
                let hi = chars.next().expect("two hex digits follow %");
                let lo = chars.next().expect("two hex digits follow %");
                decoded
                    .push(u8::from_str_radix(&format!("{hi}{lo}"), 16).expect("valid hex"));
            } else {
                assert!(c.is_ascii_alphanumeric() || "-._~".contains(c));
                decoded.push(c as u8);
            }
        }
        assert_eq!(String::from_utf8(decoded).expect("ascii"), input);
    }
}

/// The vulnerable expander is benign (no heap corruption) whenever no
/// URL escaping is requested — the property the whole measurement
/// methodology rests on.
#[test]
fn vulnerable_expander_is_benign_without_url_escape() {
    for mut rng in cases("vulnerable_expander_is_benign_without_url_escape") {
        let local = {
            let len = rng.range(1, 13) as usize;
            rng.alnum_label(len)
        };
        let domain: String = {
            let labels: Vec<String> =
                (0..rng.range(1, 6)).map(|_| gen_label(&mut rng)).collect();
            labels.join(".")
        };
        let digits = if rng.chance(0.5) {
            Some(rng.range(1, 5) as u32)
        } else {
            None
        };
        let reverse = rng.chance(0.5);
        let macro_text = match (digits, reverse) {
            (Some(n), true) => format!("%{{d{n}r}}"),
            (Some(n), false) => format!("%{{d{n}}}"),
            (None, true) => "%{dr}".to_string(),
            (None, false) => "%{d}".to_string(),
        };
        let ms = MacroString::parse(&macro_text).expect("valid macro");
        let ctx = MacroContext::new(&local, &domain, "192.0.2.1".parse().expect("ip"));
        let mut expander = LibSpf2Expander::vulnerable();
        let _ = expander.expand(&ms, &ctx, false).expect("expansion succeeds");
        assert!(
            !expander.heap().corrupted(),
            "lowercase macros must never corrupt memory"
        );
    }
}

/// Heap overruns are always bounded by the configured cap.
#[test]
fn overruns_are_bounded() {
    for mut rng in cases("overruns_are_bounded") {
        let labels: Vec<String> = (0..rng.range(2, 8)).map(|_| gen_label(&mut rng)).collect();
        let domain = labels.join(".");
        let ms = MacroString::parse("%{D1R}").expect("valid macro");
        let ctx = MacroContext::new("u", &domain, "192.0.2.1".parse().expect("ip"));
        let mut expander = LibSpf2Expander::vulnerable();
        let _ = expander.expand(&ms, &ctx, false).expect("expansion succeeds");
        assert!(expander.heap().max_overrun() <= 100);
    }
}

// ---------------------------------------------------------------------------
// Zone files
// ---------------------------------------------------------------------------

/// render → parse is the identity on zones (modulo record order).
#[test]
fn zonefile_round_trip() {
    use spfail::dns::{parse_zone, render_zone, Zone, ZoneBuilder};
    for mut rng in cases("zonefile_round_trip") {
        let origin = loop {
            let name = gen_name(&mut rng);
            if !name.is_root() {
                break name;
            }
        };
        let mut builder = ZoneBuilder::new(origin.clone());
        for _ in 0..rng.below(8) {
            let label = gen_label(&mut rng);
            let rdata = gen_rdata(&mut rng);
            // Owner must fit under the origin; overlong ones are skipped.
            if let Ok(owner) = origin.child(&label) {
                builder = builder.record(Record::new(owner, 300, rdata));
            }
        }
        let zone = builder.build();
        let rendered = render_zone(&zone);
        let reparsed = parse_zone(&rendered).expect("rendered zones parse");
        assert_eq!(reparsed.origin(), zone.origin());
        let canonical = |z: &Zone| {
            let mut rows: Vec<String> = z.records().map(|r| r.to_string()).collect();
            rows.sort();
            rows
        };
        assert_eq!(canonical(&reparsed), canonical(&zone));
    }
}

/// The zone-file parser never panics on arbitrary printable text.
#[test]
fn zonefile_parse_never_panics() {
    use spfail::dns::parse_zone;
    for mut rng in cases("zonefile_parse_never_panics") {
        let input: String = (0..rng.below(301))
            .map(|_| {
                if rng.chance(0.05) {
                    '\n'
                } else {
                    (b' ' + rng.below(95) as u8) as char
                }
            })
            .collect();
        let _ = parse_zone(&input);
    }
}

// ---------------------------------------------------------------------------
// SMTP
// ---------------------------------------------------------------------------

/// Command render/parse round-trips for addresses the generator emits.
#[test]
fn command_round_trip() {
    for mut rng in cases("command_round_trip") {
        let local = {
            let len = rng.range(1, 11) as usize;
            rng.alnum_label(len)
        };
        let domain: String = {
            let labels: Vec<String> =
                (0..rng.range(1, 4)).map(|_| gen_label(&mut rng)).collect();
            labels.join(".")
        };
        let address =
            spfail::smtp::address::EmailAddress::new(&local, &domain).expect("valid address");
        for command in [
            Command::MailFrom(address.clone()),
            Command::RcptTo(address.clone()),
            Command::Ehlo("probe.test".into()),
        ] {
            assert_eq!(Command::parse(&command.to_line()), Some(command));
        }
    }
}

/// Reply wire round-trip for arbitrary codes and simple texts.
#[test]
fn reply_round_trip() {
    for mut rng in cases("reply_round_trip") {
        let code = rng.range(200, 600) as u16;
        let text = gen_printable(&mut rng, 40);
        let reply = Reply::new(code, &text);
        assert_eq!(Reply::parse(&reply.to_wire()), Some(reply));
    }
}

/// The command parser never panics.
#[test]
fn command_parse_never_panics() {
    for mut rng in cases("command_parse_never_panics") {
        let _ = Command::parse(&gen_printable(&mut rng, 80));
    }
}

// ---------------------------------------------------------------------------
// Simulation substrate
// ---------------------------------------------------------------------------

/// Event queues pop in non-decreasing time order regardless of push order.
#[test]
fn event_queue_orders() {
    for mut rng in cases("event_queue_orders") {
        let times: Vec<u64> = (0..rng.range(1, 100)).map(|_| rng.below(1_000_000)).collect();
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::EPOCH;
        let mut count = 0;
        while let Some((at, _)) = queue.pop() {
            assert!(at >= last);
            last = at;
            count += 1;
        }
        assert_eq!(count, times.len());
    }
}

/// Forked RNG streams are reproducible.
#[test]
fn rng_forks_reproducible() {
    use rand::RngCore;
    for mut rng in cases("rng_forks_reproducible") {
        let seed = rng.below(u64::MAX);
        let label = {
            let len = rng.range(1, 11) as usize;
            rng.alnum_label(len)
        };
        let parent = SimRng::new(seed);
        let mut a = parent.fork(&label);
        let mut b = parent.fork(&label);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

/// MemSim never lets an out-of-bounds write corrupt in-bounds data.
#[test]
fn memsim_containment() {
    for mut rng in cases("memsim_containment") {
        let size = rng.range(1, 64) as usize;
        let mut mem = MemSim::new();
        let id = mem.alloc(size);
        let mut shadow = vec![0u8; size];
        for _ in 0..rng.below(64) {
            let offset = rng.below(128) as usize;
            let value = rng.below(256) as u8;
            mem.write(id, offset, value);
            if offset < size {
                shadow[offset] = value;
            }
        }
        assert_eq!(mem.read(id), shadow.as_slice());
        assert!(mem.overflow_events().iter().all(|e| e.offset >= size));
    }
}

// ---------------------------------------------------------------------------
// Campaign sharding
// ---------------------------------------------------------------------------

/// Every host lands in exactly one shard, and the partition covers the
/// input exactly (no drops, no duplicates) for any shard count.
#[test]
fn partition_covers_every_host_exactly_once() {
    for mut rng in cases("partition_covers_every_host_exactly_once") {
        let hosts: Vec<HostId> = {
            let count = rng.below(200);
            let mut ids: Vec<u32> = (0..count).map(|_| rng.below(10_000) as u32).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.into_iter().map(HostId).collect()
        };
        let shards = rng.range(1, 17) as usize;
        let parts = partition_hosts(&hosts, shards);
        assert_eq!(parts.len(), shards);
        let mut seen: Vec<HostId> = parts.iter().flatten().copied().collect();
        seen.sort();
        assert_eq!(seen, hosts, "partition must cover the input exactly");
        for (index, part) in parts.iter().enumerate() {
            for &host in part {
                assert_eq!(shard_of(host, shards), index);
            }
        }
    }
}

/// Merging disjoint shard result maps is order-independent: the merged
/// map is the same whatever order the shards are folded in.
#[test]
fn shard_merge_is_order_independent() {
    use std::collections::HashMap;
    for mut rng in cases("shard_merge_is_order_independent") {
        let hosts: Vec<HostId> = (0..rng.range(1, 120)).map(|h| HostId(h as u32)).collect();
        let shards = rng.range(1, 9) as usize;
        let parts = partition_hosts(&hosts, shards);
        // Each shard computes a per-host value (any deterministic
        // function of the host stands in for a probe outcome).
        let shard_maps: Vec<HashMap<HostId, u64>> = parts
            .iter()
            .map(|part| part.iter().map(|&h| (h, u64::from(h.0) * 31)).collect())
            .collect();
        let merge = |order: &[usize]| -> Vec<(HostId, u64)> {
            let mut merged = HashMap::new();
            for &i in order {
                merged.extend(shard_maps[i].iter().map(|(&h, &v)| (h, v)));
            }
            let mut rows: Vec<(HostId, u64)> = merged.into_iter().collect();
            rows.sort();
            rows
        };
        let forward: Vec<usize> = (0..shards).collect();
        let mut shuffled = forward.clone();
        rng.shuffle(&mut shuffled);
        assert_eq!(merge(&forward), merge(&shuffled));
    }
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

const SPAN_KINDS: [SpanKind; 5] = [
    SpanKind::DnsResolve,
    SpanKind::SmtpSession,
    SpanKind::RetryWait,
    SpanKind::GreylistWait,
    SpanKind::Fault,
];

/// Emit a random properly-nested span tree under the open probe,
/// advancing the clock by random amounts inside and between spans.
fn emit_spans(tracer: &Tracer, clock: &SimClock, rng: &mut SimRng, depth: u64) {
    for _ in 0..rng.below(4) {
        let kind = SPAN_KINDS[rng.below(SPAN_KINDS.len() as u64) as usize];
        tracer.enter(clock.now(), kind);
        clock.advance(SimDuration::from_micros(rng.below(50)));
        if depth < 3 && rng.chance(0.5) {
            emit_spans(tracer, clock, rng, depth + 1);
        }
        clock.advance(SimDuration::from_micros(rng.below(50)));
        tracer.exit(clock.now(), kind, "ok");
        clock.advance(SimDuration::from_micros(rng.below(20)));
    }
}

/// A random multi-probe trace across random phases and identities.
fn gen_trace(rng: &mut SimRng) -> Trace {
    let tracer = Tracer::new(TraceConfig::enabled());
    let clock = SimClock::new();
    for _ in 0..rng.range(1, 8) {
        let phase = match rng.below(3) {
            0 => Phase::Initial,
            1 => Phase::Round(rng.below(127) as u16),
            _ => Phase::Snapshot,
        };
        tracer.set_phase(phase);
        tracer.begin_probe(
            clock.now(),
            rng.below(64) as u32,
            rng.below(127) as u16,
            rng.below(2) as u8,
            rng.below(4) as u32,
        );
        emit_spans(&tracer, &clock, rng, 0);
        clock.advance(SimDuration::from_micros(rng.below(30)));
        tracer.end_probe(clock.now());
        clock.advance(SimDuration::from_micros(rng.below(1000)));
    }
    tracer.finish()
}

/// Spans recorded through the tracer are strictly well-parenthesized
/// per probe, and every child interval is contained in its parent's —
/// checked with an independent stack walker, not the crate's own
/// `validate` (which must agree).
#[test]
fn trace_spans_nest_and_children_stay_inside_parents() {
    for mut rng in cases("trace_spans_nest_and_children_stay_inside_parents") {
        let trace = gen_trace(&mut rng);
        for record in &trace.records {
            record.validate().expect("tracer output is well-formed");

            struct Frame {
                start: u64,
                children: Vec<(u64, u64)>,
            }
            let mut stack = vec![Frame { start: 0, children: Vec::new() }];
            for event in &record.events {
                match &event.kind {
                    spfail::trace::TraceEventKind::Enter { .. } => stack.push(Frame {
                        start: event.at_us,
                        children: Vec::new(),
                    }),
                    spfail::trace::TraceEventKind::Exit { .. } => {
                        let frame = stack.pop().expect("well-parenthesized");
                        assert!(!stack.is_empty(), "exit must not close the probe root");
                        let end = event.at_us;
                        assert!(frame.start <= end);
                        for &(cs, ce) in &frame.children {
                            assert!(
                                cs >= frame.start && ce <= end,
                                "child [{cs}, {ce}] escapes parent [{}, {end}]",
                                frame.start
                            );
                        }
                        stack
                            .last_mut()
                            .expect("parent")
                            .children
                            .push((frame.start, end));
                    }
                }
            }
            assert_eq!(stack.len(), 1, "every span closed");
            for &(cs, ce) in &stack[0].children {
                assert!(cs <= ce && ce <= record.duration_us);
            }
        }
    }
}

/// Histogram merging is associative and commutative with the empty
/// histogram as identity — the algebra per-shard latency aggregation
/// relies on.
#[test]
fn histogram_merge_is_associative_and_commutative() {
    for mut rng in cases("histogram_merge_is_associative_and_commutative") {
        let sample = |rng: &mut SimRng| {
            let mut h = Histogram::default();
            for _ in 0..rng.below(40) {
                let magnitude = 1 << rng.below(40);
                h.record(rng.below(magnitude));
            }
            h
        };
        let (a, b, c) = (sample(&mut rng), sample(&mut rng), sample(&mut rng));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&Histogram::default()), a);
        assert_eq!(Histogram::default().merge(&a), a);
    }
}

/// Profile merging is associative and commutative with the empty
/// profile as identity, and any split of a trace's records profiles to
/// the whole trace's profile.
#[test]
fn profile_merge_is_associative_and_split_invariant() {
    for mut rng in cases("profile_merge_is_associative_and_split_invariant") {
        let trace = gen_trace(&mut rng);
        let whole = trace.profile();

        // Split the records at two random points into three sub-traces.
        let n = trace.records.len();
        let mut cut_a = rng.below(n as u64 + 1) as usize;
        let mut cut_b = rng.below(n as u64 + 1) as usize;
        if cut_a > cut_b {
            std::mem::swap(&mut cut_a, &mut cut_b);
        }
        let part = |range: std::ops::Range<usize>| Trace {
            records: trace.records[range].to_vec(),
        }
        .profile();
        let (a, b, c) = (part(0..cut_a), part(cut_a..cut_b), part(cut_b..n));

        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b).merge(&c), whole, "splits merge to the whole");
        assert_eq!(whole.merge(&Profile::default()), whole);
        assert_eq!(Profile::default().merge(&whole), whole);
    }
}

/// Collapsed-stack output parses back to exactly the nonzero self-time
/// rows of the profile it came from.
#[test]
fn collapsed_stack_output_round_trips() {
    for mut rng in cases("collapsed_stack_output_round_trips") {
        let profile = gen_trace(&mut rng).profile();
        let collapsed = profile.to_collapsed();
        let parsed = parse_collapsed(&collapsed).expect("own output parses");
        let expected: Vec<(String, u64)> = profile
            .rows()
            .filter(|(_, row)| row.self_us > 0)
            .map(|(path, row)| (path.to_string(), row.self_us))
            .collect();
        assert_eq!(parsed, expected);
        // And the rendering of the parse equals the original text.
        let rerendered: String = parsed
            .iter()
            .map(|(path, count)| format!("{path} {count}\n"))
            .collect();
        assert_eq!(rerendered, collapsed);
    }
}

/// Per-shard derived RNG streams never collide: distinct shard indices
/// always yield observably different streams.
#[test]
fn derived_shard_rng_streams_are_distinct() {
    use rand::RngCore;
    for mut rng in cases("derived_shard_rng_streams_are_distinct") {
        let seed = rng.below(u64::MAX);
        let parent = SimRng::new(seed);
        let prefixes: Vec<Vec<u64>> = (0..16)
            .map(|i| {
                let mut stream = parent.fork_idx("shard", i);
                (0..8).map(|_| stream.next_u64()).collect()
            })
            .collect();
        for i in 0..prefixes.len() {
            for j in (i + 1)..prefixes.len() {
                assert_ne!(
                    prefixes[i], prefixes[j],
                    "shards {i} and {j} drew identical streams"
                );
            }
        }
    }
}

/// Lazy world synthesis is the eager generator, record for record: for
/// random seeds and scales, driving [`LazyWorld`] emits every domain and
/// every host of [`World::generate`] with identical contents, in id
/// order, each host exactly once.
#[test]
fn lazy_world_synthesis_matches_eager_generation() {
    // World generation is the expensive part of a case; a smaller case
    // count at varied scales covers the pool/cursor state machine
    // (shared hosting, parking, providers) across its regimes.
    for mut rng in cases("lazy_world_synthesis_matches_eager_generation").into_iter().take(12) {
        let seed = rng.below(u64::MAX);
        let scale = 0.001 + 0.004 * rng.below(1 << 16) as f64 / f64::from(1 << 16);
        let config = WorldConfig {
            scale,
            ..WorldConfig::small(seed)
        };
        let world = World::generate(config.clone());
        let mut hosts_seen = 0usize;
        let mut domains_seen = 0usize;
        for step in LazyWorld::new(config) {
            // The records carry no PartialEq; their Debug form is a
            // complete field dump, so string equality is field equality.
            assert_eq!(
                format!("{:?}", step.domain),
                format!("{:?}", world.domain(step.id)),
                "seed {seed}, scale {scale}: domain {:?}",
                step.id
            );
            assert_eq!(step.first_fresh.0 as usize, hosts_seen, "fresh ids are dense");
            for (offset, fresh) in step.fresh.iter().enumerate() {
                let id = HostId(step.first_fresh.0 + offset as u32);
                assert_eq!(
                    format!("{fresh:?}"),
                    format!("{:?}", world.host(id)),
                    "seed {seed}, scale {scale}: host {id:?}"
                );
            }
            hosts_seen += step.fresh.len();
            domains_seen += 1;
        }
        assert_eq!(domains_seen, world.domains.len());
        assert_eq!(hosts_seen, world.hosts.len());
    }
}

/// [`OnlineAggregate::merge`] is associative, commutative, has the
/// default aggregate as identity, and is invariant under *any* partition
/// of the host stream — contiguous or interleaved — which is exactly
/// what makes the streamed sweep's totals independent of sharding.
#[test]
fn online_aggregate_merge_is_associative_commutative_split_invariant() {
    for mut rng in cases("online_aggregate_merge_is_associative_commutative_split_invariant") {
        let n = 1 + rng.below(300) as usize;
        let masks: Vec<u32> = (0..n).map(|_| rng.below(1 << 22) as u32).collect();
        let whole = OnlineAggregate::from_masks(&masks);

        // Contiguous three-way split at random cut points.
        let mut cut_a = rng.below(n as u64 + 1) as usize;
        let mut cut_b = rng.below(n as u64 + 1) as usize;
        if cut_a > cut_b {
            std::mem::swap(&mut cut_a, &mut cut_b);
        }
        let fold = |range: std::ops::Range<usize>| {
            let mut agg = OnlineAggregate::default();
            for i in range {
                agg.observe(HostId(i as u32), HostMask(masks[i]));
            }
            agg
        };
        let (a, b, c) = (fold(0..cut_a), fold(cut_a..cut_b), fold(cut_b..n));
        assert_eq!(a.merge(&b), b.merge(&a), "commutes");
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)), "associates");
        assert_eq!(a.merge(&b).merge(&c), whole, "contiguous splits fold to the whole");
        assert_eq!(whole.merge(&OnlineAggregate::default()), whole, "identity");
        assert_eq!(OnlineAggregate::default().merge(&whole), whole, "identity");

        // Interleaved partition: each host assigned to one of k shards
        // at random (the streamed sweep's stride partition is one case).
        let k = 1 + rng.below(5) as usize;
        let mut shards = vec![OnlineAggregate::default(); k];
        for (i, &bits) in masks.iter().enumerate() {
            let shard = rng.below(k as u64) as usize;
            shards[shard].observe(HostId(i as u32), HostMask(bits));
        }
        let merged = shards
            .iter()
            .fold(OnlineAggregate::default(), |acc, s| acc.merge(s));
        assert_eq!(merged, whole, "interleaved partitions fold to the whole");
    }
}
