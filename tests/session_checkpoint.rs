//! The staged `Session` engine's two headline guarantees, tested
//! end to end:
//!
//! 1. **Kill-at-any-round-boundary + resume is invisible.** Serialising
//!    a session to its checkpoint text, discarding it, and rebuilding a
//!    fresh session from the parsed text — at any round boundary, any
//!    number of times — produces byte-for-byte the `CampaignData`,
//!    trace export, and report exhibits of an uninterrupted run, for
//!    any shard count and fault profile. (The same equivalence classes
//!    tests/parallel.rs and tests/trace_equivalence.rs pin for shard
//!    counts.)
//! 2. **Incremental rounds change the probe volume, not the
//!    measurement.** `CampaignBuilder::incremental()` issues ≥5× fewer
//!    round probes than full rescans while producing identical
//!    measurement fields.

use spfail::netsim::{FaultPlan, FaultProfile, FlakyWindow, SimDuration};
use spfail::prober::{
    CampaignBuilder, CampaignData, CampaignRun, CampaignState, RetryPolicy, Session, TraceConfig,
};
use spfail::world::{Timeline, World, WorldConfig};

const SEEDS: [u64; 3] = [11, 2024, 77];
const SCALE: f64 = 0.002;

fn build_world(seed: u64) -> World {
    World::generate(WorldConfig {
        scale: SCALE,
        ..WorldConfig::small(seed)
    })
}

/// The tests/trace_equivalence.rs combined fault regime.
fn combined_profile() -> FaultProfile {
    FaultProfile {
        dns: FaultPlan {
            drop_chance: 0.05,
            servfail_chance: 0.05,
            truncate_chance: 0.1,
            ..FaultPlan::NONE
        },
        smtp: FaultPlan {
            tempfail_chance: 0.05,
            reset_chance: 0.05,
            ..FaultPlan::NONE
        },
        flaky_fraction: 0.2,
        window: Some(FlakyWindow::new(SimDuration::from_mins(360), 0.6)),
    }
}

/// "Kill" a session: serialise it to the checkpoint text form, drop it,
/// and rebuild a fresh session from the parsed text — exactly what a
/// process death plus `Session::restore` does, minus the filesystem.
fn kill_and_resume<'w>(mut session: Session<'w>, world: &'w World) -> Session<'w> {
    let text = session.to_state().to_text();
    drop(session);
    let state = CampaignState::parse(&text).expect("checkpoint text parses");
    Session::from_state(state, world).expect("checkpoint restores")
}

/// Run a campaign through the staged API, killing and resuming at the
/// given round-boundary numbers (0 = right after the initial sweep).
fn run_with_kills(world: &World, builder: CampaignBuilder, kill_at: &[usize]) -> CampaignRun {
    let mut session = builder.session(world);
    session.initial_sweep();
    if kill_at.contains(&0) {
        session = kill_and_resume(session, world);
    }
    while session.advance_round().is_some() {
        if kill_at.contains(&session.rounds_done()) {
            session = kill_and_resume(session, world);
        }
    }
    session.finish()
}

fn assert_same_run(reference: &CampaignRun, candidate: &CampaignRun, label: &str) {
    assert_eq!(
        reference.data, candidate.data,
        "{label}: campaign data diverged"
    );
    match (&reference.trace, &candidate.trace) {
        (Some(r), Some(c)) => {
            assert_eq!(r.to_jsonl(), c.to_jsonl(), "{label}: trace JSONL diverged");
            assert_eq!(
                r.to_collapsed(),
                c.to_collapsed(),
                "{label}: collapsed-stack export diverged"
            );
        }
        (None, None) => {}
        _ => panic!("{label}: one run traced, the other did not"),
    }
}

/// The checkpoint text form is an exact round trip of the session state
/// at every round boundary, and a canonical fixed point.
#[test]
fn state_text_round_trips_at_every_round_boundary() {
    let world = build_world(2024);
    let builder = CampaignBuilder::new()
        .shards(4)
        .faults(combined_profile())
        .retry(RetryPolicy::standard())
        .trace(TraceConfig::enabled());
    let mut session = builder.session(&world);
    session.initial_sweep();
    loop {
        let state = session.to_state();
        let text = state.to_text();
        let parsed = CampaignState::parse(&text)
            .unwrap_or_else(|e| panic!("boundary {}: {e}", session.rounds_done()));
        assert_eq!(parsed, state, "boundary {}", session.rounds_done());
        assert_eq!(parsed.to_text(), text, "boundary {}: not a fixed point", session.rounds_done());
        if session.advance_round().is_none() {
            break;
        }
    }
}

/// The kill/resume equivalence matrix: seeds × shard counts × fault
/// profile on/off, killed after the initial sweep and again mid-rounds.
#[test]
fn kill_and_resume_matrix_is_byte_identical() {
    let mid = Timeline::all_round_days().len() / 2;
    for seed in SEEDS {
        for shards in [1usize, 4] {
            for faults in [false, true] {
                let mut builder = CampaignBuilder::new()
                    .shards(shards)
                    .trace(TraceConfig::enabled());
                if faults {
                    builder = builder
                        .faults(combined_profile())
                        .retry(RetryPolicy::standard());
                }
                let world = build_world(seed);
                let reference = builder.run(&world);
                let world = build_world(seed);
                let resumed = run_with_kills(&world, builder, &[0, mid]);
                assert_same_run(
                    &reference,
                    &resumed,
                    &format!("seed {seed}, {shards} shard(s), faults {faults}"),
                );
            }
        }
    }
}

/// The strongest form of the invariant: kill and resume at *every*
/// round boundary of a sharded, faulted, traced campaign.
#[test]
fn kill_at_every_round_boundary_is_byte_identical() {
    let every: Vec<usize> = (0..=Timeline::all_round_days().len()).collect();
    let builder = CampaignBuilder::new()
        .shards(4)
        .faults(combined_profile())
        .retry(RetryPolicy::standard())
        .trace(TraceConfig::enabled());
    let world = build_world(77);
    let reference = builder.run(&world);
    let world = build_world(77);
    let resumed = run_with_kills(&world, builder, &every);
    assert_same_run(&reference, &resumed, "kill at every boundary");
}

/// Checkpointing through the filesystem API mid-campaign, then resuming
/// from the file, matches the uninterrupted run — and the report
/// exhibits built from both campaigns are byte-identical.
#[test]
fn file_checkpoint_resume_matches_exhibits() {
    let seed = 11;
    let builder = CampaignBuilder::new().shards(4);
    let world = build_world(seed);
    let reference = builder.run(&world);

    let path = std::env::temp_dir().join(format!("spfail-ckpt-{seed}-{}.txt", std::process::id()));
    let world = build_world(seed);
    let mut session = builder.session(&world);
    session.initial_sweep();
    for _ in 0..3 {
        session.advance_round();
    }
    session.checkpoint(&path).expect("write checkpoint");
    drop(session);

    let mut session = Session::restore(&path, &world).expect("restore from file");
    assert_eq!(session.rounds_done(), 3);
    while session.advance_round().is_some() {}
    let resumed = session.finish();
    std::fs::remove_file(&path).ok();
    assert_eq!(reference.data, resumed.data);

    // Every exhibit built from the resumed campaign matches the
    // uninterrupted run's byte for byte.
    let ref_ctx =
        spfail::report::Context::from_campaign(build_world(seed), reference.data);
    let res_ctx = spfail::report::Context::from_campaign(build_world(seed), resumed.data);
    let ref_exhibits = spfail::report::all_exhibits(&ref_ctx);
    let res_exhibits = spfail::report::all_exhibits(&res_ctx);
    assert_eq!(ref_exhibits.len(), res_exhibits.len());
    for (r, c) in ref_exhibits.iter().zip(&res_exhibits) {
        assert_eq!(r.id, c.id);
        assert_eq!(r.rendered, c.rendered, "exhibit {} diverged", r.id);
        assert_eq!(
            serde_json::to_string(&r.json).expect("serialize"),
            serde_json::to_string(&c.json).expect("serialize"),
            "exhibit {} JSON diverged",
            r.id
        );
    }
}

/// A checkpoint only restores against the world it was taken from, and
/// corrupted checkpoint text is rejected, not misread.
#[test]
fn restore_rejects_wrong_world_and_corrupt_text() {
    let world = build_world(11);
    let mut session = CampaignBuilder::new().session(&world);
    session.initial_sweep();
    let text = session.to_state().to_text();
    let state = CampaignState::parse(&text).expect("parses");

    let other = build_world(12);
    assert!(Session::from_state(state.clone(), &other).is_err());

    assert!(CampaignState::parse("").is_err());
    assert!(CampaignState::parse("not a checkpoint\n").is_err());
    let mangled = text.replacen("init ", "init bogus-host ", 1);
    assert!(CampaignState::parse(&mangled).is_err());
}

fn measurement_fields_match(full: &CampaignData, incremental: &CampaignData) {
    assert_eq!(full.initial, incremental.initial);
    assert_eq!(full.tracked, incremental.tracked);
    assert_eq!(full.rounds, incremental.rounds);
    assert_eq!(full.snapshot, incremental.snapshot);
    assert_eq!(full.vulnerable_domains, incremental.vulnerable_domains);
}

/// Incremental rounds: identical measurement fields, ≥5× fewer probes.
/// (The ethics audit, network counters, and trace legitimately shrink
/// with the probe volume — that reduction is the feature.)
#[test]
fn incremental_rounds_cut_probe_volume_5x_with_identical_results() {
    for seed in [11u64, 2024] {
        for shards in [1usize, 4] {
            let world = build_world(seed);
            let full = CampaignBuilder::new().shards(shards).run(&world).data;
            let world = build_world(seed);
            let mut session = CampaignBuilder::new()
                .shards(shards)
                .incremental()
                .session(&world);
            session.initial_sweep();
            while session.advance_round().is_some() {}
            let stats = session.stats();
            let incremental = session.finish().data;
            measurement_fields_match(&full, &incremental);

            let total = stats.round_probes_issued + stats.round_probes_skipped;
            assert_eq!(
                total,
                (full.tracked.len() * full.rounds.len()) as u64,
                "every tracked host is answered every round"
            );
            assert!(
                total >= 5 * stats.round_probes_issued,
                "seed {seed}, {shards} shard(s): only {}/{total} probes saved",
                stats.round_probes_skipped
            );
        }
    }
}

/// Incremental mode survives kill/resume: the carried horizon state is
/// rebuilt from the checkpoint and the results stay identical.
#[test]
fn incremental_session_resumes_identically() {
    let world = build_world(2024);
    let full = CampaignBuilder::new().run(&world).data;
    let world = build_world(2024);
    let mid = Timeline::all_round_days().len() / 2;
    let resumed = run_with_kills(&world, CampaignBuilder::new().incremental(), &[0, mid]);
    measurement_fields_match(&full, &resumed.data);
}

/// `Session::full_rescan` forces the next round to probe every tracked
/// host; the round after reverts to the incremental horizon.
#[test]
fn full_rescan_escape_hatch_probes_everything_once() {
    let world = build_world(11);
    let mut session = CampaignBuilder::new().incremental().session(&world);
    session.initial_sweep();
    let tracked = session.tracked().len() as u64;

    session.full_rescan();
    session.advance_round().expect("rounds remain");
    let after_first = session.stats();
    assert_eq!(after_first.round_probes_issued, tracked);
    assert_eq!(after_first.round_probes_skipped, 0);

    session.advance_round().expect("rounds remain");
    let after_second = session.stats();
    assert!(
        after_second.round_probes_skipped > 0,
        "the incremental horizon resumes after the forced rescan"
    );
    while session.advance_round().is_some() {}
    let resumed = session.finish().data;

    let world = build_world(11);
    let full = CampaignBuilder::new().run(&world).data;
    measurement_fields_match(&full, &resumed);
}
