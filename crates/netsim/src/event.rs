//! A future-event list with stable ordering.
//!
//! The longitudinal campaign schedules thousands of events (probe rounds,
//! patch events, notification sends). [`EventQueue`] orders them by time
//! with insertion order breaking ties, which keeps runs deterministic even
//! when many events share an instant.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // and earlier insertions pop first among equal times.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, together with its instant.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The instant of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Remove and return the earliest event only if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "c");
        q.push(t(1), "a");
        q.push(t(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(t(10), "later");
        q.push(t(2), "soon");
        assert_eq!(q.pop_due(t(5)).map(|(_, e)| e), Some("soon"));
        assert_eq!(q.pop_due(t(5)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(t(10)).map(|(_, e)| e), Some("later"));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(9), ());
        q.push(t(4), ());
        assert_eq!(q.peek_time(), Some(t(4)));
    }
}
