//! Fault injection for simulated network paths.
//!
//! Following the fault-injection style of event-driven stacks such as
//! smoltcp, every link carries a [`FaultPlan`] that can drop packets or
//! refuse/abort connections with configured probabilities. The prober's
//! "SMTP Failure" and "Connection Refused" rows in Table 3 are produced by
//! these faults plus per-MTA policy.
//!
//! Beyond the per-link plan, a campaign can impose a [`FaultProfile`]:
//! a DNS-side plan (timeouts, SERVFAIL, forced truncation), an SMTP-side
//! plan (4xx tempfail, mid-session reset), and a [`FlakyWindow`] that
//! opens and closes on the simulated clock for a deterministic subset of
//! hosts. Every decision is drawn from identity-derived [`SimRng`]
//! streams, so a sharded campaign rolls exactly the dice a sequential
//! one would.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Probabilities of the various failure modes on a path or endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability that a connection attempt is refused outright
    /// (TCP RST / no listener).
    pub refuse_chance: f64,
    /// Probability that an established exchange is aborted mid-way
    /// (peer closes, network partition).
    pub abort_chance: f64,
    /// Probability that a single datagram (e.g. a DNS query) is lost.
    pub drop_chance: f64,
    /// Probability that a datagram is answered with SERVFAIL (a lame or
    /// overloaded resolver).
    pub servfail_chance: f64,
    /// Probability that a datagram response comes back truncated (TC),
    /// forcing the client to retry over TCP.
    pub truncate_chance: f64,
    /// Probability that an SMTP session is greeted with a 4xx tempfail.
    pub tempfail_chance: f64,
    /// Probability that an SMTP session is reset mid-way through.
    pub reset_chance: f64,
}

impl FaultPlan {
    /// A plan that never faults.
    pub const NONE: FaultPlan = FaultPlan {
        refuse_chance: 0.0,
        abort_chance: 0.0,
        drop_chance: 0.0,
        servfail_chance: 0.0,
        truncate_chance: 0.0,
        tempfail_chance: 0.0,
        reset_chance: 0.0,
    };

    /// A plan that always refuses connections.
    pub const REFUSE_ALL: FaultPlan = FaultPlan {
        refuse_chance: 1.0,
        ..FaultPlan::NONE
    };

    /// A DNS plan that loses each datagram with probability `p` (the
    /// resolver then burns its full retry/timeout budget).
    pub const fn dns_timeout(p: f64) -> FaultPlan {
        FaultPlan {
            drop_chance: p,
            ..FaultPlan::NONE
        }
    }

    /// A DNS plan that answers each datagram with SERVFAIL with
    /// probability `p`.
    pub const fn dns_servfail(p: f64) -> FaultPlan {
        FaultPlan {
            servfail_chance: p,
            ..FaultPlan::NONE
        }
    }

    /// A DNS plan that truncates each response with probability `p`,
    /// forcing the TCP fallback.
    pub const fn dns_truncate(p: f64) -> FaultPlan {
        FaultPlan {
            truncate_chance: p,
            ..FaultPlan::NONE
        }
    }

    /// An SMTP plan that greets each session with a 4xx tempfail with
    /// probability `p`.
    pub const fn smtp_tempfail(p: f64) -> FaultPlan {
        FaultPlan {
            tempfail_chance: p,
            ..FaultPlan::NONE
        }
    }

    /// An SMTP plan that resets each session mid-way with probability `p`.
    pub const fn smtp_reset(p: f64) -> FaultPlan {
        FaultPlan {
            reset_chance: p,
            ..FaultPlan::NONE
        }
    }

    /// Whether any failure mode has non-zero probability.
    pub fn is_active(&self) -> bool {
        self.refuse_chance > 0.0
            || self.abort_chance > 0.0
            || self.drop_chance > 0.0
            || self.servfail_chance > 0.0
            || self.truncate_chance > 0.0
            || self.tempfail_chance > 0.0
            || self.reset_chance > 0.0
    }

    /// Decide the fate of a connection attempt.
    pub fn connection_outcome(&self, rng: &mut SimRng) -> FaultOutcome {
        if rng.chance(self.refuse_chance) {
            FaultOutcome::Refused
        } else if rng.chance(self.abort_chance) {
            FaultOutcome::Aborted
        } else {
            FaultOutcome::Delivered
        }
    }

    /// Decide the fate of a single datagram. Loss takes precedence over
    /// SERVFAIL, which takes precedence over truncation; zero-probability
    /// modes consume no randomness.
    pub fn datagram_outcome(&self, rng: &mut SimRng) -> FaultOutcome {
        if rng.chance(self.drop_chance) {
            FaultOutcome::Dropped
        } else if rng.chance(self.servfail_chance) {
            FaultOutcome::ServFail
        } else if rng.chance(self.truncate_chance) {
            FaultOutcome::Truncated
        } else {
            FaultOutcome::Delivered
        }
    }

    /// Decide the fate of an SMTP session against this plan (rolled once
    /// per session, before the conversation). Tempfail takes precedence
    /// over reset; zero-probability modes consume no randomness.
    pub fn smtp_outcome(&self, rng: &mut SimRng) -> FaultOutcome {
        if rng.chance(self.tempfail_chance) {
            FaultOutcome::TempFailed
        } else if rng.chance(self.reset_chance) {
            FaultOutcome::Reset
        } else {
            FaultOutcome::Delivered
        }
    }
}

/// The decided fate of a connection, datagram, or SMTP session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The exchange proceeds normally.
    Delivered,
    /// The connection attempt was refused before any application bytes.
    Refused,
    /// The exchange started but was cut off part-way through.
    Aborted,
    /// The datagram was silently lost; the sender observes only its own
    /// timeout, which must be charged to the simulated clock.
    Dropped,
    /// The datagram was answered with SERVFAIL.
    ServFail,
    /// The datagram response came back truncated, forcing a TCP retry.
    Truncated,
    /// The SMTP session was greeted with a 4xx temporary failure.
    TempFailed,
    /// The SMTP session was reset mid-way through.
    Reset,
}

impl FaultOutcome {
    /// Whether the exchange completed cleanly on the first try.
    pub fn is_delivered(self) -> bool {
        matches!(self, FaultOutcome::Delivered)
    }
}

/// A periodic reachability window: the host answers while the window is
/// open and is dark while it is closed, keyed entirely to the simulated
/// clock so every engine sees the same openings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlakyWindow {
    /// Length of one full open+closed cycle.
    pub period: SimDuration,
    /// Fraction of each period the host is reachable (clamped to `[0, 1]`).
    pub open_fraction: f64,
    /// Per-host offset into the cycle, so hosts don't blink in unison.
    pub phase: SimDuration,
}

impl FlakyWindow {
    /// A window with the given period and open fraction, phase zero.
    pub const fn new(period: SimDuration, open_fraction: f64) -> FlakyWindow {
        FlakyWindow {
            period,
            open_fraction,
            phase: SimDuration::ZERO,
        }
    }

    /// Whether the window is open at instant `at`.
    pub fn is_open(&self, at: SimTime) -> bool {
        if self.open_fraction >= 1.0 || self.period == SimDuration::ZERO {
            return true;
        }
        if self.open_fraction <= 0.0 {
            return false;
        }
        let pos = (at.as_micros() + self.phase.as_micros()) % self.period.as_micros();
        (pos as f64) < self.open_fraction * self.period.as_micros() as f64
    }
}

/// A campaign-wide fault regime: what the probed infrastructure injects
/// on the DNS path, on the SMTP path, and which hosts blink on a
/// [`FlakyWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProfile {
    /// Faults on the MTAs' resolver path (timeouts, SERVFAIL, truncation).
    pub dns: FaultPlan,
    /// Faults on the prober's SMTP path (tempfail, mid-session reset).
    pub smtp: FaultPlan,
    /// Fraction of hosts subject to the reachability window.
    pub flaky_fraction: f64,
    /// The window template applied to affected hosts (each host draws its
    /// own phase).
    pub window: Option<FlakyWindow>,
}

impl FaultProfile {
    /// A profile that injects nothing.
    pub const NONE: FaultProfile = FaultProfile {
        dns: FaultPlan::NONE,
        smtp: FaultPlan::NONE,
        flaky_fraction: 0.0,
        window: None,
    };

    /// Whether the profile injects anything at all.
    pub fn is_active(&self) -> bool {
        self.dns.is_active()
            || self.smtp.is_active()
            || (self.flaky_fraction > 0.0 && self.window.is_some())
    }

    /// Materialise the reachability window for one host, or `None` when
    /// the host is not affected.
    ///
    /// The membership roll and the phase are drawn from a stream forked
    /// off `rng_root` by the host id alone, so the same host gets the
    /// same window on every engine and every call.
    pub fn window_for_host(&self, rng_root: &SimRng, host: u64) -> Option<FlakyWindow> {
        let template = self.window?;
        if self.flaky_fraction <= 0.0 {
            return None;
        }
        let mut rng = rng_root.fork_idx("fault-window", host);
        if !rng.chance(self.flaky_fraction) {
            return None;
        }
        let phase = SimDuration::from_micros(rng.below(template.period.as_micros().max(1)));
        Some(FlakyWindow { phase, ..template })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_always_delivers() {
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert!(FaultPlan::NONE.connection_outcome(&mut rng).is_delivered());
            assert!(FaultPlan::NONE.datagram_outcome(&mut rng).is_delivered());
            assert!(FaultPlan::NONE.smtp_outcome(&mut rng).is_delivered());
        }
        assert!(!FaultPlan::NONE.is_active());
    }

    #[test]
    fn refuse_all_always_refuses() {
        let mut rng = SimRng::new(2);
        for _ in 0..100 {
            assert_eq!(
                FaultPlan::REFUSE_ALL.connection_outcome(&mut rng),
                FaultOutcome::Refused
            );
        }
    }

    #[test]
    fn abort_rate_is_roughly_calibrated() {
        let plan = FaultPlan {
            abort_chance: 0.2,
            ..FaultPlan::NONE
        };
        let mut rng = SimRng::new(3);
        let aborted = (0..10_000)
            .filter(|_| plan.connection_outcome(&mut rng) == FaultOutcome::Aborted)
            .count();
        assert!((1_700..2_300).contains(&aborted), "aborted={aborted}");
    }

    #[test]
    fn refusal_takes_precedence_over_abort() {
        let plan = FaultPlan {
            refuse_chance: 1.0,
            abort_chance: 1.0,
            ..FaultPlan::NONE
        };
        let mut rng = SimRng::new(4);
        assert_eq!(plan.connection_outcome(&mut rng), FaultOutcome::Refused);
    }

    #[test]
    fn zero_probability_modes_consume_no_randomness() {
        // Appending new zero-chance fault modes must not shift existing
        // RNG streams: a datagram roll against a drop-only plan draws
        // exactly one value, same as before the extra modes existed.
        use rand::RngCore;
        let plan = FaultPlan::dns_timeout(0.5);
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let _ = plan.datagram_outcome(&mut a);
        let _ = b.chance(0.5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn datagram_fault_precedence() {
        let mut rng = SimRng::new(5);
        let plan = FaultPlan {
            drop_chance: 1.0,
            servfail_chance: 1.0,
            truncate_chance: 1.0,
            ..FaultPlan::NONE
        };
        assert_eq!(plan.datagram_outcome(&mut rng), FaultOutcome::Dropped);
        assert_eq!(
            FaultPlan::dns_servfail(1.0).datagram_outcome(&mut rng),
            FaultOutcome::ServFail
        );
        assert_eq!(
            FaultPlan::dns_truncate(1.0).datagram_outcome(&mut rng),
            FaultOutcome::Truncated
        );
    }

    #[test]
    fn smtp_fault_precedence() {
        let mut rng = SimRng::new(6);
        let plan = FaultPlan {
            tempfail_chance: 1.0,
            reset_chance: 1.0,
            ..FaultPlan::NONE
        };
        assert_eq!(plan.smtp_outcome(&mut rng), FaultOutcome::TempFailed);
        assert_eq!(
            FaultPlan::smtp_reset(1.0).smtp_outcome(&mut rng),
            FaultOutcome::Reset
        );
    }

    #[test]
    fn window_opens_and_closes_on_the_clock() {
        let window = FlakyWindow::new(SimDuration::from_mins(10), 0.5);
        assert!(window.is_open(SimTime::EPOCH));
        assert!(window.is_open(SimTime::EPOCH + SimDuration::from_mins(4)));
        assert!(!window.is_open(SimTime::EPOCH + SimDuration::from_mins(6)));
        assert!(window.is_open(SimTime::EPOCH + SimDuration::from_mins(11)));
        // Degenerate shapes.
        assert!(FlakyWindow::new(SimDuration::ZERO, 0.0).is_open(SimTime::EPOCH));
        assert!(FlakyWindow::new(SimDuration::from_mins(1), 1.0)
            .is_open(SimTime::EPOCH + SimDuration::from_secs(59)));
        let shut = FlakyWindow::new(SimDuration::from_mins(1), 0.0);
        assert!(!shut.is_open(SimTime::EPOCH));
        // Phase shifts the cycle.
        let shifted = FlakyWindow {
            phase: SimDuration::from_mins(5),
            ..window
        };
        assert!(!shifted.is_open(SimTime::EPOCH + SimDuration::from_mins(1)));
    }

    #[test]
    fn window_for_host_is_deterministic_and_respects_fraction() {
        let profile = FaultProfile {
            flaky_fraction: 0.5,
            window: Some(FlakyWindow::new(SimDuration::from_mins(30), 0.5)),
            ..FaultProfile::NONE
        };
        let root = SimRng::new(99);
        let affected = (0..1_000u64)
            .filter(|&h| profile.window_for_host(&root, h).is_some())
            .count();
        assert!((380..620).contains(&affected), "affected={affected}");
        for host in 0..100u64 {
            assert_eq!(
                profile.window_for_host(&root, host),
                profile.window_for_host(&root, host),
                "window materialisation must be a pure function of identity"
            );
        }
        assert!(FaultProfile::NONE.window_for_host(&root, 1).is_none());
        assert!(!FaultProfile::NONE.is_active());
        assert!(profile.is_active());
    }
}
