//! Fault injection for simulated network paths.
//!
//! Following the fault-injection style of event-driven stacks such as
//! smoltcp, every link carries a [`FaultPlan`] that can drop packets or
//! refuse/abort connections with configured probabilities. The prober's
//! "SMTP Failure" and "Connection Refused" rows in Table 3 are produced by
//! these faults plus per-MTA policy.

use crate::rng::SimRng;

/// Probabilities of the various failure modes on a path or endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability that a connection attempt is refused outright
    /// (TCP RST / no listener).
    pub refuse_chance: f64,
    /// Probability that an established exchange is aborted mid-way
    /// (peer closes, network partition).
    pub abort_chance: f64,
    /// Probability that a single datagram (e.g. a DNS query) is lost.
    pub drop_chance: f64,
}

impl FaultPlan {
    /// A plan that never faults.
    pub const NONE: FaultPlan = FaultPlan {
        refuse_chance: 0.0,
        abort_chance: 0.0,
        drop_chance: 0.0,
    };

    /// A plan that always refuses connections.
    pub const REFUSE_ALL: FaultPlan = FaultPlan {
        refuse_chance: 1.0,
        abort_chance: 0.0,
        drop_chance: 0.0,
    };

    /// Decide the fate of a connection attempt.
    pub fn connection_outcome(&self, rng: &mut SimRng) -> FaultOutcome {
        if rng.chance(self.refuse_chance) {
            FaultOutcome::Refused
        } else if rng.chance(self.abort_chance) {
            FaultOutcome::Aborted
        } else {
            FaultOutcome::Delivered
        }
    }

    /// Decide the fate of a single datagram.
    pub fn datagram_outcome(&self, rng: &mut SimRng) -> FaultOutcome {
        if rng.chance(self.drop_chance) {
            FaultOutcome::Dropped
        } else {
            FaultOutcome::Delivered
        }
    }
}

/// The decided fate of a connection or datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The exchange proceeds normally.
    Delivered,
    /// The connection attempt was refused before any application bytes.
    Refused,
    /// The exchange started but was cut off part-way through.
    Aborted,
    /// The datagram was silently lost.
    Dropped,
}

impl FaultOutcome {
    /// Whether the exchange completed.
    pub fn is_delivered(self) -> bool {
        matches!(self, FaultOutcome::Delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_always_delivers() {
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert!(FaultPlan::NONE.connection_outcome(&mut rng).is_delivered());
            assert!(FaultPlan::NONE.datagram_outcome(&mut rng).is_delivered());
        }
    }

    #[test]
    fn refuse_all_always_refuses() {
        let mut rng = SimRng::new(2);
        for _ in 0..100 {
            assert_eq!(
                FaultPlan::REFUSE_ALL.connection_outcome(&mut rng),
                FaultOutcome::Refused
            );
        }
    }

    #[test]
    fn abort_rate_is_roughly_calibrated() {
        let plan = FaultPlan {
            refuse_chance: 0.0,
            abort_chance: 0.2,
            drop_chance: 0.0,
        };
        let mut rng = SimRng::new(3);
        let aborted = (0..10_000)
            .filter(|_| plan.connection_outcome(&mut rng) == FaultOutcome::Aborted)
            .count();
        assert!((1_700..2_300).contains(&aborted), "aborted={aborted}");
    }

    #[test]
    fn refusal_takes_precedence_over_abort() {
        let plan = FaultPlan {
            refuse_chance: 1.0,
            abort_chance: 1.0,
            drop_chance: 0.0,
        };
        let mut rng = SimRng::new(4);
        assert_eq!(plan.connection_outcome(&mut rng), FaultOutcome::Refused);
    }
}
