//! Simulated time: instants, durations, and a shared clock.
//!
//! Time is kept in microseconds since the start of the simulation. The
//! resolution is fine enough for network round trips yet a four-month
//! campaign still fits comfortably in a `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A span of simulated time with microsecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// A duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// A duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// A duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// A duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// A duration of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400_000_000)
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in whole days (truncated).
    pub const fn as_days(self) -> u64 {
        self.0 / 86_400_000_000
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply the duration by an integer factor.
    pub const fn mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let micros = self.0;
        if micros >= 86_400_000_000 {
            write!(f, "{:.2}d", micros as f64 / 86_400e6)
        } else if micros >= 3_600_000_000 {
            write!(f, "{:.2}h", micros as f64 / 3_600e6)
        } else if micros >= 1_000_000 {
            write!(f, "{:.3}s", micros as f64 / 1e6)
        } else {
            write!(f, "{}us", micros)
        }
    }
}

/// An instant of simulated time, measured from the simulation epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// An instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole days since the epoch (truncated).
    pub const fn as_days(self) -> u64 {
        self.0 / 86_400_000_000
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// A shared simulation clock.
///
/// Every component of the simulation holds a clone. Advancing the clock in
/// one place is visible everywhere, which is how, say, an SMTP conversation
/// charges round-trip time that DNS cache expiry later observes.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// A fresh clock at the epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock pre-advanced to `start`.
    pub fn starting_at(start: SimTime) -> Self {
        let clock = SimClock::new();
        clock.micros.store(start.as_micros(), Ordering::Relaxed);
        clock
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.micros.load(Ordering::Relaxed))
    }

    /// Advance the clock by `d` and return the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let new = self.micros.fetch_add(d.as_micros(), Ordering::Relaxed) + d.as_micros();
        SimTime(new)
    }

    /// Move the clock forward to `t` if `t` is in the future; never moves it
    /// backwards. Returns the clock's time afterwards.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_micros();
        let mut current = self.micros.load(Ordering::Relaxed);
        while current < target {
            match self.micros.compare_exchange(
                current,
                target,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return t,
                Err(observed) => current = observed,
            }
        }
        SimTime(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(1500).as_secs(), 1);
        assert_eq!(SimDuration::from_days(2).as_days(), 2);
        assert_eq!(SimDuration::from_hours(25).as_days(), 1);
        assert_eq!(SimDuration::from_mins(90).as_secs(), 5400);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::EPOCH;
        let t1 = t0 + SimDuration::from_secs(10);
        assert_eq!(t1.since(t0), SimDuration::from_secs(10));
        assert_eq!(t0.since(t1), SimDuration::ZERO);
        assert_eq!(t1 - t0, SimDuration::from_secs(10));
        assert_eq!(t1.max(t0), t1);
    }

    #[test]
    fn clock_advances_and_is_shared() {
        let clock = SimClock::new();
        let other = clock.clone();
        clock.advance(SimDuration::from_secs(5));
        assert_eq!(other.now().as_secs(), 5);
    }

    #[test]
    fn clock_advance_to_never_rewinds() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(100));
        let now = clock.advance_to(SimTime::from_micros(1));
        assert_eq!(now.as_secs(), 100);
        clock.advance_to(SimTime::from_micros(200_000_000));
        assert_eq!(clock.now().as_secs(), 200);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_days(3)), "3.00d");
        assert_eq!(
            format!("{}", SimTime::EPOCH + SimDuration::from_secs(1)),
            "t+1.000s"
        );
    }

    #[test]
    fn saturating_and_mul() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.saturating_sub(SimDuration::from_secs(2)), SimDuration::ZERO);
        assert_eq!(d.mul(3), SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
    }
}
