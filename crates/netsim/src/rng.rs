//! Deterministic, forkable randomness.
//!
//! Reproducibility is a core requirement: an experiment run twice with the
//! same seed must produce byte-identical tables. [`SimRng`] wraps a small,
//! fast PRNG and adds *forking*: deriving an independent stream from a parent
//! seed and a string label. Each simulated entity (an MTA, a probe, a patch
//! process) forks its own stream, so iteration order and population size
//! changes never perturb unrelated entities.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source for the simulation.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

/// FNV-1a over a byte string; cheap, stable label hashing for forking.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// One round of splitmix64; decorrelates related seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SimRng {
    /// A new stream from a root seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream identified by a string label.
    ///
    /// Forking does not consume state from the parent: two forks with the
    /// same label yield identical streams regardless of what was drawn from
    /// the parent in between.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ fnv1a(label.as_bytes())))
    }

    /// Derive an independent stream identified by an index, e.g. per host.
    pub fn fork_idx(&self, label: &str, index: u64) -> SimRng {
        SimRng::new(splitmix64(
            self.seed ^ fnv1a(label.as_bytes()) ^ splitmix64(index),
        ))
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen::<f64>() < p
    }

    /// A uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        self.inner.gen_range(0..bound)
    }

    /// A uniform integer in `[lo, hi)`. Requires `lo < hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi");
        self.inner.gen_range(lo..hi)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick() requires a non-empty slice");
        let idx = self.below(items.len() as u64) as usize;
        &items[idx]
    }

    /// Pick an index according to non-negative weights. Returns `None` when
    /// every weight is zero or the slice is empty.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.unit() * total;
        for (idx, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(idx);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// A random lowercase alphanumeric string of length `len`, as used for
    /// the paper's unique probe identifiers (`mmj7yzdm0tbk` style).
    pub fn alnum_label(&mut self, len: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        (0..len)
            .map(|_| ALPHABET[self.below(ALPHABET.len() as u64) as usize] as char)
            .collect()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = SimRng::new(7);
        let mut consumed = parent.clone();
        for _ in 0..10 {
            consumed.next_u64();
        }
        let mut f1 = parent.fork("mta");
        let mut f2 = consumed.fork("mta");
        for _ in 0..20 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let parent = SimRng::new(7);
        let a: Vec<u64> = {
            let mut r = parent.fork("a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = parent.fork("b");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn fork_idx_streams_differ_per_index() {
        let parent = SimRng::new(1);
        let mut a = parent.fork_idx("host", 0);
        let mut b = parent.fork_idx("host", 1);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn pick_weighted_respects_zero_weights() {
        let mut r = SimRng::new(5);
        for _ in 0..100 {
            let idx = r.pick_weighted(&[0.0, 1.0, 0.0]).unwrap();
            assert_eq!(idx, 1);
        }
        assert_eq!(r.pick_weighted(&[0.0, 0.0]), None);
        assert_eq!(r.pick_weighted(&[]), None);
    }

    #[test]
    fn alnum_label_shape() {
        let mut r = SimRng::new(9);
        let s = r.alnum_label(12);
        assert_eq!(s.len(), 12);
        assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = SimRng::new(21);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let x = r.range(3, 9);
            assert!((3..9).contains(&x));
        }
    }
}
