//! A simulated network path combining latency, faults, and metrics.
//!
//! The higher layers model protocol exchanges synchronously — an SMTP
//! conversation is a sequence of request/response turns — but every turn is
//! *charged* to the shared clock through a [`Link`], and every attempt rolls
//! the link's [`FaultPlan`]. That keeps the simulation deterministic and
//! sans-IO while still producing realistic campaign timelines.

use crate::fault::{FaultOutcome, FaultPlan};
use crate::latency::LatencyModel;
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimClock, SimDuration};

/// What a caller observed when exercising a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkObservation {
    /// The exchange completed; time was charged.
    Ok,
    /// The connection was refused before any application data.
    Refused,
    /// The exchange was cut off mid-way; partial time was charged.
    Aborted,
    /// The datagram was lost; a timeout was charged.
    TimedOut,
    /// The datagram was answered with SERVFAIL; one RTT was charged.
    ServFail,
    /// The datagram response came back truncated (TC); one RTT was
    /// charged and the caller must retry over TCP.
    Truncated,
}

impl LinkObservation {
    /// Whether the exchange fully completed.
    pub fn is_ok(self) -> bool {
        matches!(self, LinkObservation::Ok)
    }
}

/// A unidirectional network path from the measurement host to a peer.
#[derive(Debug, Clone)]
pub struct Link {
    latency: LatencyModel,
    faults: FaultPlan,
    clock: SimClock,
    metrics: Metrics,
}

impl Link {
    /// A link with the given latency and fault behaviour.
    pub fn new(latency: LatencyModel, faults: FaultPlan, clock: SimClock, metrics: Metrics) -> Self {
        Link {
            latency,
            faults,
            clock,
            metrics,
        }
    }

    /// A fault-free zero-latency link for tests.
    pub fn ideal(clock: SimClock) -> Self {
        Link::new(LatencyModel::ZERO, FaultPlan::NONE, clock, Metrics::new())
    }

    /// The link's fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The link's latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Replace the link's fault plan (e.g. when a host starts refusing
    /// connections after blacklisting the prober).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The shared clock this link charges.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Attempt to open a connection: charges one RTT (the TCP handshake) and
    /// rolls the refuse/abort chances.
    pub fn connect(&self, rng: &mut SimRng) -> LinkObservation {
        self.metrics.inc_connections_attempted();
        self.clock.advance(self.latency.sample_rtt(rng));
        match self.faults.connection_outcome(rng) {
            FaultOutcome::Refused => {
                self.metrics.inc_connections_refused();
                LinkObservation::Refused
            }
            FaultOutcome::Aborted => {
                self.metrics.inc_connections_aborted();
                LinkObservation::Aborted
            }
            _ => LinkObservation::Ok,
        }
    }

    /// Charge one request/response turn of `bytes` application bytes.
    pub fn turn(&self, rng: &mut SimRng, bytes: usize) -> LinkObservation {
        self.metrics.add_bytes_sent(bytes as u64);
        self.clock.advance(self.latency.sample_rtt(rng));
        if rng.chance(self.faults.abort_chance) {
            self.metrics.inc_connections_aborted();
            LinkObservation::Aborted
        } else {
            LinkObservation::Ok
        }
    }

    /// Send one datagram and wait for its reply (e.g. a DNS query): charges
    /// one RTT on success or `timeout` when the datagram is dropped.
    pub fn datagram(&self, rng: &mut SimRng, bytes: usize, timeout: SimDuration) -> LinkObservation {
        self.metrics.inc_datagrams_sent();
        self.metrics.add_bytes_sent(bytes as u64);
        match self.faults.datagram_outcome(rng) {
            FaultOutcome::Dropped => {
                self.metrics.inc_datagrams_dropped();
                self.clock.advance(timeout);
                LinkObservation::TimedOut
            }
            FaultOutcome::ServFail => {
                self.metrics.inc_dns_servfails();
                self.clock.advance(self.latency.sample_rtt(rng));
                LinkObservation::ServFail
            }
            FaultOutcome::Truncated => {
                self.clock.advance(self.latency.sample_rtt(rng));
                LinkObservation::Truncated
            }
            _ => {
                self.clock.advance(self.latency.sample_rtt(rng));
                LinkObservation::Ok
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn ideal_link_charges_no_time() {
        let clock = SimClock::new();
        let link = Link::ideal(clock.clone());
        let mut rng = SimRng::new(1);
        assert!(link.connect(&mut rng).is_ok());
        assert!(link.turn(&mut rng, 100).is_ok());
        assert_eq!(clock.now(), SimTime::EPOCH);
    }

    #[test]
    fn latency_is_charged_to_shared_clock() {
        let clock = SimClock::new();
        let link = Link::new(
            LatencyModel::new(SimDuration::from_millis(10), SimDuration::ZERO),
            FaultPlan::NONE,
            clock.clone(),
            Metrics::new(),
        );
        let mut rng = SimRng::new(2);
        link.connect(&mut rng);
        // One RTT = 2 * 10ms.
        assert_eq!(clock.now().as_micros(), 20_000);
        link.turn(&mut rng, 10);
        assert_eq!(clock.now().as_micros(), 40_000);
    }

    #[test]
    fn refused_connection_is_counted() {
        let clock = SimClock::new();
        let metrics = Metrics::new();
        let link = Link::new(LatencyModel::ZERO, FaultPlan::REFUSE_ALL, clock, metrics.clone());
        let mut rng = SimRng::new(3);
        assert_eq!(link.connect(&mut rng), LinkObservation::Refused);
        assert_eq!(metrics.connections_attempted(), 1);
        assert_eq!(metrics.connections_refused(), 1);
    }

    #[test]
    fn dropped_datagram_charges_timeout() {
        let clock = SimClock::new();
        let metrics = Metrics::new();
        let plan = FaultPlan {
            drop_chance: 1.0,
            ..FaultPlan::NONE
        };
        let link = Link::new(LatencyModel::ZERO, plan, clock.clone(), metrics.clone());
        let mut rng = SimRng::new(4);
        let obs = link.datagram(&mut rng, 64, SimDuration::from_secs(5));
        assert_eq!(obs, LinkObservation::TimedOut);
        assert_eq!(clock.now().as_secs(), 5);
        assert_eq!(metrics.datagrams_dropped(), 1);
    }

    #[test]
    fn injected_servfail_and_truncation_are_observed() {
        let clock = SimClock::new();
        let metrics = Metrics::new();
        let mut rng = SimRng::new(9);
        let servfail = Link::new(
            LatencyModel::ZERO,
            FaultPlan::dns_servfail(1.0),
            clock.clone(),
            metrics.clone(),
        );
        assert_eq!(
            servfail.datagram(&mut rng, 64, SimDuration::from_secs(3)),
            LinkObservation::ServFail
        );
        assert_eq!(metrics.dns_servfails(), 1);
        // SERVFAIL is an answer, not a loss: no timeout is charged.
        assert_eq!(clock.now(), SimTime::EPOCH);
        let truncating = Link::new(
            LatencyModel::ZERO,
            FaultPlan::dns_truncate(1.0),
            clock.clone(),
            metrics.clone(),
        );
        assert_eq!(
            truncating.datagram(&mut rng, 64, SimDuration::from_secs(3)),
            LinkObservation::Truncated
        );
        assert_eq!(metrics.datagrams_dropped(), 0);
    }

    #[test]
    fn set_faults_changes_behaviour() {
        let clock = SimClock::new();
        let mut link = Link::ideal(clock);
        let mut rng = SimRng::new(5);
        assert!(link.connect(&mut rng).is_ok());
        link.set_faults(FaultPlan::REFUSE_ALL);
        assert_eq!(link.connect(&mut rng), LinkObservation::Refused);
    }
}
