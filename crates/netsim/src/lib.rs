//! Deterministic discrete-event simulation substrate for the SPFail reproduction.
//!
//! The paper's measurement ran against the live Internet over roughly four
//! months. Reproducing it requires a clock that can be advanced by months in
//! microseconds, a network whose latency and failures are repeatable, and a
//! random source that can be forked per simulated entity so that adding or
//! removing one host never perturbs the behaviour of another.
//!
//! This crate provides those pieces and nothing else:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time.
//! * [`SimClock`] — a cheaply clonable shared clock.
//! * [`SimRng`] — a seeded, forkable deterministic random source.
//! * [`EventQueue`] — a stable-ordered future-event list.
//! * [`LatencyModel`], [`FaultPlan`], [`Link`] — network path behaviour.
//! * [`Metrics`] — cheap counters for ablation benchmarks.
//!
//! Higher layers (DNS, SMTP, the prober) are written sans-IO against these
//! types; no real sockets are ever opened.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod fault;
pub mod latency;
pub mod metrics;
pub mod net;
pub mod rng;
pub mod time;

pub use error::ProbeError;
pub use event::EventQueue;
pub use fault::{FaultOutcome, FaultPlan, FaultProfile, FlakyWindow};
pub use latency::LatencyModel;
pub use metrics::{Histogram, Metrics, MetricsSnapshot, PolicyCacheStats};
pub use net::{Link, LinkObservation};
pub use rng::SimRng;
pub use time::{SimClock, SimDuration, SimTime};
