//! Cheap shared counters for instrumentation and ablation benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters shared across the simulation.
///
/// A `Metrics` handle is cheap to clone; all clones observe the same
/// counters. The ablation benchmarks use these to compare, e.g., DNS query
/// volume with and without resolver caching.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    connections_attempted: AtomicU64,
    connections_refused: AtomicU64,
    connections_aborted: AtomicU64,
    datagrams_sent: AtomicU64,
    datagrams_dropped: AtomicU64,
    bytes_sent: AtomicU64,
    dns_queries: AtomicU64,
    dns_cache_hits: AtomicU64,
    dns_truncated: AtomicU64,
    dns_timeouts: AtomicU64,
    dns_servfails: AtomicU64,
    smtp_tempfails: AtomicU64,
    connection_resets: AtomicU64,
    window_closed_probes: AtomicU64,
    probe_retries: AtomicU64,
    probes_recovered: AtomicU64,
}

macro_rules! counter {
    ($inc:ident, $get:ident, $field:ident, $doc:literal) => {
        #[doc = concat!("Increment the number of ", $doc, ".")]
        pub fn $inc(&self) {
            self.inner.$field.fetch_add(1, Ordering::Relaxed);
        }

        #[doc = concat!("The number of ", $doc, " so far.")]
        pub fn $get(&self) -> u64 {
            self.inner.$field.load(Ordering::Relaxed)
        }
    };
}

impl Metrics {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Metrics::default()
    }

    counter!(
        inc_connections_attempted,
        connections_attempted,
        connections_attempted,
        "connection attempts"
    );
    counter!(
        inc_connections_refused,
        connections_refused,
        connections_refused,
        "refused connections"
    );
    counter!(
        inc_connections_aborted,
        connections_aborted,
        connections_aborted,
        "aborted connections"
    );
    counter!(inc_datagrams_sent, datagrams_sent, datagrams_sent, "datagrams sent");
    counter!(
        inc_datagrams_dropped,
        datagrams_dropped,
        datagrams_dropped,
        "datagrams dropped"
    );
    counter!(inc_dns_queries, dns_queries, dns_queries, "DNS queries issued");
    counter!(inc_dns_cache_hits, dns_cache_hits, dns_cache_hits, "DNS cache hits");
    counter!(
        inc_dns_truncated,
        dns_truncated,
        dns_truncated,
        "truncated DNS responses retried over TCP"
    );
    counter!(
        inc_dns_timeouts,
        dns_timeouts,
        dns_timeouts,
        "DNS lookups that exhausted every retry and timed out"
    );
    counter!(
        inc_dns_servfails,
        dns_servfails,
        dns_servfails,
        "DNS queries answered with an injected SERVFAIL"
    );
    counter!(
        inc_smtp_tempfails,
        smtp_tempfails,
        smtp_tempfails,
        "SMTP sessions greeted with an injected 4xx tempfail"
    );
    counter!(
        inc_connection_resets,
        connection_resets,
        connection_resets,
        "SMTP sessions reset mid-way by an injected fault"
    );
    counter!(
        inc_window_closed_probes,
        window_closed_probes,
        window_closed_probes,
        "probes that found the host's reachability window closed"
    );
    counter!(inc_probe_retries, probe_retries, probe_retries, "probe retry attempts");
    counter!(
        inc_probes_recovered,
        probes_recovered,
        probes_recovered,
        "probes whose retries recovered a conclusive measurement"
    );

    /// Add `n` bytes to the sent-bytes counter.
    pub fn add_bytes_sent(&self, n: u64) {
        self.inner.bytes_sent.fetch_add(n, Ordering::Relaxed);
    }

    /// Total bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent.load(Ordering::Relaxed)
    }

    /// Add a snapshot's counts onto these counters, field by field.
    ///
    /// This is the restore half of [`Metrics::snapshot`]: applying a
    /// snapshot to fresh counters reproduces the counters it was taken
    /// from, which is what a resumed campaign needs to continue counting
    /// where the checkpointed one stopped.
    pub fn add_snapshot(&self, s: &MetricsSnapshot) {
        let MetricsSnapshot {
            connections_attempted,
            connections_refused,
            connections_aborted,
            datagrams_sent,
            datagrams_dropped,
            bytes_sent,
            dns_queries,
            dns_cache_hits,
            dns_truncated,
            dns_timeouts,
            dns_servfails,
            smtp_tempfails,
            connection_resets,
            window_closed_probes,
            probe_retries,
            probes_recovered,
        } = *s;
        let adds = [
            (&self.inner.connections_attempted, connections_attempted),
            (&self.inner.connections_refused, connections_refused),
            (&self.inner.connections_aborted, connections_aborted),
            (&self.inner.datagrams_sent, datagrams_sent),
            (&self.inner.datagrams_dropped, datagrams_dropped),
            (&self.inner.bytes_sent, bytes_sent),
            (&self.inner.dns_queries, dns_queries),
            (&self.inner.dns_cache_hits, dns_cache_hits),
            (&self.inner.dns_truncated, dns_truncated),
            (&self.inner.dns_timeouts, dns_timeouts),
            (&self.inner.dns_servfails, dns_servfails),
            (&self.inner.smtp_tempfails, smtp_tempfails),
            (&self.inner.connection_resets, connection_resets),
            (&self.inner.window_closed_probes, window_closed_probes),
            (&self.inner.probe_retries, probe_retries),
            (&self.inner.probes_recovered, probes_recovered),
        ];
        for (counter, n) in adds {
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter, as a plain value that can
    /// be merged with snapshots from other shards.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections_attempted: self.connections_attempted(),
            connections_refused: self.connections_refused(),
            connections_aborted: self.connections_aborted(),
            datagrams_sent: self.datagrams_sent(),
            datagrams_dropped: self.datagrams_dropped(),
            bytes_sent: self.bytes_sent(),
            dns_queries: self.dns_queries(),
            dns_cache_hits: self.dns_cache_hits(),
            dns_truncated: self.dns_truncated(),
            dns_timeouts: self.dns_timeouts(),
            dns_servfails: self.dns_servfails(),
            smtp_tempfails: self.smtp_tempfails(),
            connection_resets: self.connection_resets(),
            window_closed_probes: self.window_closed_probes(),
            probe_retries: self.probe_retries(),
            probes_recovered: self.probes_recovered(),
        }
    }
}

/// A plain-value copy of [`Metrics`], produced per shard and merged into
/// campaign totals. Merging is associative and commutative (every field
/// is a sum), so the merge order of shard snapshots never matters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Connection attempts.
    pub connections_attempted: u64,
    /// Refused connections.
    pub connections_refused: u64,
    /// Aborted connections.
    pub connections_aborted: u64,
    /// Datagrams sent.
    pub datagrams_sent: u64,
    /// Datagrams dropped.
    pub datagrams_dropped: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// DNS queries issued.
    pub dns_queries: u64,
    /// DNS cache hits.
    pub dns_cache_hits: u64,
    /// Truncated DNS responses retried over TCP.
    pub dns_truncated: u64,
    /// DNS lookups that exhausted every retry and timed out.
    pub dns_timeouts: u64,
    /// DNS queries answered with an injected SERVFAIL.
    pub dns_servfails: u64,
    /// SMTP sessions greeted with an injected 4xx tempfail.
    pub smtp_tempfails: u64,
    /// SMTP sessions reset mid-way by an injected fault.
    pub connection_resets: u64,
    /// Probes that found the host's reachability window closed.
    pub window_closed_probes: u64,
    /// Probe retry attempts.
    pub probe_retries: u64,
    /// Probes whose retries recovered a conclusive measurement.
    pub probes_recovered: u64,
}

impl MetricsSnapshot {
    /// Combine two snapshots field-by-field.
    #[must_use]
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            connections_attempted: self.connections_attempted + other.connections_attempted,
            connections_refused: self.connections_refused + other.connections_refused,
            connections_aborted: self.connections_aborted + other.connections_aborted,
            datagrams_sent: self.datagrams_sent + other.datagrams_sent,
            datagrams_dropped: self.datagrams_dropped + other.datagrams_dropped,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            dns_queries: self.dns_queries + other.dns_queries,
            dns_cache_hits: self.dns_cache_hits + other.dns_cache_hits,
            dns_truncated: self.dns_truncated + other.dns_truncated,
            dns_timeouts: self.dns_timeouts + other.dns_timeouts,
            dns_servfails: self.dns_servfails + other.dns_servfails,
            smtp_tempfails: self.smtp_tempfails + other.smtp_tempfails,
            connection_resets: self.connection_resets + other.connection_resets,
            window_closed_probes: self.window_closed_probes + other.window_closed_probes,
            probe_retries: self.probe_retries + other.probe_retries,
            probes_recovered: self.probes_recovered + other.probes_recovered,
        }
    }
}

/// Counters for the compiled-policy evaluation cache.
///
/// Deliberately *not* part of [`MetricsSnapshot`]: the cache is an
/// execution strategy, not a measurement. `MetricsSnapshot` feeds
/// `CampaignData` and checkpoints, which must stay bit-for-bit identical
/// whether the cache is on or off (and whose wire format pins exactly the
/// sixteen network counters). Cache efficiency is reported separately,
/// per shard, and merged like any other shard-local tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyCacheStats {
    /// Evaluations answered from a memoized entry.
    pub hits: u64,
    /// Evaluations that ran live (and possibly populated the cache).
    pub misses: u64,
    /// Distinct compiled policies interned, keyed by canonical text.
    pub interned: u64,
}

impl PolicyCacheStats {
    /// Combine two shard tallies field-by-field.
    #[must_use]
    pub fn merge(&self, other: &PolicyCacheStats) -> PolicyCacheStats {
        PolicyCacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            interned: self.interned + other.interned,
        }
    }

    /// Hit rate over all evaluations, `None` when nothing ran.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples whose value has bit-length `i` (bucket 0
/// holds zeros, bucket 1 holds `1`, bucket 2 holds `2..=3`, and so on) —
/// coarse, but allocation-free and mergeable. Shards record durations or
/// sizes locally and the campaign merges the per-shard histograms; merge
/// is associative and commutative, so shard order never matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[(64 - value.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any were recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any were recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value, if any were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Count in bucket `i` (samples of bit-length `i`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Combine two histograms bucket-by-bucket.
    #[must_use]
    pub fn merge(&self, other: &Histogram) -> Histogram {
        let mut buckets = [0u64; 65];
        for (out, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(other.buckets.iter()))
        {
            *out = a + b;
        }
        Histogram {
            buckets,
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_counters() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.inc_dns_queries();
        m2.inc_dns_queries();
        assert_eq!(m.dns_queries(), 2);
        m.add_bytes_sent(100);
        assert_eq!(m2.bytes_sent(), 100);
    }

    #[test]
    fn counters_start_at_zero() {
        let m = Metrics::new();
        assert_eq!(m.connections_attempted(), 0);
        assert_eq!(m.connections_refused(), 0);
        assert_eq!(m.connections_aborted(), 0);
        assert_eq!(m.datagrams_sent(), 0);
        assert_eq!(m.datagrams_dropped(), 0);
        assert_eq!(m.dns_cache_hits(), 0);
    }

    fn snapshot_sample(k: u64) -> MetricsSnapshot {
        let m = Metrics::new();
        for _ in 0..k {
            m.inc_dns_queries();
            m.inc_connections_attempted();
        }
        for _ in 0..(k * 3 % 7) {
            m.inc_datagrams_sent();
        }
        m.add_bytes_sent(k * 131);
        m.snapshot()
    }

    fn histogram_sample(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new();
        m.inc_dns_queries();
        m.inc_dns_cache_hits();
        m.add_bytes_sent(42);
        let s = m.snapshot();
        assert_eq!(s.dns_queries, 1);
        assert_eq!(s.dns_cache_hits, 1);
        assert_eq!(s.bytes_sent, 42);
        assert_eq!(s.connections_refused, 0);
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative() {
        let (a, b, c) = (snapshot_sample(3), snapshot_sample(5), snapshot_sample(11));
        assert_eq!(a.merge(&b.merge(&c)), a.merge(&b).merge(&c));
        assert_eq!(a.merge(&b), b.merge(&a));
        // Identity: merging with a fresh snapshot changes nothing.
        assert_eq!(a.merge(&MetricsSnapshot::default()), a);
    }

    /// A snapshot with a distinct value in every field, so a swapped or
    /// dropped field in `snapshot`/`merge` cannot cancel out.
    fn distinct_snapshot(base: u64) -> MetricsSnapshot {
        let m = Metrics::new();
        let fields: [&dyn Fn(&Metrics); 15] = [
            &Metrics::inc_connections_attempted,
            &Metrics::inc_connections_refused,
            &Metrics::inc_connections_aborted,
            &Metrics::inc_datagrams_sent,
            &Metrics::inc_datagrams_dropped,
            &Metrics::inc_dns_queries,
            &Metrics::inc_dns_cache_hits,
            &Metrics::inc_dns_truncated,
            &Metrics::inc_dns_timeouts,
            &Metrics::inc_dns_servfails,
            &Metrics::inc_smtp_tempfails,
            &Metrics::inc_connection_resets,
            &Metrics::inc_window_closed_probes,
            &Metrics::inc_probe_retries,
            &Metrics::inc_probes_recovered,
        ];
        for (i, inc) in fields.iter().enumerate() {
            for _ in 0..(base + i as u64) {
                inc(&m);
            }
        }
        m.add_bytes_sent(base + fields.len() as u64);
        m.snapshot()
    }

    /// Every snapshot field reflects its counter, and `merge` sums every
    /// field. The exhaustive (no `..`) destructurings make adding a
    /// `MetricsSnapshot` field without extending this test a compile
    /// error.
    #[test]
    fn snapshot_and_merge_cover_every_field() {
        let a = distinct_snapshot(100);
        let MetricsSnapshot {
            connections_attempted,
            connections_refused,
            connections_aborted,
            datagrams_sent,
            datagrams_dropped,
            bytes_sent,
            dns_queries,
            dns_cache_hits,
            dns_truncated,
            dns_timeouts,
            dns_servfails,
            smtp_tempfails,
            connection_resets,
            window_closed_probes,
            probe_retries,
            probes_recovered,
        } = a;
        // Field order here matches the counter order in `distinct_snapshot`.
        let expected = [
            connections_attempted,
            connections_refused,
            connections_aborted,
            datagrams_sent,
            datagrams_dropped,
            dns_queries,
            dns_cache_hits,
            dns_truncated,
            dns_timeouts,
            dns_servfails,
            smtp_tempfails,
            connection_resets,
            window_closed_probes,
            probe_retries,
            probes_recovered,
        ];
        for (i, &got) in expected.iter().enumerate() {
            assert_eq!(got, 100 + i as u64, "counter {i} mis-snapshotted");
        }
        assert_eq!(bytes_sent, 100 + expected.len() as u64);

        let b = distinct_snapshot(1000);
        let merged = a.merge(&b);
        let MetricsSnapshot {
            connections_attempted,
            connections_refused,
            connections_aborted,
            datagrams_sent,
            datagrams_dropped,
            bytes_sent,
            dns_queries,
            dns_cache_hits,
            dns_truncated,
            dns_timeouts,
            dns_servfails,
            smtp_tempfails,
            connection_resets,
            window_closed_probes,
            probe_retries,
            probes_recovered,
        } = merged;
        let sums = [
            (connections_attempted, a.connections_attempted, b.connections_attempted),
            (connections_refused, a.connections_refused, b.connections_refused),
            (connections_aborted, a.connections_aborted, b.connections_aborted),
            (datagrams_sent, a.datagrams_sent, b.datagrams_sent),
            (datagrams_dropped, a.datagrams_dropped, b.datagrams_dropped),
            (bytes_sent, a.bytes_sent, b.bytes_sent),
            (dns_queries, a.dns_queries, b.dns_queries),
            (dns_cache_hits, a.dns_cache_hits, b.dns_cache_hits),
            (dns_truncated, a.dns_truncated, b.dns_truncated),
            (dns_timeouts, a.dns_timeouts, b.dns_timeouts),
            (dns_servfails, a.dns_servfails, b.dns_servfails),
            (smtp_tempfails, a.smtp_tempfails, b.smtp_tempfails),
            (connection_resets, a.connection_resets, b.connection_resets),
            (window_closed_probes, a.window_closed_probes, b.window_closed_probes),
            (probe_retries, a.probe_retries, b.probe_retries),
            (probes_recovered, a.probes_recovered, b.probes_recovered),
        ];
        for (i, &(got, lhs, rhs)) in sums.iter().enumerate() {
            assert_eq!(got, lhs + rhs, "field {i} not summed by merge");
        }
    }

    /// `add_snapshot` onto fresh counters reproduces the source, and it
    /// composes: applying two snapshots equals applying their merge.
    #[test]
    fn add_snapshot_restores_counters() {
        let a = distinct_snapshot(100);
        let fresh = Metrics::new();
        fresh.add_snapshot(&a);
        assert_eq!(fresh.snapshot(), a);
        let b = distinct_snapshot(1000);
        fresh.add_snapshot(&b);
        assert_eq!(fresh.snapshot(), a.merge(&b));
    }

    #[test]
    fn histogram_records_bucketed_stats() {
        let h = histogram_sample(&[0, 1, 2, 3, 7, 1024]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1037);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        assert_eq!(h.bucket(0), 1); // the zero
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2 and 3
        assert_eq!(h.bucket(3), 1); // 7
        assert_eq!(h.bucket(11), 1); // 1024
        assert!((h.mean().expect("non-empty") - 1037.0 / 6.0).abs() < 1e-9);
        assert_eq!(Histogram::new().min(), None);
        assert_eq!(Histogram::new().mean(), None);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let a = histogram_sample(&[1, 2, 3]);
        let b = histogram_sample(&[0, 7, 9000]);
        let c = histogram_sample(&[u64::MAX, 5]);
        assert_eq!(a.merge(&b.merge(&c)), a.merge(&b).merge(&c));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&Histogram::new()), a);
        // Merge equals recording the concatenation of the sample sets.
        let all = histogram_sample(&[1, 2, 3, 0, 7, 9000, u64::MAX, 5]);
        assert_eq!(a.merge(&b).merge(&c), all);
    }
}
