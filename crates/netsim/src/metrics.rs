//! Cheap shared counters for instrumentation and ablation benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters shared across the simulation.
///
/// A `Metrics` handle is cheap to clone; all clones observe the same
/// counters. The ablation benchmarks use these to compare, e.g., DNS query
/// volume with and without resolver caching.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    connections_attempted: AtomicU64,
    connections_refused: AtomicU64,
    connections_aborted: AtomicU64,
    datagrams_sent: AtomicU64,
    datagrams_dropped: AtomicU64,
    bytes_sent: AtomicU64,
    dns_queries: AtomicU64,
    dns_cache_hits: AtomicU64,
    dns_truncated: AtomicU64,
}

macro_rules! counter {
    ($inc:ident, $get:ident, $field:ident, $doc:literal) => {
        #[doc = concat!("Increment the number of ", $doc, ".")]
        pub fn $inc(&self) {
            self.inner.$field.fetch_add(1, Ordering::Relaxed);
        }

        #[doc = concat!("The number of ", $doc, " so far.")]
        pub fn $get(&self) -> u64 {
            self.inner.$field.load(Ordering::Relaxed)
        }
    };
}

impl Metrics {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Metrics::default()
    }

    counter!(
        inc_connections_attempted,
        connections_attempted,
        connections_attempted,
        "connection attempts"
    );
    counter!(
        inc_connections_refused,
        connections_refused,
        connections_refused,
        "refused connections"
    );
    counter!(
        inc_connections_aborted,
        connections_aborted,
        connections_aborted,
        "aborted connections"
    );
    counter!(inc_datagrams_sent, datagrams_sent, datagrams_sent, "datagrams sent");
    counter!(
        inc_datagrams_dropped,
        datagrams_dropped,
        datagrams_dropped,
        "datagrams dropped"
    );
    counter!(inc_dns_queries, dns_queries, dns_queries, "DNS queries issued");
    counter!(inc_dns_cache_hits, dns_cache_hits, dns_cache_hits, "DNS cache hits");
    counter!(
        inc_dns_truncated,
        dns_truncated,
        dns_truncated,
        "truncated DNS responses retried over TCP"
    );

    /// Add `n` bytes to the sent-bytes counter.
    pub fn add_bytes_sent(&self, n: u64) {
        self.inner.bytes_sent.fetch_add(n, Ordering::Relaxed);
    }

    /// Total bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_counters() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.inc_dns_queries();
        m2.inc_dns_queries();
        assert_eq!(m.dns_queries(), 2);
        m.add_bytes_sent(100);
        assert_eq!(m2.bytes_sent(), 100);
    }

    #[test]
    fn counters_start_at_zero() {
        let m = Metrics::new();
        assert_eq!(m.connections_attempted(), 0);
        assert_eq!(m.connections_refused(), 0);
        assert_eq!(m.connections_aborted(), 0);
        assert_eq!(m.datagrams_sent(), 0);
        assert_eq!(m.datagrams_dropped(), 0);
        assert_eq!(m.dns_cache_hits(), 0);
    }
}
