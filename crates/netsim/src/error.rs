//! The one probe-failure vocabulary shared across the stack.
//!
//! The DNS resolver, the SMTP client, and the prober each conclude
//! failures in their own layer's terms (`LookupError`, a transactional
//! outcome, a refused connection). [`ProbeError`] is the common
//! denominator the retry policy operates on: every layer's failure maps
//! into it, and [`ProbeError::is_transient`] is the single contract
//! deciding what a retry may recover.

use std::error::Error;
use std::fmt;

/// Why a probe failed to produce a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeError {
    /// A DNS lookup exhausted its retries without an answer.
    DnsTimeout,
    /// A DNS lookup was answered with SERVFAIL.
    DnsServFail,
    /// No authority exists for the queried name (a lame delegation), or
    /// the lookup failed structurally (e.g. a CNAME chain too long).
    DnsLame,
    /// The TCP connection was refused outright.
    ConnectRefused,
    /// The connection attempt (or the host's reachability window) timed
    /// out.
    ConnectTimeout,
    /// The connection was reset mid-session.
    ConnectionReset,
    /// The server answered with a 4xx temporary failure.
    SmtpTempFail(u16),
    /// The server answered with a 5xx permanent rejection.
    SmtpReject(u16),
}

impl ProbeError {
    /// Whether a later retry could plausibly succeed. Permanent
    /// rejections (refused connections, 5xx replies, lame delegations)
    /// are final; everything else is weather.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            ProbeError::DnsTimeout
                | ProbeError::DnsServFail
                | ProbeError::ConnectTimeout
                | ProbeError::ConnectionReset
                | ProbeError::SmtpTempFail(_)
        )
    }
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::DnsTimeout => write!(f, "DNS lookup timed out"),
            ProbeError::DnsServFail => write!(f, "DNS lookup answered SERVFAIL"),
            ProbeError::DnsLame => write!(f, "DNS delegation is lame or malformed"),
            ProbeError::ConnectRefused => write!(f, "connection refused"),
            ProbeError::ConnectTimeout => write!(f, "connection timed out"),
            ProbeError::ConnectionReset => write!(f, "connection reset mid-session"),
            ProbeError::SmtpTempFail(code) => write!(f, "SMTP temporary failure ({code})"),
            ProbeError::SmtpReject(code) => write!(f, "SMTP rejection ({code})"),
        }
    }
}

impl Error for ProbeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_contract() {
        assert!(ProbeError::DnsTimeout.is_transient());
        assert!(ProbeError::DnsServFail.is_transient());
        assert!(ProbeError::ConnectTimeout.is_transient());
        assert!(ProbeError::ConnectionReset.is_transient());
        assert!(ProbeError::SmtpTempFail(451).is_transient());
        assert!(!ProbeError::DnsLame.is_transient());
        assert!(!ProbeError::ConnectRefused.is_transient());
        assert!(!ProbeError::SmtpReject(554).is_transient());
    }

    #[test]
    fn display_is_informative() {
        assert!(ProbeError::SmtpTempFail(451).to_string().contains("451"));
        assert!(ProbeError::DnsTimeout.to_string().contains("timed out"));
    }
}
