//! Network path latency models.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A simple latency model: a fixed base one-way delay plus uniform jitter.
///
/// The paper's probes care about latency only insofar as timeouts and the
/// campaign's wall-clock budget; a base+jitter model captures that without
/// pretending to model queueing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Minimum one-way delay.
    pub base: SimDuration,
    /// Maximum additional uniformly distributed delay.
    pub jitter: SimDuration,
}

impl LatencyModel {
    /// A model with the given base and jitter.
    pub const fn new(base: SimDuration, jitter: SimDuration) -> Self {
        LatencyModel { base, jitter }
    }

    /// A zero-latency model, useful in unit tests.
    pub const ZERO: LatencyModel = LatencyModel {
        base: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
    };

    /// A plausible wide-area path: 40 ms ± 30 ms one-way.
    pub const WAN: LatencyModel = LatencyModel {
        base: SimDuration::from_millis(40),
        jitter: SimDuration::from_millis(30),
    };

    /// A plausible same-region path: 5 ms ± 5 ms one-way.
    pub const REGIONAL: LatencyModel = LatencyModel {
        base: SimDuration::from_millis(5),
        jitter: SimDuration::from_millis(5),
    };

    /// Sample a one-way delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        if self.jitter == SimDuration::ZERO {
            return self.base;
        }
        self.base + SimDuration::from_micros(rng.below(self.jitter.as_micros().max(1)))
    }

    /// Sample a round-trip delay (two independent one-way samples).
    pub fn sample_rtt(&self, rng: &mut SimRng) -> SimDuration {
        self.sample(rng) + self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_zero() {
        let mut rng = SimRng::new(1);
        assert_eq!(LatencyModel::ZERO.sample(&mut rng), SimDuration::ZERO);
        assert_eq!(LatencyModel::ZERO.sample_rtt(&mut rng), SimDuration::ZERO);
    }

    #[test]
    fn samples_stay_in_bounds() {
        let model = LatencyModel::new(SimDuration::from_millis(10), SimDuration::from_millis(20));
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let d = model.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(10));
            assert!(d < SimDuration::from_millis(30));
        }
    }

    #[test]
    fn rtt_is_at_least_twice_base() {
        let model = LatencyModel::WAN;
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            assert!(model.sample_rtt(&mut rng) >= SimDuration::from_millis(80));
        }
    }
}
