//! The committed regression corpus: every divergence or defect the
//! differential work has surfaced, minimized (see [`crate::shrink`]) and
//! stored as a readable `.case` script under `corpus/`.
//!
//! The replay contract, enforced for every corpus entry:
//!
//! * the oracle reports **zero bugs** — each divergence the case
//!   provokes matches the named quirk allowlist;
//! * the case's `expect-result` matches the compliant evaluation;
//! * every `expect-quirk` name is (a) present in
//!   [`spfail_prober::KNOWN_QUIRKS`] and (b) actually observed.

use spfail_prober::quirk_by_name;

use crate::case::ConformanceCase;
use crate::oracle::{run_case, CaseReport};

/// The corpus, embedded at compile time so the replay needs no paths.
pub const REGRESSION_CORPUS: &[(&str, &str)] = &[
    (
        "lowercase-hex-escape",
        include_str!("../corpus/lowercase-hex-escape.case"),
    ),
    (
        "duplicate-redirect-permerror",
        include_str!("../corpus/duplicate-redirect-permerror.case"),
    ),
    (
        "dup-first-reversed-label",
        include_str!("../corpus/dup-first-reversed-label.case"),
    ),
    (
        "sign-extension-heap-overflow",
        include_str!("../corpus/sign-extension-heap-overflow.case"),
    ),
    (
        "exp-only-after-smashed-heap",
        include_str!("../corpus/exp-only-after-smashed-heap.case"),
    ),
];

/// Replay one corpus script through the oracle, returning failure
/// descriptions (empty means the regression is still pinned correctly).
pub fn replay_script(script: &str) -> Vec<String> {
    let case = match ConformanceCase::parse_script(script) {
        Ok(case) => case,
        Err(e) => return vec![format!("unparseable corpus script: {e}")],
    };
    let report = run_case(&case);
    check_expectations(&case, &report)
}

/// The expectation checks shared by corpus replay and the fuzz smoke.
pub fn check_expectations(case: &ConformanceCase, report: &CaseReport) -> Vec<String> {
    let mut failures = Vec::new();
    for (behavior, bug) in report.bugs() {
        failures.push(format!("{}: {behavior:?}: {bug}", case.name));
    }
    if let Some(expected) = case.expect_result {
        if report.compliant.result != expected {
            failures.push(format!(
                "{}: compliant result {:?}, expected {expected:?}",
                case.name, report.compliant.result,
            ));
        }
    }
    let observed = report.quirk_names();
    for quirk in &case.expect_quirks {
        if quirk_by_name(quirk).is_none() {
            failures.push(format!(
                "{}: expected quirk {quirk:?} is not in the allowlist",
                case.name,
            ));
        }
        if !observed.contains(quirk.as_str()) {
            failures.push(format!(
                "{}: expected quirk {quirk:?} was not observed (saw {observed:?})",
                case.name,
            ));
        }
    }
    failures
}

/// Replay the whole corpus.
pub fn replay_all() -> Vec<String> {
    let mut failures = Vec::new();
    for (name, script) in REGRESSION_CORPUS {
        for failure in replay_script(script) {
            failures.push(format!("[{name}] {failure}"));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_file_names_match_case_names() {
        for (name, script) in REGRESSION_CORPUS {
            let case = ConformanceCase::parse_script(script).unwrap();
            assert_eq!(&case.name, name);
        }
    }

    #[test]
    fn corpus_replays_clean() {
        let failures = replay_all();
        assert!(failures.is_empty(), "{failures:#?}");
    }
}
