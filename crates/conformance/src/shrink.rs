//! Greedy case minimization.
//!
//! Given a case and a predicate (normally "the oracle still reports a
//! bug"), repeatedly apply size-reducing edits — drop whole fixture
//! records, drop individual policy terms, simplify the sender identity —
//! keeping each edit only if the predicate still holds, until a fixpoint.
//! The result is what gets committed to `corpus/` as a regression case.

use crate::case::{ConformanceCase, FixtureData};

/// Candidate single-step reductions of `case`, roughly biggest first.
fn reductions(case: &ConformanceCase) -> Vec<ConformanceCase> {
    let mut out = Vec::new();
    // Drop one fixture record.
    for i in 0..case.records.len() {
        let mut candidate = case.clone();
        candidate.records.remove(i);
        out.push(candidate);
    }
    // Drop one term from one SPF policy.
    for (i, record) in case.records.iter().enumerate() {
        let FixtureData::Txt(content) = &record.data else {
            continue;
        };
        if !content.starts_with("v=spf1") {
            continue;
        }
        let terms: Vec<&str> = content.split_whitespace().collect();
        // terms[0] is the version tag; keep it.
        for t in 1..terms.len() {
            let mut kept: Vec<&str> = terms.clone();
            kept.remove(t);
            let mut candidate = case.clone();
            candidate.records[i].data = FixtureData::Txt(kept.join(" "));
            out.push(candidate);
        }
    }
    // Simplify the sender identity.
    if case.sender_local != "u" {
        let mut candidate = case.clone();
        candidate.sender_local = "u".to_string();
        out.push(candidate);
    }
    if case.sender_domain != "example.com" {
        let mut candidate = case.clone();
        let old = case.sender_domain.clone();
        candidate.sender_domain = "example.com".to_string();
        // Keep fixtures reachable: rename records rooted at the old domain.
        for record in &mut candidate.records {
            if record.owner == old {
                record.owner = "example.com".to_string();
            }
        }
        out.push(candidate);
    }
    out
}

/// Shrink `case` to a locally minimal one for which `still_failing` holds.
/// The predicate is assumed true for the input.
pub fn shrink<F>(case: &ConformanceCase, still_failing: F) -> ConformanceCase
where
    F: Fn(&ConformanceCase) -> bool,
{
    let mut best = case.clone();
    loop {
        let mut progressed = false;
        for candidate in reductions(&best) {
            if still_failing(&candidate) {
                best = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_spf::SpfResult;

    use crate::oracle::eval_profile;
    use spfail_libspf2::MacroBehavior;

    /// Shrinking a deliberately bloated permerror case strips it to the
    /// duplicated modifiers that cause it.
    #[test]
    fn shrinker_reaches_a_minimal_duplicate_modifier_case() {
        let case = ConformanceCase::new(
            "bloated",
            "192.0.2.9".parse().unwrap(),
            "somebody-long",
            "mail.sub.example.org",
        )
        .txt(
            "mail.sub.example.org",
            "v=spf1 ip4:203.0.113.0/24 exists:p.example.org redirect=a.test redirect=b.test ~all",
        )
        .a("p.example.org", "127.0.0.2".parse().unwrap())
        .a("unrelated.example.org", "127.0.0.3".parse().unwrap());

        let is_permerror = |c: &ConformanceCase| {
            eval_profile(c, MacroBehavior::Compliant).result == SpfResult::PermError
        };
        assert!(is_permerror(&case));
        let minimal = shrink(&case, is_permerror);
        assert!(is_permerror(&minimal));
        // Every fixture except the policy itself is gone, and the policy
        // is down to a single term (a dangling redirect permerrors on its
        // own, so the duplicate pair shrinks further to one).
        assert_eq!(minimal.records.len(), 1);
        assert_eq!(minimal.sender_local, "u");
        let FixtureData::Txt(policy) = &minimal.records[0].data else {
            panic!("policy record lost its type");
        };
        let terms: Vec<&str> = policy.split_whitespace().collect();
        assert_eq!(terms.len(), 2, "{policy}");
        assert!(terms[1].starts_with("redirect="), "{policy}");
    }
}
