//! Differential conformance engine for the SPF evaluators.
//!
//! The paper's detection technique rests on one claim: the byte-accurate
//! libSPF2 emulation diverges from the RFC 7208 evaluator in exactly the
//! fingerprintable ways (CVE-2021-33912/33913) and in no others. This
//! crate turns that claim into a standing machine-checked property:
//!
//! * [`mod@gen`] — a deterministic structure-aware generator that emits
//!   valid and near-valid SPF records, macro strings, and DNS zone
//!   fixtures from a seeded grammar;
//! * [`oracle`] — runs each case through `spf::eval` under the compliant
//!   expander, the libSPF2 emulation (vulnerable and patched), and every
//!   `variants.rs` quirk profile over one shared simulated zone, then
//!   classifies each divergence as a *known quirk* (matched against
//!   [`spfail_prober::KNOWN_QUIRKS`], with heap corruption cross-checked
//!   against `memsim`) or a *bug*;
//! * [`shrink`] — minimizes bug cases to a smallest reproducer;
//! * [`rfc_corpus`] — an embedded RFC 7208–derived vector corpus
//!   (openspf-style) run against both real evaluators;
//! * [`regressions`] — the committed corpus of minimized divergences,
//!   replayed by a tier-1 test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod gen;
pub mod oracle;
pub mod regressions;
pub mod rfc_corpus;
pub mod shrink;

pub use case::{ConformanceCase, FixtureData, FixtureRecord, ScriptError};
pub use gen::generate_case;
pub use oracle::{
    run_case, run_seeded, CaseReport, FixtureDns, ProfileOutcome, ProfileReport, Summary, Verdict,
};
pub use rfc_corpus::{rfc_vectors, RfcVector};
pub use shrink::shrink;
