//! An embedded RFC 7208–derived conformance corpus, in the style of the
//! openspf test suite: each vector pins `check_host`'s verdict (and
//! sometimes the `exp=` explanation text) for one small zone fixture.
//!
//! Every vector is run against *both* real evaluators — the compliant
//! expander and the patched libSPF2 emulation — since RFC conformance is
//! exactly the property the patched release claims.

use spfail_libspf2::MacroBehavior;
use spfail_spf::SpfResult;

use crate::case::ConformanceCase;
use crate::oracle::eval_profile;

/// One corpus vector.
#[derive(Debug, Clone)]
pub struct RfcVector {
    /// The vector's name (from the script's `name` directive).
    pub name: String,
    /// The parsed case, including its pinned `expect-result`.
    pub case: ConformanceCase,
    /// The expected result.
    pub expect: SpfResult,
    /// The expected explanation text, when the vector pins one.
    pub expect_explanation: Option<&'static str>,
}

/// `(script, expected explanation)` source vectors.
const VECTORS: &[(&str, Option<&str>)] = &[
    (
        "name all-pass\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 +all\nexpect-result pass\n",
        None,
    ),
    (
        "name all-fail\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 -all\nexpect-result fail\n",
        None,
    ),
    (
        "name all-softfail\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 ~all\nexpect-result softfail\n",
        None,
    ),
    (
        "name all-neutral\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 ?all\nexpect-result neutral\n",
        None,
    ),
    (
        "name no-match-defaults-neutral\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 ip4:203.0.113.0/24\nexpect-result neutral\n",
        None,
    ),
    (
        "name no-record-none\nip 192.0.2.3\nsender user example.com\n\
         a example.com 192.0.2.3\nexpect-result none\n",
        None,
    ),
    (
        "name non-spf-txt-ignored\nip 192.0.2.3\nsender user example.com\n\
         txt example.com some unrelated text\n\
         txt example.com v=spf1 +all\nexpect-result pass\n",
        None,
    ),
    (
        "name two-spf-records-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 +all\n\
         txt example.com v=spf1 -all\nexpect-result permerror\n",
        None,
    ),
    (
        "name unknown-mechanism-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 foo:bar -all\nexpect-result permerror\n",
        None,
    ),
    (
        "name unknown-modifier-ignored\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 x-future=forward +all\nexpect-result pass\n",
        None,
    ),
    (
        "name bad-macro-letter-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 exists:%{q}.example.net -all\nexpect-result permerror\n",
        None,
    ),
    (
        "name ip4-match\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 ip4:192.0.2.0/24 -all\nexpect-result pass\n",
        None,
    ),
    (
        "name ip4-no-match\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 ip4:198.51.100.0/24 -all\nexpect-result fail\n",
        None,
    ),
    (
        "name ip4-zero-prefix-matches-everything\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 ip4:1.2.3.4/0 -all\nexpect-result pass\n",
        None,
    ),
    (
        "name ip6-match\nip 2001:db8::1\nsender user example.com\n\
         txt example.com v=spf1 ip6:2001:db8::/32 -all\nexpect-result pass\n",
        None,
    ),
    (
        "name ip4-never-matches-v6-client\nip 2001:db8::1\nsender user example.com\n\
         txt example.com v=spf1 ip4:192.0.2.0/24 -all\nexpect-result fail\n",
        None,
    ),
    (
        "name a-match\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 a -all\n\
         a example.com 192.0.2.3\nexpect-result pass\n",
        None,
    ),
    (
        "name a-no-address-fails\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 a -all\nexpect-result fail\n",
        None,
    ),
    (
        "name a-target-with-prefix\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 a:other.example.com/24 -all\n\
         a other.example.com 192.0.2.99\nexpect-result pass\n",
        None,
    ),
    (
        "name mx-match\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 mx -all\n\
         mx example.com 10 mail.example.com\n\
         a mail.example.com 192.0.2.3\nexpect-result pass\n",
        None,
    ),
    (
        "name exists-match\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 exists:ok.example.net -all\n\
         a ok.example.net 127.0.0.2\nexpect-result pass\n",
        None,
    ),
    (
        "name exists-reverse-ip-macro\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 exists:%{ir}.%{v}.rbl.example.net -all\n\
         a 3.2.0.192.in-addr.rbl.example.net 127.0.0.2\nexpect-result pass\n",
        None,
    ),
    (
        "name include-pass\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 include:other.test -all\n\
         txt other.test v=spf1 +all\nexpect-result pass\n",
        None,
    ),
    (
        "name include-fail-falls-through\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 include:other.test ?all\n\
         txt other.test v=spf1 -all\nexpect-result neutral\n",
        None,
    ),
    (
        "name include-missing-record-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 include:gone.test -all\nexpect-result permerror\n",
        None,
    ),
    (
        "name redirect-followed\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 redirect=other.test\n\
         txt other.test v=spf1 -all\nexpect-result fail\n",
        None,
    ),
    (
        "name redirect-ignored-when-all-matches\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 -all redirect=pass.test\n\
         txt pass.test v=spf1 +all\nexpect-result fail\n",
        None,
    ),
    (
        "name redirect-after-unmatched-mechanisms\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 ip4:198.51.100.0/24 redirect=other.test\n\
         txt other.test v=spf1 +all\nexpect-result pass\n",
        None,
    ),
    (
        "name redirect-missing-target-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 redirect=gone.test\nexpect-result permerror\n",
        None,
    ),
    (
        "name duplicate-redirect-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 redirect=a.test redirect=b.test\n\
         txt a.test v=spf1 +all\n\
         txt b.test v=spf1 -all\nexpect-result permerror\n",
        None,
    ),
    (
        "name duplicate-exp-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 exp=a.test exp=b.test -all\nexpect-result permerror\n",
        None,
    ),
    (
        "name exp-explanation-expanded\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 -all exp=why.example.com\n\
         txt why.example.com %{i} not allowed from %{d}\nexpect-result fail\n",
        Some("192.0.2.3 not allowed from example.com"),
    ),
    (
        "name exp-only-letters-legal-in-exp\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 -all exp=w.test\n\
         txt w.test %{c} at %{t} via %{r}\nexpect-result fail\n",
        Some("192.0.2.3 at 0 via receiver.invalid"),
    ),
    (
        "name exp-only-letter-outside-exp-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 exists:%{c}.example.net -all\nexpect-result permerror\n",
        None,
    ),
    (
        "name macro-sender-address\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 exists:%{s}.x.test -all\n\
         a user@example.com.x.test 127.0.0.2\nexpect-result pass\n",
        None,
    ),
    (
        "name macro-local-and-domain\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 exists:%{l}.%{o}.x.test -all\n\
         a user.example.com.x.test 127.0.0.2\nexpect-result pass\n",
        None,
    ),
    (
        "name macro-domain-truncated\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 exists:%{d1}.x.test -all\n\
         a com.x.test 127.0.0.2\nexpect-result pass\n",
        None,
    ),
    (
        "name macro-domain-reversed\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 exists:%{dr}.x.test -all\n\
         a com.example.x.test 127.0.0.2\nexpect-result pass\n",
        None,
    ),
    (
        "name macro-custom-delimiter\nip 192.0.2.3\nsender a-b example.com\n\
         txt example.com v=spf1 exists:%{l-}.x.test -all\n\
         a a.b.x.test 127.0.0.2\nexpect-result pass\n",
        None,
    ),
    (
        "name lookup-limit-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 include:c0.test -all\n\
         txt c0.test v=spf1 include:c1.test -all\n\
         txt c1.test v=spf1 include:c2.test -all\n\
         txt c2.test v=spf1 include:c3.test -all\n\
         txt c3.test v=spf1 include:c4.test -all\n\
         txt c4.test v=spf1 include:c5.test -all\n\
         txt c5.test v=spf1 include:c6.test -all\n\
         txt c6.test v=spf1 include:c7.test -all\n\
         txt c7.test v=spf1 include:c8.test -all\n\
         txt c8.test v=spf1 include:c9.test -all\n\
         txt c9.test v=spf1 include:c10.test -all\n\
         txt c10.test v=spf1 +all\nexpect-result permerror\n",
        None,
    ),
    (
        "name void-lookup-limit-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 exists:v1.test exists:v2.test exists:v3.test +all\n\
         expect-result permerror\n",
        None,
    ),
    (
        "name mx-name-limit-permerror\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 mx -all\n\
         mx example.com 1 m1.test\nmx example.com 2 m2.test\nmx example.com 3 m3.test\n\
         mx example.com 4 m4.test\nmx example.com 5 m5.test\nmx example.com 6 m6.test\n\
         mx example.com 7 m7.test\nmx example.com 8 m8.test\nmx example.com 9 m9.test\n\
         mx example.com 10 m10.test\nmx example.com 11 m11.test\nexpect-result permerror\n",
        None,
    ),
    (
        "name ptr-forward-confirmed\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 ptr -all\n\
         ptr 3.2.0.192.in-addr.arpa host.example.com\n\
         a host.example.com 192.0.2.3\nexpect-result pass\n",
        None,
    ),
    (
        "name ptr-unconfirmed-fails\nip 192.0.2.3\nsender user example.com\n\
         txt example.com v=spf1 ptr -all\n\
         ptr 3.2.0.192.in-addr.arpa host.example.com\n\
         a host.example.com 203.0.113.9\nexpect-result fail\n",
        None,
    ),
];

/// Parse the embedded vectors.
pub fn rfc_vectors() -> Vec<RfcVector> {
    VECTORS
        .iter()
        .map(|(script, expect_explanation)| {
            let case = ConformanceCase::parse_script(script)
                // lint:allow(panic-explicit) the corpus is compile-time data; a parse failure is a build-breaking editing error, not a runtime condition
                .unwrap_or_else(|e| panic!("embedded vector failed to parse: {e}\n{script}"));
            let expect = case
                .expect_result
                // lint:allow(panic-explicit) same compile-time corpus: a vector without a pinned result is an authoring bug the message names
                .unwrap_or_else(|| panic!("vector {} pins no result", case.name));
            RfcVector {
                name: case.name.clone(),
                case,
                expect,
                expect_explanation: *expect_explanation,
            }
        })
        .collect()
}

/// Check one vector against both real evaluators; returns failure
/// descriptions (empty means conformant).
pub fn check_vector(vector: &RfcVector) -> Vec<String> {
    let mut failures = Vec::new();
    for behavior in [MacroBehavior::Compliant, MacroBehavior::PatchedLibSpf2] {
        let outcome = eval_profile(&vector.case, behavior);
        if outcome.result != vector.expect {
            failures.push(format!(
                "{} under {behavior:?}: got {:?}, expected {:?}",
                vector.name, outcome.result, vector.expect,
            ));
        }
        if behavior == MacroBehavior::Compliant {
            if let Some(expected) = vector.expect_explanation {
                if outcome.explanation.as_deref() != Some(expected) {
                    failures.push(format!(
                        "{}: explanation {:?}, expected {expected:?}",
                        vector.name, outcome.explanation,
                    ));
                }
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_embedded_vector_passes_both_evaluators() {
        let vectors = rfc_vectors();
        assert!(vectors.len() >= 30, "corpus shrank to {}", vectors.len());
        let failures: Vec<String> = vectors.iter().flat_map(check_vector).collect();
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn vector_names_are_unique() {
        let vectors = rfc_vectors();
        let mut names: Vec<&str> = vectors.iter().map(|v| v.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
