//! The structure-aware case generator.
//!
//! Cases are derived deterministically from `(seed, index)` via the
//! simulation's splittable [`SimRng`], so a failing index reproduces
//! forever. The grammar aims every knob the divergence surface has:
//! mechanism mix and qualifiers, `redirect=`/`exp=`, macro letters with
//! digits/reversal/custom delimiters/url-escaping, exp-only letters,
//! pathological label lengths, include chains past the lookup limit, and
//! void-lookup pileups. Zone fixtures are planted at the *compliant* and
//! the *vulnerable-libSPF2* expansions of generated macro specs (plus
//! occasional wildcards), so the differential actually has records to
//! disagree about rather than collapsing into uniform NXDOMAIN.

use std::net::{IpAddr, Ipv4Addr};

use spfail_libspf2::LibSpf2Expander;
use spfail_netsim::SimRng;
use spfail_spf::expand::{CompliantExpander, MacroContext, MacroExpander};
use spfail_spf::macrostring::MacroString;

use crate::case::{ConformanceCase, FixtureData, FixtureRecord};

/// Generate case number `index` of the stream identified by `seed`.
pub fn generate_case(seed: u64, index: u64) -> ConformanceCase {
    let mut rng = SimRng::new(seed).fork_idx("conformance-case", index);
    Gen::new(&mut rng, index).build()
}

const TLDS: &[&str] = &["com", "org", "net", "test", "co.uk"];

const SENDER_LOCALS: &[&str] = &[
    "user",
    "strong-bad",
    "a.b.c",
    "a/b",
    "caf\u{e9}",
    "tilde~x_y",
    "UPPER-Case",
    "admin+tag",
    "caf\u{e9}-caf\u{e9}-caf\u{e9}",
];

const CLIENT_IPS: &[&str] = &[
    "192.0.2.3",
    "192.0.2.77",
    "198.51.100.9",
    "203.0.113.200",
    "2001:db8::1",
    "2001:db8:0:1::5",
];

const EXPLANATIONS: &[&str] = &[
    "%{i} is not allowed to send mail from %{d}",
    "see http://%{d}/why.html?s=%{S}",
    "%{c} rejected by %{r} at %{t}",
    "access denied",
    "blocked: %{I} via %{H}",
];

struct Gen<'a> {
    rng: &'a mut SimRng,
    case: ConformanceCase,
    anchor: String,
}

impl<'a> Gen<'a> {
    fn new(rng: &'a mut SimRng, index: u64) -> Gen<'a> {
        let anchor = format!("z{}.{}", rng.alnum_label(4), rng.pick(TLDS));
        let sender_domain = {
            let mut labels = Vec::new();
            for _ in 0..rng.range(1, 4) {
                let label = if rng.chance(0.04) {
                    "x".repeat(63)
                } else if rng.chance(0.1) {
                    // Mixed case exercises spelling-preserving comparison.
                    let len = rng.range(2, 8) as usize;
                    let mut l = rng.alnum_label(len);
                    l.make_ascii_uppercase();
                    l
                } else {
                    let len = rng.range(1, 10) as usize;
                    rng.alnum_label(len)
                };
                labels.push(label);
            }
            format!("{}.{}", labels.join("."), rng.pick(TLDS))
        };
        let client_ip: IpAddr = rng
            .pick(CLIENT_IPS)
            .parse()
            .expect("CLIENT_IPS holds only literal addresses");
        let sender_local = rng.pick(SENDER_LOCALS).to_string();
        let case = ConformanceCase::new(
            &format!("gen-{index}"),
            client_ip,
            &sender_local,
            &sender_domain,
        );
        Gen { rng, case, anchor }
    }

    fn build(mut self) -> ConformanceCase {
        let domain = self.case.sender_domain.clone();
        if self.rng.chance(0.04) {
            self.broken_policy(&domain);
        } else if self.rng.chance(0.05) {
            self.include_chain(&domain);
        } else if self.rng.chance(0.05) {
            self.void_pileup(&domain);
        } else {
            self.policy(&domain, 0);
        }
        if self.rng.chance(0.25) {
            self.noise();
        }
        self.case
    }

    fn push(&mut self, owner: &str, data: FixtureData) {
        self.case.records.push(FixtureRecord {
            owner: owner.to_string(),
            data,
        });
    }

    // ---- malformed / limit-stressing shapes (uniform across profiles) ----

    fn broken_policy(&mut self, domain: &str) {
        if self.rng.chance(0.25) {
            // Two SPF records at one owner: permerror per RFC 7208 §4.5.
            self.push(domain, FixtureData::Txt("v=spf1 +all".to_string()));
            self.push(domain, FixtureData::Txt("v=spf1 -all".to_string()));
            return;
        }
        let broken = [
            "v=spf1 frob:x.test -all",
            "v=spf1 a:%{q}.test -all",
            "v=spf1 redirect=r1.test redirect=r2.test",
            "v=spf1 exp=e1.test exp=e2.test -all",
            "v=spf1 ip4:999.0.2.0/24 -all",
            "v=spf1 ip4:192.0.2.0/40 -all",
        ];
        let text = *self.rng.pick(&broken);
        self.push(domain, FixtureData::Txt(text.to_string()));
    }

    fn include_chain(&mut self, domain: &str) {
        // Chains up to 12 links cross the 10-term lookup limit.
        let len = self.rng.range(2, 13) as usize;
        let links: Vec<String> = (0..len)
            .map(|i| format!("c{i}{}.{}", self.rng.alnum_label(2), self.anchor))
            .collect();
        let terminal = if self.rng.chance(0.5) { "+all" } else { "-all" };
        self.push(
            domain,
            FixtureData::Txt(format!("v=spf1 include:{} -all", links[0])),
        );
        for i in 0..len {
            let policy = if i + 1 < len {
                format!("v=spf1 include:{} -all", links[i + 1])
            } else {
                format!("v=spf1 {terminal}")
            };
            self.push(&links[i].clone(), FixtureData::Txt(policy));
        }
    }

    fn void_pileup(&mut self, domain: &str) {
        // Three void lookups cross the RFC limit of two.
        let policy = format!(
            "v=spf1 exists:v1.{a} exists:v2.{a} exists:v3.{a} +all",
            a = self.anchor
        );
        self.push(domain, FixtureData::Txt(policy));
    }

    // ---- the general policy grammar ----

    fn policy(&mut self, domain: &str, depth: usize) {
        let mut terms: Vec<String> = Vec::new();
        let n = self.rng.range(1, 5);
        for _ in 0..n {
            let term = self.mechanism(domain, depth);
            terms.push(term);
        }
        if self.rng.chance(0.75) {
            terms.push(format!("{}all", self.qualifier()));
        }
        if self.rng.chance(0.18) {
            let target = self.exp_target();
            terms.push(format!("exp={target}"));
        }
        if self.rng.chance(0.1) && depth < 3 {
            let target = format!("r{}.{}", self.rng.alnum_label(3), self.anchor);
            self.policy(&target.clone(), depth + 1);
            terms.push(format!("redirect={target}"));
        }
        if self.rng.chance(0.08) {
            terms.push(format!(
                "x-{}={}",
                self.rng.alnum_label(3),
                self.rng.alnum_label(5)
            ));
        }
        let policy = format!("v=spf1 {}", terms.join(" "));
        self.push(domain, FixtureData::Txt(policy));
    }

    fn qualifier(&mut self) -> &'static str {
        match self
            .rng
            .pick_weighted(&[0.55, 0.16, 0.12, 0.09, 0.08])
            .expect("weight table is non-empty and finite")
        {
            0 => "",
            1 => "-",
            2 => "~",
            3 => "?",
            _ => "+",
        }
    }

    fn mechanism(&mut self, domain: &str, depth: usize) -> String {
        let q = self.qualifier();
        match self
            .rng
            .pick_weighted(&[24.0, 7.0, 15.0, 7.0, 22.0, 9.0, 4.0])
            .expect("weight table is non-empty and finite")
        {
            0 => {
                // ip4, matching the client about half the time.
                if let (IpAddr::V4(ip), true) = (self.case.client_ip, self.rng.chance(0.5)) {
                    let cidr = *self.rng.pick(&[32u8, 28, 24]);
                    format!("{q}ip4:{ip}/{cidr}")
                } else {
                    format!("{q}ip4:203.0.113.0/26")
                }
            }
            1 => {
                if let (IpAddr::V6(ip), true) = (self.case.client_ip, self.rng.chance(0.5)) {
                    format!("{q}ip6:{ip}/64")
                } else {
                    format!("{q}ip6:2001:db8:9999::/48")
                }
            }
            2 => {
                // a, with optional target and prefix lengths.
                let target = if self.rng.chance(0.6) {
                    let spec = self.domain_spec(domain);
                    format!(":{spec}")
                } else {
                    // Bare `a` checks the current domain itself.
                    if self.rng.chance(0.5) {
                        self.plant_address(domain);
                    }
                    String::new()
                };
                let cidr = if self.rng.chance(0.25) { "/24" } else { "" };
                format!("{q}a{target}{cidr}")
            }
            3 => {
                let exchange = format!("mx{}.{}", self.rng.alnum_label(2), self.anchor);
                let owner = if self.rng.chance(0.7) {
                    domain.to_string()
                } else {
                    format!("m{}.{}", self.rng.alnum_label(3), self.anchor)
                };
                self.push(&owner.clone(), FixtureData::Mx(10, exchange.clone()));
                if self.rng.chance(0.7) {
                    self.plant_address(&exchange);
                }
                if owner == domain {
                    format!("{q}mx")
                } else {
                    format!("{q}mx:{owner}")
                }
            }
            4 => {
                let spec = self.domain_spec(domain);
                format!("{q}exists:{spec}")
            }
            5 => {
                // include, recursing into a planted sub-policy.
                if depth < 3 && self.rng.chance(0.75) {
                    let target = format!("i{}.{}", self.rng.alnum_label(3), self.anchor);
                    self.policy(&target.clone(), depth + 1);
                    format!("{q}include:{target}")
                } else if self.rng.chance(0.5) {
                    // Macro include: the profiles fetch *different* targets.
                    let spec = self.macro_spec(domain, true);
                    format!("{q}include:{spec}")
                } else {
                    // Dangling include: no record at the target.
                    format!("{q}include:dangling{}.{}", self.rng.alnum_label(2), self.anchor)
                }
            }
            _ => {
                // ptr (deprecated, rare) for v4 clients; otherwise a long
                // pathological literal target.
                if let IpAddr::V4(ip) = self.case.client_ip {
                    let o = ip.octets();
                    let reverse = format!("{}.{}.{}.{}.in-addr.arpa", o[3], o[2], o[1], o[0]);
                    let host = format!("host{}.{}", self.rng.alnum_label(2), self.anchor);
                    self.push(&reverse, FixtureData::Ptr(host.clone()));
                    if self.rng.chance(0.7) {
                        self.push(&host, FixtureData::A(ip));
                    }
                    format!("{q}ptr")
                } else {
                    let label = "y".repeat(*self.rng.pick(&[63usize, 64]));
                    format!("{q}exists:{label}.{}", self.anchor)
                }
            }
        }
    }

    /// A mechanism target: a plain planted name or a macro spec.
    fn domain_spec(&mut self, domain: &str) -> String {
        if self.rng.chance(0.55) {
            self.macro_spec(domain, false)
        } else {
            let name = format!("p{}.{}", self.rng.alnum_label(4), self.anchor);
            if self.rng.chance(0.6) {
                self.plant_address(&name);
            }
            name
        }
    }

    fn macro_token(&mut self) -> String {
        let lower = ['s', 'l', 'o', 'd', 'i', 'v', 'h'];
        let exp_only = ['c', 'r', 't'];
        let mut letter = *self.rng.pick(&lower);
        if self.rng.chance(0.05) {
            letter = *self.rng.pick(&exp_only);
        }
        if self.rng.chance(0.3) {
            letter = letter.to_ascii_uppercase();
        }
        let mut body = letter.to_string();
        if self.rng.chance(0.45) {
            body.push_str(&self.rng.pick(&[1u32, 1, 2, 3, 9]).to_string());
        }
        if self.rng.chance(0.45) {
            body.push('r');
        }
        if self.rng.chance(0.2) {
            for delim in ['-', '+', '/', '_', '='] {
                if self.rng.chance(0.3) {
                    body.push(delim);
                }
            }
        }
        format!("%{{{body}}}")
    }

    /// Build a macro-bearing domain-spec and plant fixtures at the
    /// expansions the differential will actually query.
    fn macro_spec(&mut self, eval_domain: &str, plant_policies: bool) -> String {
        let mut spec = String::new();
        for i in 0..self.rng.range(1, 3) {
            if i > 0 {
                spec.push('.');
            }
            if self.rng.chance(0.8) {
                spec.push_str(&self.macro_token());
            } else {
                spec.push_str(&self.rng.alnum_label(3));
            }
        }
        if self.rng.chance(0.08) {
            let escape = *self.rng.pick(&["%%", "%-", "%_"]);
            spec.push_str(escape);
        }
        let spec = format!("{spec}.{}", self.anchor);
        let Ok(ms) = MacroString::parse(&spec) else {
            // Grammar slipped outside the macro syntax; fall back to a
            // plain (unplanted) name so the case stays valid.
            return format!("f.{}", self.anchor);
        };
        let mut ctx = MacroContext::new(
            &self.case.sender_local,
            &self.case.sender_domain,
            self.case.client_ip,
        );
        ctx.domain = eval_domain.to_string();
        let mut targets = Vec::new();
        if let Ok(expanded) = CompliantExpander.expand(&ms, &ctx, false) {
            targets.push((expanded, 0.7));
        }
        let mut vulnerable = LibSpf2Expander::vulnerable();
        if let Ok(expanded) = vulnerable.expand(&ms, &ctx, false) {
            targets.push((expanded, 0.45));
        }
        // The no-expansion profile queries the literal spec.
        targets.push((spec.clone(), 0.2));
        for (target, p) in targets {
            if self.rng.chance(p) {
                if plant_policies {
                    self.push(&target, FixtureData::Txt("v=spf1 -all".to_string()));
                } else {
                    self.plant_address(&target);
                }
            }
        }
        if !plant_policies && self.rng.chance(0.1) {
            let wildcard = format!("*.{}", self.anchor);
            self.plant_address(&wildcard);
        }
        spec
    }

    fn exp_target(&mut self) -> String {
        let target = format!("e{}.{}", self.rng.alnum_label(3), self.anchor);
        if self.rng.chance(0.8) {
            let text = *self.rng.pick(EXPLANATIONS);
            self.push(&target, FixtureData::Txt(text.to_string()));
        }
        target
    }

    fn plant_address(&mut self, owner: &str) {
        match self.case.client_ip {
            IpAddr::V4(ip) => {
                let addr = if self.rng.chance(0.7) {
                    ip
                } else {
                    Ipv4Addr::new(127, 0, 0, 9)
                };
                self.push(owner, FixtureData::A(addr));
            }
            IpAddr::V6(ip) => {
                if self.rng.chance(0.7) {
                    self.push(owner, FixtureData::Aaaa(ip));
                } else {
                    self.push(owner, FixtureData::A(Ipv4Addr::new(127, 0, 0, 9)));
                }
            }
        }
    }

    fn noise(&mut self) {
        for _ in 0..self.rng.range(1, 4) {
            let name = format!("n{}.{}", self.rng.alnum_label(4), self.anchor);
            match self.rng.below(4) {
                0 => self.plant_address(&name),
                1 => {
                    let text = format!("unrelated text {}", self.rng.alnum_label(6));
                    self.push(&name, FixtureData::Txt(text));
                }
                2 => {
                    let real = format!("real{}.{}", self.rng.alnum_label(2), self.anchor);
                    self.plant_address(&real);
                    self.push(&name, FixtureData::Cname(real));
                }
                _ => {
                    let exchange = format!("mxn{}.{}", self.rng.alnum_label(2), self.anchor);
                    self.push(&name, FixtureData::Mx(20, exchange));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_case(42, 7);
        let b = generate_case(42, 7);
        assert_eq!(a, b);
        let c = generate_case(42, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_cases_cover_the_grammar() {
        let mut saw_macro = false;
        let mut saw_redirect_or_exp = false;
        let mut saw_v6 = false;
        let mut saw_policy = false;
        for index in 0..200 {
            let case = generate_case(0x5bf5_fa11, index);
            saw_v6 |= case.client_ip.is_ipv6();
            for (_, content) in case.txt_contents() {
                if content.starts_with("v=spf1") {
                    saw_policy = true;
                    saw_macro |= content.contains("%{");
                    saw_redirect_or_exp |=
                        content.contains("redirect=") || content.contains("exp=");
                }
            }
        }
        assert!(saw_policy && saw_macro && saw_redirect_or_exp && saw_v6);
    }
}
