//! One conformance case: a sender identity, a client IP, and a flat DNS
//! fixture, with an optional set of expectations.
//!
//! Cases round-trip through a small line-oriented script format so that
//! minimized reproducers can live in the committed corpus as readable
//! text (`crates/conformance/corpus/*.case`) rather than opaque seeds:
//!
//! ```text
//! # free-form comment
//! name lowercase-hex-escape
//! ip 192.0.2.3
//! sender a/b example.com
//! txt example.com v=spf1 exists:%{L}.e.example.com -all
//! a a%2Fb.e.example.com 127.0.0.2
//! expect-result pass
//! expect-quirk lowercase-hex-escape
//! ```

use std::fmt::Write as _;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use spfail_dns::{Name, RData, Record};
use spfail_spf::SpfResult;

/// The typed payload of one fixture record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixtureData {
    /// An IPv4 address record.
    A(Ipv4Addr),
    /// An IPv6 address record.
    Aaaa(Ipv6Addr),
    /// A TXT record holding one logical string (SPF policy or not).
    Txt(String),
    /// A mail exchanger.
    Mx(u16, String),
    /// A reverse pointer.
    Ptr(String),
    /// An alias.
    Cname(String),
}

/// One fixture record: an owner name (kept as spelled) plus typed data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixtureRecord {
    /// The owner name, as spelled in the script.
    pub owner: String,
    /// The record payload.
    pub data: FixtureData,
}

/// A complete differential-evaluation case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceCase {
    /// A short identifier (kebab-case) for reports and corpus files.
    pub name: String,
    /// The SMTP client address `check_host` is evaluated for.
    pub client_ip: IpAddr,
    /// The local part of `MAIL FROM`.
    pub sender_local: String,
    /// The domain of `MAIL FROM` (also the initial evaluation domain).
    pub sender_domain: String,
    /// The shared DNS fixture all evaluators see.
    pub records: Vec<FixtureRecord>,
    /// Expected compliant-evaluator result, when the case pins one.
    pub expect_result: Option<SpfResult>,
    /// Quirk names the case is expected to exhibit (subset check).
    pub expect_quirks: Vec<String>,
}

/// A malformed `.case` script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line the error was found on (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

fn err(line: usize, message: impl Into<String>) -> ScriptError {
    ScriptError {
        line,
        message: message.into(),
    }
}

fn result_name(result: SpfResult) -> &'static str {
    match result {
        SpfResult::None => "none",
        SpfResult::Neutral => "neutral",
        SpfResult::Pass => "pass",
        SpfResult::Fail => "fail",
        SpfResult::SoftFail => "softfail",
        SpfResult::TempError => "temperror",
        SpfResult::PermError => "permerror",
    }
}

fn parse_result(s: &str) -> Option<SpfResult> {
    Some(match s {
        "none" => SpfResult::None,
        "neutral" => SpfResult::Neutral,
        "pass" => SpfResult::Pass,
        "fail" => SpfResult::Fail,
        "softfail" => SpfResult::SoftFail,
        "temperror" => SpfResult::TempError,
        "permerror" => SpfResult::PermError,
        _ => return None,
    })
}

impl ConformanceCase {
    /// A minimal empty case evaluating `user@<domain>` from `client_ip`.
    pub fn new(name: &str, client_ip: IpAddr, sender_local: &str, sender_domain: &str) -> Self {
        ConformanceCase {
            name: name.to_string(),
            client_ip,
            sender_local: sender_local.to_string(),
            sender_domain: sender_domain.to_string(),
            records: Vec::new(),
            expect_result: None,
            expect_quirks: Vec::new(),
        }
    }

    /// Append a TXT fixture (convenience for policies).
    pub fn txt(mut self, owner: &str, content: &str) -> Self {
        self.records.push(FixtureRecord {
            owner: owner.to_string(),
            data: FixtureData::Txt(content.to_string()),
        });
        self
    }

    /// Append an A fixture.
    pub fn a(mut self, owner: &str, addr: Ipv4Addr) -> Self {
        self.records.push(FixtureRecord {
            owner: owner.to_string(),
            data: FixtureData::A(addr),
        });
        self
    }

    /// Materialize the fixture into DNS [`Record`]s. Records whose owner
    /// does not parse as a [`Name`] are dropped — generated expansions can
    /// exceed label limits, which a real zone simply could not hold.
    pub fn dns_records(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for fixture in &self.records {
            let Ok(owner) = Name::parse(&fixture.owner) else {
                continue;
            };
            let rdata = match &fixture.data {
                FixtureData::A(ip) => RData::A(*ip),
                FixtureData::Aaaa(ip) => RData::Aaaa(*ip),
                FixtureData::Txt(content) => RData::txt(content),
                FixtureData::Mx(preference, exchange) => match Name::parse(exchange) {
                    Ok(exchange) => RData::Mx {
                        preference: *preference,
                        exchange,
                    },
                    Err(_) => continue,
                },
                FixtureData::Ptr(target) => match Name::parse(target) {
                    Ok(target) => RData::Ptr(target),
                    Err(_) => continue,
                },
                FixtureData::Cname(target) => match Name::parse(target) {
                    Ok(target) => RData::Cname(target),
                    Err(_) => continue,
                },
            };
            out.push(Record::new(owner, 300, rdata));
        }
        out
    }

    /// Every TXT fixture content, with its owner spelling — the macro
    /// strings the expansion-level oracle inspects.
    pub fn txt_contents(&self) -> impl Iterator<Item = (&str, &str)> {
        self.records.iter().filter_map(|r| match &r.data {
            FixtureData::Txt(content) => Some((r.owner.as_str(), content.as_str())),
            _ => None,
        })
    }

    /// Render the case as a `.case` script.
    pub fn to_script(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "name {}", self.name);
        let _ = writeln!(out, "ip {}", self.client_ip);
        let _ = writeln!(out, "sender {} {}", self.sender_local, self.sender_domain);
        for record in &self.records {
            match &record.data {
                FixtureData::A(ip) => {
                    let _ = writeln!(out, "a {} {ip}", record.owner);
                }
                FixtureData::Aaaa(ip) => {
                    let _ = writeln!(out, "aaaa {} {ip}", record.owner);
                }
                FixtureData::Txt(content) => {
                    let _ = writeln!(out, "txt {} {content}", record.owner);
                }
                FixtureData::Mx(preference, exchange) => {
                    let _ = writeln!(out, "mx {} {preference} {exchange}", record.owner);
                }
                FixtureData::Ptr(target) => {
                    let _ = writeln!(out, "ptr {} {target}", record.owner);
                }
                FixtureData::Cname(target) => {
                    let _ = writeln!(out, "cname {} {target}", record.owner);
                }
            }
        }
        if let Some(result) = self.expect_result {
            let _ = writeln!(out, "expect-result {}", result_name(result));
        }
        for quirk in &self.expect_quirks {
            let _ = writeln!(out, "expect-quirk {quirk}");
        }
        out
    }

    /// Parse a `.case` script.
    pub fn parse_script(script: &str) -> Result<ConformanceCase, ScriptError> {
        let mut name = None;
        let mut client_ip = None;
        let mut sender = None;
        let mut records = Vec::new();
        let mut expect_result = None;
        let mut expect_quirks = Vec::new();

        for (idx, raw) in script.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            let mut fields = rest.split_whitespace();
            match verb {
                "name" => name = Some(rest.to_string()),
                "ip" => {
                    let ip: IpAddr = rest
                        .parse()
                        .map_err(|_| err(lineno, format!("bad ip {rest:?}")))?;
                    client_ip = Some(ip);
                }
                "sender" => {
                    let local = fields
                        .next()
                        .ok_or_else(|| err(lineno, "sender needs <local> <domain>"))?;
                    let domain = fields
                        .next()
                        .ok_or_else(|| err(lineno, "sender needs <local> <domain>"))?;
                    sender = Some((local.to_string(), domain.to_string()));
                }
                "txt" => {
                    let (owner, content) = rest
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| err(lineno, "txt needs <owner> <content>"))?;
                    records.push(FixtureRecord {
                        owner: owner.to_string(),
                        data: FixtureData::Txt(content.trim().to_string()),
                    });
                }
                "a" | "aaaa" => {
                    let owner = fields
                        .next()
                        .ok_or_else(|| err(lineno, "address record needs <owner> <addr>"))?;
                    let addr = fields
                        .next()
                        .ok_or_else(|| err(lineno, "address record needs <owner> <addr>"))?;
                    let data = if verb == "a" {
                        FixtureData::A(
                            addr.parse()
                                .map_err(|_| err(lineno, format!("bad v4 address {addr:?}")))?,
                        )
                    } else {
                        FixtureData::Aaaa(
                            addr.parse()
                                .map_err(|_| err(lineno, format!("bad v6 address {addr:?}")))?,
                        )
                    };
                    records.push(FixtureRecord {
                        owner: owner.to_string(),
                        data,
                    });
                }
                "mx" => {
                    let owner = fields
                        .next()
                        .ok_or_else(|| err(lineno, "mx needs <owner> <pref> <exchange>"))?;
                    let preference: u16 = fields
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| err(lineno, "mx needs a numeric preference"))?;
                    let exchange = fields
                        .next()
                        .ok_or_else(|| err(lineno, "mx needs <owner> <pref> <exchange>"))?;
                    records.push(FixtureRecord {
                        owner: owner.to_string(),
                        data: FixtureData::Mx(preference, exchange.to_string()),
                    });
                }
                "ptr" | "cname" => {
                    let owner = fields
                        .next()
                        .ok_or_else(|| err(lineno, format!("{verb} needs <owner> <target>")))?;
                    let target = fields
                        .next()
                        .ok_or_else(|| err(lineno, format!("{verb} needs <owner> <target>")))?;
                    let data = if verb == "ptr" {
                        FixtureData::Ptr(target.to_string())
                    } else {
                        FixtureData::Cname(target.to_string())
                    };
                    records.push(FixtureRecord {
                        owner: owner.to_string(),
                        data,
                    });
                }
                "expect-result" => {
                    expect_result = Some(
                        parse_result(rest)
                            .ok_or_else(|| err(lineno, format!("unknown result {rest:?}")))?,
                    );
                }
                "expect-quirk" => {
                    if rest.is_empty() {
                        return Err(err(lineno, "expect-quirk needs a quirk name"));
                    }
                    expect_quirks.push(rest.to_string());
                }
                other => return Err(err(lineno, format!("unknown directive {other:?}"))),
            }
        }

        let (sender_local, sender_domain) =
            sender.ok_or_else(|| err(0, "missing sender directive"))?;
        Ok(ConformanceCase {
            name: name.ok_or_else(|| err(0, "missing name directive"))?,
            client_ip: client_ip.ok_or_else(|| err(0, "missing ip directive"))?,
            sender_local,
            sender_domain,
            records,
            expect_result,
            expect_quirks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_round_trips() {
        let case = ConformanceCase::new("demo", "192.0.2.9".parse().unwrap(), "a/b", "example.com")
            .txt("example.com", "v=spf1 exists:%{L}.e.example.com -all")
            .a("a%2Fb.e.example.com", "127.0.0.2".parse().unwrap());
        let script = case.to_script();
        let reparsed = ConformanceCase::parse_script(&script).unwrap();
        assert_eq!(case, reparsed);
        assert_eq!(reparsed.dns_records().len(), 2);
    }

    #[test]
    fn expectations_round_trip() {
        let script = "\
name pinned
ip 2001:db8::1
sender user example.com
txt example.com v=spf1 -all
expect-result fail
expect-quirk lowercase-hex-escape
";
        let case = ConformanceCase::parse_script(script).unwrap();
        assert_eq!(case.expect_result, Some(SpfResult::Fail));
        assert_eq!(case.expect_quirks, vec!["lowercase-hex-escape"]);
        assert_eq!(case.to_script(), script);
    }

    #[test]
    fn malformed_scripts_are_rejected_with_line_numbers() {
        let bad = "name x\nip not-an-ip\nsender u d\n";
        let e = ConformanceCase::parse_script(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(ConformanceCase::parse_script("frobnicate y\n").is_err());
        assert!(ConformanceCase::parse_script("name only\n").is_err());
    }

    #[test]
    fn unparseable_owner_names_are_dropped_from_the_zone() {
        let case = ConformanceCase::new("drop", "192.0.2.1".parse().unwrap(), "u", "example.com")
            .a(&format!("{}.example.com", "x".repeat(64)), Ipv4Addr::LOCALHOST)
            .txt("example.com", "v=spf1 -all");
        assert_eq!(case.dns_records().len(), 1);
    }
}
