//! The differential oracle: evaluate one case under every expansion
//! profile over one shared zone and classify each divergence.
//!
//! Two layers of checking compound here:
//!
//! 1. **Expansion level.** Every macro string reachable from the case's
//!    TXT fixtures is expanded by the profile's real expander *and* by an
//!    independently written reference model of that profile (for the
//!    libSPF2 emulation the model re-derives the bogus-length/dup/
//!    sign-extension arithmetic from the CVE write-ups rather than
//!    calling into `spfail-libspf2`). Any mismatch is a bug. The model
//!    also predicts whether the expansion must corrupt the simulated
//!    heap, which is cross-checked against `memsim`.
//! 2. **Evaluation level.** `check_host` runs end to end per profile.
//!    Divergence from the compliant profile (result, query sequence as
//!    spelled, or explanation text) is only acceptable when the expansion
//!    layer produced a *named* quirk from the
//!    [`spfail_prober::KNOWN_QUIRKS`] allowlist; everything else is a bug.

use std::collections::{BTreeMap, BTreeSet};

use spfail_dns::resolver::{LookupError, LookupOutcome};
use spfail_dns::zone::{Zone, ZoneAnswer};
use spfail_dns::{Name, RData, RecordType};
use spfail_libspf2::{LibSpf2Expander, MacroBehavior};
use spfail_prober::quirks_for_behavior;
use spfail_spf::expand::{
    apply_transform, url_escape, CompliantExpander, ExpandError, MacroContext, MacroExpander,
};
use spfail_spf::macrostring::{MacroString, MacroToken, MacroTransform};
use spfail_spf::record::{MechanismKind, Modifier, SpfRecord};
use spfail_spf::{CompiledEvaluator, Evaluator, PolicyCache, SpfDns, SpfResult, TraceEvent};

use crate::case::ConformanceCase;

/// The profiles the oracle compares against [`MacroBehavior::Compliant`].
pub const PROFILES: &[MacroBehavior] = &[
    MacroBehavior::VulnerableLibSpf2,
    MacroBehavior::PatchedLibSpf2,
    MacroBehavior::NoExpansion,
    MacroBehavior::ReverseNoTruncate,
    MacroBehavior::TruncateNoReverse,
    MacroBehavior::IgnoreTransformers,
    MacroBehavior::EmptyExpansion,
    MacroBehavior::MacroUnsupported,
];

/// Mirror of `LibSpf2Config::{vulnerable,patched}().overrun_cap`, used by
/// the independent reference model.
const OVERRUN_CAP: usize = 100;

/// The case's DNS fixture as an [`SpfDns`] source: one root-origin
/// synthesized zone shared (by value) across all profile evaluations,
/// with in-fixture CNAME chains followed.
pub struct FixtureDns {
    zone: Zone,
}

impl FixtureDns {
    /// Build the zone for `case`.
    pub fn new(case: &ConformanceCase) -> FixtureDns {
        FixtureDns {
            zone: Zone::synthesize(case.dns_records()),
        }
    }
}

impl SpfDns for FixtureDns {
    fn lookup(&mut self, name: &Name, rtype: RecordType) -> Result<LookupOutcome, LookupError> {
        let mut current = name.clone();
        for _ in 0..8 {
            match self.zone.lookup(&current, rtype) {
                ZoneAnswer::Records(records) => return Ok(LookupOutcome::Records(records.into())),
                ZoneAnswer::NoData => return Ok(LookupOutcome::NoRecords),
                ZoneAnswer::NxDomain => return Ok(LookupOutcome::NxDomain),
                // Generated fixtures are flat; treat a (synthetic) cut as
                // a dead end rather than chasing referrals.
                ZoneAnswer::Delegation { .. } => return Ok(LookupOutcome::NxDomain),
                ZoneAnswer::Cname(record) => match record.rdata {
                    RData::Cname(target) => current = target,
                    _ => return Ok(LookupOutcome::NoRecords),
                },
            }
        }
        Err(LookupError::CnameChainTooLong)
    }
}

/// Everything observable from one profile's end-to-end evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileOutcome {
    /// The profile evaluated.
    pub behavior: MacroBehavior,
    /// `check_host`'s verdict.
    pub result: SpfResult,
    /// Every DNS query issued, with the name *as spelled* — the paper's
    /// fingerprints live in the spelling, so comparison is byte-level.
    pub queries: Vec<(String, RecordType)>,
    /// The `exp=` explanation, when one was produced.
    pub explanation: Option<String>,
    /// Expander faults recorded in the trace.
    pub expander_faults: usize,
    /// Whether the profile's simulated heap was corrupted (libSPF2 only).
    pub heap_corrupted: bool,
    /// Largest overrun distance in bytes (libSPF2 only).
    pub heap_max_overrun: usize,
}

fn run_eval<E: MacroExpander>(
    case: &ConformanceCase,
    expander: &mut E,
) -> (SpfResult, Vec<(String, RecordType)>, Option<String>, usize) {
    let mut dns = FixtureDns::new(case);
    let mut eval = Evaluator::new(&mut dns, expander);
    let result = eval.check_host(case.client_ip, &case.sender_local, &case.sender_domain);
    let mut queries = Vec::new();
    let mut faults = 0;
    for event in eval.trace() {
        match event {
            TraceEvent::Query { name, rtype } => queries.push((name.to_ascii(), *rtype)),
            TraceEvent::ExpanderFault(_) => faults += 1,
            _ => {}
        }
    }
    let explanation = eval.explanation().map(str::to_string);
    (result, queries, explanation, faults)
}

/// Run `check_host` for `case` under one profile.
pub fn eval_profile(case: &ConformanceCase, behavior: MacroBehavior) -> ProfileOutcome {
    match behavior {
        MacroBehavior::VulnerableLibSpf2 | MacroBehavior::PatchedLibSpf2 => {
            let mut expander = if behavior.is_vulnerable() {
                LibSpf2Expander::vulnerable()
            } else {
                LibSpf2Expander::patched()
            };
            let (result, queries, explanation, expander_faults) = run_eval(case, &mut expander);
            ProfileOutcome {
                behavior,
                result,
                queries,
                explanation,
                expander_faults,
                heap_corrupted: expander.heap().corrupted(),
                heap_max_overrun: expander.heap().max_overrun(),
            }
        }
        _ => {
            let mut expander = behavior.expander();
            let (result, queries, explanation, expander_faults) = run_eval(case, &mut expander);
            ProfileOutcome {
                behavior,
                result,
                queries,
                explanation,
                expander_faults,
                heap_corrupted: false,
                heap_max_overrun: 0,
            }
        }
    }
}

/// Run `check_host` for `case` through the compiled-policy evaluator,
/// interning into (and memoizing through) `cache`.
fn run_eval_compiled<E: MacroExpander>(
    case: &ConformanceCase,
    expander: &mut E,
    cache: &mut PolicyCache,
) -> (SpfResult, Vec<(String, RecordType)>, Option<String>) {
    let mut dns = FixtureDns::new(case);
    let mut eval = CompiledEvaluator::new(&mut dns, expander, cache);
    let result = eval.check_host(case.client_ip, &case.sender_local, &case.sender_domain);
    let queries = eval
        .trace()
        .iter()
        .filter_map(|event| match event {
            TraceEvent::Query { name, rtype } => Some((name.to_ascii(), *rtype)),
            _ => None,
        })
        .collect();
    let explanation = eval.explanation().map(str::to_string);
    (result, queries, explanation)
}

/// Differential check of the compiled-policy evaluator against the
/// interpretive [`Evaluator`]: every profile, evaluated on a cold cache
/// and again on the warm cache (so the result-memo replay path is
/// exercised, not just compilation). Compares the full observable
/// surface the paper's fingerprints live in — verdict, DNS query
/// sequence *as spelled*, and the `exp=` explanation. Returns
/// human-readable divergences; equivalence is the empty vector.
pub fn diff_compiled(case: &ConformanceCase) -> Vec<String> {
    let mut divergences = Vec::new();
    let mut check = |behavior: MacroBehavior| {
        let reference = eval_profile(case, behavior);
        let mut cache = PolicyCache::new();
        for pass in ["cold", "warm"] {
            let (result, queries, explanation) = match behavior {
                MacroBehavior::VulnerableLibSpf2 | MacroBehavior::PatchedLibSpf2 => {
                    let mut expander = if behavior.is_vulnerable() {
                        LibSpf2Expander::vulnerable()
                    } else {
                        LibSpf2Expander::patched()
                    };
                    run_eval_compiled(case, &mut expander, &mut cache)
                }
                _ => {
                    let mut expander = behavior.expander();
                    run_eval_compiled(case, &mut expander, &mut cache)
                }
            };
            if result != reference.result {
                divergences.push(format!(
                    "[{behavior:?}/{pass}] result {result:?} != interpretive {:?}",
                    reference.result
                ));
            }
            if queries != reference.queries {
                divergences.push(format!(
                    "[{behavior:?}/{pass}] queries {queries:?} != interpretive {:?}",
                    reference.queries
                ));
            }
            if explanation != reference.explanation {
                divergences.push(format!(
                    "[{behavior:?}/{pass}] explanation {explanation:?} != interpretive {:?}",
                    reference.explanation
                ));
            }
        }
    };
    check(MacroBehavior::Compliant);
    for &behavior in PROFILES {
        check(behavior);
    }
    divergences
}

/// Divergence-relevant properties of one reference expansion.
#[derive(Debug, Default, Clone, Copy)]
struct RefFlags {
    /// CVE-2021-33913 first-label duplication fired.
    dup: bool,
    /// CVE-2021-33912 sign-extended escape fired.
    sign_extend: bool,
    /// A `%xx` escape used lowercase hex where the RFC path uses upper.
    lowercase_hex: bool,
    /// The model predicts an out-of-bounds write for this expansion.
    overflow: bool,
}

/// What a reference model expects an expansion to do.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RefOut {
    Ok(String),
    ExpOnly(char),
    Fault,
}

/// Independent model of `SPF_record_expand_data`'s per-macro path: split,
/// (buggy) reverse/truncate, then the (buggy) URL-escape arithmetic. The
/// allocation is `3 × len + 1` bytes where `len` may be the *truncated*
/// length (CVE-2021-33913); writes stop `OVERRUN_CAP` bytes past it.
fn ref_libspf2_macro(
    raw: &str,
    transform: &MacroTransform,
    escape: bool,
    vulnerable: bool,
    flags: &mut RefFlags,
) -> String {
    let delims = transform.delimiters_or_default();
    let mut parts: Vec<&str> = raw.split(|c| delims.contains(&c)).collect();
    let keep = |transform: &MacroTransform, n: usize| match transform.digits {
        Some(d) => (d.max(1) as usize).min(n),
        None => n,
    };
    let (plain, len_var) = if transform.reverse {
        parts.reverse();
        let kept = keep(transform, parts.len());
        let truncated = parts[parts.len() - kept..].join(".");
        if vulnerable && transform.digits.is_some() {
            flags.dup = true;
            (format!("{}.{}", parts[0], parts.join(".")), truncated.len())
        } else {
            let len = truncated.len();
            (truncated, len)
        }
    } else {
        let kept = keep(transform, parts.len());
        let out = parts[parts.len() - kept..].join(".");
        let len = out.len();
        (out, len)
    };
    if !escape {
        return plain;
    }
    let mut encoded: Vec<u8> = Vec::new();
    for &b in plain.as_bytes() {
        if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~') {
            encoded.push(b);
        } else if b < 0x80 || !vulnerable {
            let escaped = format!("%{b:02x}");
            if escaped.bytes().any(|c| c.is_ascii_lowercase()) {
                flags.lowercase_hex = true;
            }
            encoded.extend_from_slice(escaped.as_bytes());
        } else {
            flags.sign_extend = true;
            let widened = b as i8 as i32 as u32;
            encoded.extend_from_slice(format!("%{widened:08x}").as_bytes());
        }
    }
    let alloc_size = len_var * 3 + 1;
    // The NUL terminator counts: `encoded.len() + 1 > alloc_size` means
    // some write lands out of bounds.
    if encoded.len() >= alloc_size {
        flags.overflow = true;
    }
    encoded.truncate(alloc_size + OVERRUN_CAP);
    String::from_utf8_lossy(&encoded).into_owned()
}

fn maybe_escape(value: String, escape: bool) -> String {
    if escape {
        url_escape(&value)
    } else {
        value
    }
}

/// Reference expansion of a whole macro string under `behavior`.
fn ref_expand(
    behavior: MacroBehavior,
    ms: &MacroString,
    ctx: &MacroContext,
    in_exp: bool,
    flags: &mut RefFlags,
) -> RefOut {
    if behavior == MacroBehavior::NoExpansion {
        return RefOut::Ok(ms.source().to_string());
    }
    // Only the compliant path and the libSPF2 emulation police exp-only
    // letters; the quirk profiles deliberately do not.
    let enforce_exp_only = matches!(
        behavior,
        MacroBehavior::Compliant
            | MacroBehavior::VulnerableLibSpf2
            | MacroBehavior::PatchedLibSpf2
    );
    let mut out = String::new();
    for token in ms.tokens() {
        match token {
            MacroToken::Literal(text) => out.push_str(text),
            MacroToken::Percent => out.push('%'),
            MacroToken::Space => out.push(' '),
            MacroToken::UrlSpace => out.push_str("%20"),
            MacroToken::Macro {
                letter,
                url_escape: escape,
                transform,
            } => {
                if letter.exp_only() && !in_exp && enforce_exp_only {
                    return RefOut::ExpOnly(letter.as_char());
                }
                let raw = ctx.raw_value(*letter);
                let expanded = match behavior {
                    MacroBehavior::Compliant => {
                        maybe_escape(apply_transform(&raw, transform), *escape)
                    }
                    MacroBehavior::VulnerableLibSpf2 | MacroBehavior::PatchedLibSpf2 => {
                        ref_libspf2_macro(&raw, transform, *escape, behavior.is_vulnerable(), flags)
                    }
                    MacroBehavior::ReverseNoTruncate => {
                        let t = MacroTransform {
                            digits: None,
                            ..transform.clone()
                        };
                        maybe_escape(apply_transform(&raw, &t), *escape)
                    }
                    MacroBehavior::TruncateNoReverse => {
                        let t = MacroTransform {
                            reverse: false,
                            ..transform.clone()
                        };
                        maybe_escape(apply_transform(&raw, &t), *escape)
                    }
                    MacroBehavior::IgnoreTransformers => maybe_escape(raw.clone(), *escape),
                    MacroBehavior::EmptyExpansion => String::new(),
                    MacroBehavior::MacroUnsupported => return RefOut::Fault,
                    MacroBehavior::NoExpansion => unreachable!("handled above"),
                };
                out.push_str(&expanded);
            }
        }
    }
    if behavior == MacroBehavior::EmptyExpansion {
        return RefOut::Ok(out.trim_start_matches('.').to_string());
    }
    RefOut::Ok(out)
}

/// Expansion-layer findings for one (case, profile) pair.
#[derive(Debug, Default, Clone)]
struct ExpansionFinding {
    quirks: BTreeSet<&'static str>,
    bugs: Vec<String>,
}

/// Every macro string the case's fixtures can put in front of an
/// expander, with the evaluation domain it would be expanded under and
/// whether it is explanation text.
fn macro_strings_of(case: &ConformanceCase) -> Vec<(String, MacroString, bool)> {
    let mut out = Vec::new();
    for (owner, content) in case.txt_contents() {
        if SpfRecord::looks_like_spf(content) {
            let Ok(record) = SpfRecord::parse(content) else {
                // Unparseable policies permerror identically everywhere
                // before any expansion happens.
                continue;
            };
            let mut push = |ms: &MacroString| out.push((owner.to_string(), ms.clone(), false));
            for mechanism in &record.mechanisms {
                match &mechanism.kind {
                    MechanismKind::Include(ms) | MechanismKind::Exists(ms) => push(ms),
                    MechanismKind::A { domain, .. }
                    | MechanismKind::Mx { domain, .. }
                    | MechanismKind::Ptr { domain } => {
                        if let Some(ms) = domain {
                            push(ms);
                        }
                    }
                    _ => {}
                }
            }
            for modifier in &record.modifiers {
                match modifier {
                    Modifier::Redirect(ms) | Modifier::Explanation(ms) => push(ms),
                    Modifier::Unknown { .. } => {}
                }
            }
        } else if let Ok(ms) = MacroString::parse(content) {
            // A non-policy TXT is a potential exp= explanation body.
            out.push((owner.to_string(), ms, true));
        }
    }
    out
}

fn check_expansions(case: &ConformanceCase, behavior: MacroBehavior) -> ExpansionFinding {
    let mut finding = ExpansionFinding::default();
    for (domain, ms, in_exp) in macro_strings_of(case) {
        let mut ctx = MacroContext::new(&case.sender_local, &case.sender_domain, case.client_ip);
        // check_domain() carries the current evaluation domain into the
        // context while helo stays pinned to the sender domain; mirror it.
        ctx.domain = domain.clone();

        let compliant = CompliantExpander.expand(&ms, &ctx, in_exp);
        let (actual, heap_corrupted) = match behavior {
            MacroBehavior::VulnerableLibSpf2 | MacroBehavior::PatchedLibSpf2 => {
                let mut expander = if behavior.is_vulnerable() {
                    LibSpf2Expander::vulnerable()
                } else {
                    LibSpf2Expander::patched()
                };
                let actual = expander.expand(&ms, &ctx, in_exp);
                (actual, expander.heap().corrupted())
            }
            _ => (behavior.expander().expand(&ms, &ctx, in_exp), false),
        };

        let mut flags = RefFlags::default();
        let expected = ref_expand(behavior, &ms, &ctx, in_exp, &mut flags);

        let matches_model = match (&actual, &expected) {
            (Ok(a), RefOut::Ok(e)) => a == e,
            (Err(ExpandError::ExpOnlyLetter(c)), RefOut::ExpOnly(e)) => c == e,
            (Err(ExpandError::ImplementationFault(_)), RefOut::Fault) => true,
            _ => false,
        };
        if !matches_model {
            finding.bugs.push(format!(
                "{behavior:?} expanding {:?} under domain {domain:?}: got {actual:?}, model expected {expected:?}",
                ms.source(),
            ));
        }

        if matches!(
            behavior,
            MacroBehavior::VulnerableLibSpf2 | MacroBehavior::PatchedLibSpf2
        ) {
            if heap_corrupted != flags.overflow {
                finding.bugs.push(format!(
                    "{behavior:?} expanding {:?}: memsim corruption {heap_corrupted} but the model predicted {}",
                    ms.source(),
                    flags.overflow,
                ));
            }
            if !behavior.is_vulnerable() && heap_corrupted {
                finding.bugs.push(format!(
                    "patched expander corrupted the heap on {:?}",
                    ms.source(),
                ));
            }
            // A predicted overflow is a physical CVE fingerprint even
            // when the logical outcome agrees with the compliant path —
            // e.g. a later exp-only letter faults the whole expansion
            // after the heap is already smashed — so name it without
            // waiting for a visible divergence.
            if behavior.is_vulnerable() && flags.overflow {
                if flags.sign_extend {
                    finding.quirks.insert("sign-extended-escape");
                }
                if flags.dup {
                    finding.quirks.insert("bogus-length-overflow");
                }
                if !flags.sign_extend && !flags.dup {
                    finding.bugs.push(format!(
                        "model predicted an overflow on {:?} with no CVE flag set",
                        ms.source(),
                    ));
                }
            }
        }

        let diverged = match (&actual, &compliant) {
            (Ok(a), Ok(c)) => a != c,
            (Err(a), Err(c)) => a != c,
            _ => true,
        };
        if !diverged || behavior == MacroBehavior::Compliant {
            continue;
        }
        match behavior {
            MacroBehavior::VulnerableLibSpf2 | MacroBehavior::PatchedLibSpf2 => {
                let mut named = false;
                if flags.dup {
                    finding.quirks.insert("dup-first-reversed-label");
                    named = true;
                }
                if flags.sign_extend {
                    finding.quirks.insert("sign-extended-escape");
                    named = true;
                }
                if flags.lowercase_hex {
                    finding.quirks.insert("lowercase-hex-escape");
                    named = true;
                }
                if flags.overflow && flags.dup {
                    finding.quirks.insert("bogus-length-overflow");
                }
                if !named {
                    finding.bugs.push(format!(
                        "{behavior:?} diverged on {:?} with no known-quirk flag set",
                        ms.source(),
                    ));
                }
            }
            other => {
                for quirk in quirks_for_behavior(other) {
                    finding.quirks.insert(quirk.name);
                }
            }
        }
    }
    finding
}

/// The oracle's judgement of one profile on one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Byte-identical to the compliant evaluation.
    Agreement,
    /// Diverged, and every divergence matched the named allowlist.
    KnownQuirk(BTreeSet<&'static str>),
    /// Unexplained divergence or model mismatch — a real defect.
    Bug(Vec<String>),
}

/// One profile's outcome plus its classification.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The profile.
    pub behavior: MacroBehavior,
    /// What the evaluation observed.
    pub outcome: ProfileOutcome,
    /// How the oracle classified it.
    pub verdict: Verdict,
}

/// The full differential report for one case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The compliant baseline every profile is compared against.
    pub compliant: ProfileOutcome,
    /// One report per entry in [`PROFILES`].
    pub profiles: Vec<ProfileReport>,
}

impl CaseReport {
    /// All bug descriptions, tagged with the profile that produced them.
    pub fn bugs(&self) -> Vec<(MacroBehavior, String)> {
        let mut out = Vec::new();
        for profile in &self.profiles {
            if let Verdict::Bug(bugs) = &profile.verdict {
                for bug in bugs {
                    out.push((profile.behavior, bug.clone()));
                }
            }
        }
        out
    }

    /// The union of quirk names observed across profiles.
    pub fn quirk_names(&self) -> BTreeSet<&'static str> {
        let mut out = BTreeSet::new();
        for profile in &self.profiles {
            if let Verdict::KnownQuirk(names) = &profile.verdict {
                out.extend(names.iter().copied());
            }
        }
        out
    }
}

/// Run the full differential oracle on one case.
pub fn run_case(case: &ConformanceCase) -> CaseReport {
    // The compliant profile is also checked against its own reference
    // model, so a defect in the baseline itself cannot hide.
    let compliant_finding = check_expansions(case, MacroBehavior::Compliant);
    let compliant = eval_profile(case, MacroBehavior::Compliant);

    let mut profiles = Vec::with_capacity(PROFILES.len());
    for &behavior in PROFILES {
        let finding = check_expansions(case, behavior);
        let outcome = eval_profile(case, behavior);
        let mut bugs = finding.bugs;
        bugs.extend(compliant_finding.bugs.iter().cloned());

        if outcome.heap_corrupted {
            let predicted_overflow = finding.quirks.contains("bogus-length-overflow")
                || finding.quirks.contains("sign-extended-escape");
            if !behavior.is_vulnerable() {
                bugs.push("non-vulnerable profile corrupted the simulated heap".to_string());
            } else if !predicted_overflow {
                bugs.push(
                    "heap corruption observed without a predicting overflow quirk".to_string(),
                );
            }
        }

        // Heap corruption counts as divergence even when the protocol-
        // visible behaviour agrees: the smashed allocation is the CVE,
        // whether or not this particular case surfaced it in a query.
        let diverged = outcome.result != compliant.result
            || outcome.queries != compliant.queries
            || outcome.explanation != compliant.explanation
            || outcome.heap_corrupted;
        let verdict = if !bugs.is_empty() {
            Verdict::Bug(bugs)
        } else if !diverged {
            Verdict::Agreement
        } else if !finding.quirks.is_empty() {
            Verdict::KnownQuirk(finding.quirks)
        } else {
            Verdict::Bug(vec![format!(
                "evaluation diverged from compliant (result {:?} vs {:?}) with no expansion-level quirk",
                outcome.result, compliant.result,
            )])
        };
        profiles.push(ProfileReport {
            behavior,
            outcome,
            verdict,
        });
    }
    CaseReport { compliant, profiles }
}

/// Aggregate statistics over a seeded differential run.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Cases evaluated.
    pub cases: usize,
    /// (profile, case-name, description) for every bug verdict.
    pub bugs: Vec<(MacroBehavior, String, String)>,
    /// How often each named quirk was observed.
    pub quirk_counts: BTreeMap<&'static str, usize>,
    /// Cases where every profile agreed byte-for-byte.
    pub full_agreements: usize,
}

/// Generate `count` cases from `seed` and run the oracle over each.
pub fn run_seeded(seed: u64, count: usize) -> Summary {
    let mut summary = Summary::default();
    for index in 0..count {
        let case = crate::gen::generate_case(seed, index as u64);
        let report = run_case(&case);
        summary.cases += 1;
        for (behavior, bug) in report.bugs() {
            summary.bugs.push((behavior, case.name.clone(), bug));
        }
        let quirks = report.quirk_names();
        for quirk in &quirks {
            *summary.quirk_counts.entry(quirk).or_insert(0) += 1;
        }
        if quirks.is_empty() && report.bugs().is_empty() {
            summary.full_agreements += 1;
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::ConformanceCase;

    fn base(policy: &str) -> ConformanceCase {
        ConformanceCase::new("t", "192.0.2.3".parse().unwrap(), "user", "example.com")
            .txt("example.com", policy)
    }

    #[test]
    fn plain_policy_agrees_everywhere() {
        let report = run_case(&base("v=spf1 ip4:192.0.2.0/24 -all"));
        for profile in &report.profiles {
            assert_eq!(profile.verdict, Verdict::Agreement, "{:?}", profile.behavior);
        }
    }

    #[test]
    fn fingerprint_macro_is_a_named_quirk_not_a_bug() {
        let case = base("v=spf1 a:%{d1r}.probe.example.org -all")
            .a("example.probe.example.org", "192.0.2.3".parse().unwrap())
            .a("com.com.example.probe.example.org", "192.0.2.3".parse().unwrap());
        let report = run_case(&case);
        assert!(report.bugs().is_empty(), "{:?}", report.bugs());
        assert!(report.quirk_names().contains("dup-first-reversed-label"));
    }

    #[test]
    fn uppercase_high_byte_macro_overflows_only_the_vulnerable_heap() {
        let case = ConformanceCase::new(
            "t",
            "192.0.2.3".parse().unwrap(),
            "caf\u{e9}-caf\u{e9}-caf\u{e9}",
            "example.com",
        )
        .txt("example.com", "v=spf1 exists:%{L}.e.example.org -all");
        let report = run_case(&case);
        assert!(report.bugs().is_empty(), "{:?}", report.bugs());
        let vulnerable = report
            .profiles
            .iter()
            .find(|p| p.behavior == MacroBehavior::VulnerableLibSpf2)
            .unwrap();
        assert!(vulnerable.outcome.heap_corrupted);
        assert!(report.quirk_names().contains("sign-extended-escape"));
        let patched = report
            .profiles
            .iter()
            .find(|p| p.behavior == MacroBehavior::PatchedLibSpf2)
            .unwrap();
        assert!(!patched.outcome.heap_corrupted);
    }

    #[test]
    fn exp_only_letter_outside_exp_is_uniform_permerror_for_real_impls() {
        let report = run_case(&base("v=spf1 exists:%{c}.e.example.org -all"));
        assert_eq!(report.compliant.result, SpfResult::PermError);
        for profile in &report.profiles {
            assert!(
                !matches!(profile.verdict, Verdict::Bug(_)),
                "{:?}: {:?}",
                profile.behavior,
                profile.verdict,
            );
        }
    }
}
