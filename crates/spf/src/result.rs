//! SPF results and mechanism qualifiers.

use std::fmt;

/// The seven results of `check_host()` (RFC 7208 §2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpfResult {
    /// No SPF record was found (or the domain is invalid).
    None,
    /// A record exists but asserts nothing about the client.
    Neutral,
    /// The client is authorized.
    Pass,
    /// The client is *not* authorized.
    Fail,
    /// The client is probably not authorized; weak assertion.
    SoftFail,
    /// A transient error (DNS timeouts); the check may be retried.
    TempError,
    /// The record is invalid or limits were exceeded.
    PermError,
}

impl SpfResult {
    /// Whether receiving mail should typically proceed under this result.
    pub fn is_acceptable(self) -> bool {
        matches!(
            self,
            SpfResult::None | SpfResult::Neutral | SpfResult::Pass | SpfResult::SoftFail
        )
    }
}

impl fmt::Display for SpfResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpfResult::None => "none",
            SpfResult::Neutral => "neutral",
            SpfResult::Pass => "pass",
            SpfResult::Fail => "fail",
            SpfResult::SoftFail => "softfail",
            SpfResult::TempError => "temperror",
            SpfResult::PermError => "permerror",
        };
        f.write_str(s)
    }
}

/// Mechanism qualifiers (RFC 7208 §4.6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Qualifier {
    /// `+` — a match yields `Pass` (the default).
    #[default]
    Pass,
    /// `-` — a match yields `Fail`.
    Fail,
    /// `~` — a match yields `SoftFail`.
    SoftFail,
    /// `?` — a match yields `Neutral`.
    Neutral,
}

impl Qualifier {
    /// The result a matching mechanism with this qualifier produces.
    pub fn result(self) -> SpfResult {
        match self {
            Qualifier::Pass => SpfResult::Pass,
            Qualifier::Fail => SpfResult::Fail,
            Qualifier::SoftFail => SpfResult::SoftFail,
            Qualifier::Neutral => SpfResult::Neutral,
        }
    }

    /// Parse a leading qualifier character, returning it and the rest.
    pub fn strip(term: &str) -> (Qualifier, &str) {
        match term.as_bytes().first() {
            Some(b'+') => (Qualifier::Pass, &term[1..]),
            Some(b'-') => (Qualifier::Fail, &term[1..]),
            Some(b'~') => (Qualifier::SoftFail, &term[1..]),
            Some(b'?') => (Qualifier::Neutral, &term[1..]),
            _ => (Qualifier::Pass, term),
        }
    }

    /// The qualifier's character, empty for the default `+`.
    pub fn symbol(self) -> &'static str {
        match self {
            Qualifier::Pass => "",
            Qualifier::Fail => "-",
            Qualifier::SoftFail => "~",
            Qualifier::Neutral => "?",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualifier_results() {
        assert_eq!(Qualifier::Pass.result(), SpfResult::Pass);
        assert_eq!(Qualifier::Fail.result(), SpfResult::Fail);
        assert_eq!(Qualifier::SoftFail.result(), SpfResult::SoftFail);
        assert_eq!(Qualifier::Neutral.result(), SpfResult::Neutral);
    }

    #[test]
    fn strip_parses_all_prefixes() {
        assert_eq!(Qualifier::strip("-all"), (Qualifier::Fail, "all"));
        assert_eq!(Qualifier::strip("~all"), (Qualifier::SoftFail, "all"));
        assert_eq!(Qualifier::strip("?all"), (Qualifier::Neutral, "all"));
        assert_eq!(Qualifier::strip("+all"), (Qualifier::Pass, "all"));
        assert_eq!(Qualifier::strip("all"), (Qualifier::Pass, "all"));
        assert_eq!(Qualifier::strip(""), (Qualifier::Pass, ""));
    }

    #[test]
    fn acceptability() {
        assert!(SpfResult::Pass.is_acceptable());
        assert!(SpfResult::None.is_acceptable());
        assert!(SpfResult::SoftFail.is_acceptable());
        assert!(!SpfResult::Fail.is_acceptable());
        assert!(!SpfResult::PermError.is_acceptable());
        assert!(!SpfResult::TempError.is_acceptable());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(SpfResult::SoftFail.to_string(), "softfail");
        assert_eq!(SpfResult::PermError.to_string(), "permerror");
    }
}
