//! Macro expansion: the RFC-compliant reference implementation.
//!
//! The [`MacroExpander`] trait is the seam the whole reproduction pivots
//! on. The evaluator asks its expander to turn a macro-string plus a
//! [`MacroContext`] into a domain name; a compliant expander produces
//! `example.foo.com` where the vulnerable libSPF2 one produces
//! `com.com.example.foo.com` — and that difference, observed at the
//! authoritative DNS server, is the paper's detection fingerprint.

use std::fmt;
use std::net::IpAddr;

use crate::macrostring::{MacroLetter, MacroString, MacroToken, MacroTransform};

/// Everything a macro expansion can draw on (RFC 7208 §7.2).
#[derive(Debug, Clone)]
pub struct MacroContext {
    /// The sender's local part (`l`).
    pub sender_local: String,
    /// The sender's domain (`o`).
    pub sender_domain: String,
    /// The current evaluation domain (`d`); changes across `include`/`redirect`.
    pub domain: String,
    /// The SMTP client's IP address (`i`, `c`, `v`).
    pub client_ip: IpAddr,
    /// The HELO/EHLO identity (`h`).
    pub helo: String,
    /// The receiving host (`r`, exp-only).
    pub receiver: String,
    /// Unix timestamp (`t`, exp-only).
    pub timestamp: u64,
}

impl MacroContext {
    /// A context for sender `local@domain` from `client_ip`.
    pub fn new(local: &str, domain: &str, client_ip: IpAddr) -> MacroContext {
        MacroContext {
            sender_local: local.to_string(),
            sender_domain: domain.to_string(),
            domain: domain.to_string(),
            client_ip,
            helo: domain.to_string(),
            receiver: "receiver.invalid".to_string(),
            timestamp: 0,
        }
    }

    /// The full sender address (`s`).
    pub fn sender(&self) -> String {
        format!("{}@{}", self.sender_local, self.sender_domain)
    }

    /// The raw (pre-transform) value of a macro letter.
    pub fn raw_value(&self, letter: MacroLetter) -> String {
        match letter {
            MacroLetter::Sender => self.sender(),
            MacroLetter::Local => self.sender_local.clone(),
            MacroLetter::SenderDomain => self.sender_domain.clone(),
            MacroLetter::Domain => self.domain.clone(),
            MacroLetter::Ip => match self.client_ip {
                IpAddr::V4(v4) => v4.to_string(),
                IpAddr::V6(v6) => {
                    // Dotted nibble form, as used under ip6.arpa.
                    let octets = v6.octets();
                    let mut nibbles = Vec::with_capacity(32);
                    for byte in octets {
                        nibbles.push(format!("{:x}", byte >> 4));
                        nibbles.push(format!("{:x}", byte & 0x0f));
                    }
                    nibbles.join(".")
                }
            },
            MacroLetter::Validated => "unknown".to_string(),
            MacroLetter::IpVersion => match self.client_ip {
                IpAddr::V4(_) => "in-addr".to_string(),
                IpAddr::V6(_) => "ip6".to_string(),
            },
            MacroLetter::Helo => self.helo.clone(),
            MacroLetter::ClientIp => self.client_ip.to_string(),
            MacroLetter::Receiver => self.receiver.clone(),
            MacroLetter::Timestamp => self.timestamp.to_string(),
        }
    }
}

/// Errors during expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// An exp-only macro letter appeared outside `exp=` text.
    ExpOnlyLetter(char),
    /// The implementation crashed while expanding (vulnerable
    /// implementations corrupting their heap report this).
    ImplementationFault(String),
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::ExpOnlyLetter(c) => {
                write!(f, "macro letter {c} only allowed in exp text")
            }
            ExpandError::ImplementationFault(s) => write!(f, "implementation fault: {s}"),
        }
    }
}

impl std::error::Error for ExpandError {}

/// The pluggable expansion strategy.
pub trait MacroExpander {
    /// Expand `ms` in `ctx`. `in_exp` marks explanation-string context,
    /// where the `c`/`r`/`t` letters become legal.
    fn expand(
        &mut self,
        ms: &MacroString,
        ctx: &MacroContext,
        in_exp: bool,
    ) -> Result<String, ExpandError>;

    /// A short identifier for logs and classification tables.
    fn describe(&self) -> &'static str;
}

impl<T: MacroExpander + ?Sized> MacroExpander for Box<T> {
    fn expand(
        &mut self,
        ms: &MacroString,
        ctx: &MacroContext,
        in_exp: bool,
    ) -> Result<String, ExpandError> {
        (**self).expand(ms, ctx, in_exp)
    }

    fn describe(&self) -> &'static str {
        (**self).describe()
    }
}

/// Apply split / reverse / truncate / re-join (RFC 7208 §7.3).
pub fn apply_transform(value: &str, transform: &MacroTransform) -> String {
    let delims = transform.delimiters_or_default();
    let mut parts: Vec<&str> = value.split(|c| delims.contains(&c)).collect();
    if transform.reverse {
        parts.reverse();
    }
    if let Some(n) = transform.digits {
        let n = n.max(1) as usize;
        if parts.len() > n {
            parts = parts.split_off(parts.len() - n);
        }
    }
    parts.join(".")
}

/// Percent-encode everything outside RFC 3986 unreserved characters.
pub fn url_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for &b in value.as_bytes() {
        if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~') {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// The RFC 7208-compliant expander.
#[derive(Debug, Default, Clone, Copy)]
pub struct CompliantExpander;

impl MacroExpander for CompliantExpander {
    fn expand(
        &mut self,
        ms: &MacroString,
        ctx: &MacroContext,
        in_exp: bool,
    ) -> Result<String, ExpandError> {
        let mut out = String::new();
        for token in ms.tokens() {
            match token {
                MacroToken::Literal(text) => out.push_str(text),
                MacroToken::Percent => out.push('%'),
                MacroToken::Space => out.push(' '),
                MacroToken::UrlSpace => out.push_str("%20"),
                MacroToken::Macro {
                    letter,
                    url_escape: escape,
                    transform,
                } => {
                    if letter.exp_only() && !in_exp {
                        return Err(ExpandError::ExpOnlyLetter(letter.as_char()));
                    }
                    let raw = ctx.raw_value(*letter);
                    let transformed = apply_transform(&raw, transform);
                    if *escape {
                        out.push_str(&url_escape(&transformed));
                    } else {
                        out.push_str(&transformed);
                    }
                }
            }
        }
        Ok(out)
    }

    fn describe(&self) -> &'static str {
        "rfc7208"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MacroContext {
        MacroContext::new("user", "example.com", "192.0.2.3".parse().unwrap())
    }

    fn expand(s: &str) -> String {
        CompliantExpander
            .expand(&MacroString::parse(s).unwrap(), &ctx(), false)
            .unwrap()
    }

    /// The exact examples from paper §2.2.
    #[test]
    fn paper_examples() {
        assert_eq!(expand("%{l}"), "user");
        assert_eq!(expand("%{d}"), "example.com");
        assert_eq!(expand("%{d2}"), "example.com");
        assert_eq!(expand("%{d1}"), "com");
        assert_eq!(expand("%{dr}"), "com.example");
        assert_eq!(expand("%{d1r}"), "example");
    }

    /// The detection mechanism from paper §4.2: RFC-compliant behaviour.
    #[test]
    fn paper_detection_compliant_case() {
        assert_eq!(expand("%{d1r}.foo.com"), "example.foo.com");
    }

    #[test]
    fn sender_macros() {
        assert_eq!(expand("%{s}"), "user@example.com");
        assert_eq!(expand("%{o}"), "example.com");
        assert_eq!(expand("%{h}"), "example.com");
    }

    #[test]
    fn ip_macros() {
        assert_eq!(expand("%{i}"), "192.0.2.3");
        assert_eq!(expand("%{ir}"), "3.2.0.192");
        assert_eq!(expand("%{v}"), "in-addr");
        assert_eq!(
            expand("%{ir}.%{v}.arpa"),
            "3.2.0.192.in-addr.arpa",
            "classic reverse-zone construction"
        );
    }

    #[test]
    fn ipv6_nibbles() {
        let ctx6 = MacroContext::new("u", "example.com", "2001:db8::1".parse().unwrap());
        let out = CompliantExpander
            .expand(&MacroString::parse("%{i}").unwrap(), &ctx6, false)
            .unwrap();
        assert!(out.starts_with("2.0.0.1.0.d.b.8"));
        assert_eq!(out.split('.').count(), 32);
        let v = CompliantExpander
            .expand(&MacroString::parse("%{v}").unwrap(), &ctx6, false)
            .unwrap();
        assert_eq!(v, "ip6");
    }

    #[test]
    fn url_escaping_uppercase_letter() {
        let ctx = MacroContext::new("strange/user", "example.com", "192.0.2.3".parse().unwrap());
        let out = CompliantExpander
            .expand(&MacroString::parse("%{L}").unwrap(), &ctx, false)
            .unwrap();
        assert_eq!(out, "strange%2Fuser");
    }

    #[test]
    fn url_escape_handles_high_bytes() {
        // The correct rendering of a byte ≥ 0x80 — exactly what the buggy
        // sprintf in libSPF2 gets wrong (it emits %FFFFFFxx instead).
        assert_eq!(url_escape("caf\u{e9}"), "caf%C3%A9"); // UTF-8 of é
        assert_eq!(url_escape("a b"), "a%20b");
        assert_eq!(url_escape("safe-._~"), "safe-._~");
    }

    #[test]
    fn custom_delimiters_split_local_parts() {
        let ctx = MacroContext::new("a-b+c", "example.com", "192.0.2.3".parse().unwrap());
        let out = CompliantExpander
            .expand(&MacroString::parse("%{l-+}").unwrap(), &ctx, false)
            .unwrap();
        assert_eq!(out, "a.b.c", "split on - and +, rejoined with dots");
    }

    #[test]
    fn exp_only_letters_rejected_outside_exp() {
        let err = CompliantExpander
            .expand(&MacroString::parse("%{t}").unwrap(), &ctx(), false)
            .unwrap_err();
        assert_eq!(err, ExpandError::ExpOnlyLetter('t'));
        // ... but allowed inside exp.
        let ok = CompliantExpander
            .expand(&MacroString::parse("%{r}").unwrap(), &ctx(), true)
            .unwrap();
        assert_eq!(ok, "receiver.invalid");
    }

    #[test]
    fn escapes_expand() {
        assert_eq!(expand("a%%b"), "a%b");
        assert_eq!(expand("a%_b"), "a b");
        assert_eq!(expand("a%-b"), "a%20b");
    }

    #[test]
    fn transform_digits_larger_than_label_count() {
        assert_eq!(expand("%{d9}"), "example.com");
        assert_eq!(expand("%{d9r}"), "com.example");
    }

    #[test]
    fn apply_transform_unit() {
        let t = MacroTransform {
            digits: Some(2),
            reverse: true,
            delimiters: vec![],
        };
        assert_eq!(apply_transform("a.b.c.d", &t), "b.a");
        let t0 = MacroTransform {
            digits: Some(0),
            reverse: false,
            delimiters: vec![],
        };
        // digits=0 is nonsense; treat as 1 (defensive).
        assert_eq!(apply_transform("a.b", &t0), "b");
    }
}
