//! Macro expansion: the RFC-compliant reference implementation.
//!
//! The [`MacroExpander`] trait is the seam the whole reproduction pivots
//! on. The evaluator asks its expander to turn a macro-string plus a
//! [`MacroContext`] into a domain name; a compliant expander produces
//! `example.foo.com` where the vulnerable libSPF2 one produces
//! `com.com.example.foo.com` — and that difference, observed at the
//! authoritative DNS server, is the paper's detection fingerprint.

use std::fmt;
use std::fmt::Write as _;
use std::net::IpAddr;

use crate::macrostring::{MacroLetter, MacroString, MacroToken, MacroTransform};

/// Everything a macro expansion can draw on (RFC 7208 §7.2).
#[derive(Debug, Clone)]
pub struct MacroContext {
    /// The sender's local part (`l`).
    pub sender_local: String,
    /// The sender's domain (`o`).
    pub sender_domain: String,
    /// The current evaluation domain (`d`); changes across `include`/`redirect`.
    pub domain: String,
    /// The SMTP client's IP address (`i`, `c`, `v`).
    pub client_ip: IpAddr,
    /// The HELO/EHLO identity (`h`).
    pub helo: String,
    /// The receiving host (`r`, exp-only).
    pub receiver: String,
    /// Unix timestamp (`t`, exp-only).
    pub timestamp: u64,
}

impl MacroContext {
    /// A context for sender `local@domain` from `client_ip`.
    pub fn new(local: &str, domain: &str, client_ip: IpAddr) -> MacroContext {
        MacroContext {
            sender_local: local.to_string(),
            sender_domain: domain.to_string(),
            domain: domain.to_string(),
            client_ip,
            helo: domain.to_string(),
            receiver: "receiver.invalid".to_string(),
            timestamp: 0,
        }
    }

    /// The full sender address (`s`).
    pub fn sender(&self) -> String {
        format!("{}@{}", self.sender_local, self.sender_domain)
    }

    /// The raw (pre-transform) value of a macro letter.
    pub fn raw_value(&self, letter: MacroLetter) -> String {
        let mut out = String::new();
        self.write_raw_value(letter, &mut out);
        out
    }

    /// Append the raw (pre-transform) value of a macro letter to `out`
    /// — the allocation-free core of [`MacroContext::raw_value`], used
    /// by expanders that reuse one scratch buffer across tokens.
    pub fn write_raw_value(&self, letter: MacroLetter, out: &mut String) {
        match letter {
            MacroLetter::Sender => {
                out.push_str(&self.sender_local);
                out.push('@');
                out.push_str(&self.sender_domain);
            }
            MacroLetter::Local => out.push_str(&self.sender_local),
            MacroLetter::SenderDomain => out.push_str(&self.sender_domain),
            MacroLetter::Domain => out.push_str(&self.domain),
            MacroLetter::Ip => match self.client_ip {
                IpAddr::V4(v4) => {
                    let _ = write!(out, "{v4}");
                }
                IpAddr::V6(v6) => {
                    // Dotted nibble form, as used under ip6.arpa.
                    for (i, byte) in v6.octets().iter().enumerate() {
                        if i > 0 {
                            out.push('.');
                        }
                        out.push(
                            char::from_digit(u32::from(byte >> 4), 16)
                                .expect("a shifted nibble is always < 16"),
                        );
                        out.push('.');
                        out.push(
                            char::from_digit(u32::from(byte & 0x0f), 16)
                                .expect("a masked nibble is always < 16"),
                        );
                    }
                }
            },
            MacroLetter::Validated => out.push_str("unknown"),
            MacroLetter::IpVersion => out.push_str(match self.client_ip {
                IpAddr::V4(_) => "in-addr",
                IpAddr::V6(_) => "ip6",
            }),
            MacroLetter::Helo => out.push_str(&self.helo),
            MacroLetter::ClientIp => {
                let _ = write!(out, "{}", self.client_ip);
            }
            MacroLetter::Receiver => out.push_str(&self.receiver),
            MacroLetter::Timestamp => {
                let _ = write!(out, "{}", self.timestamp);
            }
        }
    }
}

/// Errors during expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// An exp-only macro letter appeared outside `exp=` text.
    ExpOnlyLetter(char),
    /// The implementation crashed while expanding (vulnerable
    /// implementations corrupting their heap report this).
    ImplementationFault(String),
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::ExpOnlyLetter(c) => {
                write!(f, "macro letter {c} only allowed in exp text")
            }
            ExpandError::ImplementationFault(s) => write!(f, "implementation fault: {s}"),
        }
    }
}

impl std::error::Error for ExpandError {}

/// The pluggable expansion strategy.
pub trait MacroExpander {
    /// Expand `ms` in `ctx`. `in_exp` marks explanation-string context,
    /// where the `c`/`r`/`t` letters become legal.
    fn expand(
        &mut self,
        ms: &MacroString,
        ctx: &MacroContext,
        in_exp: bool,
    ) -> Result<String, ExpandError>;

    /// A short identifier for logs and classification tables.
    fn describe(&self) -> &'static str;

    /// Whether this expander's semantics are exactly RFC 7208 §7.
    ///
    /// The compiled evaluator (`crate::compile`) may substitute its
    /// pre-segmented scratch-buffer splice for a trait call only when the
    /// expander asserts full compliance; every quirky or vulnerable
    /// expander keeps the default `false` and is always consulted, since
    /// even a literal-only macro-string can legally be mangled by a
    /// non-compliant implementation.
    fn is_rfc_compliant(&self) -> bool {
        false
    }
}

impl<T: MacroExpander + ?Sized> MacroExpander for Box<T> {
    fn expand(
        &mut self,
        ms: &MacroString,
        ctx: &MacroContext,
        in_exp: bool,
    ) -> Result<String, ExpandError> {
        (**self).expand(ms, ctx, in_exp)
    }

    fn describe(&self) -> &'static str {
        (**self).describe()
    }

    fn is_rfc_compliant(&self) -> bool {
        (**self).is_rfc_compliant()
    }
}

/// Apply split / reverse / truncate / re-join (RFC 7208 §7.3).
pub fn apply_transform(value: &str, transform: &MacroTransform) -> String {
    let mut out = String::with_capacity(value.len());
    apply_transform_into(value, transform, &mut out);
    out
}

/// Append the transformed `value` to `out` without building a part
/// list: `rsplit` walks the parts in reverse order directly, and the
/// RFC's "keep the right-most n" truncation becomes a `take`/`skip`
/// over the split iterator.
pub fn apply_transform_into(value: &str, transform: &MacroTransform, out: &mut String) {
    let delims = transform.delimiters_or_default();
    let is_delim = |c: char| delims.contains(&c);
    let total = value.split(is_delim).count();
    // digits=0 is nonsense; treat as 1 (defensive).
    let keep = transform
        .digits
        .map_or(total, |n| total.min(n.max(1) as usize));
    // Truncation keeps the right-most `keep` parts of the (possibly
    // reversed) sequence, so both arms skip the same count up front.
    if transform.reverse {
        for (i, part) in value.rsplit(is_delim).skip(total - keep).enumerate() {
            if i > 0 {
                out.push('.');
            }
            out.push_str(part);
        }
    } else {
        for (i, part) in value.split(is_delim).skip(total - keep).enumerate() {
            if i > 0 {
                out.push('.');
            }
            out.push_str(part);
        }
    }
}

/// Percent-encode everything outside RFC 3986 unreserved characters.
pub fn url_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    url_escape_into(value, &mut out);
    out
}

/// Append the percent-encoded `value` to `out`, one hex digit pair per
/// escaped byte — no per-byte `format!` temporaries.
pub fn url_escape_into(value: &str, out: &mut String) {
    const HEX: &[u8; 16] = b"0123456789ABCDEF";
    for &b in value.as_bytes() {
        if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~') {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(HEX[usize::from(b >> 4)] as char);
            out.push(HEX[usize::from(b & 0x0f)] as char);
        }
    }
}

/// The RFC 7208-compliant expander.
#[derive(Debug, Default, Clone, Copy)]
pub struct CompliantExpander;

impl MacroExpander for CompliantExpander {
    fn expand(
        &mut self,
        ms: &MacroString,
        ctx: &MacroContext,
        in_exp: bool,
    ) -> Result<String, ExpandError> {
        let mut out = String::new(); // lint:allow(alloc-hot-path) the trait returns an owned String; one result buffer per expansion is the contract
        // Two scratch buffers reused across every macro token: one for
        // the raw letter value, one for its transformed form when the
        // token also asks for URL escaping.
        let mut raw = String::new(); // lint:allow(alloc-hot-path) String::new is allocation-free; the buffer is reused across all tokens
        let mut transformed = String::new(); // lint:allow(alloc-hot-path) String::new is allocation-free; the buffer is reused across all tokens
        for token in ms.tokens() {
            match token {
                MacroToken::Literal(text) => out.push_str(text),
                MacroToken::Percent => out.push('%'),
                MacroToken::Space => out.push(' '),
                MacroToken::UrlSpace => out.push_str("%20"),
                MacroToken::Macro {
                    letter,
                    url_escape: escape,
                    transform,
                } => {
                    if letter.exp_only() && !in_exp {
                        return Err(ExpandError::ExpOnlyLetter(letter.as_char()));
                    }
                    raw.clear();
                    ctx.write_raw_value(*letter, &mut raw);
                    if *escape {
                        transformed.clear();
                        apply_transform_into(&raw, transform, &mut transformed);
                        url_escape_into(&transformed, &mut out);
                    } else {
                        apply_transform_into(&raw, transform, &mut out);
                    }
                }
            }
        }
        Ok(out)
    }

    fn describe(&self) -> &'static str {
        "rfc7208"
    }

    fn is_rfc_compliant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MacroContext {
        MacroContext::new("user", "example.com", "192.0.2.3".parse().unwrap())
    }

    fn expand(s: &str) -> String {
        CompliantExpander
            .expand(&MacroString::parse(s).unwrap(), &ctx(), false)
            .unwrap()
    }

    /// The exact examples from paper §2.2.
    #[test]
    fn paper_examples() {
        assert_eq!(expand("%{l}"), "user");
        assert_eq!(expand("%{d}"), "example.com");
        assert_eq!(expand("%{d2}"), "example.com");
        assert_eq!(expand("%{d1}"), "com");
        assert_eq!(expand("%{dr}"), "com.example");
        assert_eq!(expand("%{d1r}"), "example");
    }

    /// The detection mechanism from paper §4.2: RFC-compliant behaviour.
    #[test]
    fn paper_detection_compliant_case() {
        assert_eq!(expand("%{d1r}.foo.com"), "example.foo.com");
    }

    #[test]
    fn sender_macros() {
        assert_eq!(expand("%{s}"), "user@example.com");
        assert_eq!(expand("%{o}"), "example.com");
        assert_eq!(expand("%{h}"), "example.com");
    }

    #[test]
    fn ip_macros() {
        assert_eq!(expand("%{i}"), "192.0.2.3");
        assert_eq!(expand("%{ir}"), "3.2.0.192");
        assert_eq!(expand("%{v}"), "in-addr");
        assert_eq!(
            expand("%{ir}.%{v}.arpa"),
            "3.2.0.192.in-addr.arpa",
            "classic reverse-zone construction"
        );
    }

    #[test]
    fn ipv6_nibbles() {
        let ctx6 = MacroContext::new("u", "example.com", "2001:db8::1".parse().unwrap());
        let out = CompliantExpander
            .expand(&MacroString::parse("%{i}").unwrap(), &ctx6, false)
            .unwrap();
        assert!(out.starts_with("2.0.0.1.0.d.b.8"));
        assert_eq!(out.split('.').count(), 32);
        let v = CompliantExpander
            .expand(&MacroString::parse("%{v}").unwrap(), &ctx6, false)
            .unwrap();
        assert_eq!(v, "ip6");
    }

    #[test]
    fn url_escaping_uppercase_letter() {
        let ctx = MacroContext::new("strange/user", "example.com", "192.0.2.3".parse().unwrap());
        let out = CompliantExpander
            .expand(&MacroString::parse("%{L}").unwrap(), &ctx, false)
            .unwrap();
        assert_eq!(out, "strange%2Fuser");
    }

    #[test]
    fn url_escape_handles_high_bytes() {
        // The correct rendering of a byte ≥ 0x80 — exactly what the buggy
        // sprintf in libSPF2 gets wrong (it emits %FFFFFFxx instead).
        assert_eq!(url_escape("caf\u{e9}"), "caf%C3%A9"); // UTF-8 of é
        assert_eq!(url_escape("a b"), "a%20b");
        assert_eq!(url_escape("safe-._~"), "safe-._~");
    }

    #[test]
    fn custom_delimiters_split_local_parts() {
        let ctx = MacroContext::new("a-b+c", "example.com", "192.0.2.3".parse().unwrap());
        let out = CompliantExpander
            .expand(&MacroString::parse("%{l-+}").unwrap(), &ctx, false)
            .unwrap();
        assert_eq!(out, "a.b.c", "split on - and +, rejoined with dots");
    }

    #[test]
    fn exp_only_letters_rejected_outside_exp() {
        let err = CompliantExpander
            .expand(&MacroString::parse("%{t}").unwrap(), &ctx(), false)
            .unwrap_err();
        assert_eq!(err, ExpandError::ExpOnlyLetter('t'));
        // ... but allowed inside exp.
        let ok = CompliantExpander
            .expand(&MacroString::parse("%{r}").unwrap(), &ctx(), true)
            .unwrap();
        assert_eq!(ok, "receiver.invalid");
    }

    #[test]
    fn escapes_expand() {
        assert_eq!(expand("a%%b"), "a%b");
        assert_eq!(expand("a%_b"), "a b");
        assert_eq!(expand("a%-b"), "a%20b");
    }

    #[test]
    fn transform_digits_larger_than_label_count() {
        assert_eq!(expand("%{d9}"), "example.com");
        assert_eq!(expand("%{d9r}"), "com.example");
    }

    #[test]
    fn apply_transform_unit() {
        let t = MacroTransform {
            digits: Some(2),
            reverse: true,
            delimiters: vec![],
        };
        assert_eq!(apply_transform("a.b.c.d", &t), "b.a");
        let t0 = MacroTransform {
            digits: Some(0),
            reverse: false,
            delimiters: vec![],
        };
        // digits=0 is nonsense; treat as 1 (defensive).
        assert_eq!(apply_transform("a.b", &t0), "b");
    }
}
