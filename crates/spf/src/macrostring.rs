//! The SPF macro language (RFC 7208 §7), parsed into tokens.
//!
//! A macro-string is a sequence of literal characters and macro expansions
//! of the form `%{<letter><digits?><r?><delimiters?>}`, plus the escapes
//! `%%`, `%_` and `%-`. The *uppercase* form of a letter requests URL
//! escaping of the expanded value — the trigger condition for both libSPF2
//! CVEs the paper studies.

use std::fmt;

/// A macro letter (RFC 7208 §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacroLetter {
    /// `s` — the full sender address, `local@domain`.
    Sender,
    /// `l` — the sender's local part.
    Local,
    /// `o` — the sender's domain.
    SenderDomain,
    /// `d` — the current evaluation domain.
    Domain,
    /// `i` — the client IP in dotted / nibble form.
    Ip,
    /// `p` — the validated reverse-DNS domain of the client IP.
    Validated,
    /// `v` — `"in-addr"` for IPv4, `"ip6"` for IPv6.
    IpVersion,
    /// `h` — the HELO/EHLO domain.
    Helo,
    /// `c` — the client IP in readable form (exp-only).
    ClientIp,
    /// `r` — the receiving host's domain (exp-only).
    Receiver,
    /// `t` — the current timestamp (exp-only).
    Timestamp,
}

impl MacroLetter {
    /// Parse a letter; uppercase selects URL escaping, reported separately.
    pub fn from_char(c: char) -> Option<(MacroLetter, bool)> {
        let escape = c.is_ascii_uppercase();
        let letter = match c.to_ascii_lowercase() {
            's' => MacroLetter::Sender,
            'l' => MacroLetter::Local,
            'o' => MacroLetter::SenderDomain,
            'd' => MacroLetter::Domain,
            'i' => MacroLetter::Ip,
            'p' => MacroLetter::Validated,
            'v' => MacroLetter::IpVersion,
            'h' => MacroLetter::Helo,
            'c' => MacroLetter::ClientIp,
            'r' => MacroLetter::Receiver,
            't' => MacroLetter::Timestamp,
            _ => return None,
        };
        Some((letter, escape))
    }

    /// Whether this letter is only valid inside `exp=` text.
    pub fn exp_only(self) -> bool {
        matches!(
            self,
            MacroLetter::ClientIp | MacroLetter::Receiver | MacroLetter::Timestamp
        )
    }

    /// The canonical lowercase character.
    pub fn as_char(self) -> char {
        match self {
            MacroLetter::Sender => 's',
            MacroLetter::Local => 'l',
            MacroLetter::SenderDomain => 'o',
            MacroLetter::Domain => 'd',
            MacroLetter::Ip => 'i',
            MacroLetter::Validated => 'p',
            MacroLetter::IpVersion => 'v',
            MacroLetter::Helo => 'h',
            MacroLetter::ClientIp => 'c',
            MacroLetter::Receiver => 'r',
            MacroLetter::Timestamp => 't',
        }
    }
}

/// The transformer part of a macro: keep the last `digits` labels after the
/// optional reversal (RFC 7208 §7.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MacroTransform {
    /// Keep only the rightmost N labels after splitting (and reversing).
    pub digits: Option<u32>,
    /// Reverse the label order before truncating.
    pub reverse: bool,
    /// Split delimiters; empty means the default `.`.
    pub delimiters: Vec<char>,
}

impl MacroTransform {
    /// The effective delimiter set.
    pub fn delimiters_or_default(&self) -> &[char] {
        if self.delimiters.is_empty() {
            &['.']
        } else {
            &self.delimiters
        }
    }
}

/// One token of a macro-string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MacroToken {
    /// Literal text, copied through.
    Literal(String),
    /// A macro expansion.
    Macro {
        /// Which value to expand.
        letter: MacroLetter,
        /// Whether to URL-escape the expansion (uppercase letter).
        url_escape: bool,
        /// Split/reverse/truncate options.
        transform: MacroTransform,
    },
    /// `%%` — a literal percent sign.
    Percent,
    /// `%_` — a literal space.
    Space,
    /// `%-` — a URL-encoded space (`%20`).
    UrlSpace,
}

/// Errors parsing a macro-string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MacroError {
    /// A `%` was followed by something other than `{`, `%`, `_` or `-`.
    BadEscape(char),
    /// `%{` without a closing `}`.
    Unterminated,
    /// An unknown macro letter.
    BadLetter(char),
    /// Junk inside the braces after the transformers.
    BadTransformer(char),
    /// `%` at end of input.
    TrailingPercent,
}

impl fmt::Display for MacroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacroError::BadEscape(c) => write!(f, "invalid escape %{c}"),
            MacroError::Unterminated => write!(f, "unterminated macro"),
            MacroError::BadLetter(c) => write!(f, "unknown macro letter {c}"),
            MacroError::BadTransformer(c) => write!(f, "invalid transformer character {c}"),
            MacroError::TrailingPercent => write!(f, "trailing %"),
        }
    }
}

impl std::error::Error for MacroError {}

/// A parsed macro-string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroString {
    tokens: Vec<MacroToken>,
    source: String,
}

impl MacroString {
    /// Parse `input` as a macro-string.
    pub fn parse(input: &str) -> Result<MacroString, MacroError> {
        let mut tokens = Vec::new();
        let mut literal = String::new();
        let mut chars = input.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '%' {
                literal.push(c);
                continue;
            }
            let Some(&next) = chars.peek() else {
                return Err(MacroError::TrailingPercent);
            };
            if !literal.is_empty() {
                tokens.push(MacroToken::Literal(std::mem::take(&mut literal)));
            }
            match next {
                '%' => {
                    chars.next();
                    tokens.push(MacroToken::Percent);
                }
                '_' => {
                    chars.next();
                    tokens.push(MacroToken::Space);
                }
                '-' => {
                    chars.next();
                    tokens.push(MacroToken::UrlSpace);
                }
                '{' => {
                    chars.next();
                    tokens.push(Self::parse_braced(&mut chars)?);
                }
                other => return Err(MacroError::BadEscape(other)),
            }
        }
        if !literal.is_empty() {
            tokens.push(MacroToken::Literal(literal));
        }
        Ok(MacroString {
            tokens,
            source: input.to_string(),
        })
    }

    fn parse_braced(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<MacroToken, MacroError> {
        let letter_char = chars.next().ok_or(MacroError::Unterminated)?;
        let (letter, url_escape) =
            MacroLetter::from_char(letter_char).ok_or(MacroError::BadLetter(letter_char))?;
        let mut transform = MacroTransform::default();
        let mut digits = String::new();
        // digits, then optional 'r', then delimiters, then '}'.
        loop {
            let c = chars.next().ok_or(MacroError::Unterminated)?;
            match c {
                '}' => break,
                '0'..='9' if !transform.reverse && transform.delimiters.is_empty() => {
                    digits.push(c);
                }
                'r' | 'R' if !transform.reverse && transform.delimiters.is_empty() => {
                    transform.reverse = true;
                }
                '.' | '-' | '+' | ',' | '/' | '_' | '=' => {
                    transform.delimiters.push(c);
                }
                other => return Err(MacroError::BadTransformer(other)),
            }
        }
        if !digits.is_empty() {
            // Cap instead of erroring on absurd digit strings; RFC digits
            // are unbounded but any value beyond the label count behaves
            // like "keep everything".
            transform.digits = Some(digits.parse::<u32>().unwrap_or(u32::MAX));
        }
        Ok(MacroToken::Macro {
            letter,
            url_escape,
            transform,
        })
    }

    /// The parsed tokens.
    pub fn tokens(&self) -> &[MacroToken] {
        &self.tokens
    }

    /// The original text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether any token is a macro (as opposed to pure literal text).
    pub fn has_macros(&self) -> bool {
        self.tokens
            .iter()
            .any(|t| !matches!(t, MacroToken::Literal(_)))
    }

    /// Whether any macro requests URL escaping — the precondition for both
    /// libSPF2 memory-corruption bugs.
    pub fn requests_url_escape(&self) -> bool {
        self.tokens.iter().any(|t| {
            matches!(
                t,
                MacroToken::Macro {
                    url_escape: true,
                    ..
                } | MacroToken::UrlSpace
            )
        })
    }
}

impl fmt::Display for MacroString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_literal() {
        let ms = MacroString::parse("foo.example.com").unwrap();
        assert_eq!(
            ms.tokens(),
            &[MacroToken::Literal("foo.example.com".into())]
        );
        assert!(!ms.has_macros());
    }

    #[test]
    fn the_papers_macro() {
        let ms = MacroString::parse("%{d1r}.foo.com").unwrap();
        assert_eq!(ms.tokens().len(), 2);
        match &ms.tokens()[0] {
            MacroToken::Macro {
                letter,
                url_escape,
                transform,
            } => {
                assert_eq!(*letter, MacroLetter::Domain);
                assert!(!url_escape);
                assert_eq!(transform.digits, Some(1));
                assert!(transform.reverse);
                assert!(transform.delimiters.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ms.tokens()[1], MacroToken::Literal(".foo.com".into()));
        assert!(ms.has_macros());
        assert!(!ms.requests_url_escape());
    }

    #[test]
    fn uppercase_letter_requests_url_escape() {
        let ms = MacroString::parse("%{L}.x").unwrap();
        assert!(ms.requests_url_escape());
        match &ms.tokens()[0] {
            MacroToken::Macro {
                letter, url_escape, ..
            } => {
                assert_eq!(*letter, MacroLetter::Local);
                assert!(url_escape);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn custom_delimiters() {
        let ms = MacroString::parse("%{l-+}").unwrap();
        match &ms.tokens()[0] {
            MacroToken::Macro { transform, .. } => {
                assert_eq!(transform.delimiters, vec!['-', '+']);
                assert_eq!(transform.delimiters_or_default(), &['-', '+']);
            }
            other => panic!("unexpected {other:?}"),
        }
        let default = MacroTransform::default();
        assert_eq!(default.delimiters_or_default(), &['.']);
    }

    #[test]
    fn escapes() {
        let ms = MacroString::parse("a%%b%_c%-d").unwrap();
        assert_eq!(
            ms.tokens(),
            &[
                MacroToken::Literal("a".into()),
                MacroToken::Percent,
                MacroToken::Literal("b".into()),
                MacroToken::Space,
                MacroToken::Literal("c".into()),
                MacroToken::UrlSpace,
                MacroToken::Literal("d".into()),
            ]
        );
        assert!(ms.requests_url_escape(), "%- is a URL escape");
    }

    #[test]
    fn errors() {
        assert_eq!(
            MacroString::parse("%x"),
            Err(MacroError::BadEscape('x'))
        );
        assert_eq!(MacroString::parse("%{d"), Err(MacroError::Unterminated));
        assert_eq!(MacroString::parse("%{q}"), Err(MacroError::BadLetter('q')));
        assert_eq!(MacroString::parse("abc%"), Err(MacroError::TrailingPercent));
        assert_eq!(
            MacroString::parse("%{d1r5}"),
            Err(MacroError::BadTransformer('5')),
            "digits after r are invalid"
        );
    }

    #[test]
    fn huge_digit_strings_are_capped() {
        let ms = MacroString::parse("%{d99999999999999999999}").unwrap();
        match &ms.tokens()[0] {
            MacroToken::Macro { transform, .. } => {
                assert_eq!(transform.digits, Some(u32::MAX));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exp_only_letters() {
        assert!(MacroLetter::Timestamp.exp_only());
        assert!(MacroLetter::Receiver.exp_only());
        assert!(MacroLetter::ClientIp.exp_only());
        assert!(!MacroLetter::Domain.exp_only());
    }

    #[test]
    fn letter_round_trip() {
        for c in ['s', 'l', 'o', 'd', 'i', 'p', 'v', 'h', 'c', 'r', 't'] {
            let (letter, escape) = MacroLetter::from_char(c).unwrap();
            assert!(!escape);
            assert_eq!(letter.as_char(), c);
            let (upper, escape) = MacroLetter::from_char(c.to_ascii_uppercase()).unwrap();
            assert!(escape);
            assert_eq!(upper, letter);
        }
        assert_eq!(MacroLetter::from_char('z'), None);
    }

    #[test]
    fn source_is_preserved() {
        let src = "%{d2}.%{i}.x";
        assert_eq!(MacroString::parse(src).unwrap().source(), src);
        assert_eq!(MacroString::parse(src).unwrap().to_string(), src);
    }
}
