//! Sender Policy Framework (RFC 7208) for the SPFail reproduction.
//!
//! This crate implements the protocol the paper's vulnerabilities live in:
//!
//! * [`macrostring`] — the SPF macro language (`%{d1r}`, `%{L}`, …), parsed
//!   into a token sequence.
//! * [`expand`] — macro expansion. The RFC-compliant expander lives here;
//!   the *vulnerable* libSPF2 expander and the assorted non-compliant
//!   variants observed in the wild are in the `spfail-libspf2` crate, all
//!   plugging in through the [`expand::MacroExpander`] trait.
//! * [`record`] — `v=spf1` record parsing: mechanisms, qualifiers,
//!   modifiers.
//! * [`eval`] — the `check_host()` evaluation of RFC 7208 §4, including the
//!   10-term lookup limit and the void-lookup limit, over an abstract
//!   [`eval::SpfDns`] so it runs against the simulated resolver.
//! * [`result`] — the seven SPF results.
//!
//! The design choice that matters for the reproduction: **the evaluator is
//! generic over the macro expander**. A probed MTA's observable behaviour —
//! which DNS queries it sends while validating — is a function of which
//! expander its SPF library uses. Swapping expanders is how the simulated
//! Internet gets its mix of compliant, vulnerable, and merely sloppy hosts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod eval;
pub mod expand;
pub mod macrostring;
pub mod record;
pub mod result;

pub use compile::{
    canonicalize, splice_id, templatize, CompiledEvaluator, CompiledPolicy, PolicyCache, PolicyId,
    ScriptEntry, ScriptKey, ScriptStep, ID_HOLE,
};
pub use eval::{EvalConfig, Evaluator, SpfDns, TraceEvent};
pub use expand::{CompliantExpander, ExpandError, MacroContext, MacroExpander};
pub use macrostring::{MacroLetter, MacroString, MacroToken, MacroTransform};
pub use record::{Mechanism, MechanismKind, Modifier, RecordError, SpfRecord};
pub use result::{Qualifier, SpfResult};
