//! `check_host()` — SPF evaluation (RFC 7208 §4).
//!
//! The evaluator is generic over two seams:
//!
//! * [`SpfDns`] — where DNS answers come from (the simulated resolver in
//!   production code, a fixture map in tests);
//! * [`MacroExpander`] — how macro-strings become domain names (compliant
//!   here, buggy in `spfail-libspf2`).
//!
//! Every DNS query issued during evaluation is also appended to a local
//! trace, which tests use to assert on the *sequence* of lookups — the
//! observable the paper's whole methodology rests on.

use std::net::IpAddr;

use spfail_dns::resolver::{LookupError, LookupOutcome};
use spfail_dns::{Name, RData, RecordType};

use crate::expand::{ExpandError, MacroContext, MacroExpander};
use crate::macrostring::MacroString;
use crate::record::{MechanismKind, RecordError, SpfRecord};
use crate::result::SpfResult;

/// Source of DNS answers for the evaluator.
pub trait SpfDns {
    /// Resolve `name`/`rtype`.
    fn lookup(&mut self, name: &Name, rtype: RecordType) -> Result<LookupOutcome, LookupError>;
}

impl<F> SpfDns for F
where
    F: FnMut(&Name, RecordType) -> Result<LookupOutcome, LookupError>,
{
    fn lookup(&mut self, name: &Name, rtype: RecordType) -> Result<LookupOutcome, LookupError> {
        self(name, rtype)
    }
}

/// Evaluation limits (RFC 7208 §4.6.4).
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Maximum DNS-querying terms per evaluation (default 10).
    pub max_lookup_terms: u32,
    /// Maximum void lookups (default 2).
    pub max_void_lookups: u32,
    /// Maximum MX names resolved per `mx` term (default 10).
    pub max_mx_names: usize,
    /// Maximum include/redirect depth.
    pub max_depth: u32,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_lookup_terms: 10,
            max_void_lookups: 2,
            max_mx_names: 10,
            max_depth: 10,
        }
    }
}

/// Things that happened during one evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A DNS query was issued.
    Query {
        /// The queried name.
        name: Name,
        /// The queried type.
        rtype: RecordType,
    },
    /// A mechanism finished evaluating.
    Mechanism {
        /// Mechanism name (`"a"`, `"include"`, …).
        name: &'static str,
        /// Whether it matched.
        matched: bool,
    },
    /// Evaluation recursed into another domain via include/redirect.
    Recurse {
        /// The new evaluation domain.
        domain: String,
    },
    /// Macro expansion failed inside the SPF implementation — for the
    /// vulnerable expanders this is a simulated crash.
    ExpanderFault(String),
}

/// The SPF evaluator.
pub struct Evaluator<'a, D: SpfDns, E: MacroExpander> {
    dns: &'a mut D,
    expander: &'a mut E,
    config: EvalConfig,
    lookup_terms: u32,
    void_lookups: u32,
    trace: Vec<TraceEvent>,
    explanation: Option<String>,
}

impl<'a, D: SpfDns, E: MacroExpander> Evaluator<'a, D, E> {
    /// A new evaluator with default limits.
    pub fn new(dns: &'a mut D, expander: &'a mut E) -> Self {
        Self::with_config(dns, expander, EvalConfig::default())
    }

    /// A new evaluator with explicit limits.
    pub fn with_config(dns: &'a mut D, expander: &'a mut E, config: EvalConfig) -> Self {
        Evaluator {
            dns,
            expander,
            config,
            lookup_terms: 0,
            void_lookups: 0,
            trace: Vec::new(),
            explanation: None,
        }
    }

    /// The trace of this evaluator's most recent evaluation(s).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The explanation string produced by the record's `exp=` modifier
    /// when the most recent evaluation ended in `Fail` (RFC 7208 §6.2).
    pub fn explanation(&self) -> Option<&str> {
        self.explanation.as_deref()
    }

    /// RFC 7208 §4: evaluate the policy for `sender_local@sender_domain`
    /// connecting from `client_ip`.
    pub fn check_host(
        &mut self,
        client_ip: IpAddr,
        sender_local: &str,
        sender_domain: &str,
    ) -> SpfResult {
        let ctx = MacroContext::new(sender_local, sender_domain, client_ip);
        self.explanation = None;
        self.check_domain(&ctx, sender_domain, 0)
    }

    fn check_domain(&mut self, outer_ctx: &MacroContext, domain: &str, depth: u32) -> SpfResult {
        if depth > self.config.max_depth {
            return SpfResult::PermError;
        }
        let Ok(domain_name) = Name::parse(domain) else {
            return SpfResult::PermError;
        };

        // Fetch and select the SPF record (RFC 7208 §4.4–4.5). The TXT
        // fetch itself does not count against the lookup-term limit.
        let outcome = match self.query(&domain_name, RecordType::TXT, false) {
            Ok(o) => o,
            Err(QueryFail::Temp) => return SpfResult::TempError,
            Err(QueryFail::LimitExceeded) => return SpfResult::PermError,
        };
        let spf_texts: Vec<String> = outcome
            .records()
            .iter()
            .filter_map(|r| r.rdata.txt_joined())
            .filter(|t| SpfRecord::looks_like_spf(t))
            .collect();
        let text = match spf_texts.len() {
            0 => return SpfResult::None,
            1 => &spf_texts[0],
            _ => return SpfResult::PermError,
        };
        let record = match SpfRecord::parse(text) {
            Ok(r) => r,
            Err(RecordError::NotSpf1) => return SpfResult::None,
            Err(_) => return SpfResult::PermError,
        };

        // Evaluate in a context whose `d` is the current domain.
        let mut ctx = outer_ctx.clone();
        ctx.domain = domain.to_string();

        for mechanism in &record.mechanisms {
            if mechanism.kind.counts_against_lookup_limit() {
                self.lookup_terms += 1;
                if self.lookup_terms > self.config.max_lookup_terms {
                    return SpfResult::PermError;
                }
            }
            match self.matches(&ctx, &mechanism.kind, depth) {
                Ok(true) => {
                    self.trace.push(TraceEvent::Mechanism {
                        name: mechanism.kind.name(),
                        matched: true,
                    });
                    let result = mechanism.qualifier.result();
                    // §6.2: only the *outermost* record's exp= applies,
                    // and only to a Fail produced by its own mechanisms.
                    if result == SpfResult::Fail && depth == 0 {
                        if let Some(exp_target) = record.explanation() {
                            self.explanation = self.fetch_explanation(&ctx, exp_target);
                        }
                    }
                    return result;
                }
                Ok(false) => {
                    self.trace.push(TraceEvent::Mechanism {
                        name: mechanism.kind.name(),
                        matched: false,
                    });
                }
                Err(result) => return result,
            }
        }

        // No mechanism matched: follow redirect if present (§6.1).
        if let Some(target) = record.redirect() {
            self.lookup_terms += 1;
            if self.lookup_terms > self.config.max_lookup_terms {
                return SpfResult::PermError;
            }
            let Ok(new_domain) = self.expand(&ctx, target) else {
                return SpfResult::PermError;
            };
            self.trace.push(TraceEvent::Recurse {
                domain: new_domain.clone(),
            });
            let result = self.check_domain(outer_ctx, &new_domain, depth + 1);
            // redirect to a domain with no record is PermError (§6.1).
            return if result == SpfResult::None {
                SpfResult::PermError
            } else {
                result
            };
        }
        SpfResult::Neutral
    }

    /// Fetch and expand an `exp=` explanation (RFC 7208 §6.2). Every
    /// failure mode — bad expansion, DNS trouble, no TXT record, multiple
    /// records — silently yields no explanation; exp can never change the
    /// SPF result itself.
    fn fetch_explanation(&mut self, ctx: &MacroContext, target: &MacroString) -> Option<String> {
        let domain_text = self.expander.expand(target, ctx, false).ok()?;
        let domain = Name::parse(&domain_text).ok()?;
        let outcome = self.query(&domain, RecordType::TXT, false).ok()?;
        let records = outcome.records();
        let [record] = records else {
            // Zero or multiple TXT records: no explanation (§6.2).
            return None;
        };
        let text = record.rdata.txt_joined()?;
        let ms = MacroString::parse(&text).ok()?;
        // Explanation text unlocks the exp-only macro letters (c, r, t).
        self.expander.expand(&ms, ctx, true).ok()
    }

    /// Evaluate a single mechanism. `Err` carries a terminal result.
    fn matches(
        &mut self,
        ctx: &MacroContext,
        kind: &MechanismKind,
        depth: u32,
    ) -> Result<bool, SpfResult> {
        match kind {
            MechanismKind::All => Ok(true),
            MechanismKind::Ip4 { addr, cidr } => Ok(match ctx.client_ip {
                IpAddr::V4(ip) => v4_in_network(ip, *addr, *cidr),
                IpAddr::V6(_) => false,
            }),
            MechanismKind::Ip6 { addr, cidr } => Ok(match ctx.client_ip {
                IpAddr::V6(ip) => v6_in_network(ip, *addr, *cidr),
                IpAddr::V4(_) => false,
            }),
            MechanismKind::A {
                domain,
                cidr4,
                cidr6,
            } => {
                let target = self.target_name(ctx, domain.as_ref())?;
                self.address_match(ctx, &target, *cidr4, *cidr6)
            }
            MechanismKind::Mx {
                domain,
                cidr4,
                cidr6,
            } => {
                let target = self.target_name(ctx, domain.as_ref())?;
                let outcome = self
                    .query(&target, RecordType::MX, true)
                    .map_err(QueryFail::into_result)?;
                let mut exchanges: Vec<Name> = outcome
                    .records()
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Mx { exchange, .. } => Some(exchange.clone()),
                        _ => None,
                    })
                    .collect();
                if exchanges.len() > self.config.max_mx_names {
                    return Err(SpfResult::PermError);
                }
                exchanges.truncate(self.config.max_mx_names);
                for exchange in exchanges {
                    if self.address_match(ctx, &exchange, *cidr4, *cidr6)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            MechanismKind::Include(domain_spec) => {
                let Ok(new_domain) = self.expand(ctx, domain_spec) else {
                    return Err(SpfResult::PermError);
                };
                self.trace.push(TraceEvent::Recurse {
                    domain: new_domain.clone(),
                });
                match self.check_domain(ctx, &new_domain, depth + 1) {
                    SpfResult::Pass => Ok(true),
                    SpfResult::Fail | SpfResult::SoftFail | SpfResult::Neutral => Ok(false),
                    SpfResult::TempError => Err(SpfResult::TempError),
                    SpfResult::None | SpfResult::PermError => Err(SpfResult::PermError),
                }
            }
            MechanismKind::Exists(domain_spec) => {
                let target = self.target_name(ctx, Some(domain_spec))?;
                let outcome = self
                    .query(&target, RecordType::A, true)
                    .map_err(QueryFail::into_result)?;
                Ok(!outcome.records().is_empty())
            }
            MechanismKind::Ptr { domain } => {
                // Deprecated mechanism (§5.5). Full validation: reverse-map
                // the client IP, then *forward-confirm* each candidate host
                // name — a PTR record alone proves nothing, since the
                // in-addr.arpa zone owner controls it freely.
                let target = self.target_name(ctx, domain.as_ref())?;
                let reverse = reverse_name(ctx.client_ip);
                let outcome = self
                    .query(&reverse, RecordType::PTR, true)
                    .map_err(QueryFail::into_result)?;
                let mut candidates: Vec<Name> = outcome
                    .records()
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Ptr(host) => Some(host.clone()),
                        _ => None,
                    })
                    .filter(|host| host.is_subdomain_of(&target))
                    .collect();
                // §5.5: evaluate at most 10 candidate names.
                candidates.truncate(self.config.max_mx_names);
                for host in candidates {
                    if self.address_match(ctx, &host, 32, 128)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Resolve the target-name of a mechanism: the expanded domain-spec, or
    /// the current domain when absent.
    fn target_name(
        &mut self,
        ctx: &MacroContext,
        domain_spec: Option<&MacroString>,
    ) -> Result<Name, SpfResult> {
        let text = match domain_spec {
            Some(ms) => self.expand(ctx, ms).map_err(|_| SpfResult::PermError)?,
            None => ctx.domain.clone(),
        };
        Name::parse(&text).map_err(|_| SpfResult::PermError)
    }

    fn expand(&mut self, ctx: &MacroContext, ms: &MacroString) -> Result<String, ExpandError> {
        match self.expander.expand(ms, ctx, false) {
            Ok(s) => Ok(s),
            Err(e) => {
                self.trace.push(TraceEvent::ExpanderFault(e.to_string()));
                Err(e)
            }
        }
    }

    /// Check whether any address record of `target` covers the client IP.
    fn address_match(
        &mut self,
        ctx: &MacroContext,
        target: &Name,
        cidr4: u8,
        cidr6: u8,
    ) -> Result<bool, SpfResult> {
        let rtype = match ctx.client_ip {
            IpAddr::V4(_) => RecordType::A,
            IpAddr::V6(_) => RecordType::AAAA,
        };
        let outcome = self
            .query(target, rtype, true)
            .map_err(QueryFail::into_result)?;
        for record in outcome.records() {
            let matched = match (&record.rdata, ctx.client_ip) {
                (RData::A(addr), IpAddr::V4(ip)) => v4_in_network(ip, *addr, cidr4),
                (RData::Aaaa(addr), IpAddr::V6(ip)) => v6_in_network(ip, *addr, cidr6),
                _ => false,
            };
            if matched {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Issue one DNS query, recording it in the trace and enforcing the
    /// void-lookup limit when `counted` is set.
    fn query(
        &mut self,
        name: &Name,
        rtype: RecordType,
        counted: bool,
    ) -> Result<LookupOutcome, QueryFail> {
        self.trace.push(TraceEvent::Query {
            name: name.clone(),
            rtype,
        });
        match self.dns.lookup(name, rtype) {
            Ok(outcome) => {
                if counted && outcome.is_void() {
                    self.void_lookups += 1;
                    if self.void_lookups > self.config.max_void_lookups {
                        return Err(QueryFail::LimitExceeded);
                    }
                }
                Ok(outcome)
            }
            Err(_) => Err(QueryFail::Temp),
        }
    }
}

pub(crate) enum QueryFail {
    Temp,
    LimitExceeded,
}

impl QueryFail {
    pub(crate) fn into_result(self) -> SpfResult {
        match self {
            QueryFail::Temp => SpfResult::TempError,
            QueryFail::LimitExceeded => SpfResult::PermError,
        }
    }
}

pub(crate) fn v4_in_network(ip: std::net::Ipv4Addr, network: std::net::Ipv4Addr, cidr: u8) -> bool {
    if cidr == 0 {
        return true;
    }
    let mask = u32::MAX << (32 - u32::from(cidr.min(32)));
    (u32::from(ip) & mask) == (u32::from(network) & mask)
}

pub(crate) fn v6_in_network(ip: std::net::Ipv6Addr, network: std::net::Ipv6Addr, cidr: u8) -> bool {
    if cidr == 0 {
        return true;
    }
    let cidr = cidr.min(128);
    let ip = u128::from(ip);
    let network = u128::from(network);
    let mask = u128::MAX << (128 - u32::from(cidr));
    (ip & mask) == (network & mask)
}

/// The reverse-DNS name of an address (`in-addr.arpa` / `ip6.arpa`),
/// rendered into one pre-sized buffer (72 bytes covers the longest
/// `ip6.arpa` form) instead of a nibble list plus joins.
pub(crate) fn reverse_name(ip: IpAddr) -> Name {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(72);
    match ip {
        IpAddr::V4(v4) => {
            let o = v4.octets();
            let _ = write!(s, "{}.{}.{}.{}.in-addr.arpa", o[3], o[2], o[1], o[0]);
        }
        IpAddr::V6(v6) => {
            for byte in v6.octets().iter().rev() {
                let _ = write!(s, "{:x}.{:x}.", byte & 0x0f, byte >> 4);
            }
            s.push_str("ip6.arpa");
        }
    }
    Name::parse(&s).expect("static shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::CompliantExpander;
    use spfail_dns::rdata::Record;
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    /// An in-memory DNS fixture.
    #[derive(Default)]
    struct FakeDns {
        records: HashMap<(Name, RecordType), Vec<Record>>,
        fail: bool,
        queries: Vec<(Name, RecordType)>,
    }

    impl FakeDns {
        fn add_txt(&mut self, name: &str, text: &str) {
            let n = Name::parse(name).unwrap();
            self.records
                .entry((n.clone(), RecordType::TXT))
                .or_default()
                .push(Record::new(n, 300, RData::txt(text)));
        }

        fn add_a(&mut self, name: &str, ip: &str) {
            let n = Name::parse(name).unwrap();
            self.records
                .entry((n.clone(), RecordType::A))
                .or_default()
                .push(Record::new(n, 300, RData::A(ip.parse().unwrap())));
        }

        fn add_mx(&mut self, name: &str, exchange: &str) {
            let n = Name::parse(name).unwrap();
            self.records
                .entry((n.clone(), RecordType::MX))
                .or_default()
                .push(Record::new(
                    n,
                    300,
                    RData::Mx {
                        preference: 10,
                        exchange: Name::parse(exchange).unwrap(),
                    },
                ));
        }
    }

    impl SpfDns for FakeDns {
        fn lookup(
            &mut self,
            name: &Name,
            rtype: RecordType,
        ) -> Result<LookupOutcome, LookupError> {
            if self.fail {
                return Err(LookupError::Timeout);
            }
            self.queries.push((name.clone(), rtype));
            match self.records.get(&(name.to_lowercase(), rtype)) {
                Some(records) => Ok(LookupOutcome::Records(records.clone().into())),
                None => Ok(LookupOutcome::NxDomain),
            }
        }
    }

    fn check(dns: &mut FakeDns, ip: &str, sender_domain: &str) -> SpfResult {
        let mut expander = CompliantExpander;
        let mut eval = Evaluator::new(dns, &mut expander);
        eval.check_host(ip.parse().unwrap(), "user", sender_domain)
    }

    #[test]
    fn no_record_is_none() {
        let mut dns = FakeDns::default();
        assert_eq!(check(&mut dns, "192.0.2.1", "example.com"), SpfResult::None);
    }

    #[test]
    fn ip4_match_passes() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 ip4:192.0.2.0/24 -all");
        assert_eq!(check(&mut dns, "192.0.2.7", "example.com"), SpfResult::Pass);
        assert_eq!(check(&mut dns, "198.51.100.1", "example.com"), SpfResult::Fail);
    }

    #[test]
    fn a_mechanism_resolves_current_domain() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 a -all");
        dns.add_a("example.com", "192.0.2.10");
        assert_eq!(check(&mut dns, "192.0.2.10", "example.com"), SpfResult::Pass);
        assert_eq!(check(&mut dns, "192.0.2.11", "example.com"), SpfResult::Fail);
    }

    #[test]
    fn a_mechanism_with_macro_issues_expanded_query() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 a:%{d1r}.foo.com -all");
        dns.add_a("example.foo.com", "192.0.2.10");
        assert_eq!(check(&mut dns, "192.0.2.10", "example.com"), SpfResult::Pass);
        // The expanded name was queried — the paper's observable.
        assert!(dns
            .queries
            .iter()
            .any(|(n, t)| *t == RecordType::A && n.to_ascii() == "example.foo.com"));
    }

    #[test]
    fn mx_mechanism() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 mx -all");
        dns.add_mx("example.com", "mail.example.com");
        dns.add_a("mail.example.com", "192.0.2.25");
        assert_eq!(check(&mut dns, "192.0.2.25", "example.com"), SpfResult::Pass);
        assert_eq!(check(&mut dns, "192.0.2.26", "example.com"), SpfResult::Fail);
    }

    #[test]
    fn include_pass_and_fail_semantics() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 include:allowed.org -all");
        dns.add_txt("allowed.org", "v=spf1 ip4:203.0.113.0/24 -all");
        // Pass inside include -> Pass outside.
        assert_eq!(check(&mut dns, "203.0.113.5", "example.com"), SpfResult::Pass);
        // Fail inside include -> not-match -> falls to -all -> Fail.
        assert_eq!(check(&mut dns, "192.0.2.1", "example.com"), SpfResult::Fail);
    }

    #[test]
    fn include_of_missing_record_is_permerror() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 include:missing.org -all");
        assert_eq!(
            check(&mut dns, "192.0.2.1", "example.com"),
            SpfResult::PermError
        );
    }

    #[test]
    fn redirect_is_followed() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 redirect=_spf.example.com");
        dns.add_txt("_spf.example.com", "v=spf1 ip4:192.0.2.0/24 -all");
        assert_eq!(check(&mut dns, "192.0.2.9", "example.com"), SpfResult::Pass);
        assert_eq!(check(&mut dns, "198.51.100.9", "example.com"), SpfResult::Fail);
    }

    #[test]
    fn redirect_to_nothing_is_permerror() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 redirect=void.example.net");
        assert_eq!(
            check(&mut dns, "192.0.2.1", "example.com"),
            SpfResult::PermError
        );
    }

    #[test]
    fn neutral_when_nothing_matches_and_no_all() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 ip4:203.0.113.0/24");
        assert_eq!(
            check(&mut dns, "192.0.2.1", "example.com"),
            SpfResult::Neutral
        );
    }

    #[test]
    fn two_spf_records_is_permerror() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 -all");
        dns.add_txt("example.com", "v=spf1 +all");
        assert_eq!(
            check(&mut dns, "192.0.2.1", "example.com"),
            SpfResult::PermError
        );
    }

    #[test]
    fn non_spf_txt_records_are_ignored() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "google-site-verification=abc123");
        dns.add_txt("example.com", "v=spf1 ip4:192.0.2.0/24 -all");
        assert_eq!(check(&mut dns, "192.0.2.1", "example.com"), SpfResult::Pass);
    }

    #[test]
    fn syntax_error_is_permerror() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 bogus-mechanism -all");
        assert_eq!(
            check(&mut dns, "192.0.2.1", "example.com"),
            SpfResult::PermError
        );
    }

    #[test]
    fn dns_failure_is_temperror() {
        let mut dns = FakeDns {
            fail: true,
            ..FakeDns::default()
        };
        assert_eq!(
            check(&mut dns, "192.0.2.1", "example.com"),
            SpfResult::TempError
        );
    }

    #[test]
    fn lookup_term_limit_enforced() {
        let mut dns = FakeDns::default();
        // 11 `a` terms, each counting against the limit of 10.
        let mechanisms: Vec<String> = (0..11).map(|i| format!("a:h{i}.example.com")).collect();
        dns.add_txt(
            "example.com",
            &format!("v=spf1 {} -all", mechanisms.join(" ")),
        );
        for i in 0..11 {
            dns.add_a(&format!("h{i}.example.com"), "203.0.113.1");
        }
        assert_eq!(
            check(&mut dns, "192.0.2.1", "example.com"),
            SpfResult::PermError
        );
    }

    #[test]
    fn void_lookup_limit_enforced() {
        let mut dns = FakeDns::default();
        dns.add_txt(
            "example.com",
            "v=spf1 a:v1.example.com a:v2.example.com a:v3.example.com +all",
        );
        // None of v1..v3 exist: third void lookup exceeds the limit of 2.
        assert_eq!(
            check(&mut dns, "192.0.2.1", "example.com"),
            SpfResult::PermError
        );
    }

    #[test]
    fn exists_mechanism() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 exists:%{ir}.check.example.com -all");
        dns.add_a("1.2.0.192.check.example.com", "127.0.0.2");
        assert_eq!(check(&mut dns, "192.0.2.1", "example.com"), SpfResult::Pass);
        assert_eq!(check(&mut dns, "192.0.2.2", "example.com"), SpfResult::Fail);
    }

    #[test]
    fn trace_records_query_sequence() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 a:%{d1r}.foo.com a:b.foo.com -all");
        dns.add_a("b.foo.com", "192.0.2.50");
        let mut expander = CompliantExpander;
        let mut eval = Evaluator::new(&mut dns, &mut expander);
        let result = eval.check_host("192.0.2.50".parse().unwrap(), "user", "example.com");
        assert_eq!(result, SpfResult::Pass);
        let queried: Vec<String> = eval
            .trace()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Query { name, .. } => Some(name.to_ascii()),
                _ => None,
            })
            .collect();
        assert_eq!(
            queried,
            vec!["example.com", "example.foo.com", "b.foo.com"],
            "TXT then the two expanded A queries, in order"
        );
    }

    #[test]
    fn ptr_mechanism_requires_forward_confirmation() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 ptr -all");
        // The reverse zone claims the client is mail.example.com...
        let reverse = Name::parse("1.2.0.192.in-addr.arpa").unwrap();
        dns.records
            .entry((reverse.clone(), RecordType::PTR))
            .or_default()
            .push(Record::new(
                reverse,
                300,
                RData::Ptr(Name::parse("mail.example.com").unwrap()),
            ));
        // ... but without a confirming A record the claim is worthless.
        assert_eq!(
            check(&mut dns, "192.0.2.1", "example.com"),
            SpfResult::Fail,
            "PTR without forward confirmation must not match"
        );
        // With the confirming A record, it matches.
        dns.add_a("mail.example.com", "192.0.2.1");
        assert_eq!(check(&mut dns, "192.0.2.1", "example.com"), SpfResult::Pass);
    }

    #[test]
    fn ptr_outside_target_domain_never_matches() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 ptr -all");
        let reverse = Name::parse("1.2.0.192.in-addr.arpa").unwrap();
        dns.records
            .entry((reverse.clone(), RecordType::PTR))
            .or_default()
            .push(Record::new(
                reverse,
                300,
                RData::Ptr(Name::parse("mail.attacker.net").unwrap()),
            ));
        dns.add_a("mail.attacker.net", "192.0.2.1");
        assert_eq!(
            check(&mut dns, "192.0.2.1", "example.com"),
            SpfResult::Fail,
            "a confirmed PTR outside the target domain is still no match"
        );
    }

    #[test]
    fn exp_modifier_produces_explanation_on_fail() {
        let mut dns = FakeDns::default();
        dns.add_txt(
            "example.com",
            "v=spf1 ip4:203.0.113.0/24 exp=explain.example.com -all",
        );
        dns.add_txt(
            "explain.example.com",
            "%{i} is not a permitted sender for %{d}",
        );
        let mut expander = CompliantExpander;
        let mut eval = Evaluator::new(&mut dns, &mut expander);
        let result = eval.check_host("192.0.2.1".parse().unwrap(), "user", "example.com");
        assert_eq!(result, SpfResult::Fail);
        assert_eq!(
            eval.explanation(),
            Some("192.0.2.1 is not a permitted sender for example.com")
        );
        // A passing evaluation produces no explanation.
        let result = eval.check_host("203.0.113.7".parse().unwrap(), "user", "example.com");
        assert_eq!(result, SpfResult::Pass);
        assert_eq!(eval.explanation(), None);
    }

    #[test]
    fn exp_failures_never_change_the_result() {
        let mut dns = FakeDns::default();
        // exp target has no TXT record at all.
        dns.add_txt("example.com", "v=spf1 exp=missing.example.com -all");
        let mut expander = CompliantExpander;
        let mut eval = Evaluator::new(&mut dns, &mut expander);
        let result = eval.check_host("192.0.2.1".parse().unwrap(), "user", "example.com");
        assert_eq!(result, SpfResult::Fail);
        assert_eq!(eval.explanation(), None);
    }

    #[test]
    fn exp_inside_include_is_ignored() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 include:inner.org -all");
        dns.add_txt("inner.org", "v=spf1 exp=explain.inner.org ip4:203.0.113.0/24");
        dns.add_txt("explain.inner.org", "inner explanation");
        let mut expander = CompliantExpander;
        let mut eval = Evaluator::new(&mut dns, &mut expander);
        let result = eval.check_host("192.0.2.1".parse().unwrap(), "user", "example.com");
        // Fail comes from the outer -all; the inner exp must not leak.
        assert_eq!(result, SpfResult::Fail);
        assert_eq!(eval.explanation(), None);
    }

    #[test]
    fn exp_with_multiple_txt_records_yields_none() {
        let mut dns = FakeDns::default();
        dns.add_txt("example.com", "v=spf1 exp=e.example.com -all");
        dns.add_txt("e.example.com", "first");
        dns.add_txt("e.example.com", "second");
        let mut expander = CompliantExpander;
        let mut eval = Evaluator::new(&mut dns, &mut expander);
        let result = eval.check_host("192.0.2.1".parse().unwrap(), "user", "example.com");
        assert_eq!(result, SpfResult::Fail);
        assert_eq!(eval.explanation(), None);
    }

    #[test]
    fn include_loop_hits_depth_limit() {
        let mut dns = FakeDns::default();
        dns.add_txt("a.test", "v=spf1 include:b.test -all");
        dns.add_txt("b.test", "v=spf1 include:a.test -all");
        // The 10-term lookup limit fires before max depth here; either way
        // the result must be PermError, not a hang.
        assert_eq!(check(&mut dns, "192.0.2.1", "a.test"), SpfResult::PermError);
    }

    #[test]
    fn cidr_helpers() {
        assert!(v4_in_network(
            Ipv4Addr::new(192, 0, 2, 200),
            Ipv4Addr::new(192, 0, 2, 0),
            24
        ));
        assert!(!v4_in_network(
            Ipv4Addr::new(192, 0, 3, 1),
            Ipv4Addr::new(192, 0, 2, 0),
            24
        ));
        assert!(v4_in_network(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(9, 9, 9, 9),
            0
        ));
        assert!(v6_in_network(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::".parse().unwrap(),
            32
        ));
        assert!(!v6_in_network(
            "2001:db9::1".parse().unwrap(),
            "2001:db8::".parse().unwrap(),
            32
        ));
    }

    #[test]
    fn reverse_names() {
        assert_eq!(
            reverse_name("192.0.2.1".parse().unwrap()).to_ascii(),
            "1.2.0.192.in-addr.arpa"
        );
        let v6 = reverse_name("2001:db8::1".parse().unwrap()).to_ascii();
        assert!(v6.ends_with(".ip6.arpa"));
        assert!(v6.starts_with("1.0.0.0."));
    }
}
