//! Compiled SPF policies and the measurement-transparent evaluation cache.
//!
//! The interpretive evaluator in [`crate::eval`] re-parses the TXT record
//! and re-walks the mechanism AST on every `check_host()`. In a
//! measurement campaign the same policy texts recur millions of times —
//! the wild is dominated by a handful of shared provider `include:`
//! chains, and every probe of a multi-implementation host evaluates one
//! text once per implementation — so this module lowers a parsed
//! [`SpfRecord`] once into a flat [`CompiledPolicy`]:
//!
//! * mechanisms become a jump-table of [`Op`]s walked without any AST
//!   dispatch or re-parse;
//! * macro-free domain-specs are pre-rendered to plain strings;
//! * macro-bearing domain-specs are pre-segmented into literal/variable
//!   runs ([`Segment`]) so compliant expansion is a scratch-buffer splice
//!   with no tokenizer in the loop.
//!
//! Compiled policies are interned in a [`PolicyCache`] keyed by the
//! canonical record text (whitespace-collapsed; parsing is insensitive to
//! the collapse, and non-compliant expanders never observe inter-term
//! spacing because macro-string sources are per-term). On top of the
//! intern arena sit two memo layers:
//!
//! * a **result memo** keyed by `(policy id, client ip)` that only
//!   engages when the policy is provably *macro-closed* over the
//!   `<ip, helo, sender>` projection **and** DNS-free — then the result
//!   is a pure function of the client address and can be replayed with
//!   zero observable difference;
//! * a **replay-script memo** ([`ScriptKey`]/[`ScriptEntry`]) used by the
//!   MTA layer to replay whole validated evaluations, re-emitting their
//!   DNS query-log entries, link charges, and trace spans without the
//!   real work. The cache stores only what replay needs; validation
//!   happens at record time (see `spfail-mta`).
//!
//! Everything here is rebuildable derived state: a cache is never
//! serialized into checkpoints, and a cold cache reproduces bit-for-bit
//! what a warm one answers.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

use spfail_dns::{Name, RData, RecordType};
use spfail_netsim::PolicyCacheStats;

use crate::eval::{
    reverse_name, v4_in_network, v6_in_network, EvalConfig, QueryFail, SpfDns, TraceEvent,
};
use crate::expand::{
    apply_transform_into, url_escape_into, ExpandError, MacroContext, MacroExpander,
};
use crate::macrostring::{MacroLetter, MacroString, MacroToken, MacroTransform};
use crate::record::{MechanismKind, Modifier, RecordError, SpfRecord};
use crate::result::{Qualifier, SpfResult};

/// The hole character used in replay-script templates where a probe's
/// unique id label was excised; never legal in a domain name or policy.
pub const ID_HOLE: char = '\u{1}';

/// Collapse whitespace runs so textual variants of one policy intern to
/// one entry. [`SpfRecord::parse`] splits on single spaces and discards
/// empty terms, so parsing the canonical text yields the same record, and
/// per-term text (all any expander ever sees) is untouched.
pub fn canonicalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for term in text.split(' ').filter(|t| !t.is_empty()) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(term);
    }
    out
}

/// Replace every occurrence of `id` in `text` with [`ID_HOLE`], producing
/// a template that [`splice_id`] re-instantiates for another probe id of
/// the same length. Returns `None` when the text already contains the
/// hole character (nothing real does; refusing keeps splice unambiguous).
pub fn templatize(text: &str, id: &str) -> Option<String> {
    if id.is_empty() || text.contains(ID_HOLE) {
        return None;
    }
    Some(text.replace(id, "\u{1}"))
}

/// Fill a [`templatize`]d template's holes with `id`.
pub fn splice_id(template: &str, id: &str) -> String {
    template.replace(ID_HOLE, id)
}

fn letter_bit(letter: MacroLetter) -> u16 {
    1 << match letter {
        MacroLetter::Sender => 0,
        MacroLetter::Local => 1,
        MacroLetter::SenderDomain => 2,
        MacroLetter::Domain => 3,
        MacroLetter::Ip => 4,
        MacroLetter::Validated => 5,
        MacroLetter::IpVersion => 6,
        MacroLetter::Helo => 7,
        MacroLetter::ClientIp => 8,
        MacroLetter::Receiver => 9,
        MacroLetter::Timestamp => 10,
    }
}

/// Letters fully determined by the `<ip, helo, sender>` projection the
/// result memo keys on: `s l o d v h i`. Excluded: `p` (reverse DNS),
/// and the exp-only `c r t` (receiver/timestamp context).
const CLOSED_LETTERS: u16 = letter_mask(&[
    MacroLetter::Sender,
    MacroLetter::Local,
    MacroLetter::SenderDomain,
    MacroLetter::Domain,
    MacroLetter::IpVersion,
    MacroLetter::Helo,
    MacroLetter::Ip,
]);

const fn letter_mask(letters: &[MacroLetter]) -> u16 {
    // const fn: no iterators; mirror letter_bit by discriminant order.
    let mut mask = 0u16;
    let mut i = 0;
    while i < letters.len() {
        mask |= 1 << letters[i] as u16;
        i += 1;
    }
    mask
}

/// One pre-segmented run of a macro-bearing domain-spec.
#[derive(Debug, Clone)]
pub enum Segment {
    /// Literal text, `%%`/`%_`/`%-` escapes already folded in.
    Literal(String),
    /// A macro expansion site.
    Var {
        /// Which value to expand.
        letter: MacroLetter,
        /// Whether the expansion is URL-escaped (uppercase letter).
        url_escape: bool,
        /// Split/reverse/truncate options.
        transform: MacroTransform,
    },
}

/// A compiled domain-spec: the original macro-string (the seam handed to
/// non-compliant expanders), its literal/variable segmentation, and the
/// fully pre-rendered text when no macro is present.
#[derive(Debug, Clone)]
pub struct DomainArg {
    ms: MacroString,
    segments: Vec<Segment>,
    rendered: Option<String>,
    letters: u16,
}

impl DomainArg {
    fn compile(ms: &MacroString) -> DomainArg {
        let mut segments: Vec<Segment> = Vec::new();
        let mut letters = 0u16;
        let push_lit = |segments: &mut Vec<Segment>, text: &str| {
            if let Some(Segment::Literal(last)) = segments.last_mut() {
                last.push_str(text);
            } else {
                segments.push(Segment::Literal(text.to_string()));
            }
        };
        for token in ms.tokens() {
            match token {
                MacroToken::Literal(text) => push_lit(&mut segments, text),
                MacroToken::Percent => push_lit(&mut segments, "%"),
                MacroToken::Space => push_lit(&mut segments, " "),
                MacroToken::UrlSpace => push_lit(&mut segments, "%20"),
                MacroToken::Macro {
                    letter,
                    url_escape,
                    transform,
                } => {
                    letters |= letter_bit(*letter);
                    segments.push(Segment::Var {
                        letter: *letter,
                        url_escape: *url_escape,
                        transform: transform.clone(),
                    });
                }
            }
        }
        let rendered = match segments.as_slice() {
            [] => Some(String::new()),
            [Segment::Literal(text)] => Some(text.clone()),
            _ if letters == 0 => {
                // All-literal after folding (cannot happen with merged
                // literals, but keep the invariant explicit).
                None
            }
            _ => None,
        };
        DomainArg {
            ms: ms.clone(),
            segments,
            rendered,
            letters,
        }
    }

    /// The macro-string as written, for expanders that must see it.
    pub fn macro_string(&self) -> &MacroString {
        &self.ms
    }

    /// The pre-rendered text, when the spec is macro-free.
    pub fn rendered(&self) -> Option<&str> {
        self.rendered.as_deref()
    }

    /// The literal/variable runs.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// RFC 7208 §7-compliant expansion as a scratch-buffer splice over the
    /// pre-segmented runs — behaviourally identical to
    /// [`crate::expand::CompliantExpander::expand`] outside `exp=` text.
    pub fn splice(
        &self,
        ctx: &MacroContext,
        out: &mut String,
        raw: &mut String,
        transformed: &mut String,
    ) -> Result<(), ExpandError> {
        for segment in &self.segments {
            match segment {
                Segment::Literal(text) => out.push_str(text),
                Segment::Var {
                    letter,
                    url_escape,
                    transform,
                } => {
                    if letter.exp_only() {
                        return Err(ExpandError::ExpOnlyLetter(letter.as_char()));
                    }
                    raw.clear();
                    ctx.write_raw_value(*letter, raw);
                    if *url_escape {
                        transformed.clear();
                        apply_transform_into(raw, transform, transformed);
                        url_escape_into(transformed, out);
                    } else {
                        apply_transform_into(raw, transform, out);
                    }
                }
            }
        }
        Ok(())
    }
}

/// The target of a mechanism that takes an optional domain-spec.
#[derive(Debug, Clone)]
pub enum DomainOp {
    /// No spec: the current evaluation domain.
    Current,
    /// An explicit domain-spec.
    Spec(DomainArg),
}

impl DomainOp {
    fn compile(spec: Option<&MacroString>) -> DomainOp {
        match spec {
            None => DomainOp::Current,
            Some(ms) => DomainOp::Spec(DomainArg::compile(ms)),
        }
    }

    fn letters(&self) -> u16 {
        match self {
            DomainOp::Current => 0,
            DomainOp::Spec(arg) => arg.letters,
        }
    }
}

/// One mechanism, lowered to a flat jump-table op.
#[derive(Debug, Clone)]
pub enum Op {
    /// `all`.
    All {
        /// Qualifier applied on match.
        q: Qualifier,
    },
    /// `ip4:<network>`.
    Ip4 {
        /// Qualifier applied on match.
        q: Qualifier,
        /// Network address.
        addr: std::net::Ipv4Addr,
        /// Prefix length.
        cidr: u8,
    },
    /// `ip6:<network>`.
    Ip6 {
        /// Qualifier applied on match.
        q: Qualifier,
        /// Network address.
        addr: std::net::Ipv6Addr,
        /// Prefix length.
        cidr: u8,
    },
    /// `a[:domain]`.
    A {
        /// Qualifier applied on match.
        q: Qualifier,
        /// Target domain.
        domain: DomainOp,
        /// IPv4 prefix length.
        cidr4: u8,
        /// IPv6 prefix length.
        cidr6: u8,
    },
    /// `mx[:domain]`.
    Mx {
        /// Qualifier applied on match.
        q: Qualifier,
        /// Target domain.
        domain: DomainOp,
        /// IPv4 prefix length.
        cidr4: u8,
        /// IPv6 prefix length.
        cidr6: u8,
    },
    /// `ptr[:domain]`.
    Ptr {
        /// Qualifier applied on match.
        q: Qualifier,
        /// Validation domain.
        domain: DomainOp,
    },
    /// `exists:<domain>`.
    Exists {
        /// Qualifier applied on match.
        q: Qualifier,
        /// Target domain-spec (required).
        domain: DomainArg,
    },
    /// `include:<domain>`.
    Include {
        /// Qualifier applied on match.
        q: Qualifier,
        /// Included domain-spec.
        domain: DomainArg,
    },
}

impl Op {
    /// Mechanism name, as [`MechanismKind::name`].
    pub fn name(&self) -> &'static str {
        match self {
            Op::All { .. } => "all",
            Op::Ip4 { .. } => "ip4",
            Op::Ip6 { .. } => "ip6",
            Op::A { .. } => "a",
            Op::Mx { .. } => "mx",
            Op::Ptr { .. } => "ptr",
            Op::Exists { .. } => "exists",
            Op::Include { .. } => "include",
        }
    }

    /// Whether this op consumes one of the ten DNS-querying terms
    /// (RFC 7208 §4.6.4), as [`MechanismKind::counts_against_lookup_limit`].
    pub fn counts_against_lookup_limit(&self) -> bool {
        matches!(
            self,
            Op::Include { .. } | Op::A { .. } | Op::Mx { .. } | Op::Ptr { .. } | Op::Exists { .. }
        )
    }

    fn is_dns(&self) -> bool {
        self.counts_against_lookup_limit()
    }

    fn letters(&self) -> u16 {
        match self {
            Op::All { .. } | Op::Ip4 { .. } | Op::Ip6 { .. } => 0,
            Op::A { domain, .. } | Op::Mx { domain, .. } | Op::Ptr { domain, .. } => {
                domain.letters()
            }
            Op::Exists { domain, .. } | Op::Include { domain, .. } => domain.letters,
        }
    }
}

/// An SPF record lowered to a flat op sequence.
#[derive(Debug, Clone)]
pub struct CompiledPolicy {
    ops: Vec<Op>,
    redirect: Option<DomainArg>,
    explanation: Option<MacroString>,
    macro_letters: u16,
    dns_free: bool,
}

impl CompiledPolicy {
    /// Lower a parsed record.
    pub fn compile(record: &SpfRecord) -> CompiledPolicy {
        let ops: Vec<Op> = record
            .mechanisms
            .iter()
            .map(|m| {
                let q = m.qualifier;
                match &m.kind {
                    MechanismKind::All => Op::All { q },
                    MechanismKind::Ip4 { addr, cidr } => Op::Ip4 {
                        q,
                        addr: *addr,
                        cidr: *cidr,
                    },
                    MechanismKind::Ip6 { addr, cidr } => Op::Ip6 {
                        q,
                        addr: *addr,
                        cidr: *cidr,
                    },
                    MechanismKind::A {
                        domain,
                        cidr4,
                        cidr6,
                    } => Op::A {
                        q,
                        domain: DomainOp::compile(domain.as_ref()),
                        cidr4: *cidr4,
                        cidr6: *cidr6,
                    },
                    MechanismKind::Mx {
                        domain,
                        cidr4,
                        cidr6,
                    } => Op::Mx {
                        q,
                        domain: DomainOp::compile(domain.as_ref()),
                        cidr4: *cidr4,
                        cidr6: *cidr6,
                    },
                    MechanismKind::Ptr { domain } => Op::Ptr {
                        q,
                        domain: DomainOp::compile(domain.as_ref()),
                    },
                    MechanismKind::Exists(spec) => Op::Exists {
                        q,
                        domain: DomainArg::compile(spec),
                    },
                    MechanismKind::Include(spec) => Op::Include {
                        q,
                        domain: DomainArg::compile(spec),
                    },
                }
            })
            .collect();
        let redirect = record.redirect().map(DomainArg::compile);
        let explanation = record.explanation().cloned();
        let mut macro_letters = ops.iter().map(Op::letters).fold(0, |a, b| a | b);
        if let Some(r) = &redirect {
            macro_letters |= r.letters;
        }
        if let Some(e) = &explanation {
            for token in e.tokens() {
                if let MacroToken::Macro { letter, .. } = token {
                    macro_letters |= letter_bit(*letter);
                }
            }
        }
        // A redirect or exp= target means follow-up DNS work even when no
        // mechanism queries; `None` from a DNS-free record is impossible
        // to memoize wrongly but keep the condition strict and obvious.
        let dns_free =
            ops.iter().all(|op| !op.is_dns()) && redirect.is_none() && explanation.is_none();
        CompiledPolicy {
            ops,
            redirect,
            explanation,
            macro_letters,
            dns_free,
        }
    }

    /// The op sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The compiled `redirect=` target, if any.
    pub fn redirect(&self) -> Option<&DomainArg> {
        self.redirect.as_ref()
    }

    /// The `exp=` target, if any.
    pub fn explanation(&self) -> Option<&MacroString> {
        self.explanation.as_ref()
    }

    /// Whether every macro letter in the policy is determined by the
    /// `<ip, helo, sender>` projection (letters `s l o d v h i` only).
    pub fn macro_closed(&self) -> bool {
        self.macro_letters & !CLOSED_LETTERS == 0
    }

    /// Whether evaluation issues no DNS query beyond the TXT fetch:
    /// only `all`/`ip4`/`ip6` mechanisms, no `redirect=`, no `exp=`.
    pub fn dns_free(&self) -> bool {
        self.dns_free
    }

    /// Whether the result memo may answer for this policy: the verdict is
    /// a pure function of the client IP, so replaying it is observably
    /// identical to evaluating.
    pub fn memoizable(&self) -> bool {
        self.dns_free() && self.macro_closed()
    }
}

/// Handle to an interned [`CompiledPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolicyId(u32);

/// Key for the MTA-level replay-script memo: one entry per distinct
/// `(probe-domain shape, sender local part, client IP, implementation
/// mix)`. The probe id label is keyed only by its *length* — the
/// templated script re-instantiates any same-length id.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScriptKey {
    /// Byte length of the probe id (first label of the sender domain).
    pub id_len: usize,
    /// The sender domain after the id label, including the leading dot.
    pub domain_rest: String,
    /// The sender's local part.
    pub sender_local: String,
    /// The SMTP client's address.
    pub client_ip: IpAddr,
    /// Caller-composed token identifying the SPF implementation mix.
    pub impls: String,
}

/// One replayable DNS exchange of a memoized evaluation.
#[derive(Debug, Clone)]
pub struct ScriptStep {
    /// The question name as recorded, in wire form. Replay re-instantiates
    /// it for the current probe by splicing the new id bytes over
    /// `id_offsets` — no dotted-string render or re-parse on the hit path.
    pub qname: Name,
    /// Wire-byte offsets of every probe-id occurrence in `qname` (each is
    /// label-content-aligned; ids are keyed by length, so a splice never
    /// moves framing).
    pub id_offsets: Vec<u16>,
    /// The question type.
    pub rtype: RecordType,
    /// Whether the resolver's TTL cache answered this step.
    pub cache_hit: bool,
    /// The trace-span outcome label the live path emitted.
    pub outcome_label: &'static str,
}

impl ScriptStep {
    /// The recorded question name with `id` spliced in for the recorded
    /// probe's id.
    pub fn qname_for(&self, id: &str) -> Name {
        if self.id_offsets.is_empty() {
            self.qname.clone()
        } else {
            self.qname.splice_content(&self.id_offsets, id.as_bytes())
        }
    }
}

/// A validated, replayable evaluation: its DNS exchanges plus the verdict
/// of every implementation that ran.
#[derive(Debug, Clone)]
pub struct ScriptEntry {
    /// The exchanges, in order.
    pub steps: Vec<ScriptStep>,
    /// `(implementation label, result)` per implementation, in run order.
    pub results: Vec<(&'static str, SpfResult)>,
}

/// The per-shard policy cache: intern arena plus the two memo layers.
///
/// Purely derived state — never serialized, safe to drop at any point
/// (a checkpoint restore starts cold and replays nothing until it has
/// re-validated entries).
#[derive(Debug, Default)]
pub struct PolicyCache {
    interned: HashMap<String, (PolicyId, Arc<CompiledPolicy>)>,
    results: HashMap<(PolicyId, IpAddr), SpfResult>,
    /// Buckets keyed by [`script_hash`] over the key *parts*, so the hot
    /// lookup hashes borrowed strings instead of allocating a
    /// [`ScriptKey`] per validation. Collisions land in the bucket `Vec`.
    scripts: HashMap<u64, Vec<(ScriptKey, Arc<ScriptEntry>)>>,
    hits: u64,
    misses: u64,
}

/// Deterministic hash over the borrowed parts of a [`ScriptKey`]. Uses
/// the fixed-key `DefaultHasher` so owned inserts and borrowed lookups
/// agree without a shared map state.
fn script_hash(
    id_len: usize,
    domain_rest: &str,
    sender_local: &str,
    client_ip: IpAddr,
    impls: &str,
) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    id_len.hash(&mut hasher);
    domain_rest.hash(&mut hasher);
    sender_local.hash(&mut hasher);
    client_ip.hash(&mut hasher);
    impls.hash(&mut hasher);
    hasher.finish()
}

impl ScriptKey {
    fn hash_parts(&self) -> u64 {
        script_hash(
            self.id_len,
            &self.domain_rest,
            &self.sender_local,
            self.client_ip,
            &self.impls,
        )
    }

    fn matches(
        &self,
        id_len: usize,
        domain_rest: &str,
        sender_local: &str,
        client_ip: IpAddr,
        impls: &str,
    ) -> bool {
        self.id_len == id_len
            && self.client_ip == client_ip
            && self.domain_rest == domain_rest
            && self.sender_local == sender_local
            && self.impls == impls
    }
}

impl PolicyCache {
    /// An empty cache.
    pub fn new() -> PolicyCache {
        PolicyCache::default()
    }

    /// Intern `text`, compiling it on first sight. Parse errors are not
    /// cached; callers map them exactly as the interpretive evaluator
    /// maps [`SpfRecord::parse`] errors.
    pub fn intern(&mut self, text: &str) -> Result<(PolicyId, Arc<CompiledPolicy>), RecordError> {
        let canonical = canonicalize(text);
        if let Some((id, policy)) = self.interned.get(&canonical) {
            return Ok((*id, Arc::clone(policy)));
        }
        let record = SpfRecord::parse(&canonical)?;
        let id = PolicyId(self.interned.len() as u32);
        let policy = Arc::new(CompiledPolicy::compile(&record));
        self.interned.insert(canonical, (id, Arc::clone(&policy)));
        Ok((id, policy))
    }

    /// Look up the result memo; ticks the hit/miss counters. Callers must
    /// only ask for [`CompiledPolicy::memoizable`] policies.
    pub fn memo_result(&mut self, id: PolicyId, ip: IpAddr) -> Option<SpfResult> {
        let result = self.results.get(&(id, ip)).copied();
        match result {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        result
    }

    /// Record a result for the memo.
    pub fn insert_result(&mut self, id: PolicyId, ip: IpAddr, result: SpfResult) {
        self.results.insert((id, ip), result);
    }

    /// Look up a replay script; ticks the hit/miss counters.
    pub fn script(&mut self, key: &ScriptKey) -> Option<Arc<ScriptEntry>> {
        self.script_for(
            key.id_len,
            &key.domain_rest,
            &key.sender_local,
            key.client_ip,
            &key.impls,
        )
    }

    /// [`PolicyCache::script`] over borrowed key parts — the hot-path
    /// form, which allocates nothing on hit or miss.
    pub fn script_for(
        &mut self,
        id_len: usize,
        domain_rest: &str,
        sender_local: &str,
        client_ip: IpAddr,
        impls: &str,
    ) -> Option<Arc<ScriptEntry>> {
        let hash = script_hash(id_len, domain_rest, sender_local, client_ip, impls);
        let entry = self.scripts.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|(key, _)| key.matches(id_len, domain_rest, sender_local, client_ip, impls))
                .map(|(_, entry)| Arc::clone(entry))
        });
        match entry {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        entry
    }

    /// Store a validated replay script.
    pub fn insert_script(&mut self, key: ScriptKey, entry: ScriptEntry) {
        let bucket = self.scripts.entry(key.hash_parts()).or_default();
        match bucket.iter_mut().find(|(existing, _)| *existing == key) {
            Some((_, slot)) => *slot = Arc::new(entry),
            None => bucket.push((key, Arc::new(entry))),
        }
    }

    /// Count a live evaluation that bypassed the cache entirely (gates
    /// closed: faults active, warm resolver cache, non-zero latency, …).
    pub fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Current counters.
    pub fn stats(&self) -> PolicyCacheStats {
        PolicyCacheStats {
            hits: self.hits,
            misses: self.misses,
            interned: self.interned.len() as u64,
        }
    }
}

/// The compiled-policy evaluator: RFC 7208 §4 `check_host()` over
/// [`CompiledPolicy`] ops, behaviourally identical to
/// [`crate::eval::Evaluator`] in result, query sequence, and explanation
/// (asserted by the differential conformance sweep).
pub struct CompiledEvaluator<'a, D: SpfDns, E: MacroExpander> {
    dns: &'a mut D,
    expander: &'a mut E,
    cache: &'a mut PolicyCache,
    config: EvalConfig,
    lookup_terms: u32,
    void_lookups: u32,
    trace: Vec<TraceEvent>,
    explanation: Option<String>,
    scratch_raw: String,
    scratch_transformed: String,
}

impl<'a, D: SpfDns, E: MacroExpander> CompiledEvaluator<'a, D, E> {
    /// A new evaluator with default limits, interning into `cache`.
    pub fn new(dns: &'a mut D, expander: &'a mut E, cache: &'a mut PolicyCache) -> Self {
        Self::with_config(dns, expander, cache, EvalConfig::default())
    }

    /// A new evaluator with explicit limits.
    pub fn with_config(
        dns: &'a mut D,
        expander: &'a mut E,
        cache: &'a mut PolicyCache,
        config: EvalConfig,
    ) -> Self {
        CompiledEvaluator {
            dns,
            expander,
            cache,
            config,
            lookup_terms: 0,
            void_lookups: 0,
            trace: Vec::new(),
            explanation: None,
            scratch_raw: String::new(),
            scratch_transformed: String::new(),
        }
    }

    /// The trace of this evaluator's most recent evaluation(s). Memoized
    /// sub-evaluations skip their `Mechanism` events; `Query` events are
    /// always exact (memoizable policies issue none).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The explanation produced by `exp=` on a top-level `Fail`.
    pub fn explanation(&self) -> Option<&str> {
        self.explanation.as_deref()
    }

    /// RFC 7208 §4: evaluate the policy for `sender_local@sender_domain`
    /// connecting from `client_ip`.
    pub fn check_host(
        &mut self,
        client_ip: IpAddr,
        sender_local: &str,
        sender_domain: &str,
    ) -> SpfResult {
        let ctx = MacroContext::new(sender_local, sender_domain, client_ip);
        self.explanation = None;
        self.check_domain(&ctx, sender_domain, 0)
    }

    fn check_domain(&mut self, outer_ctx: &MacroContext, domain: &str, depth: u32) -> SpfResult {
        if depth > self.config.max_depth {
            return SpfResult::PermError;
        }
        let Ok(domain_name) = Name::parse(domain) else {
            return SpfResult::PermError;
        };

        let outcome = match self.query(&domain_name, RecordType::TXT, false) {
            Ok(o) => o,
            Err(QueryFail::Temp) => return SpfResult::TempError,
            Err(QueryFail::LimitExceeded) => return SpfResult::PermError,
        };
        let spf_texts: Vec<String> = outcome
            .records()
            .iter()
            .filter_map(|r| r.rdata.txt_joined())
            .filter(|t| SpfRecord::looks_like_spf(t))
            .collect();
        let text = match spf_texts.len() {
            0 => return SpfResult::None,
            1 => &spf_texts[0],
            _ => return SpfResult::PermError,
        };
        let (policy_id, policy) = match self.cache.intern(text) {
            Ok(entry) => entry,
            Err(RecordError::NotSpf1) => return SpfResult::None,
            Err(_) => return SpfResult::PermError,
        };

        let mut ctx = outer_ctx.clone();
        ctx.domain = domain.to_string();

        // Result memo: for a macro-closed, DNS-free policy the verdict is
        // a pure function of the client IP — no queries, no explanation,
        // no limit consumption — so replaying it is exact.
        let memoizable = policy.memoizable();
        if memoizable {
            if let Some(result) = self.cache.memo_result(policy_id, ctx.client_ip) {
                return result;
            }
        }

        let result = self.run_ops(outer_ctx, &ctx, &policy, depth);
        if memoizable {
            self.cache.insert_result(policy_id, ctx.client_ip, result);
        }
        result
    }

    fn run_ops(
        &mut self,
        outer_ctx: &MacroContext,
        ctx: &MacroContext,
        policy: &CompiledPolicy,
        depth: u32,
    ) -> SpfResult {
        for op in policy.ops() {
            if op.counts_against_lookup_limit() {
                self.lookup_terms += 1;
                if self.lookup_terms > self.config.max_lookup_terms {
                    return SpfResult::PermError;
                }
            }
            match self.matches(ctx, op, depth) {
                Ok(true) => {
                    self.trace.push(TraceEvent::Mechanism {
                        name: op.name(),
                        matched: true,
                    });
                    let result = qualifier_of(op).result();
                    if result == SpfResult::Fail && depth == 0 {
                        if let Some(exp_target) = policy.explanation() {
                            self.explanation = self.fetch_explanation(ctx, exp_target);
                        }
                    }
                    return result;
                }
                Ok(false) => {
                    self.trace.push(TraceEvent::Mechanism {
                        name: op.name(),
                        matched: false,
                    });
                }
                Err(result) => return result,
            }
        }

        if let Some(target) = policy.redirect() {
            self.lookup_terms += 1;
            if self.lookup_terms > self.config.max_lookup_terms {
                return SpfResult::PermError;
            }
            let Ok(new_domain) = self.expand_arg(ctx, target) else {
                return SpfResult::PermError;
            };
            self.trace.push(TraceEvent::Recurse {
                domain: new_domain.clone(),
            });
            let result = self.check_domain(outer_ctx, &new_domain, depth + 1);
            return if result == SpfResult::None {
                SpfResult::PermError
            } else {
                result
            };
        }
        SpfResult::Neutral
    }

    fn fetch_explanation(&mut self, ctx: &MacroContext, target: &MacroString) -> Option<String> {
        let domain_text = self.expander.expand(target, ctx, false).ok()?;
        let domain = Name::parse(&domain_text).ok()?;
        let outcome = self.query(&domain, RecordType::TXT, false).ok()?;
        let records = outcome.records();
        let [record] = records else {
            return None;
        };
        let text = record.rdata.txt_joined()?;
        let ms = MacroString::parse(&text).ok()?;
        self.expander.expand(&ms, ctx, true).ok()
    }

    fn matches(&mut self, ctx: &MacroContext, op: &Op, depth: u32) -> Result<bool, SpfResult> {
        match op {
            Op::All { .. } => Ok(true),
            Op::Ip4 { addr, cidr, .. } => Ok(match ctx.client_ip {
                IpAddr::V4(ip) => v4_in_network(ip, *addr, *cidr),
                IpAddr::V6(_) => false,
            }),
            Op::Ip6 { addr, cidr, .. } => Ok(match ctx.client_ip {
                IpAddr::V6(ip) => v6_in_network(ip, *addr, *cidr),
                IpAddr::V4(_) => false,
            }),
            Op::A {
                domain,
                cidr4,
                cidr6,
                ..
            } => {
                let target = self.target_name(ctx, domain)?;
                self.address_match(ctx, &target, *cidr4, *cidr6)
            }
            Op::Mx {
                domain,
                cidr4,
                cidr6,
                ..
            } => {
                let target = self.target_name(ctx, domain)?;
                let outcome = self
                    .query(&target, RecordType::MX, true)
                    .map_err(QueryFail::into_result)?;
                let mut exchanges: Vec<Name> = outcome
                    .records()
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Mx { exchange, .. } => Some(exchange.clone()),
                        _ => None,
                    })
                    .collect();
                if exchanges.len() > self.config.max_mx_names {
                    return Err(SpfResult::PermError);
                }
                exchanges.truncate(self.config.max_mx_names);
                for exchange in exchanges {
                    if self.address_match(ctx, &exchange, *cidr4, *cidr6)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Op::Include { domain, .. } => {
                let Ok(new_domain) = self.expand_arg(ctx, domain) else {
                    return Err(SpfResult::PermError);
                };
                self.trace.push(TraceEvent::Recurse {
                    domain: new_domain.clone(),
                });
                match self.check_domain(ctx, &new_domain, depth + 1) {
                    SpfResult::Pass => Ok(true),
                    SpfResult::Fail | SpfResult::SoftFail | SpfResult::Neutral => Ok(false),
                    SpfResult::TempError => Err(SpfResult::TempError),
                    SpfResult::None | SpfResult::PermError => Err(SpfResult::PermError),
                }
            }
            Op::Exists { domain, .. } => {
                let text = self
                    .expand_arg(ctx, domain)
                    .map_err(|_| SpfResult::PermError)?;
                let target = Name::parse(&text).map_err(|_| SpfResult::PermError)?;
                let outcome = self
                    .query(&target, RecordType::A, true)
                    .map_err(QueryFail::into_result)?;
                Ok(!outcome.records().is_empty())
            }
            Op::Ptr { domain, .. } => {
                let target = self.target_name(ctx, domain)?;
                let reverse = reverse_name(ctx.client_ip);
                let outcome = self
                    .query(&reverse, RecordType::PTR, true)
                    .map_err(QueryFail::into_result)?;
                let mut candidates: Vec<Name> = outcome
                    .records()
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Ptr(host) => Some(host.clone()),
                        _ => None,
                    })
                    .filter(|host| host.is_subdomain_of(&target))
                    .collect();
                candidates.truncate(self.config.max_mx_names);
                for host in candidates {
                    if self.address_match(ctx, &host, 32, 128)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    fn target_name(&mut self, ctx: &MacroContext, domain: &DomainOp) -> Result<Name, SpfResult> {
        let text = match domain {
            DomainOp::Current => ctx.domain.clone(),
            DomainOp::Spec(arg) => self.expand_arg(ctx, arg).map_err(|_| SpfResult::PermError)?,
        };
        Name::parse(&text).map_err(|_| SpfResult::PermError)
    }

    /// Expand a compiled domain-spec: the scratch-buffer splice (or the
    /// pre-rendered text) for a compliant expander, the trait seam for
    /// everything else. Faults land in the trace exactly as
    /// `Evaluator::expand` records them.
    fn expand_arg(&mut self, ctx: &MacroContext, arg: &DomainArg) -> Result<String, ExpandError> {
        let result = if self.expander.is_rfc_compliant() {
            if let Some(rendered) = arg.rendered() {
                return Ok(rendered.to_string());
            }
            let mut out = String::new();
            arg.splice(ctx, &mut out, &mut self.scratch_raw, &mut self.scratch_transformed)
                .map(|()| out)
        } else {
            self.expander.expand(arg.macro_string(), ctx, false)
        };
        match result {
            Ok(s) => Ok(s),
            Err(e) => {
                self.trace.push(TraceEvent::ExpanderFault(e.to_string()));
                Err(e)
            }
        }
    }

    fn address_match(
        &mut self,
        ctx: &MacroContext,
        target: &Name,
        cidr4: u8,
        cidr6: u8,
    ) -> Result<bool, SpfResult> {
        let rtype = match ctx.client_ip {
            IpAddr::V4(_) => RecordType::A,
            IpAddr::V6(_) => RecordType::AAAA,
        };
        let outcome = self
            .query(target, rtype, true)
            .map_err(QueryFail::into_result)?;
        for record in outcome.records() {
            let matched = match (&record.rdata, ctx.client_ip) {
                (RData::A(addr), IpAddr::V4(ip)) => v4_in_network(ip, *addr, cidr4),
                (RData::Aaaa(addr), IpAddr::V6(ip)) => v6_in_network(ip, *addr, cidr6),
                _ => false,
            };
            if matched {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn query(
        &mut self,
        name: &Name,
        rtype: RecordType,
        counted: bool,
    ) -> Result<spfail_dns::LookupOutcome, QueryFail> {
        self.trace.push(TraceEvent::Query {
            name: name.clone(),
            rtype,
        });
        match self.dns.lookup(name, rtype) {
            Ok(outcome) => {
                if counted && outcome.is_void() {
                    self.void_lookups += 1;
                    if self.void_lookups > self.config.max_void_lookups {
                        return Err(QueryFail::LimitExceeded);
                    }
                }
                Ok(outcome)
            }
            Err(_) => Err(QueryFail::Temp),
        }
    }
}

fn qualifier_of(op: &Op) -> Qualifier {
    match op {
        Op::All { q }
        | Op::Ip4 { q, .. }
        | Op::Ip6 { q, .. }
        | Op::A { q, .. }
        | Op::Mx { q, .. }
        | Op::Ptr { q, .. }
        | Op::Exists { q, .. }
        | Op::Include { q, .. } => *q,
    }
}

// Compile-time sanity: keep `Modifier` in scope so the lowering above is
// checked against the record model it mirrors.
const _: fn(&Modifier) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::CompliantExpander;
    use spfail_dns::resolver::{LookupError, LookupOutcome};
    use spfail_dns::Record;

    #[test]
    fn canonicalize_collapses_spaces_only() {
        assert_eq!(canonicalize("v=spf1   ip4:1.2.3.4  -all "), "v=spf1 ip4:1.2.3.4 -all");
        assert_eq!(canonicalize("v=spf1 -all"), "v=spf1 -all");
    }

    #[test]
    fn templates_round_trip() {
        let t = templatize("ab12.s01.zone a:b.ab12.s01.zone", "ab12").unwrap();
        assert!(!t.contains("ab12"));
        assert_eq!(splice_id(&t, "ab12"), "ab12.s01.zone a:b.ab12.s01.zone");
        assert_eq!(splice_id(&t, "zz99"), "zz99.s01.zone a:b.zz99.s01.zone");
        assert!(templatize("x", "").is_none());
        assert!(templatize("al\u{1}ready", "al").is_none());
    }

    #[test]
    fn dns_free_and_macro_closed_predicates() {
        let free = CompiledPolicy::compile(&SpfRecord::parse("v=spf1 ip4:192.0.2.0/24 -all").unwrap());
        assert!(free.dns_free() && free.macro_closed() && free.memoizable());

        let with_a = CompiledPolicy::compile(&SpfRecord::parse("v=spf1 a -all").unwrap());
        assert!(!with_a.dns_free() && !with_a.memoizable());

        let with_exp =
            CompiledPolicy::compile(&SpfRecord::parse("v=spf1 -all exp=why.example.com").unwrap());
        assert!(!with_exp.dns_free());

        let open_letters =
            CompiledPolicy::compile(&SpfRecord::parse("v=spf1 exists:%{p}.example.com -all").unwrap());
        assert!(!open_letters.macro_closed());

        let closed_letters =
            CompiledPolicy::compile(&SpfRecord::parse("v=spf1 a:%{d1r}.x.example.com -all").unwrap());
        assert!(closed_letters.macro_closed() && !closed_letters.dns_free());
    }

    #[test]
    fn intern_shares_textual_variants_and_assigns_stable_ids() {
        let mut cache = PolicyCache::new();
        let (id1, p1) = cache.intern("v=spf1  ip4:192.0.2.0/24   -all").unwrap();
        let (id2, p2) = cache.intern("v=spf1 ip4:192.0.2.0/24 -all").unwrap();
        assert_eq!(id1, id2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats().interned, 1);
        let (id3, _) = cache.intern("v=spf1 -all").unwrap();
        assert_ne!(id1, id3);
        assert_eq!(cache.stats().interned, 2);
    }

    #[test]
    fn result_memo_hits_after_first_evaluation() {
        let mut cache = PolicyCache::new();
        let mut dns = |_: &Name, _: RecordType| -> Result<LookupOutcome, LookupError> {
            Ok(LookupOutcome::Records(
                vec![Record::new(
                    Name::parse("example.com").unwrap(),
                    300,
                    RData::txt("v=spf1 ip4:192.0.2.0/24 -all"),
                )]
                .into(),
            ))
        };
        let ip: IpAddr = "192.0.2.7".parse().unwrap();
        for round in 0..2 {
            let mut expander = CompliantExpander;
            let mut eval = CompiledEvaluator::new(&mut dns, &mut expander, &mut cache);
            assert_eq!(eval.check_host(ip, "user", "example.com"), SpfResult::Pass, "round {round}");
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let off: IpAddr = "198.51.100.9".parse().unwrap();
        let mut expander = CompliantExpander;
        let mut eval = CompiledEvaluator::new(&mut dns, &mut expander, &mut cache);
        assert_eq!(eval.check_host(off, "user", "example.com"), SpfResult::Fail);
    }

    #[test]
    fn splice_matches_compliant_expander() {
        let ms = MacroString::parse("%{d1r}.%%x%_%-.%{L}.tail").unwrap();
        let arg = DomainArg::compile(&ms);
        assert!(arg.rendered().is_none());
        let ctx = MacroContext::new("us/er", "a.b.c", "192.0.2.1".parse().unwrap());
        let mut out = String::new();
        let (mut raw, mut tr) = (String::new(), String::new());
        arg.splice(&ctx, &mut out, &mut raw, &mut tr).unwrap();
        let expected = CompliantExpander.expand(&ms, &ctx, false).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn macro_free_specs_pre_render() {
        let ms = MacroString::parse("b.example.com").unwrap();
        let arg = DomainArg::compile(&ms);
        assert_eq!(arg.rendered(), Some("b.example.com"));
        assert!(matches!(arg.segments(), [Segment::Literal(_)]));
    }

    #[test]
    fn exp_only_letter_faults_outside_exp() {
        let ms = MacroString::parse("%{t}.example.com").unwrap();
        let arg = DomainArg::compile(&ms);
        let ctx = MacroContext::new("u", "example.com", "192.0.2.1".parse().unwrap());
        let mut out = String::new();
        let (mut raw, mut tr) = (String::new(), String::new());
        assert!(matches!(
            arg.splice(&ctx, &mut out, &mut raw, &mut tr),
            Err(ExpandError::ExpOnlyLetter('t'))
        ));
    }
}
