//! `v=spf1` record parsing (RFC 7208 §4.6.1, §5).

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::macrostring::{MacroError, MacroString};
use crate::result::Qualifier;

/// Errors parsing an SPF record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Missing or wrong version tag.
    NotSpf1,
    /// An unrecognised mechanism name.
    UnknownMechanism(String),
    /// A mechanism that requires a domain-spec lacked one.
    MissingDomain(String),
    /// A malformed IP network.
    BadNetwork(String),
    /// A malformed CIDR prefix length.
    BadCidr(String),
    /// A malformed macro-string.
    BadMacro(MacroError),
    /// A term that is neither mechanism nor modifier.
    BadTerm(String),
    /// `redirect=` or `exp=` appeared more than once (RFC 7208 §6:
    /// "MUST NOT appear in a record more than once each").
    DuplicateModifier(&'static str),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::NotSpf1 => write!(f, "record does not begin with v=spf1"),
            RecordError::UnknownMechanism(s) => write!(f, "unknown mechanism {s}"),
            RecordError::MissingDomain(s) => write!(f, "mechanism {s} requires a domain"),
            RecordError::BadNetwork(s) => write!(f, "bad network {s}"),
            RecordError::BadCidr(s) => write!(f, "bad cidr {s}"),
            RecordError::BadMacro(e) => write!(f, "bad macro: {e}"),
            RecordError::BadTerm(s) => write!(f, "unparsable term {s}"),
            RecordError::DuplicateModifier(s) => {
                write!(f, "modifier {s}= appears more than once")
            }
        }
    }
}

impl std::error::Error for RecordError {}

impl From<MacroError> for RecordError {
    fn from(e: MacroError) -> Self {
        RecordError::BadMacro(e)
    }
}

/// The mechanism kinds of RFC 7208 §5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MechanismKind {
    /// `all`.
    All,
    /// `include:<domain-spec>`.
    Include(MacroString),
    /// `a[:<domain-spec>][/cidr[//cidr6]]`.
    A {
        /// Target domain; `None` means the current domain.
        domain: Option<MacroString>,
        /// IPv4 prefix length applied to the addresses found.
        cidr4: u8,
        /// IPv6 prefix length applied to the addresses found.
        cidr6: u8,
    },
    /// `mx[:<domain-spec>][/cidr[//cidr6]]`.
    Mx {
        /// Target domain; `None` means the current domain.
        domain: Option<MacroString>,
        /// IPv4 prefix length.
        cidr4: u8,
        /// IPv6 prefix length.
        cidr6: u8,
    },
    /// `ptr[:<domain-spec>]` (deprecated but still seen).
    Ptr {
        /// Validation domain; `None` means the current domain.
        domain: Option<MacroString>,
    },
    /// `ip4:<network>[/cidr]`.
    Ip4 {
        /// Network address.
        addr: Ipv4Addr,
        /// Prefix length.
        cidr: u8,
    },
    /// `ip6:<network>[/cidr]`.
    Ip6 {
        /// Network address.
        addr: Ipv6Addr,
        /// Prefix length.
        cidr: u8,
    },
    /// `exists:<domain-spec>`.
    Exists(MacroString),
}

impl MechanismKind {
    /// Whether evaluating this mechanism consumes one of the ten permitted
    /// DNS-querying terms (RFC 7208 §4.6.4).
    pub fn counts_against_lookup_limit(&self) -> bool {
        matches!(
            self,
            MechanismKind::Include(_)
                | MechanismKind::A { .. }
                | MechanismKind::Mx { .. }
                | MechanismKind::Ptr { .. }
                | MechanismKind::Exists(_)
        )
    }

    /// The mechanism's name as written in records.
    pub fn name(&self) -> &'static str {
        match self {
            MechanismKind::All => "all",
            MechanismKind::Include(_) => "include",
            MechanismKind::A { .. } => "a",
            MechanismKind::Mx { .. } => "mx",
            MechanismKind::Ptr { .. } => "ptr",
            MechanismKind::Ip4 { .. } => "ip4",
            MechanismKind::Ip6 { .. } => "ip6",
            MechanismKind::Exists(_) => "exists",
        }
    }
}

/// A qualified mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mechanism {
    /// The qualifier (`+`/`-`/`~`/`?`).
    pub qualifier: Qualifier,
    /// The mechanism proper.
    pub kind: MechanismKind,
}

/// Modifiers (RFC 7208 §6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Modifier {
    /// `redirect=<domain-spec>`.
    Redirect(MacroString),
    /// `exp=<domain-spec>`.
    Explanation(MacroString),
    /// Any other `name=value`, preserved and ignored per the RFC.
    Unknown {
        /// Modifier name.
        name: String,
        /// Raw value.
        value: String,
    },
}

/// A parsed SPF record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpfRecord {
    /// Mechanisms in evaluation order.
    pub mechanisms: Vec<Mechanism>,
    /// Modifiers in appearance order.
    pub modifiers: Vec<Modifier>,
}

impl SpfRecord {
    /// Whether `text` even looks like an SPF record (has the version tag).
    /// Used to select among multiple TXT records (RFC 7208 §4.5).
    pub fn looks_like_spf(text: &str) -> bool {
        let lower = text.trim_start().to_ascii_lowercase();
        lower == "v=spf1" || lower.starts_with("v=spf1 ")
    }

    /// Parse the text of a `v=spf1` record.
    pub fn parse(text: &str) -> Result<SpfRecord, RecordError> {
        let mut terms = text.split(' ').filter(|t| !t.is_empty());
        match terms.next() {
            Some(v) if v.eq_ignore_ascii_case("v=spf1") => {}
            _ => return Err(RecordError::NotSpf1),
        }
        let mut mechanisms = Vec::new();
        let mut modifiers = Vec::new();
        for term in terms {
            // A modifier is name=value where name is alphanumeric; this
            // check precedes mechanism parsing because `exists:%{x}=y` can't
            // occur (no '=' before ':') but redirect=... has no ':' first.
            if let Some(eq) = term.find('=') {
                let colon = term.find(':');
                if colon.map_or(true, |c| eq < c) {
                    let modifier = Self::parse_modifier(&term[..eq], &term[eq + 1..])?;
                    // §6: redirect= and exp= MUST NOT appear more than once
                    // each; a repeat is a syntax error (check_host() returns
                    // permerror). Unknown modifiers may repeat freely.
                    let dup = |wanted: &Modifier| -> bool {
                        matches!(
                            (wanted, &modifier),
                            (Modifier::Redirect(_), Modifier::Redirect(_))
                                | (Modifier::Explanation(_), Modifier::Explanation(_))
                        )
                    };
                    if modifiers.iter().any(dup) {
                        return Err(RecordError::DuplicateModifier(
                            match modifier {
                                Modifier::Redirect(_) => "redirect",
                                _ => "exp",
                            },
                        ));
                    }
                    modifiers.push(modifier);
                    continue;
                }
            }
            mechanisms.push(Self::parse_mechanism(term)?);
        }
        Ok(SpfRecord {
            mechanisms,
            modifiers,
        })
    }

    fn parse_modifier(name: &str, value: &str) -> Result<Modifier, RecordError> {
        match name.to_ascii_lowercase().as_str() {
            "redirect" => Ok(Modifier::Redirect(MacroString::parse(value)?)),
            "exp" => Ok(Modifier::Explanation(MacroString::parse(value)?)),
            _ => Ok(Modifier::Unknown {
                name: name.to_string(),
                value: value.to_string(),
            }),
        }
    }

    fn parse_mechanism(term: &str) -> Result<Mechanism, RecordError> {
        let (qualifier, rest) = Qualifier::strip(term);
        // Split name from argument at ':'; CIDR suffixes come after '/'.
        let (name_part, arg) = match rest.find(':') {
            Some(i) => (&rest[..i], Some(&rest[i + 1..])),
            None => match rest.find('/') {
                Some(i) => (&rest[..i], None),
                None => (rest, None),
            },
        };
        // When there was no ':', the cidr (if any) is still attached to arg
        // handling below; recompute the slash-free name and cidr text.
        let name_lower = name_part.to_ascii_lowercase();
        let cidr_text = match rest.find(':') {
            Some(_) => None, // cidr then lives at the end of `arg`
            None => rest.find('/').map(|i| &rest[i..]),
        };

        let kind = match name_lower.as_str() {
            "all" => {
                if arg.is_some() || cidr_text.is_some() {
                    return Err(RecordError::BadTerm(term.to_string()));
                }
                MechanismKind::All
            }
            "include" => {
                let domain = arg.ok_or_else(|| RecordError::MissingDomain("include".into()))?;
                MechanismKind::Include(MacroString::parse(domain)?)
            }
            "exists" => {
                let domain = arg.ok_or_else(|| RecordError::MissingDomain("exists".into()))?;
                MechanismKind::Exists(MacroString::parse(domain)?)
            }
            "a" | "mx" => {
                let (domain, cidr4, cidr6) = Self::parse_domain_and_cidr(arg, cidr_text)?;
                if name_lower == "a" {
                    MechanismKind::A {
                        domain,
                        cidr4,
                        cidr6,
                    }
                } else {
                    MechanismKind::Mx {
                        domain,
                        cidr4,
                        cidr6,
                    }
                }
            }
            "ptr" => {
                let domain = match arg {
                    Some(d) => Some(MacroString::parse(d)?),
                    None => None,
                };
                MechanismKind::Ptr { domain }
            }
            "ip4" => {
                let arg = arg.ok_or_else(|| RecordError::MissingDomain("ip4".into()))?;
                let (addr_text, cidr) = split_cidr(arg);
                let addr: Ipv4Addr = addr_text
                    .parse()
                    .map_err(|_| RecordError::BadNetwork(addr_text.to_string()))?;
                let cidr = parse_cidr(cidr, 32)?;
                MechanismKind::Ip4 { addr, cidr }
            }
            "ip6" => {
                let arg = arg.ok_or_else(|| RecordError::MissingDomain("ip6".into()))?;
                let (addr_text, cidr) = split_cidr(arg);
                let addr: Ipv6Addr = addr_text
                    .parse()
                    .map_err(|_| RecordError::BadNetwork(addr_text.to_string()))?;
                let cidr = parse_cidr(cidr, 128)?;
                MechanismKind::Ip6 { addr, cidr }
            }
            other => return Err(RecordError::UnknownMechanism(other.to_string())),
        };
        Ok(Mechanism { qualifier, kind })
    }

    /// Parse `[domain][/c4[//c6]]` for `a`/`mx`.
    fn parse_domain_and_cidr(
        arg: Option<&str>,
        bare_cidr: Option<&str>,
    ) -> Result<(Option<MacroString>, u8, u8), RecordError> {
        let mut domain = None;
        let mut cidr_part: Option<&str> = bare_cidr;
        if let Some(arg) = arg {
            let (dom, cidr) = split_cidr_keep(arg);
            if !dom.is_empty() {
                domain = Some(MacroString::parse(dom)?);
            }
            cidr_part = cidr;
        }
        let (cidr4, cidr6) = match cidr_part {
            None => (32, 128),
            Some(text) => {
                let text = text.strip_prefix('/').unwrap_or(text);
                match text.split_once("//") {
                    Some((c4, c6)) => (
                        parse_cidr(if c4.is_empty() { None } else { Some(c4) }, 32)?,
                        parse_cidr(Some(c6), 128)?,
                    ),
                    None => (parse_cidr(Some(text), 32)?, 128),
                }
            }
        };
        Ok((domain, cidr4, cidr6))
    }

    /// The `redirect=` target, if present.
    pub fn redirect(&self) -> Option<&MacroString> {
        self.modifiers.iter().find_map(|m| match m {
            Modifier::Redirect(ms) => Some(ms),
            _ => None,
        })
    }

    /// The `exp=` target, if present.
    pub fn explanation(&self) -> Option<&MacroString> {
        self.modifiers.iter().find_map(|m| match m {
            Modifier::Explanation(ms) => Some(ms),
            _ => None,
        })
    }
}

fn split_cidr(arg: &str) -> (&str, Option<&str>) {
    match arg.find('/') {
        Some(i) => (&arg[..i], Some(&arg[i + 1..])),
        None => (arg, None),
    }
}

fn split_cidr_keep(arg: &str) -> (&str, Option<&str>) {
    match arg.find('/') {
        Some(i) => (&arg[..i], Some(&arg[i..])),
        None => (arg, None),
    }
}

fn parse_cidr(text: Option<&str>, max: u8) -> Result<u8, RecordError> {
    match text {
        None => Ok(max),
        Some(t) => {
            let v: u8 = t
                .parse()
                .map_err(|_| RecordError::BadCidr(t.to_string()))?;
            if v > max {
                Err(RecordError::BadCidr(t.to_string()))
            } else {
                Ok(v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_tag_required() {
        assert!(SpfRecord::parse("v=spf1 -all").is_ok());
        assert!(SpfRecord::parse("V=SPF1 -all").is_ok());
        assert_eq!(SpfRecord::parse("spf2.0/pra"), Err(RecordError::NotSpf1));
        assert_eq!(SpfRecord::parse(""), Err(RecordError::NotSpf1));
        assert!(SpfRecord::looks_like_spf("v=spf1 a -all"));
        assert!(SpfRecord::looks_like_spf("v=spf1"));
        assert!(!SpfRecord::looks_like_spf("v=spf10 a"));
        assert!(!SpfRecord::looks_like_spf("verification=xyz"));
    }

    /// The example policy from paper §2.2.
    #[test]
    fn paper_policy_parses() {
        let r = SpfRecord::parse(
            "v=spf1 a:foo.example.com ip4:192.0.2.1 include:bar.org -all",
        )
        .unwrap();
        assert_eq!(r.mechanisms.len(), 4);
        assert!(matches!(r.mechanisms[0].kind, MechanismKind::A { .. }));
        assert!(matches!(
            r.mechanisms[1].kind,
            MechanismKind::Ip4 { cidr: 32, .. }
        ));
        assert!(matches!(r.mechanisms[2].kind, MechanismKind::Include(_)));
        assert_eq!(r.mechanisms[3].kind, MechanismKind::All);
        assert_eq!(r.mechanisms[3].qualifier, Qualifier::Fail);
    }

    /// The measurement policy of paper §5.1 parses with its macro.
    #[test]
    fn measurement_policy_parses() {
        let r = SpfRecord::parse(
            "v=spf1 a:%{d1r}.ab1c.s1.spf-test.dns-lab.org \
             a:b.ab1c.s1.spf-test.dns-lab.org -all",
        )
        .unwrap();
        assert_eq!(r.mechanisms.len(), 3);
        match &r.mechanisms[0].kind {
            MechanismKind::A {
                domain: Some(ms), ..
            } => assert!(ms.has_macros()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cidr_suffixes() {
        let r = SpfRecord::parse("v=spf1 a/24 mx:mail.example.com/28//64 ip4:10.0.0.0/8").unwrap();
        match &r.mechanisms[0].kind {
            MechanismKind::A {
                domain,
                cidr4,
                cidr6,
            } => {
                assert!(domain.is_none());
                assert_eq!(*cidr4, 24);
                assert_eq!(*cidr6, 128);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &r.mechanisms[1].kind {
            MechanismKind::Mx {
                domain,
                cidr4,
                cidr6,
            } => {
                assert!(domain.is_some());
                assert_eq!(*cidr4, 28);
                assert_eq!(*cidr6, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &r.mechanisms[2].kind {
            MechanismKind::Ip4 { addr, cidr } => {
                assert_eq!(*addr, Ipv4Addr::new(10, 0, 0, 0));
                assert_eq!(*cidr, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ip6_parses() {
        let r = SpfRecord::parse("v=spf1 ip6:2001:db8::/32 ~all").unwrap();
        match &r.mechanisms[0].kind {
            MechanismKind::Ip6 { cidr, .. } => assert_eq!(*cidr, 32),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.mechanisms[1].qualifier, Qualifier::SoftFail);
    }

    #[test]
    fn modifiers() {
        let r = SpfRecord::parse("v=spf1 redirect=_spf.example.com exp=explain.%{d} x-custom=1")
            .unwrap();
        assert!(r.redirect().is_some());
        assert!(r.explanation().is_some());
        assert!(matches!(
            &r.modifiers[2],
            Modifier::Unknown { name, .. } if name == "x-custom"
        ));
    }

    #[test]
    fn bad_records() {
        assert!(matches!(
            SpfRecord::parse("v=spf1 bogus"),
            Err(RecordError::UnknownMechanism(_))
        ));
        assert!(matches!(
            SpfRecord::parse("v=spf1 include"),
            Err(RecordError::MissingDomain(_))
        ));
        assert!(matches!(
            SpfRecord::parse("v=spf1 ip4:not-an-ip"),
            Err(RecordError::BadNetwork(_))
        ));
        assert!(matches!(
            SpfRecord::parse("v=spf1 ip4:10.0.0.0/99"),
            Err(RecordError::BadCidr(_))
        ));
        assert!(matches!(
            SpfRecord::parse("v=spf1 all:extra"),
            Err(RecordError::BadTerm(_))
        ));
        assert!(matches!(
            SpfRecord::parse("v=spf1 exists:%{q}"),
            Err(RecordError::BadMacro(_))
        ));
    }

    /// RFC 7208 §6: a second redirect= or exp= is a syntax error. Found by
    /// the differential conformance fuzzer (crates/conformance): the
    /// pre-fix parser silently kept both and evaluated the first, where
    /// every RFC-conformant validator returns permerror.
    #[test]
    fn duplicate_redirect_or_exp_is_an_error() {
        assert_eq!(
            SpfRecord::parse("v=spf1 redirect=a.example.com redirect=b.example.com"),
            Err(RecordError::DuplicateModifier("redirect"))
        );
        assert_eq!(
            SpfRecord::parse("v=spf1 exp=e1.example.com -all exp=e2.example.com"),
            Err(RecordError::DuplicateModifier("exp"))
        );
        // One of each is fine, and unknown modifiers may repeat.
        assert!(SpfRecord::parse("v=spf1 redirect=a.test exp=e.test").is_ok());
        assert!(SpfRecord::parse("v=spf1 x-a=1 x-a=2 -all").is_ok());
    }

    #[test]
    fn qualifiers_apply_to_any_mechanism() {
        let r = SpfRecord::parse("v=spf1 ?include:x.test ~mx -ip4:192.0.2.0/24 +a").unwrap();
        assert_eq!(r.mechanisms[0].qualifier, Qualifier::Neutral);
        assert_eq!(r.mechanisms[1].qualifier, Qualifier::SoftFail);
        assert_eq!(r.mechanisms[2].qualifier, Qualifier::Fail);
        assert_eq!(r.mechanisms[3].qualifier, Qualifier::Pass);
    }

    #[test]
    fn lookup_limit_accounting() {
        assert!(MechanismKind::Include(MacroString::parse("x").unwrap())
            .counts_against_lookup_limit());
        assert!(!MechanismKind::All.counts_against_lookup_limit());
        assert!(!MechanismKind::Ip4 {
            addr: Ipv4Addr::new(10, 0, 0, 0),
            cidr: 8
        }
        .counts_against_lookup_limit());
    }

    #[test]
    fn extra_spaces_tolerated() {
        let r = SpfRecord::parse("v=spf1   a    -all").unwrap();
        assert_eq!(r.mechanisms.len(), 2);
    }
}
