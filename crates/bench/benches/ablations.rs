//! Ablation benchmarks for the design choices DESIGN.md calls out.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use spfail_dns::resolver::ResolverConfig;
use spfail_dns::{
    wire, Directory, Message, Name, QueryLog, RData, RecordType, Resolver, SpfTestAuthority,
    StaticAuthority, ZoneBuilder,
};
use spfail_mta::{Mta, MtaConfig, SpfStage};
use spfail_netsim::{Link, SimClock, SimRng};
use spfail_prober::classify;
use spfail_smtp::address::EmailAddress;
use spfail_smtp::command::Command;

/// Ablation 1: DNS name compression on vs off — codec time and message
/// size trade-off.
fn ablation_compression(c: &mut Criterion) {
    let origin = Name::parse("k7q2.s1.spf-test.dns-lab.org").expect("name");
    let q = Message::query(7, origin.clone(), RecordType::TXT);
    let mut message = Message::respond_to(&q);
    // A response with heavily repeated suffixes — compression's best case.
    for i in 0..8 {
        message.answers.push(spfail_dns::Record::new(
            origin.child(&format!("mx{i}")).expect("name"),
            60,
            RData::Mx {
                preference: i,
                exchange: origin.child(&format!("exchange{i}")).expect("name"),
            },
        ));
    }
    let mut group = c.benchmark_group("ablation_compression");
    group.bench_function("encode_compressed", |b| {
        b.iter(|| wire::encode(black_box(&message)))
    });
    group.bench_function("encode_uncompressed", |b| {
        b.iter(|| wire::encode_uncompressed(black_box(&message)))
    });
    // Record the size delta as auxiliary output.
    let compressed = wire::encode(&message).len();
    let plain = wire::encode_uncompressed(&message).len();
    eprintln!("ablation_compression: {compressed}B compressed vs {plain}B plain");
    group.finish();
}

/// Ablation 2: resolver cache on vs off. The paper's unique per-probe
/// labels deliberately make every query a cache miss; this quantifies the
/// asymmetry that design exploits.
fn ablation_cache(c: &mut Criterion) {
    let clock = SimClock::new();
    let directory = Directory::new();
    let origin = Name::parse("static.example").expect("name");
    let zone = ZoneBuilder::new(origin.clone())
        .txt(&origin, 300, "v=spf1 -all")
        .a(&origin, 300, "192.0.2.1".parse().expect("ip"))
        .build();
    directory.register(Arc::new(StaticAuthority::new(zone)));

    let mut group = c.benchmark_group("ablation_cache_bypass");
    group.bench_function("repeat_query_cached", |b| {
        let mut resolver = Resolver::new(
            directory.clone(),
            Link::ideal(clock.clone()),
            "198.51.100.1".parse().expect("ip"),
        );
        let mut rng = SimRng::new(1);
        b.iter(|| {
            resolver
                .resolve(&mut rng, black_box(&origin), RecordType::A)
                .expect("resolves")
        })
    });
    group.bench_function("repeat_query_uncached", |b| {
        let mut resolver = Resolver::with_config(
            directory.clone(),
            Link::ideal(clock.clone()),
            "198.51.100.1".parse().expect("ip"),
            ResolverConfig {
                cache_enabled: false,
                ..ResolverConfig::default()
            },
        );
        let mut rng = SimRng::new(2);
        b.iter(|| {
            resolver
                .resolve(&mut rng, black_box(&origin), RecordType::A)
                .expect("resolves")
        })
    });
    group.finish();
}

fn probe_rig() -> (Directory, QueryLog, SimClock) {
    let log = QueryLog::new();
    let directory = Directory::new();
    directory.register(Arc::new(SpfTestAuthority::new(
        SpfTestAuthority::default_origin(),
        log.clone(),
    )));
    (directory, log, SimClock::new())
}

fn run_probe(
    directory: &Directory,
    clock: &SimClock,
    stage: SpfStage,
    blank: bool,
    id: &str,
) -> bool {
    let mut config = MtaConfig::vulnerable("mx.bench.test");
    config.spf_stage = stage;
    config.reject_on_spf_fail = false;
    let mut mta = Mta::new(
        config,
        "198.51.100.9".parse().expect("ip"),
        directory.clone(),
        clock.clone(),
        SimRng::new(3),
    );
    let origin = SpfTestAuthority::default_origin();
    let sender = EmailAddress::new("mmj7yzdm0tbk", &format!("{id}.s1.{}", origin.to_ascii()))
        .expect("address");
    mta.connect("203.0.113.25".parse().expect("ip"));
    let (mut session, _) = mta.open_session();
    session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
    session.handle(&Command::MailFrom(sender));
    if blank {
        session.handle(&Command::RcptTo(
            EmailAddress::parse("postmaster@x.test").expect("address"),
        ));
        session.handle(&Command::Data);
        session.handle_message("");
    }
    true
}

/// Ablation 3: NoMsg-first vs BlankMsg-only probing. NoMsg is cheaper per
/// probe but misses OnData hosts; BlankMsg-only always pays the full
/// transaction.
fn ablation_probe_strategy(c: &mut Criterion) {
    let (directory, _log, clock) = probe_rig();
    let mut group = c.benchmark_group("ablation_probe_strategy");
    group.bench_function("nomsg_first_on_mailfrom_host", |b| {
        b.iter(|| run_probe(&directory, &clock, SpfStage::OnMailFrom, false, "aa1"))
    });
    group.bench_function("nomsg_then_blank_on_data_host", |b| {
        b.iter(|| {
            // NoMsg elicits nothing from an OnData host, so the prober
            // pays for both transactions.
            run_probe(&directory, &clock, SpfStage::OnData, false, "bb2");
            run_probe(&directory, &clock, SpfStage::OnData, true, "bb2")
        })
    });
    group.bench_function("blankmsg_only_on_data_host", |b| {
        b.iter(|| run_probe(&directory, &clock, SpfStage::OnData, true, "cc3"))
    });
    group.finish();
}

/// Ablation 4: classification over a single observed query vs a
/// multi-filter host's whole query set.
fn ablation_multiquery(c: &mut Criterion) {
    let (directory, log, clock) = probe_rig();
    let origin = SpfTestAuthority::default_origin();

    // Single implementation.
    let start = log.len();
    run_probe(&directory, &clock, SpfStage::OnMailFrom, false, "dd4");
    let single = log.entries_from(start);

    // Chained implementations (vulnerable + compliant).
    let mut config = MtaConfig::vulnerable("mx.multi.test");
    config.spf_impls = vec![
        spfail_libspf2::MacroBehavior::VulnerableLibSpf2,
        spfail_libspf2::MacroBehavior::Compliant,
    ];
    config.reject_on_spf_fail = false;
    let mut mta = Mta::new(
        config,
        "198.51.100.9".parse().expect("ip"),
        directory.clone(),
        clock.clone(),
        SimRng::new(4),
    );
    let sender = EmailAddress::new("mmj7yzdm0tbk", &format!("ee5.s1.{}", origin.to_ascii()))
        .expect("address");
    let start = log.len();
    mta.connect("203.0.113.25".parse().expect("ip"));
    let (mut session, _) = mta.open_session();
    session.handle(&Command::Ehlo("probe.dns-lab.org".into()));
    session.handle(&Command::MailFrom(sender));
    let multi = log.entries_from(start);

    let mut group = c.benchmark_group("ablation_multiquery");
    group.bench_function("classify_single_impl", |b| {
        b.iter(|| classify(black_box(&single), "dd4", "s1", &origin))
    });
    group.bench_function("classify_multi_impl", |b| {
        b.iter(|| classify(black_box(&multi), "ee5", "s1", &origin))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_compression,
    ablation_cache,
    ablation_probe_strategy,
    ablation_multiquery
);
criterion_main!(benches);
