//! Micro-benchmarks of the substrate components on the probe hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use spfail_dns::{wire, Message, Name, QueryLogEntry, RData, Record, RecordType};
use spfail_dns::resolver::{LookupError, LookupOutcome};
use spfail_libspf2::LibSpf2Expander;
use spfail_netsim::SimTime;
use spfail_prober::classify;
use spfail_spf::eval::{Evaluator, SpfDns};
use spfail_spf::expand::{CompliantExpander, MacroContext, MacroExpander};
use spfail_spf::macrostring::MacroString;
use spfail_spf::record::SpfRecord;

fn sample_response() -> Message {
    let q = Message::query(
        0x1234,
        Name::parse("k7q2.s1.spf-test.dns-lab.org").expect("name"),
        RecordType::TXT,
    );
    Message::respond_to(&q).with_answer(Record::new(
        Name::parse("k7q2.s1.spf-test.dns-lab.org").expect("name"),
        60,
        RData::txt(
            "v=spf1 a:%{d1r}.k7q2.s1.spf-test.dns-lab.org \
             a:b.k7q2.s1.spf-test.dns-lab.org -all",
        ),
    ))
}

fn bench_wire(c: &mut Criterion) {
    let message = sample_response();
    let encoded = wire::encode(&message);
    c.bench_function("dns_wire_encode", |b| {
        b.iter(|| wire::encode(black_box(&message)))
    });
    c.bench_function("dns_wire_decode", |b| {
        b.iter(|| wire::decode(black_box(&encoded)).expect("decodes"))
    });
    c.bench_function("dns_name_parse", |b| {
        b.iter(|| Name::parse(black_box("org.org.dns-lab.spf-test.s1.k7q2.k7q2.s1.spf-test.dns-lab.org")))
    });
}

fn bench_spf(c: &mut Criterion) {
    let record_text = "v=spf1 a:foo.example.com ip4:192.0.2.1 include:bar.org -all";
    c.bench_function("spf_record_parse", |b| {
        b.iter(|| SpfRecord::parse(black_box(record_text)).expect("parses"))
    });

    let ms = MacroString::parse("%{d1r}.foo.com").expect("macro");
    let ctx = MacroContext::new("user", "example.com", "192.0.2.3".parse().expect("ip"));
    c.bench_function("macro_expand_compliant", |b| {
        b.iter(|| {
            CompliantExpander
                .expand(black_box(&ms), black_box(&ctx), false)
                .expect("expands")
        })
    });
    c.bench_function("macro_expand_vulnerable_libspf2", |b| {
        let mut expander = LibSpf2Expander::vulnerable();
        b.iter(|| {
            expander.reset_heap();
            expander
                .expand(black_box(&ms), black_box(&ctx), false)
                .expect("expands")
        })
    });

    /// An allocation-free fixture answering the measurement-zone pattern.
    struct ZoneDns;
    impl SpfDns for ZoneDns {
        fn lookup(
            &mut self,
            name: &Name,
            rtype: RecordType,
        ) -> Result<LookupOutcome, LookupError> {
            match rtype {
                RecordType::TXT => Ok(LookupOutcome::Records(vec![Record::new(
                    name.clone(),
                    60,
                    RData::txt(&format!("v=spf1 a:%{{d1r}}.{n} a:b.{n} -all", n = name)),
                )].into())),
                RecordType::A => Ok(LookupOutcome::Records(vec![Record::new(
                    name.clone(),
                    60,
                    RData::A("192.0.2.200".parse().expect("ip")),
                )].into())),
                _ => Ok(LookupOutcome::NoRecords),
            }
        }
    }

    c.bench_function("spf_check_host_full", |b| {
        b.iter(|| {
            let mut dns = ZoneDns;
            let mut expander = CompliantExpander;
            let mut eval = Evaluator::new(&mut dns, &mut expander);
            eval.check_host(
                black_box("203.0.113.25".parse().expect("ip")),
                "mmj7yzdm0tbk",
                "k7q2.s1.spf-test.dns-lab.org",
            )
        })
    });
}

fn bench_classify(c: &mut Criterion) {
    let zone = Name::parse("spf-test.dns-lab.org").expect("name");
    let entries: Vec<QueryLogEntry> = [
        ("k7q2.s1.spf-test.dns-lab.org", RecordType::TXT),
        (
            "org.org.dns-lab.spf-test.s1.k7q2.k7q2.s1.spf-test.dns-lab.org",
            RecordType::A,
        ),
        ("b.k7q2.s1.spf-test.dns-lab.org", RecordType::A),
    ]
    .iter()
    .map(|(qname, qtype)| QueryLogEntry {
        at: SimTime::EPOCH,
        source: "198.51.100.1".parse().expect("ip"),
        qname: Name::parse(qname).expect("name"),
        qtype: *qtype,
    })
    .collect();
    c.bench_function("probe_classify", |b| {
        b.iter(|| classify(black_box(&entries), "k7q2", "s1", &zone))
    });
}

criterion_group!(benches, bench_wire, bench_spf, bench_classify);
criterion_main!(benches);
