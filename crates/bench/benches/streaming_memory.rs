//! Peak-heap footprint of the streaming campaign engine vs the eager
//! one, measured with a byte-counting global allocator.
//!
//! The streaming driver's claim is architectural — peak heap
//! O(shards + tracked + masks) instead of O(hosts) — and the hard
//! budgets live in tier-1 (`crates/bench/tests/alloc_count.rs`). This
//! bench *measures* the curve: eager and streaming campaigns over the
//! same worlds at two scales, recording each mode's high-water mark and
//! wall clock, re-asserting cross-mode summary equality on every
//! measured pair (bounded memory must never cost a bit of output).
//! Emits `BENCH_memory_footprint.json` next to the criterion output.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use spfail_prober::{CampaignBuilder, CampaignSummary};
use spfail_world::{World, WorldConfig};

struct MeteredAllocator;

static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for MeteredAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let now = CURRENT_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed)
            + layout.size() as u64;
        PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        let now =
            CURRENT_BYTES.fetch_add(new_size as u64, Ordering::Relaxed) + new_size as u64;
        PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: MeteredAllocator = MeteredAllocator;

/// Peak heap growth of `f` over the live bytes at entry, plus wall
/// clock. Criterion runs benches single-threaded, so the window is
/// exclusive without a lock.
fn metered<R>(f: impl FnOnce() -> R) -> (u64, f64, R) {
    let baseline = CURRENT_BYTES.load(Ordering::SeqCst);
    PEAK_BYTES.store(baseline, Ordering::SeqCst);
    let start = Instant::now();
    let out = f();
    let wall = start.elapsed().as_secs_f64();
    let peak = PEAK_BYTES.load(Ordering::SeqCst);
    (peak.saturating_sub(baseline), wall, out)
}

fn fast() -> bool {
    std::env::var_os("SPFAIL_BENCH_FAST").is_some_and(|v| v != "0")
}

fn config(scale: f64) -> WorldConfig {
    WorldConfig {
        seed: 0x5bf2_a117,
        scale,
        ..WorldConfig::default()
    }
}

/// One eager + one streaming campaign over the same world config;
/// returns the per-mode (peak bytes, wall seconds) and the host count,
/// having asserted the cross-mode summary equality.
fn measure_pair(scale: f64) -> ((u64, f64), (u64, f64), usize) {
    let (eager_peak, eager_wall, eager_summary) = metered(|| {
        let world = World::generate(config(scale));
        let run = CampaignBuilder::new().run(&world);
        CampaignSummary::from_data(&run.data)
    });
    let (streaming_peak, streaming_wall, streamed_summary) = metered(|| {
        CampaignBuilder::new()
            .run_streaming(config(scale))
            .run
            .summary
    });
    assert_eq!(
        eager_summary, streamed_summary,
        "bounded memory must not change a single measurement"
    );
    let hosts = eager_summary.masks.len();
    ((eager_peak, eager_wall), (streaming_peak, streaming_wall), hosts)
}

fn footprint(c: &mut Criterion) {
    let scale = if fast() { 0.01 } else { 0.02 };
    let mut group = c.benchmark_group("streaming_memory");
    group.sample_size(10);
    group.bench_function("eager_campaign", |b| {
        b.iter(|| {
            let world = World::generate(config(scale));
            CampaignBuilder::new().run(&world).data
        })
    });
    group.bench_function("streaming_campaign", |b| {
        b.iter(|| CampaignBuilder::new().run_streaming(config(scale)).run.data)
    });
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    // Two points on the curve: the ratio should *fall* as the world
    // grows, because the eager side is O(hosts) and the streaming side
    // is dominated by flat terms plus the 4-byte mask column.
    let scales: &[f64] = if fast() { &[0.01, 0.04] } else { &[0.02, 0.08] };
    let mut points = Vec::new();
    let mut last_ratio = f64::NAN;
    for &scale in scales {
        let ((eager_peak, eager_wall), (streaming_peak, streaming_wall), hosts) =
            measure_pair(scale);
        let ratio = streaming_peak as f64 / eager_peak.max(1) as f64;
        eprintln!(
            "streaming_memory: scale {scale} ({hosts} hosts): eager {:.1} MiB / {:.2}s, \
             streaming {:.1} MiB / {:.2}s, ratio {:.1}%",
            eager_peak as f64 / (1 << 20) as f64,
            eager_wall,
            streaming_peak as f64 / (1 << 20) as f64,
            streaming_wall,
            100.0 * ratio,
        );
        points.push(serde_json::json!({
            "scale": scale,
            "hosts": hosts,
            "eager_peak_bytes": eager_peak,
            "streaming_peak_bytes": streaming_peak,
            "peak_ratio": ratio,
            "eager_wall_s": eager_wall,
            "streaming_wall_s": streaming_wall,
        }));
        last_ratio = ratio;
    }
    let report = serde_json::json!({
        "bench": "streaming_memory",
        "world": { "config": "WorldConfig::default()", "seed": "0x5bf2a117" },
        "methodology": {
            "allocator": "byte-counting global allocator, high-water mark over baseline",
            "equality_checked_per_pair": true,
            "statistic": "single measured pair per scale",
        },
        "points": points,
        "budget": {
            "tier1": "crates/bench/tests/alloc_count.rs (always-on <=50%, 50K-host soak <=25%)",
        },
    });
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_memory_footprint.json"
    );
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap() + "\n")
        .expect("write bench report");
    eprintln!("streaming_memory: wrote {path}");
    // Regression tripwire: at the largest measured scale the streaming
    // engine must hold a decisive advantage (the hard tier-1 budget is
    // stricter; this guards the bench itself staying meaningful).
    assert!(
        last_ratio < 0.5,
        "streaming peak-heap ratio regressed to {:.1}% of eager",
        100.0 * last_ratio
    );
}

criterion_group!(benches, footprint, emit_json);
criterion_main!(benches);
