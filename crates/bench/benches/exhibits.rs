//! One benchmark per paper exhibit: each regenerates its table/figure
//! from a shared pipeline run, so the numbers report the cost of the
//! *aggregation*, while `pipeline_full` reports the cost of the whole
//! reproduction (world + campaigns) at a reduced scale.

use std::sync::OnceLock;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use spfail_report::pipeline::Context;
use spfail_report::{figures, tables};

fn shared() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(|| Context::run(0.01, 0xBE7C))
}

fn bench_tables(c: &mut Criterion) {
    let ctx = shared();
    c.bench_function("table1_overlap", |b| b.iter(|| tables::table1(black_box(ctx))));
    c.bench_function("table2_tlds", |b| b.iter(|| tables::table2(black_box(ctx))));
    c.bench_function("table3_probe_outcomes", |b| {
        b.iter(|| tables::table3(black_box(ctx)))
    });
    c.bench_function("table4_breakdown", |b| b.iter(|| tables::table4(black_box(ctx))));
    c.bench_function("table5_tld_patch", |b| b.iter(|| tables::table5(black_box(ctx))));
    c.bench_function("table6_pkgmgr", |b| b.iter(tables::table6));
    c.bench_function("table7_behaviors", |b| b.iter(|| tables::table7(black_box(ctx))));
}

fn bench_figures(c: &mut Criterion) {
    let ctx = shared();
    c.bench_function("fig2_final_snapshot", |b| b.iter(|| figures::fig2(black_box(ctx))));
    c.bench_function("fig3_geo", |b| b.iter(|| figures::fig3(black_box(ctx))));
    c.bench_function("fig4_rank", |b| b.iter(|| figures::fig4(black_box(ctx))));
    c.bench_function("fig5_conclusive", |b| b.iter(|| figures::fig5(black_box(ctx))));
    c.bench_function("fig6_window1", |b| b.iter(|| figures::fig6(black_box(ctx))));
    c.bench_function("fig7_full", |b| b.iter(|| figures::fig7(black_box(ctx))));
    c.bench_function("fig8_top1000", |b| b.iter(|| figures::fig8(black_box(ctx))));
    c.bench_function("notify_funnel", |b| {
        b.iter(|| figures::notification_funnel(black_box(ctx)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    // The entire reproduction — world generation, initial sweep over every
    // host, 34 longitudinal rounds, snapshot, and notifications — at
    // 1:500 scale.
    group.bench_function("pipeline_full_scale_0.002", |b| {
        b.iter(|| Context::run(black_box(0.002), 0xFEED))
    });
    group.bench_function("world_generate_scale_0.01", |b| {
        b.iter(|| {
            spfail_world::World::generate(spfail_world::WorldConfig {
                seed: 0xF00D,
                scale: black_box(0.01),
                ..spfail_world::WorldConfig::default()
            })
        })
    });
    // Multi-seed replication: the bench-harness use case for crossbeam —
    // independent seeds are embarrassingly parallel because each Context
    // owns its whole world.
    group.bench_function("replicate_4_seeds_sequential", |b| {
        b.iter(|| {
            (0..4u64)
                .map(|seed| Context::run(black_box(0.002), 0xC0DE + seed))
                .collect::<Vec<_>>()
                .len()
        })
    });
    group.bench_function("replicate_4_seeds_parallel", |b| {
        b.iter(|| {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..4u64)
                    .map(|seed| {
                        scope.spawn(move |_| Context::run(black_box(0.002), 0xC0DE + seed))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panics"))
                    .collect::<Vec<_>>()
                    .len()
            })
            .expect("scope completes")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_pipeline);
criterion_main!(benches);
