//! DNS hot-path microbenches for the compact `Name` representation:
//! wire encode/decode round-trip and cached-vs-cold resolves.
//!
//! The allocation *bounds* live in `tests/alloc_count.rs` (tier-1, exact
//! counts); this bench reports the wall-clock side and emits
//! `BENCH_dns_hotpath.json` with the measured numbers so CI runs leave a
//! machine-readable record next to the criterion output.

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use spfail_dns::rdata::{RData, Record};
use spfail_dns::{
    wire, Directory, Message, Name, RecordType, Resolver, StaticAuthority, ZoneBuilder,
};
use spfail_netsim::{Link, SimClock, SimRng};

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

/// A response-shaped message with heavy shared suffixes — the case the
/// compression scanner earns its keep on.
fn fixture_message() -> Message {
    let qname = n("k7q2.suite1.spf-test.dns-lab.org");
    let mut m = Message::query(41, qname.clone(), RecordType::TXT);
    m.answers.push(Record::new(
        qname.clone(),
        300,
        RData::txt("v=spf1 a:%{d1r}.foo.com include:spf.dns-lab.org -all"),
    ));
    for host in ["mail", "mx1", "mx2", "backup"] {
        let owner = n(&format!("{host}.suite1.spf-test.dns-lab.org"));
        m.answers.push(Record::new(
            owner.clone(),
            300,
            RData::Mx {
                preference: 10,
                exchange: n("mail.dns-lab.org"),
            },
        ));
        m.additionals
            .push(Record::new(owner, 300, RData::A(Ipv4Addr::new(203, 0, 113, 25))));
    }
    m
}

fn resolver_fixture() -> (Resolver, SimRng) {
    let directory = Directory::new();
    let zone = ZoneBuilder::new(n("example.com"))
        .a(&n("example.com"), 300, Ipv4Addr::new(192, 0, 2, 1))
        .a(&n("mail.example.com"), 300, Ipv4Addr::new(192, 0, 2, 25))
        .mx(&n("example.com"), 300, 10, &n("mail.example.com"))
        .txt(&n("example.com"), 300, "v=spf1 a mx -all")
        .build();
    directory.register(Arc::new(StaticAuthority::new(zone)));
    let clock = SimClock::new();
    let resolver = Resolver::new(
        directory,
        Link::ideal(clock),
        "198.51.100.1".parse().unwrap(),
    );
    (resolver, SimRng::new(0x5bf5_fa11))
}

/// Median ns/op over `samples` timed batches, calibrated like the
/// criterion stand-in but returning the number (the stand-in only
/// prints, and the JSON exhibit needs the value).
fn measure_ns<R>(samples: usize, mut routine: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    black_box(routine());
    let single = start.elapsed().as_nanos().max(1);
    let iters = (2_000_000u128 / single).clamp(1, 100_000) as u64;
    let mut medians: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    medians.sort_unstable();
    medians[medians.len() / 2] as f64
}

fn wire_codec(c: &mut Criterion) {
    let message = fixture_message();
    let encoded = wire::encode(&message);
    let mut group = c.benchmark_group("dns_hotpath");
    group.bench_function("encode", |b| b.iter(|| wire::encode(black_box(&message))));
    group.bench_function("decode", |b| {
        b.iter(|| wire::decode(black_box(&encoded)).unwrap())
    });
    group.bench_function("encode_decode_round_trip", |b| {
        b.iter(|| wire::decode(&wire::encode(black_box(&message))).unwrap())
    });
    group.finish();
}

fn resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("dns_hotpath");
    group.bench_function("resolve_cold", |b| {
        b.iter(|| {
            // A fresh resolver per iteration: every lookup misses.
            let (mut resolver, mut rng) = resolver_fixture();
            resolver
                .resolve(&mut rng, &n("mail.example.com"), RecordType::A)
                .unwrap()
        })
    });
    let (mut resolver, mut rng) = resolver_fixture();
    resolver
        .resolve(&mut rng, &n("mail.example.com"), RecordType::A)
        .unwrap();
    group.bench_function("resolve_cached", |b| {
        b.iter(|| {
            resolver
                .resolve(&mut rng, &n("mail.example.com"), RecordType::A)
                .unwrap()
        })
    });
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    let message = fixture_message();
    let encoded = wire::encode(&message);
    let samples = 9;

    let encode_ns = measure_ns(samples, || wire::encode(&message));
    let decode_ns = measure_ns(samples, || wire::decode(&encoded).unwrap());
    let cold_ns = measure_ns(samples, || {
        let (mut resolver, mut rng) = resolver_fixture();
        resolver
            .resolve(&mut rng, &n("mail.example.com"), RecordType::A)
            .unwrap()
    });
    let (mut resolver, mut rng) = resolver_fixture();
    resolver
        .resolve(&mut rng, &n("mail.example.com"), RecordType::A)
        .unwrap();
    let cached_ns = measure_ns(samples, || {
        resolver
            .resolve(&mut rng, &n("mail.example.com"), RecordType::A)
            .unwrap()
    });

    let report = serde_json::json!({
        "bench": "dns_hotpath",
        "fixture": {
            "message_records": message.answers.len() + message.additionals.len(),
            "encoded_bytes": encoded.len(),
        },
        "ns_per_op": {
            "wire_encode": encode_ns,
            "wire_decode": decode_ns,
            "resolve_cold": cold_ns,
            "resolve_cached": cached_ns,
        },
        "allocs_per_op": {
            // Enforced exactly in crates/bench/tests/alloc_count.rs;
            // recorded here so one artifact carries both dimensions.
            "resolve_cold_budget": 12,
            "resolve_cached_budget": 3,
            "vec_string_baseline_cold": 85,
            "vec_string_baseline_cached": 18,
        },
    });
    // Anchor to the workspace root (cargo bench runs in the package
    // dir), next to exhibits.json.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dns_hotpath.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap() + "\n")
        .expect("write bench report");
    eprintln!(
        "dns_hotpath: encode {encode_ns:.0} ns, decode {decode_ns:.0} ns, \
         resolve cold {cold_ns:.0} ns, cached {cached_ns:.0} ns -> {path}"
    );
}

criterion_group!(benches, wire_codec, resolve, emit_json);
criterion_main!(benches);
