//! Scaling of the sharded campaign engine (tests/parallel.rs proves the
//! engines equivalent; this measures what the sharding buys).
//!
//! Two views:
//!
//! * **Wall clock** per engine, through the usual criterion harness.
//!   On a shared single-core runner these mostly measure the scheduler,
//!   so they are reported for reference only.
//! * **Simulated makespan** — how long the campaign keeps probers busy
//!   in simulated time. The sequential engine serialises every probe
//!   (connection latency, SMTP round trips, contact-spacing and
//!   greylist waits) on one clock; each shard runs against its own
//!   clock, so a sharded phase costs only its slowest shard. This is
//!   the quantity a real parallel campaign improves, it is
//!   deterministic, and the benchmark asserts the headline claim:
//!   **at 4 shards the campaign is at least 2x faster**.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use spfail_prober::CampaignBuilder;
use spfail_world::{World, WorldConfig};

fn bench_world() -> World {
    World::generate(WorldConfig {
        scale: 0.004,
        ..WorldConfig::small(2024)
    })
}

fn scaling_wall_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_wall_clock");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| CampaignBuilder::new().run(black_box(&bench_world())))
    });
    for shards in [1usize, 4] {
        group.bench_function(&format!("sharded_{shards}"), |b| {
            b.iter(|| CampaignBuilder::new().shards(shards).run(black_box(&bench_world())))
        });
    }
    group.finish();
}

fn scaling_simulated_makespan(_c: &mut Criterion) {
    let sequential = CampaignBuilder::new()
        .timed()
        .run(&bench_world())
        .timing
        .expect("timed run");
    let baseline = sequential.total();
    eprintln!("campaign_sim_makespan: sequential: {baseline}");

    let mut speedup_at_4 = 0.0;
    for shards in [1usize, 2, 4, 8] {
        let timing = CampaignBuilder::new()
            .shards(shards)
            .timed()
            .run(&bench_world())
            .timing
            .expect("timed run");
        let makespan = timing.total();
        let speedup = baseline.as_secs_f64() / makespan.as_secs_f64();
        eprintln!(
            "campaign_sim_makespan: {shards} shard(s): {makespan} ({speedup:.2}x vs sequential)"
        );
        if shards == 4 {
            speedup_at_4 = speedup;
        }
    }
    assert!(
        speedup_at_4 >= 2.0,
        "4 shards must shorten the simulated campaign at least 2x, got {speedup_at_4:.2}x"
    );
}

criterion_group!(benches, scaling_wall_clock, scaling_simulated_makespan);
criterion_main!(benches);
