//! End-to-end campaign throughput with the compiled-policy evaluation
//! cache on vs off.
//!
//! The world is deliberately provider-heavy (high shared-hosting rate,
//! many multi-implementation MTAs, almost every set member publishing
//! SPF): that is the regime the paper's Alexa/top-provider sweeps live
//! in, and the regime where cross-probe memoization pays — thousands of
//! probes land on MTAs whose policies intern to a handful of compiled
//! programs.
//!
//! Methodology: the correctness side (cache-on and cache-off runs are
//! bit-for-bit identical) is tier-1 in `tests/policy_cache.rs`; this
//! bench re-asserts it on every timed pair, then reports wall clock.
//! Each timed run gets a **fresh** `World` — `CampaignBuilder::run`
//! advances the shared clock and contact ledger, so reusing one world
//! instance would time a different (spaced) campaign the second time.
//! Wall clock on a shared runner is noisy, so the JSON records the
//! best-of-N of alternating on/off pairs rather than a single sample.
//! Emits `BENCH_campaign_throughput.json` next to the criterion output.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use spfail_prober::{CampaignBuilder, CampaignRun};
use spfail_world::{World, WorldConfig};

fn fast() -> bool {
    std::env::var_os("SPFAIL_BENCH_FAST").is_some_and(|v| v != "0")
}

/// The provider-heavy standard world: `WorldConfig::small` demographics
/// with shared hosting and multi-implementation stacks cranked up, and
/// every sample set dominated by SPF publishers.
fn provider_heavy(scale: f64) -> WorldConfig {
    let mut config = WorldConfig {
        scale,
        shared_hosting_rate: 8.0,
        multi_impl_rate: 0.5,
        ..WorldConfig::small(2024)
    };
    for rates in [
        &mut config.alexa_rates,
        &mut config.two_week_rates,
        &mut config.top_provider_rates,
    ] {
        rates.refuse = 0.05;
        rates.spf_on_mailfrom = 0.45;
        rates.spf_on_data = 0.5;
    }
    config
}

const SHARDS: usize = 4;

fn bench_scale() -> f64 {
    if fast() {
        0.02
    } else {
        0.05
    }
}

fn run_cached(scale: f64) -> (f64, CampaignRun) {
    let world = World::generate(provider_heavy(scale));
    let start = Instant::now();
    let outcome = CampaignBuilder::new().shards(SHARDS).run(&world);
    (start.elapsed().as_secs_f64(), outcome)
}

fn run_uncached(scale: f64) -> (f64, CampaignRun) {
    let world = World::generate(provider_heavy(scale));
    let start = Instant::now();
    let outcome = CampaignBuilder::new()
        .shards(SHARDS)
        .policy_cache(false)
        .run(&world);
    (start.elapsed().as_secs_f64(), outcome)
}

fn campaign(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.bench_function("cached_4_shards", |b| b.iter(|| run_cached(scale).1));
    group.bench_function("uncached_4_shards", |b| b.iter(|| run_uncached(scale).1));
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    let scale = bench_scale();
    let rounds = if fast() { 3 } else { 5 };

    let mut on_best = f64::INFINITY;
    let mut off_best = f64::INFINITY;
    let mut stats = None;
    let mut hosts = 0usize;
    for _ in 0..rounds {
        let (on_s, on) = run_cached(scale);
        let (off_s, off) = run_uncached(scale);
        // Measurement transparency, re-checked on the timed artifacts:
        // the cache must never change what the campaign observes.
        assert_eq!(
            on.data, off.data,
            "cache-on and cache-off campaigns diverged"
        );
        assert!(off.cache.is_none(), "disabled cache still reported stats");
        on_best = on_best.min(on_s);
        off_best = off_best.min(off_s);
        hosts = on.data.initial.results.len();
        stats = on.cache;
    }
    let stats = stats.expect("cached run reports cache stats");
    let evaluations = stats.hits + stats.misses;
    let hit_rate = stats.hits as f64 / (evaluations.max(1)) as f64;
    let speedup = off_best / on_best;

    let report = serde_json::json!({
        "bench": "campaign_throughput",
        "world": {
            "config": "provider_heavy(WorldConfig::small(2024))",
            "scale": scale,
            "shards": SHARDS,
            "hosts_probed": hosts,
        },
        "methodology": {
            "rounds": rounds,
            "statistic": "best_of_rounds",
            "fresh_world_per_run": true,
            "transparency_checked_per_round": true,
        },
        "wall_clock_s": {
            "cached": on_best,
            "uncached": off_best,
        },
        "speedup": speedup,
        "speedup_target": 2.0,
        "policy_cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": hit_rate,
            "interned_policies": stats.interned,
        },
    });
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_campaign_throughput.json"
    );
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap() + "\n")
        .expect("write bench report");
    eprintln!(
        "campaign_throughput: cached {on_best:.3}s, uncached {off_best:.3}s, \
         speedup {speedup:.2}x, hit rate {:.1}% ({} policies interned) -> {path}",
        100.0 * hit_rate,
        stats.interned,
    );
    // Regression tripwire: a cache that stops paying for itself should
    // fail the bench loudly. The full 2x headline lives in the JSON
    // (wall clock on shared runners is too noisy for a hard assert).
    assert!(
        speedup > 1.2,
        "policy cache speedup regressed to {speedup:.2}x"
    );
}

criterion_group!(benches, campaign, emit_json);
criterion_main!(benches);
