//! Benchmark-only crate: see the `benches/` directory.
//!
//! * `components` — micro-benchmarks of the substrates (DNS codec, SPF
//!   evaluation, macro expansion, probe classification).
//! * `exhibits` — one benchmark per paper table/figure, regenerating the
//!   exhibit from a shared pipeline run, plus the full pipeline itself.
//! * `ablations` — the design-choice ablations called out in DESIGN.md
//!   (name compression, resolver caching, probe strategy, multi-query
//!   classification).
