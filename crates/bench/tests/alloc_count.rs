//! Allocation budget for the DNS resolve hot path, enforced in tier-1.
//!
//! A counting global allocator wraps the system allocator and the test
//! asserts hard upper bounds on heap allocations per cold
//! `Resolver::resolve` and per cached hit. The bounds are set at least 5x
//! below what the pre-compact `Name { labels: Vec<String> }`
//! representation measured (see DESIGN.md, "Name representation and
//! allocation budget"), so any change that reintroduces per-label or
//! per-lookup allocation fails tier-1 here — long before criterion noise
//! could hide it.
//!
//! Every measurement takes the shared [`measure_lock`], so parallel test
//! threads never pollute each other's window — essential now that the
//! streaming-vs-eager peak-heap tests below run whole campaigns (millions
//! of allocations) in the same binary as the ≤12-alloc resolve budgets.

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use spfail_dns::{Directory, Name, RecordType, Resolver, StaticAuthority, ZoneBuilder};
use spfail_netsim::{Link, SimClock, SimRng};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Depth of measurement scopes; counting only while > 0 keeps test-harness
/// bookkeeping out of the numbers.
static MEASURING: AtomicUsize = AtomicUsize::new(0);
/// Live heap bytes right now. Tracked from the first allocation of the
/// process, so every dealloc pairs with a tracked alloc and the counter
/// never underflows.
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`CURRENT_BYTES`] since the last reset.
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.load(Ordering::Relaxed) > 0 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        let now = CURRENT_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed)
            + layout.size() as u64;
        PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if MEASURING.load(Ordering::Relaxed) > 0 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        let now =
            CURRENT_BYTES.fetch_add(new_size as u64, Ordering::Relaxed) + new_size as u64;
        PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Serialises measurement windows across test threads.
fn measure_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A poisoned lock only means another measurement test failed; the
    // window itself is still exclusive.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Heap allocations performed by `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let _window = measure_lock();
    MEASURING.fetch_add(1, Ordering::SeqCst);
    let before = ALLOCS.load(Ordering::SeqCst);
    let out = f();
    let after = ALLOCS.load(Ordering::SeqCst);
    MEASURING.fetch_sub(1, Ordering::SeqCst);
    (after - before, out)
}

/// Peak heap growth of `f` over the live bytes at entry — the
/// high-water mark a campaign's working set reaches above its baseline.
fn peak_heap<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let _window = measure_lock();
    let baseline = CURRENT_BYTES.load(Ordering::SeqCst);
    PEAK_BYTES.store(baseline, Ordering::SeqCst);
    let out = f();
    let peak = PEAK_BYTES.load(Ordering::SeqCst);
    (peak.saturating_sub(baseline), out)
}

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

fn fixture() -> (Resolver, SimRng) {
    let directory = Directory::new();
    let origin = n("example.com");
    let zone = ZoneBuilder::new(origin.clone())
        .a(&n("example.com"), 300, Ipv4Addr::new(192, 0, 2, 1))
        .a(&n("mail.example.com"), 300, Ipv4Addr::new(192, 0, 2, 25))
        .mx(&n("example.com"), 300, 10, &n("mail.example.com"))
        .txt(
            &n("example.com"),
            300,
            "v=spf1 a mx include:spf.example.com -all",
        )
        .build();
    directory.register(Arc::new(StaticAuthority::new(zone)));
    let clock = SimClock::new();
    let resolver = Resolver::new(
        directory,
        Link::ideal(clock),
        "198.51.100.1".parse().unwrap(),
    );
    (resolver, SimRng::new(0x5bf5_fa11))
}

/// The pre-compact `Vec<String>` representation measured 85 allocations
/// for the cold resolve below and 18 per cached hit (see DESIGN.md for
/// the breakdown). The bounds assert the >=5x reduction (85/5 = 17,
/// 18/5 = 3.6) and are set below even that so headroom never erodes
/// silently.
const COLD_RESOLVE_BUDGET: u64 = 12;
const CACHED_HIT_BUDGET: u64 = 3;

#[test]
fn resolve_hot_path_stays_within_allocation_budget() {
    let (mut resolver, mut rng) = fixture();
    let qname = n("mail.example.com");

    // Warm up lazy one-time structures (query-id state, link metrics)
    // against an unrelated name so the measured resolve is steady-state.
    resolver
        .resolve(&mut rng, &n("example.com"), RecordType::MX)
        .unwrap();

    let (cold, outcome) = count_allocs(|| {
        resolver
            .resolve(&mut rng, &qname, RecordType::A)
            .unwrap()
    });
    assert_eq!(outcome.records().len(), 1, "fixture must answer");

    let (hit, outcome) = count_allocs(|| {
        resolver
            .resolve(&mut rng, &qname, RecordType::A)
            .unwrap()
    });
    assert_eq!(outcome.records().len(), 1, "cache must answer");

    eprintln!("alloc_count: cold resolve = {cold}, cached hit = {hit}");
    assert!(
        cold <= COLD_RESOLVE_BUDGET,
        "cold Resolver::resolve allocated {cold} times, budget {COLD_RESOLVE_BUDGET} \
         (Vec<String> baseline was 85; the compact Name must stay >=5x below it)"
    );
    assert!(
        hit <= CACHED_HIT_BUDGET,
        "cached hit allocated {hit} times, budget {CACHED_HIT_BUDGET} \
         (Vec<String> baseline was 18; the compact Name must stay >=5x below it)"
    );
}

/// TXT policies are what SPF evaluation actually fetches; make sure the
/// multi-record path (TXT rdata carries owned strings) also stays flat.
#[test]
fn txt_resolve_allocation_budget() {
    let (mut resolver, mut rng) = fixture();
    let qname = n("example.com");
    resolver
        .resolve(&mut rng, &n("mail.example.com"), RecordType::A)
        .unwrap();

    let (cold, _) = count_allocs(|| {
        resolver
            .resolve(&mut rng, &qname, RecordType::TXT)
            .unwrap()
    });
    let (hit, _) = count_allocs(|| {
        resolver
            .resolve(&mut rng, &qname, RecordType::TXT)
            .unwrap()
    });
    eprintln!("alloc_count: cold TXT resolve = {cold}, cached TXT hit = {hit}");
    // TXT rdata owns its strings, so the cold path pays for the record
    // copy into the cache; the cached hit must still be O(1) shared.
    // Vec<String> baseline: 59 cold / 18 hit; 59/5 = 11.8.
    assert!(cold <= 11, "cold TXT resolve allocated {cold} times");
    assert!(hit <= CACHED_HIT_BUDGET, "cached TXT hit allocated {hit} times");
}

/// Tracing must be free when it is off: a resolver carrying a *disabled*
/// `Tracer` allocates exactly as much as one carrying no tracer at all —
/// zero extra allocations on the cached-resolve hot path. The enabled
/// path pays a bounded per-span cost (events plus the lazily formatted
/// label), capped here so instrumentation creep shows up in tier-1.
#[test]
fn tracing_allocation_budget() {
    use spfail_trace::{TraceConfig, Tracer};

    let cached_hit = |resolver: &mut Resolver, rng: &mut SimRng, qname: &Name| {
        let (allocs, outcome) = count_allocs(|| {
            resolver.resolve(rng, qname, RecordType::A).unwrap()
        });
        assert_eq!(outcome.records().len(), 1, "cache must answer");
        allocs
    };

    // Baseline: no tracer attached.
    let (mut resolver, mut rng) = fixture();
    let qname = n("mail.example.com");
    resolver.resolve(&mut rng, &qname, RecordType::A).unwrap();
    let baseline = cached_hit(&mut resolver, &mut rng, &qname);

    // A disabled tracer must change nothing: same cached-hit count, and
    // zero allocations attributable to tracing.
    resolver.set_tracer(Tracer::disabled());
    let disabled = cached_hit(&mut resolver, &mut rng, &qname);
    eprintln!("alloc_count: cached hit baseline = {baseline}, with disabled tracer = {disabled}");
    assert_eq!(
        disabled, baseline,
        "a disabled Tracer must add zero allocations to the cached-resolve hot path"
    );
    assert_eq!(
        disabled, 0,
        "the cached-resolve hot path with tracing disabled must stay allocation-free"
    );

    // Enabled tracing, inside an open probe record (the campaign shape):
    // amortized per-span overhead over a run of cached resolves.
    let tracer = Tracer::new(TraceConfig::enabled());
    resolver.set_tracer(tracer.clone());
    tracer.begin_probe(spfail_netsim::SimTime::EPOCH, 0, 0, 0, 0);
    // Warm up the event buffer so Vec growth amortizes out of the sample.
    for _ in 0..4 {
        resolver.resolve(&mut rng, &qname, RecordType::A).unwrap();
    }
    const SPANS: u64 = 32;
    let (traced, _) = count_allocs(|| {
        for _ in 0..SPANS {
            resolver.resolve(&mut rng, &qname, RecordType::A).unwrap();
        }
    });
    let per_span = (traced.saturating_sub(baseline * SPANS)) / SPANS;
    eprintln!(
        "alloc_count: traced cached hit = {per_span} allocs/span over baseline \
         ({traced} total over {SPANS})"
    );
    assert!(
        per_span <= PER_SPAN_TRACING_BUDGET,
        "enabled tracing averaged {per_span} allocations per dns_resolve span, \
         budget {PER_SPAN_TRACING_BUDGET}"
    );
}

/// Measured: 3 allocations per traced span on the run above — the
/// formatted label String, its `Some(String)` event slot, and amortized
/// event-buffer growth. The budget leaves room for one more field
/// without letting a per-event or per-byte allocation (10x+) sneak past.
const PER_SPAN_TRACING_BUDGET: u64 = 4;

/// The differential conformance oracle runs `run_case` thousands of
/// times per tier-1 run (and 5000 times in the CI smoke), so its
/// per-case allocation count is a budgeted quantity like the resolve hot
/// path: a regression here multiplies straight into fuzz wall-clock.
/// The budget is an average over a fixed slice of generated cases —
/// individual cases vary widely (include chains, void pileups).
#[test]
fn conformance_oracle_per_case_allocation_budget() {
    use spfail_conformance::{generate_case, run_case};

    const SEED: u64 = 0x5bf5_fa11;
    const SAMPLE: u64 = 16;

    // Warm-up: fault any lazy one-time structures.
    let _ = run_case(&generate_case(SEED, 0));

    let cases: Vec<_> = (0..SAMPLE).map(|i| generate_case(SEED, i)).collect();
    let (allocs, reports) = count_allocs(|| {
        cases.iter().map(run_case).collect::<Vec<_>>()
    });
    assert_eq!(reports.len(), SAMPLE as usize);
    let per_case = allocs / SAMPLE;
    eprintln!("alloc_count: conformance oracle = {per_case} allocs/case ({allocs} over {SAMPLE})");
    assert!(
        per_case <= PER_CASE_ORACLE_BUDGET,
        "conformance oracle averaged {per_case} allocations per case, \
         budget {PER_CASE_ORACLE_BUDGET}"
    );
}

/// The compiled-policy cache hot path (see `spfail_spf::compile`): a
/// result-memo hit must be a pure probe — **zero** allocations, no
/// record parse, no op interpretation — and a warm intern must pay only
/// the canonical-text key (one String, plus padding for allocator
/// noise). The cold compile is pinned too, so the lowering never grows
/// a per-term or per-byte allocation silently.
#[test]
fn policy_cache_allocation_budget() {
    use std::net::IpAddr;

    use spfail_spf::{PolicyCache, SpfResult};

    let text = "v=spf1 ip4:192.0.2.0/24 ip4:198.51.100.0/24 ~all";
    let ip: IpAddr = "192.0.2.9".parse().unwrap();

    // Warm up the cache's lazy map storage with an unrelated policy so
    // the cold measurement is the compile, not HashMap table growth.
    let mut cache = PolicyCache::new();
    let (warm_id, _) = cache.intern("v=spf1 -all").unwrap();
    cache.insert_result(warm_id, ip, SpfResult::Fail);

    let (cold, interned) = count_allocs(|| cache.intern(text).unwrap());
    let (id, policy) = interned;
    assert!(policy.memoizable(), "fixture policy must be memoizable");
    cache.insert_result(id, ip, SpfResult::SoftFail);

    let (warm_intern, _) = count_allocs(|| cache.intern(text).unwrap());
    let (memo_hit, result) = count_allocs(|| cache.memo_result(id, ip));
    assert_eq!(result, Some(SpfResult::SoftFail));

    eprintln!(
        "alloc_count: policy compile cold = {cold}, warm intern = {warm_intern}, \
         memo hit = {memo_hit}"
    );
    assert_eq!(
        memo_hit, 0,
        "a result-memo hit must not allocate — it is the evaluation hot path"
    );
    assert!(
        warm_intern <= WARM_INTERN_BUDGET,
        "warm intern allocated {warm_intern} times, budget {WARM_INTERN_BUDGET} \
         (one canonical-text String plus headroom)"
    );
    assert!(
        cold <= COLD_COMPILE_BUDGET,
        "cold compile allocated {cold} times, budget {COLD_COMPILE_BUDGET}"
    );
}

/// Measured: 1 allocation per warm intern (the canonicalized key) and
/// 7 for the cold parse+compile of the three-term fixture. The budgets
/// sit ~50% above measured: tight enough that a per-term
/// interpretation sneaking into the hit path (10x+) fails immediately.
const WARM_INTERN_BUDGET: u64 = 2;
const COLD_COMPILE_BUDGET: u64 = 12;

/// Measured: ~900 allocations per case on the fixed slice above (9
/// profile evaluations plus two reference expansions of every macro
/// string in the case). The budget sits ~50% above the measured value:
/// tight enough to catch an accidental per-byte or per-query allocation
/// (those show up as 10x), loose enough to absorb generator drift when
/// cases get richer.
const PER_CASE_ORACLE_BUDGET: u64 = 1400;

/// Run one eager campaign and report (peak heap growth, hosts probed).
fn eager_campaign_peak(config: &spfail_world::WorldConfig) -> (u64, usize) {
    use spfail_prober::CampaignBuilder;
    use spfail_world::World;
    peak_heap(|| {
        let world = World::generate(config.clone());
        let run = CampaignBuilder::new().run(&world);
        run.data.initial.results.len()
    })
}

/// Run one streaming campaign and report (peak heap growth, hosts probed).
fn streaming_campaign_peak(config: &spfail_world::WorldConfig) -> (u64, usize) {
    use spfail_prober::CampaignBuilder;
    peak_heap(|| {
        let streamed = CampaignBuilder::new().run_streaming(config.clone());
        assert!(
            !streamed.run.summary.tracked.is_empty(),
            "a degenerate campaign would make the budget vacuous"
        );
        streamed.run.summary.masks.len()
    })
}

/// The streaming engine's bounded-memory claim, always-on at a small
/// scale: peak heap growth of a full streaming campaign stays under
/// half the eager engine's. (At this scale fixed overheads — channel
/// buffers, the retained population, per-probe scratch — still loom
/// large; the ratio tightens as the world grows, which the `50k` and
/// million-host soaks below pin at ≤25%.)
#[test]
fn streaming_campaign_peak_heap_stays_under_half_of_eager() {
    let config = spfail_world::WorldConfig {
        seed: 0x5bf2_a117,
        scale: 0.01,
        ..spfail_world::WorldConfig::default()
    };
    let (eager_peak, eager_hosts) = eager_campaign_peak(&config);
    let (streaming_peak, streamed_hosts) = streaming_campaign_peak(&config);
    assert_eq!(eager_hosts, streamed_hosts, "both modes probed the same world");
    eprintln!(
        "alloc_count: {eager_hosts}-host campaign peak heap: eager {:.1} MiB, \
         streaming {:.1} MiB ({:.1}%)",
        eager_peak as f64 / (1 << 20) as f64,
        streaming_peak as f64 / (1 << 20) as f64,
        100.0 * streaming_peak as f64 / eager_peak.max(1) as f64,
    );
    assert!(
        streaming_peak * 2 <= eager_peak,
        "streaming peak heap ({streaming_peak} B) must stay under half the eager \
         engine's ({eager_peak} B) even at {eager_hosts} hosts"
    );
}

/// The ISSUE-9 acceptance budget: at a ~50K-host world the streaming
/// campaign's peak heap is ≤25% of the eager engine's. Release-mode
/// soak — minutes of wall clock — so it is `#[ignore]`d out of tier-1
/// and run by the scheduled CI soak job (`cargo test --release -p
/// spfail-bench --test alloc_count -- --ignored 50k_hosts`).
#[test]
#[ignore = "release-mode soak (~50K hosts); run with --ignored"]
fn streaming_peak_heap_is_quarter_of_eager_at_50k_hosts() {
    // Default demographics put ~191K unique server addresses at scale
    // 1.0, so 0.26 lands within a few percent of 50K hosts.
    let config = spfail_world::WorldConfig {
        seed: 0x5bf2_a117,
        scale: 0.26,
        ..spfail_world::WorldConfig::default()
    };
    let (eager_peak, hosts) = eager_campaign_peak(&config);
    let (streaming_peak, streamed_hosts) = streaming_campaign_peak(&config);
    assert_eq!(hosts, streamed_hosts);
    assert!(hosts >= 40_000, "world too small for the 50K budget ({hosts} hosts)");
    eprintln!(
        "alloc_count: {hosts}-host soak peak heap: eager {:.1} MiB, streaming \
         {:.1} MiB ({:.1}%)",
        eager_peak as f64 / (1 << 20) as f64,
        streaming_peak as f64 / (1 << 20) as f64,
        100.0 * streaming_peak as f64 / eager_peak.max(1) as f64,
    );
    assert!(
        streaming_peak * 4 <= eager_peak,
        "streaming peak heap ({streaming_peak} B) exceeded 25% of eager \
         ({eager_peak} B) at {hosts} hosts"
    );
}

/// The million-host soak: the streaming engine completes a campaign the
/// eager engine's O(hosts) residency makes impractical, within a flat
/// absolute budget — O(shards + tracked + masks) in practice means the
/// 4-byte mask column plus the retained few percent. `#[ignore]`d:
/// ~a minute of release-mode wall clock; the scheduled CI soak job
/// runs it.
#[test]
#[ignore = "release-mode soak (~1M hosts, long); run with --ignored"]
fn streaming_campaign_completes_a_million_host_world_within_budget() {
    let config = spfail_world::WorldConfig {
        seed: 0x5bf2_a117,
        scale: 5.4,
        ..spfail_world::WorldConfig::default()
    };
    let (streaming_peak, hosts) = streaming_campaign_peak(&config);
    assert!(hosts >= 1_000_000, "world too small for the soak ({hosts} hosts)");
    eprintln!(
        "alloc_count: {hosts}-host streaming soak peak heap growth {:.1} MiB",
        streaming_peak as f64 / (1 << 20) as f64,
    );
    // 48 B/host covers the mask column and retention bookkeeping with
    // 12x headroom; the flat term covers the retained population and
    // per-round maps. The eager engine's world alone (records, names,
    // profiles) wants well over a gigabyte before probing starts.
    let budget = hosts as u64 * 48 + (512 << 20);
    assert!(
        streaming_peak <= budget,
        "streaming peak heap {streaming_peak} B exceeded the {budget} B budget \
         at {hosts} hosts"
    );
}
