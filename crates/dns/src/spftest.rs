//! The dynamic SPF measurement zone of paper §5.1.
//!
//! The probing client advertises `MAIL FROM` addresses under unique
//! subdomains of the measurement zone, `<id>.<suite>.spf-test.dns-lab.org`.
//! This authority synthesises, for any such name, a TXT record of the form
//!
//! ```text
//! v=spf1 a:%{d1r}.<id>.<suite>.spf-test.dns-lab.org
//!        a:b.<id>.<suite>.spf-test.dns-lab.org -all
//! ```
//!
//! populating `<id>` and `<suite>` from the queried name itself. When the
//! probed MTA expands `%{d1r}` and issues the follow-up A/AAAA query, the
//! *shape* of that query's name — recorded in the shared [`QueryLog`] —
//! reveals the MTA's SPF implementation:
//!
//! | prefix observed                         | implementation              |
//! |-----------------------------------------|-----------------------------|
//! | `<id>`                                  | RFC-compliant               |
//! | `org.org.dns-lab.spf-test.<suite>.<id>` | vulnerable libSPF2          |
//! | `org.dns-lab.spf-test.<suite>.<id>`     | reversal without truncation |
//! | `org`                                   | truncation without reversal |
//! | `<id>.<suite>.spf-test.dns-lab.org`     | neither                     |
//! | `%{d1r}` (literal)                      | no macro expansion          |
//! | `b` only                                | macros ignored entirely     |
//!
//! All address queries under the zone are answered with a fixed address that
//! never matches the prober, so the eventual SPF verdict is `Fail` — per the
//! paper's §6.2, the measurement is designed so probe mail is rejected.

use std::net::{IpAddr, Ipv4Addr};

use spfail_netsim::SimTime;

use crate::authority::Authority;
use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::pcap::PcapSink;
use crate::querylog::{QueryLog, QueryLogEntry};
use crate::rdata::{RData, Record, RecordType, Soa};

/// The authority for the dynamic measurement zone.
pub struct SpfTestAuthority {
    origin: Name,
    log: QueryLog,
    answer_a: Ipv4Addr,
    ttl: u32,
    /// The measurement server's own address (used as the pcap endpoint).
    server_addr: Ipv4Addr,
    pcap: Option<PcapSink>,
}

impl SpfTestAuthority {
    /// The default measurement zone origin used throughout the reproduction.
    pub fn default_origin() -> Name {
        Name::parse("spf-test.dns-lab.org").expect("static name")
    }

    /// A new authority for `origin`, logging to `log`.
    pub fn new(origin: Name, log: QueryLog) -> SpfTestAuthority {
        SpfTestAuthority {
            origin,
            log,
            // TEST-NET-1; deliberately never the prober's address.
            answer_a: Ipv4Addr::new(192, 0, 2, 200),
            ttl: 60,
            server_addr: Ipv4Addr::new(192, 0, 2, 53),
            pcap: None,
        }
    }

    /// Additionally capture every exchange into `sink`, tcpdump-style.
    pub fn with_pcap(mut self, sink: PcapSink) -> SpfTestAuthority {
        self.pcap = Some(sink);
        self
    }

    /// The shared query log.
    pub fn log(&self) -> &QueryLog {
        &self.log
    }

    /// The SPF policy text synthesised for a probe domain.
    pub fn policy_for(&self, id: &str, suite: &str) -> String {
        format!(
            "v=spf1 a:%{{d1r}}.{id}.{suite}.{origin} a:b.{id}.{suite}.{origin} -all",
            origin = self.origin.to_ascii()
        )
    }

    fn soa(&self) -> Record {
        Record::new(
            self.origin.clone(),
            self.ttl,
            RData::Soa(Soa {
                mname: self
                    .origin
                    .child("ns1")
                    .unwrap_or_else(|_| self.origin.clone()),
                rname: self
                    .origin
                    .child("hostmaster")
                    .unwrap_or_else(|_| self.origin.clone()),
                serial: 20_211_011, // 2021-10-11
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: self.ttl,
            }),
        )
    }
}

impl Authority for SpfTestAuthority {
    fn origin(&self) -> &Name {
        &self.origin
    }

    /// Replay is transparent here only while the query log is the sole
    /// side effect; a pcap sink captures whole messages, which a replayed
    /// query never builds.
    fn replay_loggable(&self) -> bool {
        self.pcap.is_none()
    }

    fn log_replayed_query(&self, qname: &Name, qtype: RecordType, source: IpAddr, now: SimTime) {
        self.log.record(QueryLogEntry {
            at: now,
            source,
            qname: qname.clone(),
            qtype,
        });
    }

    fn answer(&self, query: &Message, source: IpAddr, now: SimTime) -> Message {
        let response = self.answer_inner(query, source, now);
        if let Some(pcap) = &self.pcap {
            let client = match source {
                IpAddr::V4(v4) => v4,
                IpAddr::V6(_) => Ipv4Addr::new(198, 51, 100, 250),
            };
            pcap.record_exchange(now, client, self.server_addr, query, &response);
        }
        response
    }
}

impl SpfTestAuthority {
    fn answer_inner(&self, query: &Message, source: IpAddr, now: SimTime) -> Message {
        let mut response = Message::respond_to(query);
        let Some(question) = query.question() else {
            return response.with_rcode(Rcode::FormErr);
        };
        self.log.record(QueryLogEntry {
            at: now,
            source,
            qname: question.name.clone(),
            qtype: question.qtype,
        });
        let Some(prefix) = question.name.strip_suffix(&self.origin) else {
            return response.with_rcode(Rcode::Refused);
        };
        match question.qtype {
            RecordType::TXT | RecordType::SPF => {
                // §6.2: the probe source domains publish DMARC reject
                // policies so that any mail claiming to be from them is
                // rejected outright rather than delivered.
                if prefix.first().is_some_and(|l| l.eq_ignore_ascii_case("_dmarc")) {
                    response.answers.push(Record::new(
                        question.name.clone(),
                        self.ttl,
                        RData::txt("v=DMARC1; p=reject; sp=reject; adkim=s; aspf=s"),
                    ));
                    return response;
                }
                // The probe's MAIL FROM domain is exactly <id>.<suite>.origin.
                if prefix.len() == 2 {
                    let policy = self.policy_for(&prefix[0], &prefix[1]);
                    response.answers.push(Record::new(
                        question.name.clone(),
                        self.ttl,
                        RData::txt(&policy),
                    ));
                    response
                } else {
                    // Expanded names have no TXT data, only addresses.
                    response.with_authority(self.soa())
                }
            }
            RecordType::A => {
                response.answers.push(Record::new(
                    question.name.clone(),
                    self.ttl,
                    RData::A(self.answer_a),
                ));
                response
            }
            RecordType::AAAA => {
                // NODATA: the measurement only publishes IPv4 answers, which
                // keeps per-probe query counts predictable.
                response.with_authority(self.soa())
            }
            RecordType::MX => response.with_authority(self.soa()),
            _ => response.with_authority(self.soa()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn src() -> IpAddr {
        "203.0.113.50".parse().unwrap()
    }

    fn authority() -> (SpfTestAuthority, QueryLog) {
        let log = QueryLog::new();
        (
            SpfTestAuthority::new(SpfTestAuthority::default_origin(), log.clone()),
            log,
        )
    }

    #[test]
    fn txt_query_synthesises_policy_with_ids() {
        let (auth, _log) = authority();
        let q = Message::query(1, n("k7q2x.s01.spf-test.dns-lab.org"), RecordType::TXT);
        let r = auth.answer(&q, src(), SimTime::EPOCH);
        assert_eq!(r.header.rcode, Rcode::NoError);
        let txt = r.answers[0].rdata.txt_joined().unwrap();
        assert_eq!(
            txt,
            "v=spf1 a:%{d1r}.k7q2x.s01.spf-test.dns-lab.org \
             a:b.k7q2x.s01.spf-test.dns-lab.org -all"
        );
    }

    #[test]
    fn expanded_a_queries_get_fixed_answer() {
        let (auth, _log) = authority();
        let q = Message::query(
            2,
            n("org.org.dns-lab.spf-test.s01.k7q2x.k7q2x.s01.spf-test.dns-lab.org"),
            RecordType::A,
        );
        let r = auth.answer(&q, src(), SimTime::EPOCH);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 200)));
    }

    #[test]
    fn aaaa_is_nodata() {
        let (auth, _log) = authority();
        let q = Message::query(3, n("b.k7q2x.s01.spf-test.dns-lab.org"), RecordType::AAAA);
        let r = auth.answer(&q, src(), SimTime::EPOCH);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert!(r.answers.is_empty());
        assert_eq!(r.authorities.len(), 1);
    }

    #[test]
    fn out_of_zone_is_refused_but_still_logged() {
        let (auth, log) = authority();
        let q = Message::query(4, n("example.com"), RecordType::A);
        let r = auth.answer(&q, src(), SimTime::EPOCH);
        assert_eq!(r.header.rcode, Rcode::Refused);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn every_query_is_logged_with_source_and_time() {
        let (auth, log) = authority();
        let t = SimTime::from_micros(42_000_000);
        let q = Message::query(5, n("id1.s2.spf-test.dns-lab.org"), RecordType::TXT);
        auth.answer(&q, src(), t);
        let entries = log.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].at, t);
        assert_eq!(entries[0].source, src());
        assert_eq!(entries[0].qtype, RecordType::TXT);
    }

    #[test]
    fn deep_txt_query_is_nodata() {
        let (auth, _log) = authority();
        let q = Message::query(6, n("a.b.c.spf-test.dns-lab.org"), RecordType::TXT);
        let r = auth.answer(&q, src(), SimTime::EPOCH);
        assert!(r.answers.is_empty());
        assert_eq!(r.header.rcode, Rcode::NoError);
    }

    #[test]
    fn dmarc_reject_policy_is_published() {
        let (auth, _log) = authority();
        for qname in [
            "_dmarc.k7q2.s01.spf-test.dns-lab.org",
            "_dmarc.spf-test.dns-lab.org",
        ] {
            let q = Message::query(7, n(qname), RecordType::TXT);
            let r = auth.answer(&q, src(), SimTime::EPOCH);
            let txt = r.answers[0].rdata.txt_joined().unwrap();
            assert!(txt.starts_with("v=DMARC1; p=reject"), "{qname}: {txt}");
        }
    }

    #[test]
    fn pcap_sink_captures_exchanges() {
        let log = QueryLog::new();
        let sink = crate::pcap::PcapSink::new();
        let auth = SpfTestAuthority::new(SpfTestAuthority::default_origin(), log)
            .with_pcap(sink.clone());
        let q = Message::query(9, n("ab1.s1.spf-test.dns-lab.org"), RecordType::TXT);
        auth.answer(&q, src(), SimTime::from_micros(2_000_000));
        assert_eq!(sink.packet_count(), 2, "query + response");
        let bytes = sink.to_bytes();
        assert!(bytes.len() > 24 + 2 * (16 + 28));
    }

    #[test]
    fn policy_for_formats_labels() {
        let (auth, _log) = authority();
        let p = auth.policy_for("abc", "xyz");
        assert!(p.starts_with("v=spf1 a:%{d1r}.abc.xyz."));
        assert!(p.ends_with("-all"));
    }
}
