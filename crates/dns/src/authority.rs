//! Authoritative server behaviour.
//!
//! An [`Authority`] answers queries for the zones it serves. The static
//! implementation wraps a [`Zone`]; the measurement's dynamic zone lives in
//! [`crate::spftest`].

use std::net::IpAddr;

use spfail_netsim::SimTime;

use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::querylog::{QueryLog, QueryLogEntry};
use crate::rdata::RecordType;
use crate::zone::{Zone, ZoneAnswer};

/// Something that can authoritatively answer DNS queries.
pub trait Authority: Send + Sync {
    /// The zone origin this authority serves.
    fn origin(&self) -> &Name;

    /// Answer `query` received from `source` at simulated time `now`.
    fn answer(&self, query: &Message, source: IpAddr, now: SimTime) -> Message;

    /// Whether a memoized evaluation may *replay* queries against this
    /// authority instead of re-answering them.
    ///
    /// Replaying skips [`Authority::answer`] — no message is built or
    /// encoded — so it is only transparent when query logging is this
    /// authority's sole answer-path side effect, reproducible through
    /// [`Authority::log_replayed_query`]. Authorities with richer taps
    /// (e.g. a pcap capture of the full exchange) must return `false`,
    /// which keeps every query on the live path. The conservative default
    /// is `false`.
    fn replay_loggable(&self) -> bool {
        false
    }

    /// Record a replayed query exactly as the answer path would have.
    ///
    /// Called instead of [`Authority::answer`] when a cached evaluation is
    /// replayed; implementations that log queries append the same entry the
    /// live path appends. Only invoked when [`Authority::replay_loggable`]
    /// returned `true` at memoization time.
    fn log_replayed_query(&self, _qname: &Name, _qtype: RecordType, _source: IpAddr, _now: SimTime) {
    }
}

/// An authority serving a single static [`Zone`], optionally logging every
/// query it receives.
pub struct StaticAuthority {
    zone: Zone,
    log: Option<QueryLog>,
}

impl StaticAuthority {
    /// Serve `zone` without logging.
    pub fn new(zone: Zone) -> StaticAuthority {
        StaticAuthority { zone, log: None }
    }

    /// Serve `zone`, recording every received query into `log`.
    pub fn with_log(zone: Zone, log: QueryLog) -> StaticAuthority {
        StaticAuthority {
            zone,
            log: Some(log),
        }
    }

    /// The underlying zone.
    pub fn zone(&self) -> &Zone {
        &self.zone
    }
}

impl Authority for StaticAuthority {
    fn origin(&self) -> &Name {
        self.zone.origin()
    }

    fn replay_loggable(&self) -> bool {
        true
    }

    fn log_replayed_query(&self, qname: &Name, qtype: RecordType, source: IpAddr, now: SimTime) {
        if let Some(log) = &self.log {
            log.record(QueryLogEntry {
                at: now,
                source,
                qname: qname.clone(),
                qtype,
            });
        }
    }

    fn answer(&self, query: &Message, source: IpAddr, now: SimTime) -> Message {
        let mut response = Message::respond_to(query);
        let Some(question) = query.question() else {
            return response.with_rcode(Rcode::FormErr);
        };
        if let Some(log) = &self.log {
            log.record(QueryLogEntry {
                at: now,
                source,
                qname: question.name.clone(),
                qtype: question.qtype,
            });
        }
        match self.zone.lookup(&question.name, question.qtype) {
            ZoneAnswer::Records(records) => {
                response.answers = records;
                response
            }
            ZoneAnswer::Cname(alias) => {
                // Answer with the alias; in-zone chasing is the resolver's
                // job in this simulation (it re-queries at the target).
                response.answers.push(alias);
                response
            }
            ZoneAnswer::NoData => response.with_authority(self.zone.soa_record()),
            ZoneAnswer::NxDomain => response
                .with_rcode(Rcode::NxDomain)
                .with_authority(self.zone.soa_record()),
            ZoneAnswer::Delegation { ns, glue } => {
                // A referral: not authoritative for the subtree; the NS set
                // goes in the authority section, glue in additional.
                response.header.authoritative = false;
                response.authorities = ns;
                response.additionals = glue;
                response
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::{RData, RecordType};
    use crate::zone::ZoneBuilder;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn authority() -> StaticAuthority {
        let zone = ZoneBuilder::new(n("example.com"))
            .a(&n("example.com"), 300, Ipv4Addr::new(192, 0, 2, 1))
            .txt(&n("example.com"), 300, "v=spf1 -all")
            .build();
        StaticAuthority::new(zone)
    }

    fn src() -> IpAddr {
        "198.51.100.7".parse().unwrap()
    }

    #[test]
    fn answers_positive_queries() {
        let auth = authority();
        let q = Message::query(1, n("example.com"), RecordType::A);
        let r = auth.answer(&q, src(), SimTime::EPOCH);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert!(r.header.authoritative);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
    }

    #[test]
    fn nxdomain_carries_soa() {
        let auth = authority();
        let q = Message::query(2, n("nope.example.com"), RecordType::A);
        let r = auth.answer(&q, src(), SimTime::EPOCH);
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert_eq!(r.authorities.len(), 1);
        assert_eq!(r.authorities[0].record_type(), RecordType::SOA);
    }

    #[test]
    fn nodata_is_noerror_with_soa() {
        let auth = authority();
        let q = Message::query(3, n("example.com"), RecordType::MX);
        let r = auth.answer(&q, src(), SimTime::EPOCH);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert!(r.answers.is_empty());
        assert_eq!(r.authorities.len(), 1);
    }

    #[test]
    fn empty_question_is_formerr() {
        let auth = authority();
        let q = Message::default();
        let r = auth.answer(&q, src(), SimTime::EPOCH);
        assert_eq!(r.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn logging_records_queries() {
        let log = QueryLog::new();
        let zone = ZoneBuilder::new(n("example.com"))
            .a(&n("example.com"), 300, Ipv4Addr::new(192, 0, 2, 1))
            .build();
        let auth = StaticAuthority::with_log(zone, log.clone());
        let q = Message::query(4, n("sub.example.com"), RecordType::AAAA);
        auth.answer(&q, src(), SimTime::EPOCH);
        let entries = log.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].qname, n("sub.example.com"));
        assert_eq!(entries[0].qtype, RecordType::AAAA);
        assert_eq!(entries[0].source, src());
    }
}
