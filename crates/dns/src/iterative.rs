//! An iterative resolver: root-hints → referral chasing, the way real
//! recursion works (RFC 1034 §5.3.3).
//!
//! The campaign's [`crate::Resolver`] takes a shortcut — a longest-suffix
//! directory from zone origins to authorities — because the measurement
//! never depends on *how* the probed MTA's resolver walks the hierarchy.
//! [`IterativeResolver`] implements the real walk over the same
//! [`Authority`] trait: start at the root, follow NS referrals using glue
//! addresses, and stop at an authoritative answer. The equivalence test in
//! this module pins the two resolution strategies to identical outcomes
//! over a delegated hierarchy, justifying the campaign's shortcut.

use std::collections::HashMap;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

use spfail_netsim::{SimRng, SimTime};

use crate::authority::Authority;
use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::rdata::{RData, RecordType};

/// Errors during an iterative walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IterativeError {
    /// A referral pointed at a nameserver with no usable glue.
    NoGlue(Name),
    /// No server is registered at the glued address.
    UnknownServer(Ipv4Addr),
    /// The referral chain exceeded the hop limit.
    TooManyReferrals,
    /// The authority answered with a failure rcode.
    ServFail(Rcode),
}

impl fmt::Display for IterativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IterativeError::NoGlue(n) => write!(f, "referral to {n} without glue"),
            IterativeError::UnknownServer(ip) => write!(f, "no server at {ip}"),
            IterativeError::TooManyReferrals => write!(f, "referral chain too long"),
            IterativeError::ServFail(rc) => write!(f, "server failure: {rc}"),
        }
    }
}

impl std::error::Error for IterativeError {}

/// The outcome of an iterative resolution, with the walk recorded.
#[derive(Debug, Clone)]
pub struct WalkResult {
    /// The final authoritative response.
    pub response: Message,
    /// The addresses of the servers visited, in order (root first).
    pub path: Vec<Ipv4Addr>,
}

/// A resolver that walks the delegation hierarchy from the root.
pub struct IterativeResolver {
    root_addr: Ipv4Addr,
    servers: HashMap<Ipv4Addr, Arc<dyn Authority>>,
    client: IpAddr,
    max_referrals: usize,
    next_id: u16,
}

impl IterativeResolver {
    /// A resolver whose root hint is the server at `root_addr`.
    pub fn new(root_addr: Ipv4Addr, client: IpAddr) -> IterativeResolver {
        IterativeResolver {
            root_addr,
            servers: HashMap::new(),
            client,
            max_referrals: 16,
            next_id: 1,
        }
    }

    /// Register the authority listening at `addr`.
    pub fn register(&mut self, addr: Ipv4Addr, authority: Arc<dyn Authority>) {
        self.servers.insert(addr, authority);
    }

    /// Resolve `name`/`rtype` by walking referrals from the root.
    pub fn resolve(
        &mut self,
        _rng: &mut SimRng,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
    ) -> Result<WalkResult, IterativeError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let query = Message::query(id, name.clone(), rtype);

        let mut current = self.root_addr;
        let mut path = Vec::new();
        for _hop in 0..self.max_referrals {
            let server = self
                .servers
                .get(&current)
                .ok_or(IterativeError::UnknownServer(current))?
                .clone();
            path.push(current);
            let response = server.answer(&query, self.client, now);
            match response.header.rcode {
                Rcode::NoError | Rcode::NxDomain => {}
                other => return Err(IterativeError::ServFail(other)),
            }
            // An authoritative answer (or authoritative negative) is final.
            if response.header.authoritative
                || !response.answers.is_empty()
                || response.header.rcode == Rcode::NxDomain
            {
                return Ok(WalkResult { response, path });
            }
            // Otherwise it must be a referral: follow the first NS with
            // usable glue.
            let mut next = None;
            for ns_record in &response.authorities {
                let RData::Ns(host) = &ns_record.rdata else {
                    continue;
                };
                let glued = response.additionals.iter().find_map(|g| match &g.rdata {
                    RData::A(addr) if g.name == *host => Some(*addr),
                    _ => None,
                });
                match glued {
                    Some(addr) => {
                        next = Some(addr);
                        break;
                    }
                    None => return Err(IterativeError::NoGlue(host.clone())),
                }
            }
            match next {
                Some(addr) => current = addr,
                None => {
                    // No referral and no answer: NODATA from a
                    // non-authoritative cache; treat as final.
                    return Ok(WalkResult { response, path });
                }
            }
        }
        Err(IterativeError::TooManyReferrals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::StaticAuthority;
    use crate::rdata::Record;
    use crate::resolver::{Directory, LookupOutcome, Resolver};
    use crate::zone::ZoneBuilder;
    use spfail_netsim::{Link, SimClock};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    /// A three-level hierarchy: root (".") → "org" → "dns-lab.org".
    fn hierarchy() -> (IterativeResolver, Directory) {
        let root_zone = ZoneBuilder::new(Name::root())
            .record(Record::new(n("org"), 86_400, RData::Ns(n("a.gtld.net"))))
            .a(&n("a.gtld.net"), 86_400, Ipv4Addr::new(192, 0, 2, 2))
            .build();
        let org_zone = ZoneBuilder::new(n("org"))
            .record(Record::new(
                n("dns-lab.org"),
                86_400,
                RData::Ns(n("ns1.dns-lab.org")),
            ))
            .a(&n("ns1.dns-lab.org"), 86_400, Ipv4Addr::new(192, 0, 2, 3))
            .build();
        let leaf_zone = ZoneBuilder::new(n("dns-lab.org"))
            .a(&n("probe.dns-lab.org"), 300, Ipv4Addr::new(203, 0, 113, 25))
            .txt(&n("dns-lab.org"), 300, "v=spf1 -all")
            .build();

        let root = Arc::new(StaticAuthority::new(root_zone));
        let org = Arc::new(StaticAuthority::new(org_zone));
        let leaf = Arc::new(StaticAuthority::new(leaf_zone));

        let mut iterative =
            IterativeResolver::new(Ipv4Addr::new(192, 0, 2, 1), "198.51.100.1".parse().unwrap());
        iterative.register(Ipv4Addr::new(192, 0, 2, 1), root);
        iterative.register(Ipv4Addr::new(192, 0, 2, 2), org);
        iterative.register(Ipv4Addr::new(192, 0, 2, 3), leaf.clone());

        // The campaign-style shortcut directory for the same data.
        let directory = Directory::new();
        directory.register(leaf);
        (iterative, directory)
    }

    #[test]
    fn walks_root_to_leaf() {
        let (mut resolver, _) = hierarchy();
        let mut rng = SimRng::new(1);
        let result = resolver
            .resolve(&mut rng, &n("probe.dns-lab.org"), RecordType::A, SimTime::EPOCH)
            .unwrap();
        assert_eq!(
            result.path,
            vec![
                Ipv4Addr::new(192, 0, 2, 1),
                Ipv4Addr::new(192, 0, 2, 2),
                Ipv4Addr::new(192, 0, 2, 3),
            ],
            "root, org, then the leaf authority"
        );
        assert_eq!(result.response.answers.len(), 1);
        assert!(result.response.header.authoritative);
    }

    #[test]
    fn negative_answers_are_authoritative_from_the_leaf() {
        let (mut resolver, _) = hierarchy();
        let mut rng = SimRng::new(2);
        let result = resolver
            .resolve(&mut rng, &n("missing.dns-lab.org"), RecordType::A, SimTime::EPOCH)
            .unwrap();
        assert_eq!(result.response.header.rcode, Rcode::NxDomain);
        assert_eq!(result.path.len(), 3);
    }

    #[test]
    fn equivalent_to_the_directory_shortcut() {
        // The same question through both resolution strategies must yield
        // the same records — this pins the campaign's shortcut.
        let (mut iterative, directory) = hierarchy();
        let clock = SimClock::new();
        let mut shortcut = Resolver::new(
            directory,
            Link::ideal(clock),
            "198.51.100.1".parse().unwrap(),
        );
        let mut rng = SimRng::new(3);
        for (qname, rtype) in [
            ("probe.dns-lab.org", RecordType::A),
            ("dns-lab.org", RecordType::TXT),
        ] {
            let walked = iterative
                .resolve(&mut rng, &n(qname), rtype, SimTime::EPOCH)
                .unwrap();
            let direct = shortcut.resolve(&mut rng, &n(qname), rtype).unwrap();
            match direct {
                LookupOutcome::Records(records) => {
                    assert_eq!(walked.response.answers[..], records[..], "{qname}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_root_is_an_error() {
        let mut resolver = IterativeResolver::new(
            Ipv4Addr::new(10, 0, 0, 1),
            "198.51.100.1".parse().unwrap(),
        );
        let mut rng = SimRng::new(4);
        assert_eq!(
            resolver
                .resolve(&mut rng, &n("x.test"), RecordType::A, SimTime::EPOCH)
                .unwrap_err(),
            IterativeError::UnknownServer(Ipv4Addr::new(10, 0, 0, 1))
        );
    }

    #[test]
    fn referral_loop_is_bounded() {
        // Two "roots" that refer to each other forever.
        let zone_a = ZoneBuilder::new(Name::root())
            .record(Record::new(n("test"), 60, RData::Ns(n("ns.test"))))
            .a(&n("ns.test"), 60, Ipv4Addr::new(192, 0, 2, 20))
            .build();
        let zone_b = ZoneBuilder::new(Name::root())
            .record(Record::new(n("test"), 60, RData::Ns(n("ns2.test"))))
            .a(&n("ns2.test"), 60, Ipv4Addr::new(192, 0, 2, 10))
            .build();
        let mut resolver = IterativeResolver::new(
            Ipv4Addr::new(192, 0, 2, 10),
            "198.51.100.1".parse().unwrap(),
        );
        resolver.register(Ipv4Addr::new(192, 0, 2, 10), Arc::new(StaticAuthority::new(zone_a)));
        resolver.register(Ipv4Addr::new(192, 0, 2, 20), Arc::new(StaticAuthority::new(zone_b)));
        let mut rng = SimRng::new(5);
        assert_eq!(
            resolver
                .resolve(&mut rng, &n("x.test"), RecordType::A, SimTime::EPOCH)
                .unwrap_err(),
            IterativeError::TooManyReferrals
        );
    }

    #[test]
    fn missing_glue_is_reported() {
        let zone = ZoneBuilder::new(Name::root())
            .record(Record::new(n("test"), 60, RData::Ns(n("ns.elsewhere.net"))))
            .build();
        let mut resolver = IterativeResolver::new(
            Ipv4Addr::new(192, 0, 2, 1),
            "198.51.100.1".parse().unwrap(),
        );
        resolver.register(Ipv4Addr::new(192, 0, 2, 1), Arc::new(StaticAuthority::new(zone)));
        let mut rng = SimRng::new(6);
        assert_eq!(
            resolver
                .resolve(&mut rng, &n("x.test"), RecordType::A, SimTime::EPOCH)
                .unwrap_err(),
            IterativeError::NoGlue(n("ns.elsewhere.net"))
        );
    }
}
