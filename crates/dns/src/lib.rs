//! DNS substrate for the SPFail reproduction.
//!
//! The paper's remote-detection technique works entirely through the DNS: a
//! probed MTA fetches an SPF TXT record from the authors' authoritative
//! server for `spf-test.dns-lab.org`, expands the `%{d1r}` macro it
//! contains, and issues follow-up A/AAAA queries whose *names* reveal which
//! SPF implementation — and which bug — the MTA runs.
//!
//! This crate therefore implements a complete, self-contained DNS:
//!
//! * [`name::Name`] — domain names with RFC 1035 label semantics.
//! * [`rdata`] — A, AAAA, MX, TXT, NS, CNAME, SOA and PTR record data.
//! * [`message`] — queries and responses with full header semantics.
//! * [`wire`] — the RFC 1035 wire format, including name compression.
//! * [`zone`] — static zone data with wildcard support.
//! * [`authority`] — authoritative servers answering from zones.
//! * [`spftest`] — the dynamic measurement zone of §5.1, which synthesises
//!   per-probe SPF policies and logs every query it receives.
//! * [`querylog`] — the shared, timestamped query log the classifier reads.
//! * [`resolver`] — a caching resolver walking a directory of authorities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authority;
pub mod iterative;
pub mod message;
pub mod name;
pub mod pcap;
pub mod querylog;
pub mod rdata;
pub mod resolver;
pub mod spftest;
pub mod wire;
pub mod zone;
pub mod zonefile;

pub use authority::{Authority, StaticAuthority};
pub use iterative::{IterativeError, IterativeResolver, WalkResult};
pub use message::{Header, Message, Opcode, Question, Rcode};
pub use name::{Name, NameError};
pub use pcap::{PcapSink, PcapWriter};
pub use querylog::{QueryLog, QueryLogEntry};
pub use rdata::{RData, Record, RecordClass, RecordType};
pub use resolver::{
    Directory, LookupError, LookupOutcome, Resolver, ResolverConfig, Transcript, TranscriptStep,
};
pub use spftest::SpfTestAuthority;
pub use zone::{Zone, ZoneBuilder};
pub use zonefile::{parse_zone, render_zone, ZoneFileError};
