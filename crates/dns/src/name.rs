//! Domain names with RFC 1035 label semantics.
//!
//! A [`Name`] stores its labels as a single buffer in DNS wire form —
//! length-prefixed labels, without the trailing root octet — so the hot
//! paths never touch a per-label `String`:
//!
//! * names up to [`INLINE_NAME_CAP`] wire bytes live inline in the value
//!   (no heap at all); longer names share one `Arc<[u8]>` allocation;
//! * `clone()` is a small memcpy or a reference-count bump, never a heap
//!   allocation;
//! * a canonical (ASCII-lowercased) copy of the wire bytes is computed
//!   once at construction — and only when the spelling actually contains
//!   uppercase — so equality, hashing, ordering and suffix tests are
//!   case-insensitive (RFC 1035 §2.3.3, RFC 4343) byte comparisons with
//!   no per-comparison folding allocations;
//! * `parent()` of a shared name is a pure offset bump into the same
//!   buffer.
//!
//! The original spelling is preserved for display. Label and name length
//! limits are enforced at construction so the wire encoder never has to
//! fail on an oversized name. The length-prefix framing is a prefix code,
//! which is what makes whole-buffer comparison equivalent to
//! label-by-label comparison.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::Arc;

/// Maximum length of a single label, per RFC 1035.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a full name on the wire (labels + length octets + root).
pub const MAX_NAME_LEN: usize = 255;
/// Longest wire form (without root octet) stored inline, without heap.
/// 38 bytes covers every fixed zone name and the expanded probe names of
/// the measurement design (`<word>.<id>.<suite>.spf-test.dns-lab.org`).
pub const INLINE_NAME_CAP: usize = 38;

/// Wire bytes excluding the root octet can span at most this much.
const MAX_WIRE_CONTENT: usize = MAX_NAME_LEN - 1;

/// Errors constructing a [`Name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (`foo..bar`).
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(String),
    /// The whole name exceeded 255 octets in wire form.
    NameTooLong,
    /// A label contained a byte outside printable ASCII.
    InvalidByte(u8),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(l) => write!(f, "label too long: {:.16}...", l),
            NameError::NameTooLong => write!(f, "name exceeds 255 octets"),
            NameError::InvalidByte(b) => write!(f, "invalid byte 0x{b:02x} in label"),
        }
    }
}

impl std::error::Error for NameError {}

/// Storage for the original-spelling wire bytes.
#[derive(Clone)]
enum Repr {
    /// Short names live entirely in the value.
    Inline {
        /// Number of wire bytes used in `buf`.
        len: u8,
        /// Length-prefixed labels, no root octet.
        buf: [u8; INLINE_NAME_CAP],
    },
    /// Long names share one allocation; `start` lets `parent()` reuse it.
    Shared {
        /// Length-prefixed labels of this name and possibly ancestors'
        /// prefixes before `start`.
        buf: Arc<[u8]>,
        /// Offset of this name's first label within `buf`.
        start: u16,
    },
}

/// A fully qualified domain name.
///
/// The root name has zero labels. `Name` values returned by the parser and
/// all constructors are guaranteed to satisfy the RFC length limits.
#[derive(Clone)]
pub struct Name {
    repr: Repr,
    /// Canonical (lowercased) wire bytes of the whole name, allocated once
    /// at construction iff the spelling contains uppercase. `None` means
    /// the spelling already is canonical.
    canon: Option<Arc<[u8]>>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Name {
        Name {
            repr: Repr::Inline {
                len: 0,
                buf: [0; INLINE_NAME_CAP],
            },
            canon: None,
        }
    }

    /// Parse a dotted name. A single trailing dot is accepted and ignored;
    /// an empty string or `"."` yields the root.
    pub fn parse(s: &str) -> Result<Name, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut wire = [0u8; MAX_WIRE_CONTENT];
        let mut len = 0usize;
        for label in s.split('.') {
            len = Self::push_label(&mut wire, len, label)?;
        }
        Ok(Self::from_wire_unchecked(&wire[..len]))
    }

    /// Construct from pre-split labels.
    pub fn from_labels<I, S>(iter: I) -> Result<Name, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut wire = [0u8; MAX_WIRE_CONTENT];
        let mut len = 0usize;
        for label in iter {
            len = Self::push_label(&mut wire, len, label.as_ref())?;
        }
        Ok(Self::from_wire_unchecked(&wire[..len]))
    }

    /// Validate `label` and append it (length-prefixed) to `wire` at
    /// offset `len`, returning the new offset.
    fn push_label(
        wire: &mut [u8; MAX_WIRE_CONTENT],
        len: usize,
        label: &str,
    ) -> Result<usize, NameError> {
        Self::check_label(label)?;
        let next = len + 1 + label.len();
        if next > MAX_WIRE_CONTENT {
            return Err(NameError::NameTooLong);
        }
        wire[len] = label.len() as u8;
        wire[len + 1..next].copy_from_slice(label.as_bytes());
        Ok(next)
    }

    fn check_label(label: &str) -> Result<(), NameError> {
        if label.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong(label.to_string()));
        }
        for &b in label.as_bytes() {
            Self::check_byte(b)?;
        }
        Ok(())
    }

    /// Accept any printable ASCII except the label separator. SPF macro
    /// mishandling produces labels like `%{d1r}` that a strict hostname
    /// check would reject — and observing those on the wire is precisely
    /// the point of the measurement.
    fn check_byte(b: u8) -> Result<(), NameError> {
        if !(0x21..=0x7e).contains(&b) || b == b'.' {
            return Err(NameError::InvalidByte(b));
        }
        Ok(())
    }

    /// Build a `Name` from already-validated wire bytes (length-prefixed
    /// labels, no root octet). Chooses inline vs shared storage and
    /// computes the canonical form when the spelling has uppercase.
    fn from_wire_unchecked(bytes: &[u8]) -> Name {
        debug_assert!(bytes.len() <= MAX_WIRE_CONTENT);
        // Length octets are <= 63 and thus never in `A..=Z`, so scanning
        // and folding the whole buffer — framing included — is safe.
        let canon = if bytes.iter().any(u8::is_ascii_uppercase) {
            let mut lower = bytes.to_vec();
            lower.make_ascii_lowercase();
            Some(Arc::from(lower))
        } else {
            None
        };
        let repr = if bytes.len() <= INLINE_NAME_CAP {
            let mut buf = [0u8; INLINE_NAME_CAP];
            buf[..bytes.len()].copy_from_slice(bytes);
            Repr::Inline {
                len: bytes.len() as u8,
                buf,
            }
        } else {
            Repr::Shared {
                buf: Arc::from(bytes),
                start: 0,
            }
        };
        Name { repr, canon }
    }

    /// Construct from wire bytes (length-prefixed labels, no root octet),
    /// validating label bytes and length limits. Used by the wire decoder
    /// so no per-label `String` is ever allocated on decode.
    pub(crate) fn from_wire(bytes: &[u8]) -> Result<Name, NameError> {
        if bytes.len() > MAX_WIRE_CONTENT {
            return Err(NameError::NameTooLong);
        }
        let mut pos = 0usize;
        while pos < bytes.len() {
            let len = bytes[pos] as usize;
            if len == 0 {
                return Err(NameError::EmptyLabel);
            }
            let end = pos + 1 + len;
            if end > bytes.len() {
                // A dangling length octet would break the framing the
                // whole representation relies on.
                return Err(NameError::EmptyLabel);
            }
            for &b in &bytes[pos + 1..end] {
                Self::check_byte(b)?;
            }
            pos = end;
        }
        Ok(Self::from_wire_unchecked(bytes))
    }

    /// The wire bytes in the original spelling (length-prefixed labels,
    /// without the trailing root octet).
    pub(crate) fn wire_bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Shared { buf, start } => &buf[*start as usize..],
        }
    }

    /// The canonical (lowercased) wire bytes. Shared by equality,
    /// hashing, ordering and the suffix tests, so all of them agree on
    /// case-insensitivity without folding anything per call.
    pub(crate) fn canonical_bytes(&self) -> &[u8] {
        match &self.canon {
            Some(c) => c,
            None => self.wire_bytes(),
        }
    }

    /// Length of this name in RFC 1035 wire form (uncompressed).
    pub fn wire_len(&self) -> usize {
        self.wire_bytes().len() + 1
    }

    /// A copy of this name with `replacement` written at each wire
    /// byte `offset` (0 = this name's first length octet). Every target
    /// range must lie inside a single label's content bytes and the
    /// replacement must be valid label bytes — callers splice a recorded
    /// probe id for a same-length one, so both invariants hold by
    /// construction. This re-instantiates a memoized name without
    /// re-parsing its dotted spelling.
    pub fn splice_content(&self, offsets: &[u16], replacement: &[u8]) -> Name {
        debug_assert!(replacement.iter().all(|&b| Self::check_byte(b).is_ok()));
        let mut wire = self.wire_bytes().to_vec();
        #[cfg(debug_assertions)]
        for &offset in offsets {
            let (at, end) = (offset as usize, offset as usize + replacement.len());
            let mut pos = 0usize; // walk the framing: each label's length octet
            let mut ok = false;
            while pos < wire.len() {
                let content = pos + 1..pos + 1 + wire[pos] as usize;
                if content.start <= at && end <= content.end {
                    ok = true;
                    break;
                }
                pos = content.end;
            }
            debug_assert!(ok, "splice range {at}..{end} crosses label framing");
        }
        for &offset in offsets {
            let at = offset as usize;
            wire[at..at + replacement.len()].copy_from_slice(replacement);
        }
        Self::from_wire_unchecked(&wire)
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.wire_bytes().is_empty()
    }

    /// Iterate over the labels, leftmost (deepest) first, in the original
    /// spelling. No allocation.
    pub fn labels(&self) -> Labels<'_> {
        Labels {
            rest: self.wire_bytes(),
        }
    }

    /// The leftmost label, if any.
    pub fn first_label(&self) -> Option<&str> {
        self.labels().next()
    }

    /// The top-level domain (rightmost label), lowercased, if any.
    pub fn tld(&self) -> Option<String> {
        self.labels().last().map(|l| l.to_ascii_lowercase())
    }

    /// The parent name (this name minus its leftmost label). The root's
    /// parent is the root. For shared storage this is an offset bump into
    /// the same buffer — no copy.
    pub fn parent(&self) -> Name {
        let bytes = self.wire_bytes();
        if bytes.is_empty() {
            return Name::root();
        }
        let skip = 1 + bytes[0] as usize;
        let repr = match &self.repr {
            Repr::Inline { len, buf } => {
                let new_len = *len as usize - skip;
                let mut new_buf = [0u8; INLINE_NAME_CAP];
                new_buf[..new_len].copy_from_slice(&buf[skip..*len as usize]);
                Repr::Inline {
                    len: new_len as u8,
                    buf: new_buf,
                }
            }
            Repr::Shared { buf, start } => Repr::Shared {
                buf: buf.clone(),
                start: start + skip as u16,
            },
        };
        // The parent only needs a canonical copy when uppercase survives
        // the cut; `canon == None` already implies an all-lowercase name.
        let canon = if bytes[skip..].iter().any(u8::is_ascii_uppercase) {
            self.canon.as_ref().map(|c| Arc::from(&c[skip..]))
        } else {
            None
        };
        Name { repr, canon }
    }

    /// Prepend a single label, returning the child name.
    pub fn child(&self, label: &str) -> Result<Name, NameError> {
        Self::check_label(label)?;
        let bytes = self.wire_bytes();
        let total = 1 + label.len() + bytes.len();
        if total > MAX_WIRE_CONTENT {
            return Err(NameError::NameTooLong);
        }
        let mut wire = [0u8; MAX_WIRE_CONTENT];
        wire[0] = label.len() as u8;
        wire[1..1 + label.len()].copy_from_slice(label.as_bytes());
        wire[1 + label.len()..total].copy_from_slice(bytes);
        Ok(Self::from_wire_unchecked(&wire[..total]))
    }

    /// Concatenate: `self` prepended to `suffix` (i.e. `self.suffix`).
    pub fn concat(&self, suffix: &Name) -> Result<Name, NameError> {
        let a = self.wire_bytes();
        let b = suffix.wire_bytes();
        let total = a.len() + b.len();
        if total > MAX_WIRE_CONTENT {
            return Err(NameError::NameTooLong);
        }
        let mut wire = [0u8; MAX_WIRE_CONTENT];
        wire[..a.len()].copy_from_slice(a);
        wire[a.len()..total].copy_from_slice(b);
        Ok(Self::from_wire_unchecked(&wire[..total]))
    }

    /// Offset of the label boundary where `suffix` begins inside `self`'s
    /// canonical bytes, or `None` when `self` is not `suffix` or under it.
    /// Walking boundaries (instead of `ends_with`) is what keeps
    /// `badexample.com` out of `example.com` — and guards against content
    /// bytes that happen to collide with length octets, which printable
    /// labels like `%{d1r}` can produce.
    fn suffix_start(&self, suffix: &Name) -> Option<usize> {
        let sc = self.canonical_bytes();
        let oc = suffix.canonical_bytes();
        if oc.len() > sc.len() {
            return None;
        }
        let mut pos = 0usize;
        while sc.len() - pos > oc.len() {
            pos += 1 + sc[pos] as usize;
            if pos > sc.len() {
                return None;
            }
        }
        (sc.len() - pos == oc.len() && sc[pos..] == *oc).then_some(pos)
    }

    /// Case-insensitive test for whether `self` equals `other` or is a
    /// subdomain of it. Every name is under the root.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        self.suffix_start(other).is_some()
    }

    /// Strip `suffix` from the end of the name, returning the remaining
    /// prefix labels (deepest first, original spelling), or `None` when
    /// `self` is not under `suffix`.
    pub fn strip_suffix(&self, suffix: &Name) -> Option<Vec<String>> {
        let boundary = self.suffix_start(suffix)?;
        let bytes = self.wire_bytes();
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < boundary {
            let len = bytes[pos] as usize;
            out.push(
                std::str::from_utf8(&bytes[pos + 1..pos + 1 + len])
                    .expect("labels are printable ASCII")
                    .to_string(),
            );
            pos += 1 + len;
        }
        Some(out)
    }

    /// A copy with all labels lowercased (canonical form). When the name
    /// already carries a canonical buffer this shares it — no allocation.
    pub fn to_lowercase(&self) -> Name {
        match &self.canon {
            None => self.clone(),
            Some(c) => Name {
                repr: Repr::Shared {
                    buf: c.clone(),
                    start: 0,
                },
                canon: None,
            },
        }
    }

    /// The canonical ASCII representation without a trailing dot; the root
    /// is rendered as `"."`.
    pub fn to_ascii(&self) -> String {
        if self.is_root() {
            return ".".to_string();
        }
        let mut out = String::with_capacity(self.wire_bytes().len());
        for label in self.labels() {
            if !out.is_empty() {
                out.push('.');
            }
            out.push_str(label);
        }
        out
    }
}

/// Iterator over a name's labels as `&str`, leftmost first. See
/// [`Name::labels`].
#[derive(Clone)]
pub struct Labels<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for Labels<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let (&len, rest) = self.rest.split_first()?;
        let (label, rest) = rest.split_at(len as usize);
        self.rest = rest;
        Some(std::str::from_utf8(label).expect("labels are printable ASCII"))
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Length-prefixed labels form a prefix code, so canonical-buffer
        // equality is exactly case-insensitive label-sequence equality.
        self.canonical_bytes() == other.canonical_bytes()
    }
}

impl std::cmp::Eq for Name {}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let c = self.canonical_bytes();
        state.write_usize(c.len());
        state.write(c);
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Offsets of each label start within `bytes`. Wire content is <= 254
/// bytes and every label takes >= 2, so a fixed stack array suffices.
fn label_starts(bytes: &[u8]) -> ([u8; MAX_NAME_LEN / 2], usize) {
    let mut starts = [0u8; MAX_NAME_LEN / 2];
    let mut count = 0usize;
    let mut pos = 0usize;
    while pos < bytes.len() {
        starts[count] = pos as u8;
        count += 1;
        pos += 1 + bytes[pos] as usize;
    }
    (starts, count)
}

fn label_at(bytes: &[u8], start: u8) -> &[u8] {
    let start = start as usize;
    let len = bytes[start] as usize;
    &bytes[start + 1..start + 1 + len]
}

impl Ord for Name {
    /// Canonical DNS ordering: compare label sequences right-to-left,
    /// case-insensitively (RFC 4034 §6.1, simplified to ASCII).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.canonical_bytes();
        let b = other.canonical_bytes();
        let (a_starts, a_count) = label_starts(a);
        let (b_starts, b_count) = label_starts(b);
        let mut i = a_count;
        let mut j = b_count;
        while i > 0 && j > 0 {
            i -= 1;
            j -= 1;
            let ord = label_at(a, a_starts[i]).cmp(label_at(b, b_starts[j]));
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a_count.cmp(&b_count)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return f.write_str(".");
        }
        let mut first = true;
        for label in self.labels() {
            if !first {
                f.write_str(".")?;
            }
            first = false;
            f.write_str(label)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl FromStr for Name {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        assert_eq!(n("example.com").to_ascii(), "example.com");
        assert_eq!(n("example.com.").to_ascii(), "example.com");
        assert_eq!(n(".").to_ascii(), ".");
        assert_eq!(n("").to_ascii(), ".");
        assert_eq!(format!("{}", n("Foo.Example.COM")), "Foo.Example.COM");
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(Name::parse("foo..bar"), Err(NameError::EmptyLabel));
        let long = "a".repeat(64);
        assert!(matches!(
            Name::parse(&format!("{long}.com")),
            Err(NameError::LabelTooLong(_))
        ));
        assert!(matches!(
            Name::parse("fo o.com"),
            Err(NameError::InvalidByte(b' '))
        ));
    }

    #[test]
    fn accepts_macro_literal_labels() {
        // A non-expanding SPF implementation queries for the literal macro.
        let name = n("%{d1r}.abc.spf-test.dns-lab.org");
        assert_eq!(name.first_label(), Some("%{d1r}"));
    }

    #[test]
    fn rejects_overlong_names() {
        let label = "a".repeat(63);
        let s = vec![label; 5].join(".");
        assert_eq!(Name::parse(&s), Err(NameError::NameTooLong));
    }

    #[test]
    fn equality_is_case_insensitive() {
        assert_eq!(n("Example.COM"), n("example.com"));
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(n("Example.COM"));
        assert!(set.contains(&n("example.com")));
    }

    #[test]
    fn subdomain_relationships() {
        assert!(n("mail.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&Name::root()));
        assert!(!n("example.com").is_subdomain_of(&n("mail.example.com")));
        assert!(!n("badexample.com").is_subdomain_of(&n("example.com")));
        assert!(n("MAIL.EXAMPLE.com").is_subdomain_of(&n("example.COM")));
    }

    #[test]
    fn strip_suffix_returns_prefix_labels() {
        assert_eq!(
            n("a.b.example.com").strip_suffix(&n("example.com")),
            Some(vec!["a".to_string(), "b".to_string()])
        );
        assert_eq!(n("a.example.com").strip_suffix(&n("other.com")), None);
        assert_eq!(n("example.com").strip_suffix(&n("example.com")), Some(vec![]));
    }

    #[test]
    fn parent_and_child() {
        assert_eq!(n("a.b.c").parent(), n("b.c"));
        assert_eq!(Name::root().parent(), Name::root());
        assert_eq!(n("b.c").child("a").unwrap(), n("a.b.c"));
        assert_eq!(n("x").concat(&n("y.z")).unwrap(), n("x.y.z"));
    }

    #[test]
    fn tld_and_first_label() {
        assert_eq!(n("mail.example.com").tld(), Some("com".to_string()));
        assert_eq!(n("mail.example.COM").tld(), Some("com".to_string()));
        assert_eq!(Name::root().tld(), None);
        assert_eq!(n("mail.example.com").first_label(), Some("mail"));
    }

    #[test]
    fn canonical_ordering_right_to_left() {
        let mut names = [n("b.com"), n("a.org"), n("a.com"), n("com")];
        names.sort();
        assert_eq!(
            names.iter().map(|x| x.to_ascii()).collect::<Vec<_>>(),
            vec!["com", "a.com", "b.com", "a.org"]
        );
    }

    #[test]
    fn wire_len_counts_length_octets_and_root() {
        assert_eq!(Name::root().wire_len(), 1);
        // 7example3com0 -> 1+7 + 1+3 + 1 = 13
        assert_eq!(n("example.com").wire_len(), 13);
    }

    #[test]
    fn lowercase_copy() {
        assert_eq!(n("FoO.CoM").to_lowercase().to_ascii(), "foo.com");
    }

    // ---- behaviours specific to the compact representation ----

    /// A name beyond the inline capacity must behave identically to a
    /// short one: this exercises the `Shared` storage arm everywhere.
    fn long_name() -> Name {
        n("some-quite-long-label.another-long-label.k7q2xyz.suite1.spf-test.dns-lab.org")
    }

    #[test]
    fn shared_storage_round_trips() {
        let name = long_name();
        assert!(name.wire_len() > INLINE_NAME_CAP + 1);
        assert_eq!(Name::parse(&name.to_ascii()).unwrap(), name);
        assert_eq!(name.label_count(), 7);
        assert_eq!(name.first_label(), Some("some-quite-long-label"));
    }

    #[test]
    fn shared_parent_shares_the_buffer() {
        let name = long_name();
        let mut walk = name.clone();
        let mut expected: Vec<String> = name.labels().map(str::to_string).collect();
        while !expected.is_empty() {
            assert_eq!(
                walk.labels().collect::<Vec<_>>(),
                expected.iter().map(String::as_str).collect::<Vec<_>>()
            );
            walk = walk.parent();
            expected.remove(0);
        }
        assert!(walk.is_root());
    }

    #[test]
    fn clone_is_allocation_free_in_shape() {
        // Not an allocator assertion (that lives in crates/bench), but the
        // structural guarantee it relies on: clones of shared names point
        // at the same buffer.
        let name = long_name();
        let clone = name.clone();
        assert_eq!(name, clone);
        match (&name.repr, &clone.repr) {
            (Repr::Shared { buf: a, .. }, Repr::Shared { buf: b, .. }) => {
                assert!(Arc::ptr_eq(a, b));
            }
            _ => panic!("long names must use shared storage"),
        }
    }

    #[test]
    fn canonical_form_only_allocated_for_uppercase() {
        assert!(n("mail.example.com").canon.is_none());
        assert!(n("MAIL.example.com").canon.is_some());
        // Case-folded spelling keeps original for display, canonical for
        // comparisons.
        let mixed = n("MAIL.Example.COM");
        assert_eq!(mixed.to_ascii(), "MAIL.Example.COM");
        assert_eq!(mixed.to_lowercase().to_ascii(), "mail.example.com");
        assert_eq!(mixed, n("mail.example.com"));
    }

    #[test]
    fn mixed_case_ordering_matches_lowercase_ordering() {
        let mut upper = [n("B.COM"), n("A.ORG"), n("A.COM"), n("COM")];
        let mut lower = [n("b.com"), n("a.org"), n("a.com"), n("com")];
        upper.sort();
        lower.sort();
        for (u, l) in upper.iter().zip(lower.iter()) {
            assert_eq!(u, l);
        }
    }

    #[test]
    fn strip_suffix_is_case_insensitive_and_preserves_spelling() {
        assert_eq!(
            n("A.B.Example.COM").strip_suffix(&n("example.com")),
            Some(vec!["A".to_string(), "B".to_string()])
        );
    }
}
