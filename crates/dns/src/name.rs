//! Domain names with RFC 1035 label semantics.
//!
//! Names are stored as a sequence of ASCII labels. Comparisons and hashing
//! are case-insensitive, as required by RFC 1035 §2.3.3, while the original
//! spelling is preserved for display. Label and name length limits are
//! enforced at construction so the wire encoder never has to fail on an
//! oversized name.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

/// Maximum length of a single label, per RFC 1035.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a full name on the wire (labels + length octets + root).
pub const MAX_NAME_LEN: usize = 255;

/// Errors constructing a [`Name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (`foo..bar`).
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(String),
    /// The whole name exceeded 255 octets in wire form.
    NameTooLong,
    /// A label contained a byte outside printable ASCII.
    InvalidByte(u8),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(l) => write!(f, "label too long: {:.16}...", l),
            NameError::NameTooLong => write!(f, "name exceeds 255 octets"),
            NameError::InvalidByte(b) => write!(f, "invalid byte 0x{b:02x} in label"),
        }
    }
}

impl std::error::Error for NameError {}

/// A fully qualified domain name.
///
/// The root name has zero labels. `Name` values returned by the parser and
/// all constructors are guaranteed to satisfy the RFC length limits.
#[derive(Debug, Clone, Eq)]
pub struct Name {
    labels: Vec<String>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Name {
        Name { labels: Vec::new() }
    }

    /// Parse a dotted name. A single trailing dot is accepted and ignored;
    /// an empty string or `"."` yields the root.
    pub fn parse(s: &str) -> Result<Name, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for label in s.split('.') {
            labels.push(Self::check_label(label)?);
        }
        let name = Name { labels };
        name.check_total_len()?;
        Ok(name)
    }

    /// Construct from pre-split labels.
    pub fn from_labels<I, S>(iter: I) -> Result<Name, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut labels = Vec::new();
        for label in iter {
            labels.push(Self::check_label(label.as_ref())?);
        }
        let name = Name { labels };
        name.check_total_len()?;
        Ok(name)
    }

    fn check_label(label: &str) -> Result<String, NameError> {
        if label.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong(label.to_string()));
        }
        for &b in label.as_bytes() {
            // Accept any printable ASCII except the label separator. SPF
            // macro mishandling produces labels like `%{d1r}` that a strict
            // hostname check would reject — and observing those on the wire
            // is precisely the point of the measurement.
            if !(0x21..=0x7e).contains(&b) || b == b'.' {
                return Err(NameError::InvalidByte(b));
            }
        }
        Ok(label.to_string())
    }

    fn check_total_len(&self) -> Result<(), NameError> {
        if self.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(())
    }

    /// Length of this name in RFC 1035 wire form (uncompressed).
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Number of labels (the root has zero).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels, leftmost (deepest) first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The leftmost label, if any.
    pub fn first_label(&self) -> Option<&str> {
        self.labels.first().map(String::as_str)
    }

    /// The top-level domain (rightmost label), lowercased, if any.
    pub fn tld(&self) -> Option<String> {
        self.labels.last().map(|l| l.to_ascii_lowercase())
    }

    /// The parent name (this name minus its leftmost label). The root's
    /// parent is the root.
    pub fn parent(&self) -> Name {
        if self.labels.is_empty() {
            return Name::root();
        }
        Name {
            labels: self.labels[1..].to_vec(),
        }
    }

    /// Prepend a single label, returning the child name.
    pub fn child(&self, label: &str) -> Result<Name, NameError> {
        let mut labels = vec![Self::check_label(label)?];
        labels.extend(self.labels.iter().cloned());
        let name = Name { labels };
        name.check_total_len()?;
        Ok(name)
    }

    /// Concatenate: `self` prepended to `suffix` (i.e. `self.suffix`).
    pub fn concat(&self, suffix: &Name) -> Result<Name, NameError> {
        let mut labels = self.labels.clone();
        labels.extend(suffix.labels.iter().cloned());
        let name = Name { labels };
        name.check_total_len()?;
        Ok(name)
    }

    /// Case-insensitive test for whether `self` equals `other` or is a
    /// subdomain of it. Every name is under the root.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..]
            .iter()
            .zip(other.labels.iter())
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// Strip `suffix` from the end of the name, returning the remaining
    /// prefix labels (deepest first), or `None` when `self` is not under
    /// `suffix`.
    pub fn strip_suffix(&self, suffix: &Name) -> Option<Vec<String>> {
        if !self.is_subdomain_of(suffix) {
            return None;
        }
        let keep = self.labels.len() - suffix.labels.len();
        Some(self.labels[..keep].to_vec())
    }

    /// A copy with all labels lowercased (canonical form).
    pub fn to_lowercase(&self) -> Name {
        Name {
            labels: self
                .labels
                .iter()
                .map(|l| l.to_ascii_lowercase())
                .collect(),
        }
    }

    /// The canonical ASCII representation without a trailing dot; the root
    /// is rendered as `"."`.
    pub fn to_ascii(&self) -> String {
        if self.labels.is_empty() {
            ".".to_string()
        } else {
            self.labels.join(".")
        }
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(other.labels.iter())
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for label in &self.labels {
            for b in label.as_bytes() {
                state.write_u8(b.to_ascii_lowercase());
            }
            state.write_u8(0);
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering: compare label sequences right-to-left,
    /// case-insensitively (RFC 4034 §6.1, simplified to ASCII).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.labels.iter().rev();
        let b = other.labels.iter().rev();
        for (la, lb) in a.zip(b) {
            let ord = la
                .to_ascii_lowercase()
                .as_bytes()
                .cmp(lb.to_ascii_lowercase().as_bytes());
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        self.labels.len().cmp(&other.labels.len())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

impl FromStr for Name {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        assert_eq!(n("example.com").to_ascii(), "example.com");
        assert_eq!(n("example.com.").to_ascii(), "example.com");
        assert_eq!(n(".").to_ascii(), ".");
        assert_eq!(n("").to_ascii(), ".");
        assert_eq!(format!("{}", n("Foo.Example.COM")), "Foo.Example.COM");
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(Name::parse("foo..bar"), Err(NameError::EmptyLabel));
        let long = "a".repeat(64);
        assert!(matches!(
            Name::parse(&format!("{long}.com")),
            Err(NameError::LabelTooLong(_))
        ));
        assert!(matches!(
            Name::parse("fo o.com"),
            Err(NameError::InvalidByte(b' '))
        ));
    }

    #[test]
    fn accepts_macro_literal_labels() {
        // A non-expanding SPF implementation queries for the literal macro.
        let name = n("%{d1r}.abc.spf-test.dns-lab.org");
        assert_eq!(name.first_label(), Some("%{d1r}"));
    }

    #[test]
    fn rejects_overlong_names() {
        let label = "a".repeat(63);
        let s = vec![label; 5].join(".");
        assert_eq!(Name::parse(&s), Err(NameError::NameTooLong));
    }

    #[test]
    fn equality_is_case_insensitive() {
        assert_eq!(n("Example.COM"), n("example.com"));
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(n("Example.COM"));
        assert!(set.contains(&n("example.com")));
    }

    #[test]
    fn subdomain_relationships() {
        assert!(n("mail.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&Name::root()));
        assert!(!n("example.com").is_subdomain_of(&n("mail.example.com")));
        assert!(!n("badexample.com").is_subdomain_of(&n("example.com")));
        assert!(n("MAIL.EXAMPLE.com").is_subdomain_of(&n("example.COM")));
    }

    #[test]
    fn strip_suffix_returns_prefix_labels() {
        assert_eq!(
            n("a.b.example.com").strip_suffix(&n("example.com")),
            Some(vec!["a".to_string(), "b".to_string()])
        );
        assert_eq!(n("a.example.com").strip_suffix(&n("other.com")), None);
        assert_eq!(n("example.com").strip_suffix(&n("example.com")), Some(vec![]));
    }

    #[test]
    fn parent_and_child() {
        assert_eq!(n("a.b.c").parent(), n("b.c"));
        assert_eq!(Name::root().parent(), Name::root());
        assert_eq!(n("b.c").child("a").unwrap(), n("a.b.c"));
        assert_eq!(n("x").concat(&n("y.z")).unwrap(), n("x.y.z"));
    }

    #[test]
    fn tld_and_first_label() {
        assert_eq!(n("mail.example.com").tld(), Some("com".to_string()));
        assert_eq!(n("mail.example.COM").tld(), Some("com".to_string()));
        assert_eq!(Name::root().tld(), None);
        assert_eq!(n("mail.example.com").first_label(), Some("mail"));
    }

    #[test]
    fn canonical_ordering_right_to_left() {
        let mut names = [n("b.com"), n("a.org"), n("a.com"), n("com")];
        names.sort();
        assert_eq!(
            names.iter().map(|x| x.to_ascii()).collect::<Vec<_>>(),
            vec!["com", "a.com", "b.com", "a.org"]
        );
    }

    #[test]
    fn wire_len_counts_length_octets_and_root() {
        assert_eq!(Name::root().wire_len(), 1);
        // 7example3com0 -> 1+7 + 1+3 + 1 = 13
        assert_eq!(n("example.com").wire_len(), 13);
    }

    #[test]
    fn lowercase_copy() {
        assert_eq!(n("FoO.CoM").to_lowercase().to_ascii(), "foo.com");
    }
}
