//! Resource record types and data.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::name::Name;

/// DNS record types used by the measurement. Unknown types round-trip
/// through [`RecordType::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 host address.
    A,
    /// IPv6 host address.
    AAAA,
    /// Mail exchanger.
    MX,
    /// Text record (carries SPF policies).
    TXT,
    /// Authoritative name server.
    NS,
    /// Canonical name alias.
    CNAME,
    /// Start of authority.
    SOA,
    /// Reverse pointer.
    PTR,
    /// The deprecated SPF RRTYPE (99); some old validators still query it.
    SPF,
    /// Any other type, preserved by code point.
    Other(u16),
}

impl RecordType {
    /// The IANA code point.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::NS => 2,
            RecordType::CNAME => 5,
            RecordType::SOA => 6,
            RecordType::PTR => 12,
            RecordType::MX => 15,
            RecordType::TXT => 16,
            RecordType::AAAA => 28,
            RecordType::SPF => 99,
            RecordType::Other(code) => code,
        }
    }

    /// Construct from an IANA code point.
    pub fn from_code(code: u16) -> RecordType {
        match code {
            1 => RecordType::A,
            2 => RecordType::NS,
            5 => RecordType::CNAME,
            6 => RecordType::SOA,
            12 => RecordType::PTR,
            15 => RecordType::MX,
            16 => RecordType::TXT,
            28 => RecordType::AAAA,
            99 => RecordType::SPF,
            other => RecordType::Other(other),
        }
    }

    /// Whether this is an address type (A or AAAA).
    pub fn is_address(self) -> bool {
        matches!(self, RecordType::A | RecordType::AAAA)
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::AAAA => write!(f, "AAAA"),
            RecordType::MX => write!(f, "MX"),
            RecordType::TXT => write!(f, "TXT"),
            RecordType::NS => write!(f, "NS"),
            RecordType::CNAME => write!(f, "CNAME"),
            RecordType::SOA => write!(f, "SOA"),
            RecordType::PTR => write!(f, "PTR"),
            RecordType::SPF => write!(f, "SPF"),
            RecordType::Other(code) => write!(f, "TYPE{code}"),
        }
    }
}

/// DNS classes. Only `IN` matters here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecordClass {
    /// Internet.
    #[default]
    In,
    /// Anything else, preserved by code point.
    Other(u16),
}

impl RecordClass {
    /// The IANA code point.
    pub fn code(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Other(code) => code,
        }
    }

    /// Construct from an IANA code point.
    pub fn from_code(code: u16) -> RecordClass {
        match code {
            1 => RecordClass::In,
            other => RecordClass::Other(other),
        }
    }
}

/// Start-of-authority fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soa {
    /// Primary name server.
    pub mname: Name,
    /// Responsible mailbox, encoded as a name.
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Refresh interval in seconds.
    pub refresh: u32,
    /// Retry interval in seconds.
    pub retry: u32,
    /// Expiry in seconds.
    pub expire: u32,
    /// Negative-caching TTL in seconds.
    pub minimum: u32,
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Mail exchanger: preference and host.
    Mx {
        /// Lower is preferred.
        preference: u16,
        /// The exchange host name.
        exchange: Name,
    },
    /// Text data as character strings of up to 255 octets each.
    Txt(Vec<String>),
    /// Name-server host.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Start of authority.
    Soa(Soa),
    /// Reverse pointer target.
    Ptr(Name),
    /// Opaque data for unknown types.
    Opaque(Vec<u8>),
}

impl RData {
    /// The record type this data belongs to.
    pub fn record_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::AAAA,
            RData::Mx { .. } => RecordType::MX,
            RData::Txt(_) => RecordType::TXT,
            RData::Ns(_) => RecordType::NS,
            RData::Cname(_) => RecordType::CNAME,
            RData::Soa(_) => RecordType::SOA,
            RData::Ptr(_) => RecordType::PTR,
            RData::Opaque(_) => RecordType::Other(0),
        }
    }

    /// Build a TXT record's data from one logical string, splitting it into
    /// 255-octet character strings as the wire format requires. SPF policies
    /// longer than 255 octets rely on this (RFC 7208 §3.3).
    pub fn txt(content: &str) -> RData {
        if content.is_empty() {
            return RData::Txt(vec![String::new()]);
        }
        let bytes = content.as_bytes();
        let mut chunks = Vec::new();
        let mut start = 0;
        while start < bytes.len() {
            let end = (start + 255).min(bytes.len());
            chunks.push(String::from_utf8_lossy(&bytes[start..end]).into_owned());
            start = end;
        }
        RData::Txt(chunks)
    }

    /// For TXT data, the logical string: all character strings concatenated
    /// without separators (RFC 7208 §3.3). `None` for other types.
    pub fn txt_joined(&self) -> Option<String> {
        match self {
            RData::Txt(parts) => Some(parts.concat()),
            _ => None,
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Record class (always `IN` here).
    pub class: RecordClass,
    /// Time to live, in seconds.
    pub ttl: u32,
    /// Typed data.
    pub rdata: RData,
}

impl Record {
    /// A record with class `IN`.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Record {
        Record {
            name,
            class: RecordClass::In,
            ttl,
            rdata,
        }
    }

    /// The record's type, derived from its data.
    pub fn record_type(&self) -> RecordType {
        self.rdata.record_type()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} IN {}", self.name, self.ttl, self.record_type())?;
        match &self.rdata {
            RData::A(ip) => write!(f, " {ip}"),
            RData::Aaaa(ip) => write!(f, " {ip}"),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, " {preference} {exchange}"),
            RData::Txt(parts) => {
                for p in parts {
                    write!(f, " \"{p}\"")?;
                }
                Ok(())
            }
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, " {n}"),
            RData::Soa(soa) => write!(
                f,
                " {} {} {} {} {} {} {}",
                soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
            ),
            RData::Opaque(bytes) => write!(f, " \\# {}", bytes.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_round_trip() {
        for t in [
            RecordType::A,
            RecordType::AAAA,
            RecordType::MX,
            RecordType::TXT,
            RecordType::NS,
            RecordType::CNAME,
            RecordType::SOA,
            RecordType::PTR,
            RecordType::SPF,
            RecordType::Other(4711),
        ] {
            assert_eq!(RecordType::from_code(t.code()), t);
        }
    }

    #[test]
    fn txt_chunking_splits_at_255() {
        let long = "x".repeat(600);
        let RData::Txt(parts) = RData::txt(&long) else {
            panic!("not txt");
        };
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 255);
        assert_eq!(parts[1].len(), 255);
        assert_eq!(parts[2].len(), 90);
        assert_eq!(RData::txt(&long).txt_joined().unwrap(), long);
    }

    #[test]
    fn txt_empty_is_single_empty_string() {
        assert_eq!(RData::txt(""), RData::Txt(vec![String::new()]));
    }

    #[test]
    fn record_display_is_zone_file_like() {
        let r = Record::new(
            Name::parse("example.com").unwrap(),
            300,
            RData::Mx {
                preference: 10,
                exchange: Name::parse("mx1.example.com").unwrap(),
            },
        );
        assert_eq!(r.to_string(), "example.com 300 IN MX 10 mx1.example.com");
    }

    #[test]
    fn address_predicate() {
        assert!(RecordType::A.is_address());
        assert!(RecordType::AAAA.is_address());
        assert!(!RecordType::TXT.is_address());
    }
}
