//! A caching resolver over a directory of authorities.
//!
//! The simulation replaces the Internet's recursive-resolution machinery
//! with a [`Directory`]: a longest-suffix-match registry from zone origins
//! to [`Authority`] handles. A [`Resolver`] walks the directory, follows
//! CNAME chains, caches positive and negative answers by TTL against the
//! shared simulated clock, and charges every authoritative round trip to a
//! [`Link`].
//!
//! The paper's probe design defeats caching deliberately (every probe uses
//! a unique label); the resolver cache exists so that *that design choice
//! can be measured* — see the `ablation_cache_bypass` benchmark.

use std::collections::HashMap;
use std::fmt;
use std::net::IpAddr;
use std::sync::Arc;

use parking_lot::Mutex;

use spfail_netsim::{Link, Metrics, SimDuration, SimRng, SimTime};
use spfail_trace::{SpanKind, Tracer};

use crate::authority::Authority;
use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::rdata::{RData, Record, RecordType};

/// Longest-suffix-match registry of authorities.
#[derive(Clone, Default)]
pub struct Directory {
    authorities: Arc<Mutex<Vec<Arc<dyn Authority>>>>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Register an authority. Later registrations win ties, which makes it
    /// easy to shadow a zone in tests.
    pub fn register(&self, authority: Arc<dyn Authority>) {
        self.authorities.lock().push(authority);
    }

    /// The authority with the longest origin that is a suffix of `name`.
    pub fn authority_for(&self, name: &Name) -> Option<Arc<dyn Authority>> {
        let authorities = self.authorities.lock();
        authorities
            .iter()
            .filter(|a| name.is_subdomain_of(a.origin()))
            .max_by_key(|a| {
                // Prefer deeper origins; among equals prefer the most recent.
                let depth = a.origin().label_count();
                let index = authorities
                    .iter()
                    .position(|b| Arc::ptr_eq(a, b))
                    .unwrap_or(0);
                (depth, index)
            })
            .cloned()
    }

    /// Number of registered authorities.
    pub fn len(&self) -> usize {
        self.authorities.lock().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.authorities.lock().is_empty()
    }
}

impl fmt::Debug for Directory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Directory({} authorities)", self.len())
    }
}

/// Outcome of a successful resolution exchange.
///
/// Records are shared (`Arc<[Record]>`) so a cached outcome is returned
/// by reference-count bump — a cache hit never copies record data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Records of the requested type (CNAME chains already followed).
    Records(Arc<[Record]>),
    /// The name does not exist.
    NxDomain,
    /// The name exists but has no data of the requested type.
    NoRecords,
}

impl LookupOutcome {
    /// Whether this outcome is a "void lookup" in RFC 7208 §4.6.4 terms.
    pub fn is_void(&self) -> bool {
        !matches!(self, LookupOutcome::Records(_))
    }

    /// The records, if any.
    pub fn records(&self) -> &[Record] {
        match self {
            LookupOutcome::Records(r) => r.as_ref(),
            _ => &[],
        }
    }
}

/// Errors that prevent any outcome at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupError {
    /// No registered authority covers the name.
    NoAuthority(Name),
    /// The query or its response was lost and retries were exhausted.
    Timeout,
    /// The authority returned SERVFAIL/REFUSED.
    ServFail(Rcode),
    /// A CNAME chain exceeded the depth limit.
    CnameChainTooLong,
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LookupError::NoAuthority(n) => write!(f, "no authority for {n}"),
            LookupError::Timeout => write!(f, "query timed out"),
            LookupError::ServFail(rc) => write!(f, "server failure: {rc}"),
            LookupError::CnameChainTooLong => write!(f, "CNAME chain too long"),
        }
    }
}

impl std::error::Error for LookupError {}

impl From<&LookupError> for spfail_netsim::ProbeError {
    fn from(err: &LookupError) -> spfail_netsim::ProbeError {
        match err {
            LookupError::NoAuthority(_) | LookupError::CnameChainTooLong => {
                spfail_netsim::ProbeError::DnsLame
            }
            LookupError::Timeout => spfail_netsim::ProbeError::DnsTimeout,
            LookupError::ServFail(_) => spfail_netsim::ProbeError::DnsServFail,
        }
    }
}

/// Resolver tuning knobs.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Whether positive/negative caching is enabled.
    pub cache_enabled: bool,
    /// Per-query timeout charged when a datagram is lost.
    pub query_timeout: SimDuration,
    /// Retransmissions after a lost datagram.
    pub retries: u32,
    /// Maximum CNAME chain length.
    pub max_cname_depth: u32,
    /// Maximum UDP payload before the server truncates and the resolver
    /// retries over TCP (classic 512-byte limit, RFC 1035 §4.2.1).
    pub max_udp_payload: usize,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            cache_enabled: true,
            query_timeout: SimDuration::from_secs(3),
            retries: 2,
            max_cname_depth: 8,
            max_udp_payload: 512,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    expires: SimTime,
    outcome: LookupOutcome,
}

/// One resolver exchange recorded while a memoized evaluation candidate
/// is being captured (see [`Resolver::begin_transcript`]).
#[derive(Debug, Clone)]
pub struct TranscriptStep {
    /// The question name as asked.
    pub name: Name,
    /// The question type.
    pub rtype: RecordType,
    /// Whether the resolver's TTL cache answered (no authority contact).
    pub cache_hit: bool,
    /// The outcome handed to the caller.
    pub outcome: LookupOutcome,
}

impl TranscriptStep {
    /// The trace-span outcome label the live path emitted for this step.
    pub fn outcome_label(&self) -> &'static str {
        match &self.outcome {
            LookupOutcome::Records(_) => "ok",
            LookupOutcome::NxDomain => "nxdomain",
            LookupOutcome::NoRecords => "nodata",
        }
    }
}

/// A capture of every exchange a resolver performed, used to decide
/// whether an evaluation is replayable and to validate its replay script.
///
/// `clean` is true only when every [`Resolver::resolve`] call mapped to
/// exactly one cache hit or one single-attempt authoritative exchange —
/// no errors, retries, truncation fallbacks, CNAME chains, or authorities
/// that cannot transparently log replayed queries. Anything else makes
/// the evaluation unreplayable and it stays on the live path forever.
#[derive(Debug, Clone, Default)]
pub struct Transcript {
    /// The exchanges, in order.
    pub steps: Vec<TranscriptStep>,
    /// Whether every exchange is replayable (see type docs).
    pub clean: bool,
}

/// A caching resolver bound to one client address.
pub struct Resolver {
    directory: Directory,
    link: Link,
    client: IpAddr,
    config: ResolverConfig,
    cache: HashMap<(Name, RecordType), CacheEntry>,
    metrics: Metrics,
    tracer: Tracer,
    next_id: u16,
    transcript: Option<Transcript>,
}

impl Resolver {
    /// A resolver for `client`, querying through `link`.
    pub fn new(directory: Directory, link: Link, client: IpAddr) -> Resolver {
        Resolver::with_config(directory, link, client, ResolverConfig::default())
    }

    /// A resolver with explicit configuration.
    pub fn with_config(
        directory: Directory,
        link: Link,
        client: IpAddr,
        config: ResolverConfig,
    ) -> Resolver {
        let metrics = link.metrics().clone();
        Resolver {
            directory,
            link,
            client,
            config,
            cache: HashMap::new(),
            metrics,
            tracer: Tracer::disabled(),
            next_id: 1,
            transcript: None,
        }
    }

    /// Attach a tracing handle; every subsequent [`Resolver::resolve`]
    /// records a `dns_resolve` span labelled with its question.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The client address queries are attributed to.
    pub fn client(&self) -> IpAddr {
        self.client
    }

    /// Drop all cached entries.
    pub fn flush_cache(&mut self) {
        self.cache.clear();
    }

    /// Whether the TTL cache holds no entries at all (live or expired).
    ///
    /// Memoized-evaluation capture and replay both require a cold cache:
    /// with a warm one, which queries reach the authority depends on what
    /// an earlier evaluation left behind, and the recorded exchange
    /// sequence would not transfer.
    pub fn cache_is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The link queries are charged to.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Start recording a [`Transcript`] of every subsequent exchange.
    pub fn begin_transcript(&mut self) {
        self.transcript = Some(Transcript {
            steps: Vec::new(),
            clean: true,
        });
    }

    /// Stop recording and hand back the transcript, if one was started.
    pub fn take_transcript(&mut self) -> Option<Transcript> {
        self.transcript.take()
    }

    /// Re-emit the observable effects of one recorded clean exchange
    /// without doing its work.
    ///
    /// A cache-hit step ticks the cache-hit counter; a live step charges
    /// the query datagram to the link and logs the query with the
    /// authority via [`Authority::log_replayed_query`]. Both emit the same
    /// `dns_resolve` trace span the live path emits. Skipped entirely:
    /// message build, wire encode/decode, zone walk, and the resolver's
    /// own TTL-cache bookkeeping (replayed answers are never cached, which
    /// is unobservable — and `cache_is_empty` gating depends on it).
    pub fn replay_resolve(
        &mut self,
        rng: &mut SimRng,
        name: &Name,
        rtype: RecordType,
        cache_hit: bool,
        outcome_label: &'static str,
    ) {
        let traced = self.tracer.is_enabled();
        if traced {
            self.tracer
                .enter_labeled(self.link.clock().now(), SpanKind::DnsResolve, || {
                    // lint:allow(alloc-hot-path) the label closure only runs when tracing is on; the cache-hit path never formats
                    format!("{rtype} {name}")
                });
        }
        if cache_hit {
            self.metrics.inc_dns_cache_hits();
        } else {
            self.metrics.inc_dns_queries();
            let _ = self
                .link
                .datagram(rng, estimate_query_size(name), self.config.query_timeout);
            if let Some(authority) = self.directory.authority_for(name) {
                authority.log_replayed_query(name, rtype, self.client, self.link.clock().now());
            }
        }
        if traced {
            self.tracer
                .exit(self.link.clock().now(), SpanKind::DnsResolve, outcome_label);
        }
    }

    /// Resolve `name`/`rtype`, following CNAME chains.
    pub fn resolve(
        &mut self,
        rng: &mut SimRng,
        name: &Name,
        rtype: RecordType,
    ) -> Result<LookupOutcome, LookupError> {
        let steps_before = self.transcript.as_ref().map(|t| t.steps.len());
        let result = self.resolve_traced(rng, name, rtype);
        if let Some(before) = steps_before {
            if let Some(t) = &mut self.transcript {
                // A replayable resolve is exactly one recorded exchange;
                // errors and CNAME chains (multiple hops per resolve) are
                // not transferable to another probe's names.
                if result.is_err() || t.steps.len() != before + 1 {
                    t.clean = false;
                }
            }
        }
        result
    }

    fn resolve_traced(
        &mut self,
        rng: &mut SimRng,
        name: &Name,
        rtype: RecordType,
    ) -> Result<LookupOutcome, LookupError> {
        // The untraced path must stay allocation-free on cache hits
        // (`crates/bench/tests/alloc_count.rs`), so the span — and its
        // label formatting — exist only behind the enabled check.
        if !self.tracer.is_enabled() {
            return self.resolve_chain(rng, name, rtype);
        }
        self.tracer.enter_labeled(self.link.clock().now(), SpanKind::DnsResolve, || {
            // lint:allow(alloc-hot-path) guarded by the is_enabled early return above; only traced runs format labels
            format!("{rtype} {name}")
        });
        let result = self.resolve_chain(rng, name, rtype);
        let outcome = match &result {
            Ok(LookupOutcome::Records(_)) => "ok",
            Ok(LookupOutcome::NxDomain) => "nxdomain",
            Ok(LookupOutcome::NoRecords) => "nodata",
            Err(LookupError::Timeout) => "timeout",
            Err(LookupError::ServFail(_)) => "servfail",
            Err(LookupError::NoAuthority(_)) => "no_authority",
            Err(LookupError::CnameChainTooLong) => "cname_loop",
        };
        self.tracer
            .exit(self.link.clock().now(), SpanKind::DnsResolve, outcome);
        result
    }

    fn resolve_chain(
        &mut self,
        rng: &mut SimRng,
        name: &Name,
        rtype: RecordType,
    ) -> Result<LookupOutcome, LookupError> {
        let mut current = name.clone();
        // lint:allow(alloc-hot-path) Vec::new is allocation-free; it only grows if a CNAME chain actually collects records
        let mut collected: Vec<Record> = Vec::new();
        for _depth in 0..=self.config.max_cname_depth {
            let outcome = self.resolve_one(rng, &current, rtype)?;
            match &outcome {
                LookupOutcome::Records(records) => {
                    // A CNAME answer redirects unless CNAME itself was asked.
                    let cname = records
                        .iter()
                        .find(|r| r.record_type() == RecordType::CNAME);
                    match (cname, rtype) {
                        (Some(alias), t) if t != RecordType::CNAME => {
                            if let RData::Cname(target) = &alias.rdata {
                                collected.push(alias.clone());
                                current = target.clone();
                                continue;
                            }
                            return Ok(outcome);
                        }
                        // No chain followed: hand the (possibly cached)
                        // outcome through without copying any record.
                        _ if collected.is_empty() => return Ok(outcome),
                        _ => {
                            collected.extend(records.iter().cloned());
                            return Ok(LookupOutcome::Records(collected.into()));
                        }
                    }
                }
                _ if collected.is_empty() => return Ok(outcome),
                // A chain ending in NXDOMAIN/NODATA yields just the chain.
                _ => return Ok(LookupOutcome::Records(collected.into())),
            }
        }
        Err(LookupError::CnameChainTooLong)
    }

    fn resolve_one(
        &mut self,
        rng: &mut SimRng,
        name: &Name,
        rtype: RecordType,
    ) -> Result<LookupOutcome, LookupError> {
        let now = self.link.clock().now();
        // `Name` hashes and compares by its canonical form, so the name
        // itself is the case-insensitive cache key; cloning it is a copy
        // or refcount bump, never a heap allocation.
        let key = (name.clone(), rtype);
        if self.config.cache_enabled {
            if let Some(entry) = self.cache.get(&key) {
                if entry.expires > now {
                    self.metrics.inc_dns_cache_hits();
                    if let Some(t) = &mut self.transcript {
                        t.steps.push(TranscriptStep {
                            name: name.clone(),
                            rtype,
                            cache_hit: true,
                            outcome: entry.outcome.clone(),
                        });
                    }
                    return Ok(entry.outcome.clone());
                }
                self.cache.remove(&key);
            }
        }

        let authority = self
            .directory
            .authority_for(name)
            .ok_or_else(|| LookupError::NoAuthority(name.clone()))?;

        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let query = Message::query(id, name.clone(), rtype);

        let mut attempts = 0;
        let mut forced_tc = false;
        let mut response = loop {
            attempts += 1;
            self.metrics.inc_dns_queries();
            let obs = self
                .link
                .datagram(rng, estimate_query_size(name), self.config.query_timeout);
            match obs {
                spfail_netsim::LinkObservation::Ok => {
                    break authority.answer(&query, self.client, self.link.clock().now());
                }
                // An injected SERVFAIL is an answer: no retry recovers it
                // within this lookup.
                spfail_netsim::LinkObservation::ServFail => {
                    return Err(LookupError::ServFail(Rcode::ServFail));
                }
                // An injected TC bit: take the real answer, but only via
                // the TCP fallback below.
                spfail_netsim::LinkObservation::Truncated => {
                    forced_tc = true;
                    break authority.answer(&query, self.client, self.link.clock().now());
                }
                _ => {
                    if attempts > self.config.retries {
                        self.metrics.inc_dns_timeouts();
                        return Err(LookupError::Timeout);
                    }
                }
            }
        };

        // RFC 1035 §4.2.1: responses that do not fit the UDP payload come
        // back truncated (TC) and the client retries over TCP — an extra
        // connection's worth of round trips, charged to the link. An
        // injected truncation fault takes the same fallback.
        let wire_len = crate::wire::encode(&response).len();
        if forced_tc || wire_len > self.config.max_udp_payload {
            self.metrics.inc_dns_truncated();
            // TCP handshake + the re-sent query and full response.
            let _ = self.link.turn(rng, estimate_query_size(name));
            let _ = self.link.turn(rng, wire_len);
            if let Some(t) = &mut self.transcript {
                // The TCP fallback's turns depend on the response's wire
                // size; a replay works with names, not responses.
                t.clean = false;
            }
        }

        let outcome = match response.header.rcode {
            Rcode::NoError => {
                if response.answers.is_empty() {
                    LookupOutcome::NoRecords
                } else {
                    // The response is ours; move its answers into the
                    // shared slice instead of cloning record data.
                    LookupOutcome::Records(std::mem::take(&mut response.answers).into())
                }
            }
            Rcode::NxDomain => LookupOutcome::NxDomain,
            other => return Err(LookupError::ServFail(other)),
        };

        if let Some(t) = &mut self.transcript {
            // A retried exchange charged extra datagrams, and an authority
            // with answer-path side effects beyond its query log (pcap)
            // cannot reproduce them on replay.
            if attempts != 1 || !authority.replay_loggable() {
                t.clean = false;
            }
            t.steps.push(TranscriptStep {
                name: name.clone(),
                rtype,
                cache_hit: false,
                outcome: outcome.clone(),
            });
        }

        if self.config.cache_enabled {
            let ttl = match &outcome {
                LookupOutcome::Records(records) => {
                    records.iter().map(|r| r.ttl).min().unwrap_or(0)
                }
                // Negative TTL from the SOA minimum, when present.
                _ => response
                    .authorities
                    .iter()
                    .find_map(|r| match &r.rdata {
                        RData::Soa(soa) => Some(soa.minimum.min(r.ttl)),
                        _ => None,
                    })
                    .unwrap_or(60),
            };
            self.cache.insert(
                key,
                CacheEntry {
                    expires: now + SimDuration::from_secs(u64::from(ttl)),
                    outcome: outcome.clone(),
                },
            );
        }
        Ok(outcome)
    }
}

/// Rough wire size of a query for accounting purposes.
fn estimate_query_size(name: &Name) -> usize {
    12 + name.wire_len() + 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::StaticAuthority;
    use crate::zone::ZoneBuilder;
    use spfail_netsim::{FaultPlan, LatencyModel, SimClock};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn setup() -> (Directory, SimClock) {
        let directory = Directory::new();
        let zone = ZoneBuilder::new(n("example.com"))
            .a(&n("example.com"), 300, Ipv4Addr::new(192, 0, 2, 1))
            .a(&n("mx.example.com"), 300, Ipv4Addr::new(192, 0, 2, 25))
            .mx(&n("example.com"), 300, 10, &n("mx.example.com"))
            .record(Record::new(
                n("www.example.com"),
                300,
                RData::Cname(n("example.com")),
            ))
            .build();
        directory.register(Arc::new(StaticAuthority::new(zone)));
        (directory, SimClock::new())
    }

    fn resolver(directory: &Directory, clock: &SimClock) -> Resolver {
        Resolver::new(
            directory.clone(),
            Link::ideal(clock.clone()),
            "198.51.100.1".parse().unwrap(),
        )
    }

    #[test]
    fn resolves_a_records() {
        let (dir, clock) = setup();
        let mut r = resolver(&dir, &clock);
        let mut rng = SimRng::new(1);
        let outcome = r.resolve(&mut rng, &n("example.com"), RecordType::A).unwrap();
        assert_eq!(outcome.records().len(), 1);
    }

    #[test]
    fn follows_cname_chain() {
        let (dir, clock) = setup();
        let mut r = resolver(&dir, &clock);
        let mut rng = SimRng::new(2);
        let outcome = r
            .resolve(&mut rng, &n("www.example.com"), RecordType::A)
            .unwrap();
        let records = outcome.records();
        assert_eq!(records.len(), 2, "CNAME + target A");
        assert_eq!(records[0].record_type(), RecordType::CNAME);
        assert_eq!(records[1].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
    }

    #[test]
    fn nxdomain_and_nodata_are_void() {
        let (dir, clock) = setup();
        let mut r = resolver(&dir, &clock);
        let mut rng = SimRng::new(3);
        let nx = r
            .resolve(&mut rng, &n("missing.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(nx, LookupOutcome::NxDomain);
        assert!(nx.is_void());
        let nodata = r
            .resolve(&mut rng, &n("example.com"), RecordType::AAAA)
            .unwrap();
        assert_eq!(nodata, LookupOutcome::NoRecords);
        assert!(nodata.is_void());
    }

    #[test]
    fn no_authority_is_an_error() {
        let (dir, clock) = setup();
        let mut r = resolver(&dir, &clock);
        let mut rng = SimRng::new(4);
        assert!(matches!(
            r.resolve(&mut rng, &n("unknown.test"), RecordType::A),
            Err(LookupError::NoAuthority(_))
        ));
    }

    #[test]
    fn cache_serves_repeat_queries() {
        let (dir, clock) = setup();
        let metrics = Metrics::new();
        let link = Link::new(
            LatencyModel::ZERO,
            FaultPlan::NONE,
            clock.clone(),
            metrics.clone(),
        );
        let mut r = Resolver::new(dir, link, "198.51.100.1".parse().unwrap());
        let mut rng = SimRng::new(5);
        r.resolve(&mut rng, &n("example.com"), RecordType::A).unwrap();
        r.resolve(&mut rng, &n("example.com"), RecordType::A).unwrap();
        assert_eq!(metrics.dns_queries(), 1);
        assert_eq!(metrics.dns_cache_hits(), 1);
    }

    #[test]
    fn cache_is_case_insensitive() {
        // RFC 1035 §2.3.3 / RFC 4343: MAIL.Example.COM and
        // mail.example.com are the same name, so the second spelling must
        // be served from cache, not re-queried.
        let (dir, clock) = setup();
        let metrics = Metrics::new();
        let link = Link::new(
            LatencyModel::ZERO,
            FaultPlan::NONE,
            clock.clone(),
            metrics.clone(),
        );
        let mut r = Resolver::new(dir, link, "198.51.100.1".parse().unwrap());
        let mut rng = SimRng::new(11);
        let first = r.resolve(&mut rng, &n("MX.Example.COM"), RecordType::A).unwrap();
        let second = r.resolve(&mut rng, &n("mx.example.com"), RecordType::A).unwrap();
        assert_eq!(metrics.dns_queries(), 1, "one authoritative query");
        assert_eq!(metrics.dns_cache_hits(), 1, "case variant must hit");
        assert_eq!(first, second);
    }

    #[test]
    fn cache_expires_with_ttl() {
        let (dir, clock) = setup();
        let metrics = Metrics::new();
        let link = Link::new(
            LatencyModel::ZERO,
            FaultPlan::NONE,
            clock.clone(),
            metrics.clone(),
        );
        let mut r = Resolver::new(dir, link, "198.51.100.1".parse().unwrap());
        let mut rng = SimRng::new(6);
        r.resolve(&mut rng, &n("example.com"), RecordType::A).unwrap();
        clock.advance(SimDuration::from_secs(301));
        r.resolve(&mut rng, &n("example.com"), RecordType::A).unwrap();
        assert_eq!(metrics.dns_queries(), 2);
    }

    #[test]
    fn cache_can_be_disabled() {
        let (dir, clock) = setup();
        let metrics = Metrics::new();
        let link = Link::new(
            LatencyModel::ZERO,
            FaultPlan::NONE,
            clock.clone(),
            metrics.clone(),
        );
        let config = ResolverConfig {
            cache_enabled: false,
            ..ResolverConfig::default()
        };
        let mut r = Resolver::with_config(dir, link, "198.51.100.1".parse().unwrap(), config);
        let mut rng = SimRng::new(7);
        r.resolve(&mut rng, &n("example.com"), RecordType::A).unwrap();
        r.resolve(&mut rng, &n("example.com"), RecordType::A).unwrap();
        assert_eq!(metrics.dns_queries(), 2);
        assert_eq!(metrics.dns_cache_hits(), 0);
    }

    #[test]
    fn lost_datagrams_exhaust_retries() {
        let (dir, clock) = setup();
        let link = Link::new(
            LatencyModel::ZERO,
            FaultPlan {
                drop_chance: 1.0,
                ..FaultPlan::NONE
            },
            clock.clone(),
            Metrics::new(),
        );
        let mut r = Resolver::new(dir, link, "198.51.100.1".parse().unwrap());
        let mut rng = SimRng::new(8);
        let before = clock.now();
        let err = r.resolve(&mut rng, &n("example.com"), RecordType::A);
        assert_eq!(err, Err(LookupError::Timeout));
        // 1 try + 2 retries, 3 seconds each.
        assert_eq!((clock.now() - before).as_secs(), 9);
    }

    #[test]
    fn oversized_responses_fall_back_to_tcp() {
        let directory = Directory::new();
        let origin = n("big.example");
        // A TXT record far beyond 512 bytes of wire.
        let zone = ZoneBuilder::new(origin.clone())
            .txt(&origin, 300, &"x".repeat(900))
            .build();
        directory.register(Arc::new(StaticAuthority::new(zone)));
        let clock = SimClock::new();
        let metrics = Metrics::new();
        let link = Link::new(
            LatencyModel::ZERO,
            FaultPlan::NONE,
            clock,
            metrics.clone(),
        );
        let mut r = Resolver::new(directory, link, "198.51.100.1".parse().unwrap());
        let mut rng = SimRng::new(10);
        let outcome = r.resolve(&mut rng, &origin, RecordType::TXT).unwrap();
        assert_eq!(outcome.records().len(), 1);
        assert_eq!(metrics.dns_truncated(), 1);
        // Small answers never trip the fallback.
        let outcome = r.resolve(&mut rng, &origin, RecordType::A);
        assert!(outcome.is_ok());
        assert_eq!(metrics.dns_truncated(), 1);
    }

    #[test]
    fn deepest_origin_wins() {
        let (dir, clock) = setup();
        let subzone = ZoneBuilder::new(n("sub.example.com"))
            .a(&n("sub.example.com"), 30, Ipv4Addr::new(192, 0, 2, 77))
            .build();
        dir.register(Arc::new(StaticAuthority::new(subzone)));
        let mut r = resolver(&dir, &clock);
        let mut rng = SimRng::new(9);
        let outcome = r
            .resolve(&mut rng, &n("sub.example.com"), RecordType::A)
            .unwrap();
        assert_eq!(
            outcome.records()[0].rdata,
            RData::A(Ipv4Addr::new(192, 0, 2, 77))
        );
    }
}
