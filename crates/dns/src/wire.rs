//! RFC 1035 wire format: encoding and decoding of complete messages,
//! including name compression on encode and compression-pointer chasing
//! (with loop protection) on decode.
//!
//! The simulation mostly passes [`Message`] values around in memory, but
//! everything that crosses a simulated link is round-tripped through this
//! codec in tests and charged by its encoded size, keeping the substrate
//! honest about what would actually fit on the wire.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, BytesMut};

use crate::message::{Header, Message, Opcode, Question, Rcode};
use crate::name::{Name, NameError, MAX_NAME_LEN};
use crate::rdata::{RData, Record, RecordClass, RecordType, Soa};

/// Maximum compression-pointer hops tolerated while decoding one name.
const MAX_POINTER_HOPS: usize = 32;

/// Largest offset a 14-bit compression pointer can address (RFC 1035
/// §4.1.4). Labels written beyond it are never remembered as targets.
const MAX_POINTER_TARGET: usize = 0x3fff;

/// Errors decoding a wire-format message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A compression pointer pointed at or past its own position, or the
    /// hop limit was exceeded.
    BadPointer,
    /// An invalid label was encountered.
    BadName(NameError),
    /// A label length octet used the reserved `0b10`/`0b01` prefixes.
    ReservedLabelType(u8),
    /// Record data did not match its declared length.
    BadRdata,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadName(e) => write!(f, "bad name: {e}"),
            WireError::ReservedLabelType(b) => write!(f, "reserved label type 0x{b:02x}"),
            WireError::BadRdata => write!(f, "rdata length mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<NameError> for WireError {
    fn from(e: NameError) -> Self {
        WireError::BadName(e)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Message encoder with RFC 1035 §4.1.4 name compression.
///
/// Compression never allocates per name: instead of keying a map with
/// joined suffix `String`s, the encoder remembers the buffer offset of
/// every label it writes and matches new names' canonical suffix *bytes*
/// against the label sequences already in the buffer (chasing pointers,
/// comparing case-insensitively). First occurrence wins, exactly like the
/// old string-keyed scheme, and every emitted pointer target is by
/// construction a previously written offset `<= 0x3FFF` — i.e. strictly
/// less than the current position.
pub struct Encoder {
    buf: BytesMut,
    /// Offsets into `buf` of every label start already written, limited
    /// to those a 14-bit pointer can address.
    label_offsets: Vec<u16>,
    compress: bool,
}

impl Encoder {
    /// A new encoder. `compress` controls name compression (the ablation
    /// benchmark compares both settings).
    pub fn new(compress: bool) -> Encoder {
        Encoder {
            buf: BytesMut::with_capacity(512),
            // lint:allow(alloc-hot-path) Vec::new is allocation-free; offsets only grow when compression actually records labels
            label_offsets: Vec::new(),
            compress,
        }
    }

    /// Encode a complete message.
    pub fn encode(mut self, message: &Message) -> Vec<u8> {
        self.put_header(message);
        for q in &message.questions {
            self.put_name(&q.name);
            self.buf.put_u16(q.qtype.code());
            self.buf.put_u16(q.qclass.code());
        }
        for r in &message.answers {
            self.put_record(r);
        }
        for r in &message.authorities {
            self.put_record(r);
        }
        for r in &message.additionals {
            self.put_record(r);
        }
        // lint:allow(alloc-hot-path) one terminal copy hands the finished message to the caller; per-label work stays in buf
        self.buf.to_vec()
    }

    fn put_header(&mut self, m: &Message) {
        let h = &m.header;
        self.buf.put_u16(h.id);
        let mut flags: u16 = 0;
        if h.response {
            flags |= 1 << 15;
        }
        flags |= u16::from(h.opcode.code()) << 11;
        if h.authoritative {
            flags |= 1 << 10;
        }
        if h.truncated {
            flags |= 1 << 9;
        }
        if h.recursion_desired {
            flags |= 1 << 8;
        }
        if h.recursion_available {
            flags |= 1 << 7;
        }
        flags |= u16::from(h.rcode.code());
        self.buf.put_u16(flags);
        self.buf.put_u16(m.questions.len() as u16);
        self.buf.put_u16(m.answers.len() as u16);
        self.buf.put_u16(m.authorities.len() as u16);
        self.buf.put_u16(m.additionals.len() as u16);
    }

    fn put_name(&mut self, name: &Name) {
        let bytes = name.wire_bytes();
        let canon = name.canonical_bytes();
        let mut pos = 0usize;
        while pos < bytes.len() {
            if self.compress {
                if let Some(offset) = self.find_suffix(&canon[pos..]) {
                    self.buf.put_u16(0xc000 | offset);
                    return;
                }
                let here = self.buf.len();
                // Pointers carry 14 offset bits; labels beyond 0x3FFF are
                // written but never remembered as targets.
                if here <= MAX_POINTER_TARGET {
                    self.label_offsets.push(here as u16);
                }
            }
            let len = bytes[pos] as usize;
            self.buf.put_slice(&bytes[pos..pos + 1 + len]);
            pos += 1 + len;
        }
        self.buf.put_u8(0);
    }

    /// Offset of an already-written label sequence equal (per canonical
    /// bytes) to `suffix`, if any. Candidates are scanned oldest-first so
    /// the first occurrence of a suffix stays the compression target.
    fn find_suffix(&self, suffix: &[u8]) -> Option<u16> {
        'candidates: for &off in &self.label_offsets {
            let mut pos = off as usize;
            let mut si = 0usize;
            let mut hops = 0usize;
            loop {
                if si == suffix.len() {
                    // The candidate must terminate exactly where the
                    // suffix does: a root octet here means a whole-suffix
                    // match, anything else a longer name.
                    match self.buf.get(pos) {
                        Some(0) => return Some(off),
                        _ => continue 'candidates,
                    }
                }
                let b = match self.buf.get(pos) {
                    Some(&b) => b,
                    None => continue 'candidates,
                };
                if b & 0xc0 == 0xc0 {
                    // Previously written names may themselves end in a
                    // pointer; follow it (targets always point backwards).
                    let lo = self.buf[pos + 1] as usize;
                    let target = ((b as usize & 0x3f) << 8) | lo;
                    hops += 1;
                    if target >= pos || hops > MAX_POINTER_HOPS {
                        continue 'candidates;
                    }
                    pos = target;
                    continue;
                }
                if b == 0 {
                    // Candidate ended before the suffix was consumed.
                    continue 'candidates;
                }
                let len = b as usize;
                // `suffix` is validly framed, so its length octet sits at
                // `si` and the content fits; length octets (<= 63) never
                // collide with the case fold.
                if suffix[si] != b {
                    continue 'candidates;
                }
                for k in 0..len {
                    if self.buf[pos + 1 + k].to_ascii_lowercase() != suffix[si + 1 + k] {
                        continue 'candidates;
                    }
                }
                pos += 1 + len;
                si += 1 + len;
            }
        }
        None
    }

    fn put_record(&mut self, r: &Record) {
        self.put_name(&r.name);
        self.buf.put_u16(r.record_type().code());
        self.buf.put_u16(r.class.code());
        self.buf.put_u32(r.ttl);
        // Reserve the RDLENGTH slot, write the data, then backfill.
        let len_pos = self.buf.len();
        self.buf.put_u16(0);
        let data_start = self.buf.len();
        self.put_rdata(&r.rdata);
        let rdlen = (self.buf.len() - data_start) as u16;
        self.buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
    }

    fn put_rdata(&mut self, rdata: &RData) {
        match rdata {
            RData::A(ip) => self.buf.put_slice(&ip.octets()),
            RData::Aaaa(ip) => self.buf.put_slice(&ip.octets()),
            RData::Mx {
                preference,
                exchange,
            } => {
                self.buf.put_u16(*preference);
                self.put_name(exchange);
            }
            RData::Txt(parts) => {
                for p in parts {
                    self.buf.put_u8(p.len().min(255) as u8);
                    self.buf.put_slice(&p.as_bytes()[..p.len().min(255)]);
                }
            }
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => self.put_name(n),
            RData::Soa(soa) => {
                self.put_name(&soa.mname);
                self.put_name(&soa.rname);
                self.buf.put_u32(soa.serial);
                self.buf.put_u32(soa.refresh);
                self.buf.put_u32(soa.retry);
                self.buf.put_u32(soa.expire);
                self.buf.put_u32(soa.minimum);
            }
            RData::Opaque(bytes) => self.buf.put_slice(bytes),
        }
    }
}

/// Encode `message` with name compression enabled.
pub fn encode(message: &Message) -> Vec<u8> {
    Encoder::new(true).encode(message)
}

/// Encode `message` without name compression.
pub fn encode_uncompressed(message: &Message) -> Vec<u8> {
    Encoder::new(false).encode(message)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        if self.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let b = self.data[self.pos];
        self.pos += 1;
        Ok(b)
    }

    fn take_u16(&mut self) -> Result<u16, WireError> {
        if self.remaining() < 2 {
            return Err(WireError::Truncated);
        }
        let mut slice = &self.data[self.pos..];
        self.pos += 2;
        Ok(slice.get_u16())
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        if self.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        let mut slice = &self.data[self.pos..];
        self.pos += 4;
        Ok(slice.get_u32())
    }

    fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Decode a possibly compressed name starting at the current position.
    /// Labels are accumulated directly in wire form on the stack; the only
    /// allocation is the one the resulting [`Name`] itself may need.
    fn take_name(&mut self) -> Result<Name, WireError> {
        let mut wire = [0u8; MAX_NAME_LEN];
        let mut wlen = 0usize;
        let mut pos = self.pos;
        let mut jumped = false;
        let mut hops = 0;
        loop {
            let len = *self.data.get(pos).ok_or(WireError::Truncated)? as usize;
            match len & 0xc0 {
                0x00 => {
                    if len == 0 {
                        if !jumped {
                            self.pos = pos + 1;
                        }
                        return Name::from_wire(&wire[..wlen]).map_err(WireError::BadName);
                    }
                    let bytes = self
                        .data
                        .get(pos + 1..pos + 1 + len)
                        .ok_or(WireError::Truncated)?;
                    if wlen + 1 + len > MAX_NAME_LEN - 1 {
                        return Err(WireError::BadName(NameError::NameTooLong));
                    }
                    wire[wlen] = len as u8;
                    wire[wlen + 1..wlen + 1 + len].copy_from_slice(bytes);
                    wlen += 1 + len;
                    pos += 1 + len;
                }
                0xc0 => {
                    let second = *self.data.get(pos + 1).ok_or(WireError::Truncated)?;
                    let target = ((len & 0x3f) << 8) | second as usize;
                    // Pointers must move strictly backwards to rule out loops.
                    if target >= pos {
                        return Err(WireError::BadPointer);
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer);
                    }
                    if !jumped {
                        self.pos = pos + 2;
                        jumped = true;
                    }
                    pos = target;
                }
                other => return Err(WireError::ReservedLabelType(other as u8)),
            }
        }
    }

    fn take_question(&mut self) -> Result<Question, WireError> {
        let name = self.take_name()?;
        let qtype = RecordType::from_code(self.take_u16()?);
        let qclass = RecordClass::from_code(self.take_u16()?);
        Ok(Question {
            name,
            qtype,
            qclass,
        })
    }

    fn take_record(&mut self) -> Result<Record, WireError> {
        let name = self.take_name()?;
        let rtype = RecordType::from_code(self.take_u16()?);
        let class = RecordClass::from_code(self.take_u16()?);
        let ttl = self.take_u32()?;
        let rdlen = self.take_u16()? as usize;
        let data_end = self.pos + rdlen;
        if data_end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let rdata = match rtype {
            RecordType::A => {
                let bytes = self.take_bytes(4)?;
                RData::A(Ipv4Addr::new(bytes[0], bytes[1], bytes[2], bytes[3]))
            }
            RecordType::AAAA => {
                let bytes = self.take_bytes(16)?;
                let mut octets = [0u8; 16];
                octets.copy_from_slice(bytes);
                RData::Aaaa(Ipv6Addr::from(octets))
            }
            RecordType::MX => {
                let preference = self.take_u16()?;
                let exchange = self.take_name()?;
                RData::Mx {
                    preference,
                    exchange,
                }
            }
            RecordType::TXT => {
                // lint:allow(alloc-hot-path) decode builds owned RData; it runs on cache misses only, never the hit path
                let mut parts = Vec::new();
                while self.pos < data_end {
                    let len = self.take_u8()? as usize;
                    if self.pos + len > data_end {
                        return Err(WireError::BadRdata);
                    }
                    let bytes = self.take_bytes(len)?;
                    parts.push(String::from_utf8_lossy(bytes).into_owned());
                }
                RData::Txt(parts)
            }
            RecordType::NS => RData::Ns(self.take_name()?),
            RecordType::CNAME => RData::Cname(self.take_name()?),
            RecordType::PTR => RData::Ptr(self.take_name()?),
            RecordType::SOA => {
                let mname = self.take_name()?;
                let rname = self.take_name()?;
                RData::Soa(Soa {
                    mname,
                    rname,
                    serial: self.take_u32()?,
                    refresh: self.take_u32()?,
                    retry: self.take_u32()?,
                    expire: self.take_u32()?,
                    minimum: self.take_u32()?,
                })
            }
            RecordType::SPF | RecordType::Other(_) => {
                // lint:allow(alloc-hot-path) decode builds owned RData; it runs on cache misses only, never the hit path
                RData::Opaque(self.take_bytes(rdlen)?.to_vec())
            }
        };
        if self.pos != data_end {
            return Err(WireError::BadRdata);
        }
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }
}

/// Decode a complete message from wire form.
pub fn decode(data: &[u8]) -> Result<Message, WireError> {
    let mut d = Decoder { data, pos: 0 };
    let id = d.take_u16()?;
    let flags = d.take_u16()?;
    let header = Header {
        id,
        response: flags & (1 << 15) != 0,
        opcode: Opcode::from_code(((flags >> 11) & 0x0f) as u8),
        authoritative: flags & (1 << 10) != 0,
        truncated: flags & (1 << 9) != 0,
        recursion_desired: flags & (1 << 8) != 0,
        recursion_available: flags & (1 << 7) != 0,
        rcode: Rcode::from_code((flags & 0x0f) as u8),
    };
    let qdcount = d.take_u16()? as usize;
    let ancount = d.take_u16()? as usize;
    let nscount = d.take_u16()? as usize;
    let arcount = d.take_u16()? as usize;

    let mut message = Message {
        header,
        ..Message::default()
    };
    for _ in 0..qdcount {
        message.questions.push(d.take_question()?);
    }
    for _ in 0..ancount {
        message.answers.push(d.take_record()?);
    }
    for _ in 0..nscount {
        message.authorities.push(d.take_record()?);
    }
    for _ in 0..arcount {
        message.additionals.push(d.take_record()?);
    }
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn sample_response() -> Message {
        let q = Message::query(0x1234, name("mail.example.com"), RecordType::MX);
        Message::respond_to(&q)
            .with_answer(Record::new(
                name("mail.example.com"),
                300,
                RData::Mx {
                    preference: 10,
                    exchange: name("mx1.mail.example.com"),
                },
            ))
            .with_answer(Record::new(
                name("mail.example.com"),
                300,
                RData::Mx {
                    preference: 20,
                    exchange: name("mx2.mail.example.com"),
                },
            ))
            .with_authority(Record::new(
                name("example.com"),
                3600,
                RData::Ns(name("ns1.example.com")),
            ))
    }

    #[test]
    fn round_trip_query() {
        let q = Message::query(7, name("spf-test.dns-lab.org"), RecordType::TXT);
        let wire = encode(&q);
        assert_eq!(decode(&wire).unwrap(), q);
    }

    #[test]
    fn round_trip_full_response() {
        let m = sample_response();
        assert_eq!(decode(&encode(&m)).unwrap(), m);
        assert_eq!(decode(&encode_uncompressed(&m)).unwrap(), m);
    }

    #[test]
    fn compression_shrinks_repeated_suffixes() {
        let m = sample_response();
        let compressed = encode(&m);
        let plain = encode_uncompressed(&m);
        assert!(
            compressed.len() < plain.len(),
            "compressed={} plain={}",
            compressed.len(),
            plain.len()
        );
    }

    #[test]
    fn round_trip_all_rdata_types() {
        let q = Message::query(1, name("x.test"), RecordType::A);
        let m = Message::respond_to(&q)
            .with_answer(Record::new(name("x.test"), 60, RData::A("192.0.2.9".parse().unwrap())))
            .with_answer(Record::new(
                name("x.test"),
                60,
                RData::Aaaa("2001:db8::1".parse().unwrap()),
            ))
            .with_answer(Record::new(
                name("x.test"),
                60,
                RData::txt("v=spf1 a:%{d1r}.x.test -all"),
            ))
            .with_answer(Record::new(name("x.test"), 60, RData::Cname(name("y.test"))))
            .with_answer(Record::new(name("x.test"), 60, RData::Ptr(name("p.test"))))
            .with_answer(Record::new(
                name("test"),
                60,
                RData::Soa(Soa {
                    mname: name("ns.test"),
                    rname: name("hostmaster.test"),
                    serial: 2021101101,
                    refresh: 7200,
                    retry: 3600,
                    expire: 1209600,
                    minimum: 300,
                }),
            ));
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn txt_with_multiple_strings_round_trips() {
        let long = "a".repeat(300);
        let q = Message::query(2, name("t.test"), RecordType::TXT);
        let m = Message::respond_to(&q).with_answer(Record::new(name("t.test"), 60, RData::txt(&long)));
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(
            decoded.answers[0].rdata.txt_joined().unwrap(),
            long,
            "joined TXT must reconstruct the logical string"
        );
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let m = sample_response();
        let wire = encode(&m);
        for cut in 0..wire.len() {
            // Every prefix must decode to an error or a (different) message,
            // never panic.
            let _ = decode(&wire[..cut]);
        }
        assert_eq!(decode(&wire[..4]), Err(WireError::Truncated));
    }

    #[test]
    fn forward_pointer_is_rejected() {
        // Header (12 bytes) + a question whose name is a pointer to itself.
        let mut data = vec![0u8; 12];
        data[4] = 0;
        data[5] = 1; // qdcount = 1
        data.extend_from_slice(&[0xc0, 12]); // pointer to its own offset
        data.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode(&data), Err(WireError::BadPointer));
    }

    #[test]
    fn reserved_label_type_is_rejected() {
        let mut data = vec![0u8; 12];
        data[4] = 0;
        data[5] = 1;
        data.extend_from_slice(&[0x80, 0]); // 0b10 prefix is reserved
        data.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode(&data), Err(WireError::ReservedLabelType(0x80)));
    }

    #[test]
    fn header_flags_round_trip() {
        let mut m = Message::query(0xffff, name("f.test"), RecordType::AAAA);
        m.header.truncated = true;
        m.header.recursion_available = true;
        m.header.rcode = Rcode::Refused;
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(decoded.header, m.header);
    }

    #[test]
    fn compression_matches_suffixes_case_insensitively() {
        // RFC 1035 §4.1.4 compression compares names case-insensitively;
        // the encoder keys on canonical bytes, so a differently-spelled
        // repeat of the same suffix must still compress. The decoded
        // message is equal (names compare case-insensitively); the
        // compressed suffix inherits the spelling of its first occurrence,
        // exactly as on the real wire.
        let q = Message::query(9, name("MAIL.Example.COM"), RecordType::A);
        let m = Message::respond_to(&q)
            .with_answer(Record::new(
                name("mail.example.com"),
                60,
                RData::A("192.0.2.1".parse().unwrap()),
            ))
            .with_answer(Record::new(
                name("other.EXAMPLE.com"),
                60,
                RData::A("192.0.2.2".parse().unwrap()),
            ));
        let compressed = encode(&m);
        let plain = encode_uncompressed(&m);
        assert!(compressed.len() < plain.len());
        let decoded = decode(&compressed).unwrap();
        assert_eq!(decoded, m);
        // Own label kept its spelling; the suffix took the question's.
        assert_eq!(decoded.answers[1].name.to_ascii(), "other.Example.COM");
    }

    /// Walk an encoded message and collect (pointer position, target) for
    /// every compression pointer inside a name field.
    fn collect_pointers(wire: &[u8]) -> Vec<(usize, usize)> {
        let decoded = decode(wire).expect("message must decode");
        // Re-walk the raw bytes: skip the header, then for each question
        // and record walk the name's labels watching for pointers.
        let mut pointers = Vec::new();
        let mut pos = 12;
        let mut walk_name = |pos: &mut usize| {
            loop {
                let b = wire[*pos];
                if b & 0xc0 == 0xc0 {
                    let target = ((b as usize & 0x3f) << 8) | wire[*pos + 1] as usize;
                    pointers.push((*pos, target));
                    *pos += 2;
                    return;
                }
                *pos += 1 + b as usize;
                if b == 0 {
                    return;
                }
            }
        };
        for _ in &decoded.questions {
            walk_name(&mut pos);
            pos += 4;
        }
        for section in [&decoded.answers, &decoded.authorities, &decoded.additionals] {
            for _ in section {
                walk_name(&mut pos);
                pos += 8; // type, class, ttl
                let rdlen = u16::from_be_bytes([wire[pos], wire[pos + 1]]) as usize;
                pos += 2 + rdlen; // rdata may hold names; outer walk suffices
            }
        }
        pointers
    }

    #[test]
    fn pointer_targets_always_precede_their_position() {
        let wire = encode(&sample_response());
        let pointers = collect_pointers(&wire);
        assert!(!pointers.is_empty(), "sample must actually compress");
        for (pos, target) in pointers {
            assert!(
                target < pos,
                "pointer at {pos} must point strictly backwards, got {target}"
            );
            assert!(target >= 12, "pointer into the header is nonsense");
        }
    }

    #[test]
    fn pointer_offset_limit_is_enforced_for_large_messages() {
        // Enough fat TXT records to push the buffer far past 0x3FFF, with
        // compressible owner names sprinkled throughout. Labels written
        // beyond the limit must never become pointer targets.
        let q = Message::query(3, name("big.test"), RecordType::TXT);
        let mut m = Message::respond_to(&q);
        let filler = "f".repeat(250);
        for i in 0..120 {
            m = m
                .with_answer(Record::new(
                    name(&format!("r{i}.pad.big.test")),
                    60,
                    RData::txt(&filler),
                ))
                .with_answer(Record::new(
                    name(&format!("r{i}.pad.big.test")),
                    60,
                    RData::A("192.0.2.7".parse().unwrap()),
                ));
        }
        let wire = encode(&m);
        assert!(
            wire.len() > MAX_POINTER_TARGET + 2,
            "message must outgrow the pointer window: {} bytes",
            wire.len()
        );
        let pointers = collect_pointers(&wire);
        assert!(!pointers.is_empty());
        for (pos, target) in &pointers {
            assert!(target < pos, "forward pointer at {pos} -> {target}");
            assert!(
                *target <= MAX_POINTER_TARGET,
                "pointer target {target} beyond the 14-bit window"
            );
        }
        // And the whole thing still round-trips.
        assert_eq!(decode(&wire).unwrap(), m);
    }
}
