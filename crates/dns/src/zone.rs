//! Static zone data with wildcard support.

use std::collections::BTreeMap;

use crate::name::Name;
use crate::rdata::{RData, Record, RecordType, Soa};

/// A static DNS zone: an origin plus owner-name → record sets.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    soa: Soa,
    records: BTreeMap<Name, Vec<Record>>,
}

/// Result of looking a name up in a zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// Records of the requested type at the name (possibly via wildcard).
    Records(Vec<Record>),
    /// The name exists but holds no records of the requested type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
    /// The name exists and is an alias; the CNAME record is returned and
    /// resolution should continue at its target.
    Cname(Record),
    /// The name falls under a zone cut: resolution must continue at the
    /// delegated nameservers (RFC 1034 §4.2.1).
    Delegation {
        /// The NS records at the cut.
        ns: Vec<Record>,
        /// Glue address records for the nameservers, where present.
        glue: Vec<Record>,
    },
}

impl Zone {
    /// The zone origin.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// The zone's SOA record (owned by the origin).
    pub fn soa_record(&self) -> Record {
        Record::new(self.origin.clone(), self.soa.minimum, RData::Soa(self.soa.clone()))
    }

    /// Whether `name` falls inside this zone.
    pub fn contains(&self, name: &Name) -> bool {
        name.is_subdomain_of(&self.origin)
    }

    /// Look up `name`/`rtype`, applying wildcard synthesis per RFC 1034 §4.3.2
    /// (simplified: a `*` label directly under any existing node).
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> ZoneAnswer {
        if !self.contains(name) {
            return ZoneAnswer::NxDomain;
        }
        // Zone cuts: NS records at any node strictly below the origin and
        // at-or-above the queried name delegate the subtree away (unless
        // the query is for the NS records of the cut itself).
        let mut cut = name.clone();
        while cut.label_count() > self.origin.label_count() {
            if let Some(records) = self.records.get(&cut) {
                let ns: Vec<Record> = records
                    .iter()
                    .filter(|r| r.record_type() == RecordType::NS)
                    .cloned()
                    .collect();
                let ns_of_cut_itself = cut == *name && rtype == RecordType::NS;
                if !ns.is_empty() && !ns_of_cut_itself {
                    let glue = self.glue_for(&ns);
                    return ZoneAnswer::Delegation { ns, glue };
                }
            }
            cut = cut.parent();
        }
        if let Some(records) = self.records.get(name) {
            return Self::select(records, name, rtype);
        }
        // Wildcard: replace the leftmost label(s) with `*` at each depth.
        let mut candidate = name.clone();
        while candidate.label_count() > self.origin.label_count() {
            let parent = candidate.parent();
            if let Ok(star) = parent.child("*") {
                if let Some(records) = self.records.get(&star) {
                    let mut answer = Self::select(records, name, rtype);
                    // Synthesised records take the queried owner name.
                    if let ZoneAnswer::Records(ref mut list) = answer {
                        for r in list {
                            r.name = name.clone();
                        }
                    }
                    if let ZoneAnswer::Cname(ref mut r) = answer {
                        r.name = name.clone();
                    }
                    return answer;
                }
            }
            // An existing node on the path means the name is an empty
            // non-terminal's sibling, not NXDOMAIN territory... keep walking.
            candidate = parent;
        }
        ZoneAnswer::NxDomain
    }

    /// Address records for delegated nameservers that live in this zone.
    fn glue_for(&self, ns: &[Record]) -> Vec<Record> {
        let mut glue = Vec::new();
        for record in ns {
            if let RData::Ns(host) = &record.rdata {
                if let Some(records) = self.records.get(host) {
                    glue.extend(
                        records
                            .iter()
                            .filter(|r| r.record_type().is_address())
                            .cloned(),
                    );
                }
            }
        }
        glue
    }

    fn select(records: &[Record], _name: &Name, rtype: RecordType) -> ZoneAnswer {
        let cname = records
            .iter()
            .find(|r| r.record_type() == RecordType::CNAME);
        if let Some(alias) = cname {
            if rtype != RecordType::CNAME {
                return ZoneAnswer::Cname(alias.clone());
            }
        }
        let matching: Vec<Record> = records
            .iter()
            .filter(|r| r.record_type() == rtype)
            .cloned()
            .collect();
        if matching.is_empty() {
            ZoneAnswer::NoData
        } else {
            ZoneAnswer::Records(matching)
        }
    }

    /// Synthesise a root-origin zone from a flat record list.
    ///
    /// Conformance fixtures (generated and corpus cases) describe records
    /// spread over arbitrary unrelated domains; a zone rooted at `.`
    /// contains them all, and [`Zone::lookup`] then provides the
    /// wildcard/NODATA/NXDOMAIN semantics a real authoritative stack
    /// would — the distinction the evaluator's void-lookup accounting
    /// depends on.
    pub fn synthesize(records: impl IntoIterator<Item = Record>) -> Zone {
        let mut builder = ZoneBuilder::new(Name::root());
        for record in records {
            builder = builder.record(record);
        }
        builder.build()
    }

    /// Iterate over all records in the zone.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.values().flatten()
    }

    /// Number of owner names in the zone.
    pub fn node_count(&self) -> usize {
        self.records.len()
    }
}

/// Builder for [`Zone`].
pub struct ZoneBuilder {
    origin: Name,
    soa: Soa,
    records: BTreeMap<Name, Vec<Record>>,
}

impl ZoneBuilder {
    /// Start a zone at `origin` with a default SOA.
    pub fn new(origin: Name) -> ZoneBuilder {
        let soa = Soa {
            mname: origin.child("ns1").unwrap_or_else(|_| origin.clone()),
            rname: origin
                .child("hostmaster")
                .unwrap_or_else(|_| origin.clone()),
            serial: 20_211_011, // 2021-10-11
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        };
        ZoneBuilder {
            origin,
            soa,
            records: BTreeMap::new(),
        }
    }

    /// Override the SOA.
    pub fn soa(mut self, soa: Soa) -> ZoneBuilder {
        self.soa = soa;
        self
    }

    /// Add a record. The owner name must be inside the zone; out-of-zone
    /// records are rejected with a panic because they indicate a programming
    /// error in world construction, not a runtime condition.
    pub fn record(mut self, record: Record) -> ZoneBuilder {
        assert!(
            record.name.is_subdomain_of(&self.origin),
            "record {} outside zone {}",
            record.name,
            self.origin
        );
        self.records.entry(record.name.clone()).or_default().push(record);
        self
    }

    /// Convenience: add an A record for `name`.
    pub fn a(self, name: &Name, ttl: u32, ip: std::net::Ipv4Addr) -> ZoneBuilder {
        self.record(Record::new(name.clone(), ttl, RData::A(ip)))
    }

    /// Convenience: add a TXT record for `name`.
    pub fn txt(self, name: &Name, ttl: u32, content: &str) -> ZoneBuilder {
        self.record(Record::new(name.clone(), ttl, RData::txt(content)))
    }

    /// Convenience: add an MX record for `name`.
    pub fn mx(self, name: &Name, ttl: u32, preference: u16, exchange: &Name) -> ZoneBuilder {
        self.record(Record::new(
            name.clone(),
            ttl,
            RData::Mx {
                preference,
                exchange: exchange.clone(),
            },
        ))
    }

    /// Finish the zone.
    pub fn build(self) -> Zone {
        Zone {
            origin: self.origin,
            soa: self.soa,
            records: self.records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn synthesized_root_zone_holds_unrelated_domains() {
        let zone = Zone::synthesize([
            Record::new(n("example.com"), 300, RData::txt("v=spf1 -all")),
            Record::new(n("other.org"), 300, RData::A(Ipv4Addr::new(192, 0, 2, 1))),
        ]);
        assert!(zone.origin().is_root());
        assert!(matches!(
            zone.lookup(&n("example.com"), RecordType::TXT),
            ZoneAnswer::Records(_)
        ));
        assert!(matches!(
            zone.lookup(&n("other.org"), RecordType::A),
            ZoneAnswer::Records(_)
        ));
        // NODATA vs NXDOMAIN survives synthesis — the evaluator's
        // void-lookup accounting depends on the distinction.
        assert_eq!(
            zone.lookup(&n("other.org"), RecordType::TXT),
            ZoneAnswer::NoData
        );
        assert_eq!(
            zone.lookup(&n("missing.test"), RecordType::A),
            ZoneAnswer::NxDomain
        );
    }

    fn sample_zone() -> Zone {
        ZoneBuilder::new(n("example.com"))
            .a(&n("example.com"), 300, Ipv4Addr::new(192, 0, 2, 1))
            .mx(&n("example.com"), 300, 10, &n("mx.example.com"))
            .a(&n("mx.example.com"), 300, Ipv4Addr::new(192, 0, 2, 25))
            .txt(&n("example.com"), 300, "v=spf1 mx -all")
            .record(Record::new(
                n("www.example.com"),
                300,
                RData::Cname(n("example.com")),
            ))
            .a(&n("*.dyn.example.com"), 60, Ipv4Addr::new(192, 0, 2, 99))
            .build()
    }

    #[test]
    fn exact_lookup() {
        let zone = sample_zone();
        match zone.lookup(&n("example.com"), RecordType::MX) {
            ZoneAnswer::Records(rs) => assert_eq!(rs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nodata_vs_nxdomain() {
        let zone = sample_zone();
        assert_eq!(
            zone.lookup(&n("example.com"), RecordType::AAAA),
            ZoneAnswer::NoData
        );
        assert_eq!(
            zone.lookup(&n("missing.example.com"), RecordType::A),
            ZoneAnswer::NxDomain
        );
        assert_eq!(
            zone.lookup(&n("other.org"), RecordType::A),
            ZoneAnswer::NxDomain
        );
    }

    #[test]
    fn cname_is_returned_for_other_types() {
        let zone = sample_zone();
        match zone.lookup(&n("www.example.com"), RecordType::A) {
            ZoneAnswer::Cname(r) => {
                assert_eq!(r.rdata, RData::Cname(n("example.com")));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Asking for the CNAME itself returns it as a record.
        match zone.lookup(&n("www.example.com"), RecordType::CNAME) {
            ZoneAnswer::Records(rs) => assert_eq!(rs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_synthesis_takes_query_name() {
        let zone = sample_zone();
        match zone.lookup(&n("abc123.dyn.example.com"), RecordType::A) {
            ZoneAnswer::Records(rs) => {
                assert_eq!(rs.len(), 1);
                assert_eq!(rs[0].name, n("abc123.dyn.example.com"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_insensitive_lookup() {
        let zone = sample_zone();
        assert!(matches!(
            zone.lookup(&n("EXAMPLE.COM"), RecordType::A),
            ZoneAnswer::Records(_)
        ));
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn out_of_zone_record_panics() {
        let _ = ZoneBuilder::new(n("example.com")).a(
            &n("other.org"),
            60,
            Ipv4Addr::new(192, 0, 2, 1),
        );
    }

    #[test]
    fn delegations_are_detected_below_zone_cuts() {
        let zone = ZoneBuilder::new(n("com"))
            .record(Record::new(n("example.com"), 3600, RData::Ns(n("ns1.example.com"))))
            .a(&n("ns1.example.com"), 3600, Ipv4Addr::new(192, 0, 2, 53))
            .a(&n("com"), 300, Ipv4Addr::new(192, 0, 2, 1))
            .build();
        // A name below the cut refers.
        match zone.lookup(&n("mail.example.com"), RecordType::A) {
            ZoneAnswer::Delegation { ns, glue } => {
                assert_eq!(ns.len(), 1);
                assert_eq!(glue.len(), 1, "in-zone glue is attached");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The cut itself refers for non-NS queries...
        assert!(matches!(
            zone.lookup(&n("example.com"), RecordType::A),
            ZoneAnswer::Delegation { .. }
        ));
        // ... but answers NS queries for the cut directly.
        assert!(matches!(
            zone.lookup(&n("example.com"), RecordType::NS),
            ZoneAnswer::Records(_)
        ));
        // Data at the origin is unaffected.
        assert!(matches!(
            zone.lookup(&n("com"), RecordType::A),
            ZoneAnswer::Records(_)
        ));
    }

    #[test]
    fn soa_record_is_at_origin() {
        let zone = sample_zone();
        let soa = zone.soa_record();
        assert_eq!(soa.name, n("example.com"));
        assert_eq!(soa.record_type(), RecordType::SOA);
    }
}
