//! The shared, timestamped query log.
//!
//! The paper's classifier never sees the probed MTA directly — it sees the
//! queries the MTA's SPF validator sends to the measurement DNS server.
//! [`QueryLog`] is that server's log: every query is recorded with its
//! source address and simulated arrival time, and the prober later filters
//! by the unique `<id>.<suite>` labels embedded in the queried names.

use std::net::IpAddr;
use std::sync::Arc;

use parking_lot::Mutex;

use spfail_netsim::SimTime;

use crate::name::Name;
use crate::rdata::RecordType;

/// One logged query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// Simulated arrival time.
    pub at: SimTime,
    /// Source address of the query (the resolver the MTA used; for this
    /// simulation, the MTA itself).
    pub source: IpAddr,
    /// The queried name, exactly as received.
    pub qname: Name,
    /// The queried type.
    pub qtype: RecordType,
}

/// A shared, append-only query log. Clones observe the same log.
#[derive(Debug, Clone, Default)]
pub struct QueryLog {
    entries: Arc<Mutex<Vec<QueryLogEntry>>>,
}

impl QueryLog {
    /// An empty log.
    pub fn new() -> QueryLog {
        QueryLog::default()
    }

    /// Append an entry.
    pub fn record(&self, entry: QueryLogEntry) {
        self.entries.lock().push(entry);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Snapshot of all entries.
    pub fn snapshot(&self) -> Vec<QueryLogEntry> {
        self.entries.lock().clone()
    }

    /// Entries whose queried name contains `label` as one of its labels
    /// (case-insensitively) — the lookup pattern for probe ids.
    pub fn entries_with_label(&self, label: &str) -> Vec<QueryLogEntry> {
        self.entries
            .lock()
            .iter()
            .filter(|e| e.qname.labels().any(|l| l.eq_ignore_ascii_case(label)))
            .cloned()
            .collect()
    }

    /// Entries under `suffix`, e.g. all queries into the measurement zone.
    pub fn entries_under(&self, suffix: &Name) -> Vec<QueryLogEntry> {
        self.entries
            .lock()
            .iter()
            .filter(|e| e.qname.is_subdomain_of(suffix))
            .cloned()
            .collect()
    }

    /// Entries appended at or after index `start` — probes record the log
    /// length before the exchange and read back only their own window,
    /// keeping classification O(probe) instead of O(campaign).
    pub fn entries_from(&self, start: usize) -> Vec<QueryLogEntry> {
        let entries = self.entries.lock();
        entries.get(start..).map(<[QueryLogEntry]>::to_vec).unwrap_or_default()
    }

    /// Drop all entries recorded before `cutoff`; returns how many were
    /// dropped. Long campaigns call this between rounds to bound memory.
    pub fn prune_before(&self, cutoff: SimTime) -> usize {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|e| e.at >= cutoff);
        before - entries.len()
    }

    /// Bulk-append entries (used when folding shard logs together).
    pub fn extend(&self, entries: Vec<QueryLogEntry>) {
        self.entries.lock().extend(entries);
    }

    /// Clear the log entirely.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Merge several logs into one, ordered by simulated arrival time.
    ///
    /// The sort is stable, so entries with equal timestamps keep the
    /// order of the input logs — passing shard logs in canonical shard
    /// order therefore yields the same merged log on every run,
    /// regardless of the wall-clock interleaving of the shard workers.
    pub fn merged<'a>(logs: impl IntoIterator<Item = &'a QueryLog>) -> QueryLog {
        let mut entries: Vec<QueryLogEntry> =
            logs.into_iter().flat_map(QueryLog::snapshot).collect();
        entries.sort_by_key(|e| e.at);
        let merged = QueryLog::new();
        merged.extend(entries);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_netsim::SimDuration;

    fn entry(at_secs: u64, qname: &str) -> QueryLogEntry {
        QueryLogEntry {
            at: SimTime::EPOCH + SimDuration::from_secs(at_secs),
            source: "192.0.2.10".parse().unwrap(),
            qname: Name::parse(qname).unwrap(),
            qtype: RecordType::A,
        }
    }

    #[test]
    fn clones_share_entries() {
        let log = QueryLog::new();
        let log2 = log.clone();
        log.record(entry(1, "a.test"));
        assert_eq!(log2.len(), 1);
    }

    #[test]
    fn filter_by_label_is_case_insensitive() {
        let log = QueryLog::new();
        log.record(entry(1, "com.com.example.K7Q2.suite1.spf-test.dns-lab.org"));
        log.record(entry(2, "b.other.suite1.spf-test.dns-lab.org"));
        assert_eq!(log.entries_with_label("k7q2").len(), 1);
        assert_eq!(log.entries_with_label("missing").len(), 0);
    }

    #[test]
    fn filter_by_suffix() {
        let log = QueryLog::new();
        log.record(entry(1, "x.spf-test.dns-lab.org"));
        log.record(entry(2, "example.com"));
        let zone = Name::parse("spf-test.dns-lab.org").unwrap();
        assert_eq!(log.entries_under(&zone).len(), 1);
    }

    #[test]
    fn merged_orders_by_time_and_is_stable_on_ties() {
        let a = QueryLog::new();
        a.record(entry(1, "a1.test"));
        a.record(entry(5, "tie-from-a.test"));
        let b = QueryLog::new();
        b.record(entry(3, "b1.test"));
        b.record(entry(5, "tie-from-b.test"));
        let merged = QueryLog::merged([&a, &b]);
        let names: Vec<String> =
            merged.snapshot().iter().map(|e| e.qname.to_ascii()).collect();
        assert_eq!(
            names,
            ["a1.test", "b1.test", "tie-from-a.test", "tie-from-b.test"]
        );
        // Inputs are untouched.
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn prune_before_drops_old_entries() {
        let log = QueryLog::new();
        log.record(entry(1, "a.test"));
        log.record(entry(100, "b.test"));
        let dropped = log.prune_before(SimTime::EPOCH + SimDuration::from_secs(50));
        assert_eq!(dropped, 1);
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(log.is_empty());
    }
}
