//! libpcap capture of the simulated DNS traffic.
//!
//! The measurement's authoritative server is, in effect, running tcpdump:
//! every probe-elicited query lands there, and inspecting those packets in
//! Wireshark is the most convincing way to *show* the vulnerability
//! fingerprint. [`PcapWriter`] produces a standard little-endian pcap
//! stream (LINKTYPE_RAW, so each packet is a bare IPv4 datagram carrying
//! UDP/53), with timestamps taken from the simulated clock.
//!
//! Attach a shared [`PcapSink`] to an [`crate::SpfTestAuthority`] and every
//! query/response exchange it serves is captured.

use std::net::Ipv4Addr;
use std::sync::Arc;

use parking_lot::Mutex;

use spfail_netsim::SimTime;

use crate::message::Message;
use crate::wire;

/// pcap global-header magic, microsecond timestamps, little-endian.
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets begin with an IPv4/IPv6 header.
const LINKTYPE_RAW: u32 = 101;
/// The DNS port.
const DNS_PORT: u16 = 53;

/// Serialises DNS exchanges into the libpcap format.
#[derive(Debug)]
pub struct PcapWriter {
    buf: Vec<u8>,
    packets: usize,
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PcapWriter {
    /// A writer with the global header already emitted.
    pub fn new() -> PcapWriter {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
        buf.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        PcapWriter { buf, packets: 0 }
    }

    /// Record one query/response exchange: two packets, client→server and
    /// server→client, both stamped `at` (the response one tick later).
    pub fn record_exchange(
        &mut self,
        at: SimTime,
        client: Ipv4Addr,
        server: Ipv4Addr,
        query: &Message,
        response: &Message,
    ) {
        let client_port = 32_768 + (query.header.id | 1);
        self.packet(at, client, client_port, server, DNS_PORT, &wire::encode(query));
        let reply_at = SimTime::from_micros(at.as_micros() + 1);
        self.packet(
            reply_at,
            server,
            DNS_PORT,
            client,
            client_port,
            &wire::encode(response),
        );
    }

    fn packet(
        &mut self,
        at: SimTime,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        payload: &[u8],
    ) {
        let udp_len = 8 + payload.len();
        let ip_len = 20 + udp_len;

        // Record header.
        let micros = at.as_micros();
        self.buf
            .extend_from_slice(&((micros / 1_000_000) as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&((micros % 1_000_000) as u32).to_le_bytes());
        self.buf.extend_from_slice(&(ip_len as u32).to_le_bytes());
        self.buf.extend_from_slice(&(ip_len as u32).to_le_bytes());

        // IPv4 header (20 bytes, no options).
        let header_start = self.buf.len();
        self.buf.push(0x45); // version 4, IHL 5
        self.buf.push(0); // DSCP/ECN
        self.buf.extend_from_slice(&(ip_len as u16).to_be_bytes());
        self.buf
            .extend_from_slice(&(self.packets as u16).to_be_bytes()); // identification
        self.buf.extend_from_slice(&[0x40, 0]); // don't fragment
        self.buf.push(64); // TTL
        self.buf.push(17); // UDP
        self.buf.extend_from_slice(&[0, 0]); // checksum placeholder
        self.buf.extend_from_slice(&src.octets());
        self.buf.extend_from_slice(&dst.octets());
        let checksum = ipv4_checksum(&self.buf[header_start..header_start + 20]);
        self.buf[header_start + 10..header_start + 12]
            .copy_from_slice(&checksum.to_be_bytes());

        // UDP header. A zero checksum is legal for UDP over IPv4.
        self.buf.extend_from_slice(&sport.to_be_bytes());
        self.buf.extend_from_slice(&dport.to_be_bytes());
        self.buf.extend_from_slice(&(udp_len as u16).to_be_bytes());
        self.buf.extend_from_slice(&[0, 0]);

        self.buf.extend_from_slice(payload);
        self.packets += 1;
    }

    /// Number of packets captured so far.
    pub fn packet_count(&self) -> usize {
        self.packets
    }

    /// The capture bytes (global header + records).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write the capture to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, &self.buf)
    }
}

/// The RFC 1071 Internet checksum over an IPv4 header.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = u16::from_be_bytes([chunk[0], *chunk.get(1).unwrap_or(&0)]);
        sum += u32::from(word);
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A cheaply clonable shared capture sink.
#[derive(Debug, Clone, Default)]
pub struct PcapSink {
    writer: Arc<Mutex<PcapWriter>>,
}

impl PcapSink {
    /// A fresh sink.
    pub fn new() -> PcapSink {
        PcapSink::default()
    }

    /// Record an exchange (see [`PcapWriter::record_exchange`]).
    pub fn record_exchange(
        &self,
        at: SimTime,
        client: Ipv4Addr,
        server: Ipv4Addr,
        query: &Message,
        response: &Message,
    ) {
        self.writer
            .lock()
            .record_exchange(at, client, server, query, response);
    }

    /// Packets captured so far.
    pub fn packet_count(&self) -> usize {
        self.writer.lock().packet_count()
    }

    /// Snapshot the capture bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.writer.lock().as_bytes().to_vec()
    }

    /// Write the capture to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.writer.lock().write_to(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;
    use crate::rdata::{RData, Record, RecordType};

    fn sample_exchange() -> (Message, Message) {
        let qname = Name::parse("k7q2.s1.spf-test.dns-lab.org").unwrap();
        let query = Message::query(7, qname.clone(), RecordType::TXT);
        let response = Message::respond_to(&query).with_answer(Record::new(
            qname,
            60,
            RData::txt("v=spf1 -all"),
        ));
        (query, response)
    }

    #[test]
    fn global_header_shape() {
        let writer = PcapWriter::new();
        let bytes = writer.as_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), PCAP_MAGIC);
        assert_eq!(u16::from_le_bytes(bytes[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(bytes[6..8].try_into().unwrap()), 4);
        assert_eq!(
            u32::from_le_bytes(bytes[20..24].try_into().unwrap()),
            LINKTYPE_RAW
        );
    }

    #[test]
    fn exchange_produces_two_parsable_packets() {
        let mut writer = PcapWriter::new();
        let (query, response) = sample_exchange();
        let at = SimTime::from_micros(1_500_000);
        writer.record_exchange(
            at,
            Ipv4Addr::new(198, 51, 100, 9),
            Ipv4Addr::new(192, 0, 2, 53),
            &query,
            &response,
        );
        assert_eq!(writer.packet_count(), 2);

        // Walk the records and re-decode the DNS payloads.
        let bytes = writer.as_bytes();
        let mut offset = 24;
        let mut decoded = Vec::new();
        while offset < bytes.len() {
            let ts_sec = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
            let incl_len =
                u32::from_le_bytes(bytes[offset + 8..offset + 12].try_into().unwrap()) as usize;
            assert_eq!(ts_sec, 1, "timestamp comes from SimTime");
            let packet = &bytes[offset + 16..offset + 16 + incl_len];
            // IPv4 header sanity.
            assert_eq!(packet[0], 0x45);
            assert_eq!(packet[9], 17, "UDP");
            assert_eq!(
                ipv4_checksum(&packet[..20]),
                0,
                "checksum over a checksummed header folds to zero"
            );
            // UDP: one side must use port 53.
            let sport = u16::from_be_bytes([packet[20], packet[21]]);
            let dport = u16::from_be_bytes([packet[22], packet[23]]);
            assert!(sport == 53 || dport == 53);
            decoded.push(crate::wire::decode(&packet[28..]).expect("payload decodes"));
            offset += 16 + incl_len;
        }
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], query);
        assert_eq!(decoded[1], response);
    }

    #[test]
    fn sink_is_shared_across_clones() {
        let sink = PcapSink::new();
        let clone = sink.clone();
        let (query, response) = sample_exchange();
        sink.record_exchange(
            SimTime::EPOCH,
            Ipv4Addr::new(198, 51, 100, 9),
            Ipv4Addr::new(192, 0, 2, 53),
            &query,
            &response,
        );
        assert_eq!(clone.packet_count(), 2);
        assert!(clone.to_bytes().len() > 24);
    }

    #[test]
    fn checksum_known_vector() {
        // The classic example header from RFC 1071 discussions.
        let header: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(ipv4_checksum(&header), 0xb861);
    }
}
