//! A master-file (zone file) parser — the RFC 1035 §5 textual format.
//!
//! Supports the subset a mail-measurement needs: `$ORIGIN`, `$TTL`,
//! relative and absolute owner names, `@`, comments, quoted TXT strings
//! (with concatenation), and the record types in [`RData`]. Directives
//! like `$INCLUDE` and multi-line parentheses are intentionally out of
//! scope.
//!
//! Note that leading whitespace is significant (it means "inherit the
//! previous owner"), exactly as in BIND master files:
//!
//! ```
//! use spfail_dns::zonefile::parse_zone;
//!
//! let zone = parse_zone(concat!(
//!     "$ORIGIN example.com.\n",
//!     "$TTL 300\n",
//!     "@        IN MX  10 mail\n",
//!     "mail     IN A   192.0.2.25\n",
//!     "@        IN TXT \"v=spf1 mx -all\"\n",
//! ))
//! .unwrap();
//! assert_eq!(zone.origin().to_ascii(), "example.com");
//! assert_eq!(zone.records().count(), 3);
//! ```

use std::fmt;

use crate::name::{Name, NameError};
use crate::rdata::{RData, Record, Soa};
use crate::zone::{Zone, ZoneBuilder};

/// Errors parsing a zone file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneFileError {
    /// No `$ORIGIN` and no absolute owner to anchor the zone.
    NoOrigin,
    /// A malformed line, with its 1-based line number and a message.
    Bad {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ZoneFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneFileError::NoOrigin => write!(f, "zone file has no $ORIGIN"),
            ZoneFileError::Bad { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ZoneFileError {}

fn bad(line: usize, message: impl Into<String>) -> ZoneFileError {
    ZoneFileError::Bad {
        line,
        message: message.into(),
    }
}

fn name_err(line: usize, e: NameError) -> ZoneFileError {
    bad(line, format!("bad name: {e}"))
}

/// Split a line into fields, honouring double-quoted strings and `;`
/// comments.
fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if in_quotes {
                    // Closing quote: push even if empty (TXT "" is valid).
                    tokens.push(format!("\"{current}"));
                    current.clear();
                    in_quotes = false;
                } else {
                    if !current.is_empty() {
                        tokens.push(std::mem::take(&mut current));
                    }
                    in_quotes = true;
                }
            }
            '\\' if in_quotes => {
                if let Some(&next) = chars.peek() {
                    current.push(next);
                    chars.next();
                }
            }
            ';' if !in_quotes => break,
            c if c.is_whitespace() && !in_quotes => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Resolve an owner-name token against the origin.
fn resolve_name(token: &str, origin: &Name, line: usize) -> Result<Name, ZoneFileError> {
    if token == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = token.strip_suffix('.') {
        return Name::parse(absolute).map_err(|e| name_err(line, e));
    }
    let relative = Name::parse(token).map_err(|e| name_err(line, e))?;
    relative.concat(origin).map_err(|e| name_err(line, e))
}

/// Parse zone-file text into a [`Zone`].
pub fn parse_zone(text: &str) -> Result<Zone, ZoneFileError> {
    let mut origin: Option<Name> = None;
    let mut default_ttl: u32 = 3600;
    let mut last_owner: Option<Name> = None;
    let mut records: Vec<Record> = Vec::new();
    let mut soa: Option<Soa> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let starts_with_space = raw_line.starts_with([' ', '\t']);
        let tokens = tokenize(raw_line);
        if tokens.is_empty() {
            continue;
        }

        // Directives.
        if tokens[0] == "$ORIGIN" {
            let arg = tokens
                .get(1)
                .ok_or_else(|| bad(line_no, "$ORIGIN needs a name"))?;
            let name = arg.strip_suffix('.').unwrap_or(arg);
            origin = Some(Name::parse(name).map_err(|e| name_err(line_no, e))?);
            continue;
        }
        if tokens[0] == "$TTL" {
            default_ttl = tokens
                .get(1)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad(line_no, "$TTL needs a number"))?;
            continue;
        }
        if tokens[0].starts_with('$') {
            return Err(bad(line_no, format!("unsupported directive {}", tokens[0])));
        }

        let origin_name = origin.clone().ok_or(ZoneFileError::NoOrigin)?;

        // Owner: either inherited (leading whitespace) or the first field.
        let mut fields = tokens.as_slice();
        let owner = if starts_with_space {
            last_owner
                .clone()
                .ok_or_else(|| bad(line_no, "no previous owner to inherit"))?
        } else {
            let owner = resolve_name(&tokens[0], &origin_name, line_no)?;
            fields = &tokens[1..];
            owner
        };
        last_owner = Some(owner.clone());

        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        let mut cursor = 0;
        for _ in 0..2 {
            match fields.get(cursor).map(String::as_str) {
                Some(token) if token.chars().all(|c| c.is_ascii_digit()) => {
                    ttl = token.parse().map_err(|_| bad(line_no, "bad TTL"))?;
                    cursor += 1;
                }
                Some("IN") | Some("in") => cursor += 1,
                _ => break,
            }
        }

        let rtype_token = fields
            .get(cursor)
            .ok_or_else(|| bad(line_no, "missing record type"))?;
        let data = &fields[cursor + 1..];
        let unquote = |s: &String| s.strip_prefix('"').map(str::to_string);

        let rdata = match rtype_token.to_ascii_uppercase().as_str() {
            "A" => {
                let ip = data
                    .first()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(line_no, "A needs an IPv4 address"))?;
                RData::A(ip)
            }
            "AAAA" => {
                let ip = data
                    .first()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(line_no, "AAAA needs an IPv6 address"))?;
                RData::Aaaa(ip)
            }
            "MX" => {
                let preference = data
                    .first()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(line_no, "MX needs a preference"))?;
                let exchange = data
                    .get(1)
                    .ok_or_else(|| bad(line_no, "MX needs an exchange"))?;
                RData::Mx {
                    preference,
                    exchange: resolve_name(exchange, &origin_name, line_no)?,
                }
            }
            "TXT" => {
                let parts: Vec<String> = data.iter().filter_map(unquote).collect();
                if parts.is_empty() {
                    return Err(bad(line_no, "TXT needs at least one quoted string"));
                }
                RData::Txt(parts)
            }
            "NS" => {
                let host = data.first().ok_or_else(|| bad(line_no, "NS needs a host"))?;
                RData::Ns(resolve_name(host, &origin_name, line_no)?)
            }
            "CNAME" => {
                let target = data
                    .first()
                    .ok_or_else(|| bad(line_no, "CNAME needs a target"))?;
                RData::Cname(resolve_name(target, &origin_name, line_no)?)
            }
            "PTR" => {
                let target = data
                    .first()
                    .ok_or_else(|| bad(line_no, "PTR needs a target"))?;
                RData::Ptr(resolve_name(target, &origin_name, line_no)?)
            }
            "SOA" => {
                if data.len() < 7 {
                    return Err(bad(line_no, "SOA needs mname rname and 5 numbers"));
                }
                let number = |i: usize| -> Result<u32, ZoneFileError> {
                    data[i]
                        .parse()
                        .map_err(|_| bad(line_no, format!("bad SOA field {}", data[i])))
                };
                let parsed = Soa {
                    mname: resolve_name(&data[0], &origin_name, line_no)?,
                    rname: resolve_name(&data[1], &origin_name, line_no)?,
                    serial: number(2)?,
                    refresh: number(3)?,
                    retry: number(4)?,
                    expire: number(5)?,
                    minimum: number(6)?,
                };
                soa = Some(parsed.clone());
                RData::Soa(parsed)
            }
            other => return Err(bad(line_no, format!("unsupported type {other}"))),
        };
        records.push(Record::new(owner, ttl, rdata));
    }

    let origin = origin.ok_or(ZoneFileError::NoOrigin)?;
    let mut builder = ZoneBuilder::new(origin);
    if let Some(soa) = soa {
        builder = builder.soa(soa);
    }
    for record in records {
        builder = builder.record(record);
    }
    Ok(builder.build())
}

/// Render a [`Zone`] back into master-file text that [`parse_zone`]
/// accepts — absolute owner names throughout, so no `$ORIGIN`-relativity
/// ambiguity survives the round trip.
pub fn render_zone(zone: &Zone) -> String {
    let mut out = format!("$ORIGIN {}.\n", zone.origin().to_ascii());
    let quote = |s: &str| format!("\"{}\"", s.replace('\\', "\\\\").replace('\"', "\\\""));
    for record in zone.records() {
        let owner = format!("{}.", record.name.to_ascii());
        let ttl = record.ttl;
        let rhs = match &record.rdata {
            RData::A(ip) => format!("A     {ip}"),
            RData::Aaaa(ip) => format!("AAAA  {ip}"),
            RData::Mx {
                preference,
                exchange,
            } => format!("MX    {preference} {}.", exchange.to_ascii()),
            RData::Txt(parts) => format!(
                "TXT   {}",
                parts.iter().map(|p| quote(p)).collect::<Vec<_>>().join(" ")
            ),
            RData::Ns(n) => format!("NS    {}.", n.to_ascii()),
            RData::Cname(n) => format!("CNAME {}.", n.to_ascii()),
            RData::Ptr(n) => format!("PTR   {}.", n.to_ascii()),
            RData::Soa(soa) => format!(
                "SOA   {}. {}. {} {} {} {} {}",
                soa.mname.to_ascii(),
                soa.rname.to_ascii(),
                soa.serial,
                soa.refresh,
                soa.retry,
                soa.expire,
                soa.minimum
            ),
            RData::Opaque(_) => return out, // not representable; skip
        };
        out.push_str(&format!("{owner} {ttl} IN {rhs}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::RecordType;
    use crate::zone::ZoneAnswer;
    use std::net::Ipv4Addr;

    const SAMPLE: &str = r#"
; the RFC 1035 example, trimmed
$ORIGIN example.com.
$TTL 3600
@        IN SOA   ns1 hostmaster 2021101101 7200 3600 1209600 300
@        IN NS    ns1
@        IN MX    10 mail
@        IN TXT   "v=spf1 mx -all"
ns1      IN A     192.0.2.53
mail 300 IN A     192.0.2.25
www      IN CNAME @
ext      IN MX    20 backup.example.net.
"#;

    #[test]
    fn parses_the_sample_zone() {
        let zone = parse_zone(SAMPLE).unwrap();
        assert_eq!(zone.origin().to_ascii(), "example.com");
        assert_eq!(zone.records().count(), 8);
        let mail = Name::parse("mail.example.com").unwrap();
        match zone.lookup(&mail, RecordType::A) {
            ZoneAnswer::Records(rs) => {
                assert_eq!(rs[0].ttl, 300, "inline TTL overrides $TTL");
                assert_eq!(rs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 25)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn at_and_relative_names_resolve_against_origin() {
        let zone = parse_zone(SAMPLE).unwrap();
        let apex = Name::parse("example.com").unwrap();
        match zone.lookup(&apex, RecordType::MX) {
            ZoneAnswer::Records(rs) => match &rs[0].rdata {
                RData::Mx { exchange, .. } => {
                    assert_eq!(exchange.to_ascii(), "mail.example.com")
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // An absolute exchange (trailing dot) is NOT origin-qualified.
        let ext = Name::parse("ext.example.com").unwrap();
        match zone.lookup(&ext, RecordType::MX) {
            ZoneAnswer::Records(rs) => match &rs[0].rdata {
                RData::Mx { exchange, .. } => {
                    assert_eq!(exchange.to_ascii(), "backup.example.net")
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn txt_quoting_and_concatenation() {
        let zone = parse_zone(
            r#"$ORIGIN t.test.
@ IN TXT "v=spf1 " "ip4:192.0.2.0/24" " -all"
@ IN TXT "quote \" inside; not a comment"
"#,
        )
        .unwrap();
        let apex = Name::parse("t.test").unwrap();
        match zone.lookup(&apex, RecordType::TXT) {
            ZoneAnswer::Records(rs) => {
                assert_eq!(
                    rs[0].rdata.txt_joined().unwrap(),
                    "v=spf1 ip4:192.0.2.0/24 -all"
                );
                assert_eq!(
                    rs[1].rdata.txt_joined().unwrap(),
                    "quote \" inside; not a comment"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn owner_inheritance_via_leading_whitespace() {
        let zone = parse_zone(
            "$ORIGIN i.test.\nhost IN A 192.0.2.1\n     IN A 192.0.2.2\n",
        )
        .unwrap();
        let host = Name::parse("host.i.test").unwrap();
        match zone.lookup(&host, RecordType::A) {
            ZoneAnswer::Records(rs) => assert_eq!(rs.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_are_stripped() {
        let zone = parse_zone(
            "; leading comment\n$ORIGIN c.test. ; trailing\n@ IN A 192.0.2.9 ; note\n",
        )
        .unwrap();
        assert_eq!(zone.records().count(), 1);
    }

    #[test]
    fn soa_is_adopted_by_the_zone() {
        let zone = parse_zone(SAMPLE).unwrap();
        let soa = zone.soa_record();
        match soa.rdata {
            RData::Soa(s) => {
                assert_eq!(s.serial, 2021101101);
                assert_eq!(s.mname.to_ascii(), "ns1.example.com");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_zone("$ORIGIN e.test.\n@ IN A not-an-ip\n").unwrap_err();
        assert_eq!(
            err,
            ZoneFileError::Bad {
                line: 2,
                message: "A needs an IPv4 address".into()
            }
        );
        assert_eq!(
            parse_zone("@ IN A 192.0.2.1\n").map(|_| ()),
            Err(ZoneFileError::NoOrigin)
        );
        assert!(matches!(
            parse_zone("$ORIGIN x.test.\n@ IN WKS whatever\n"),
            Err(ZoneFileError::Bad { line: 2, .. })
        ));
        assert!(matches!(
            parse_zone("$INCLUDE other.zone\n"),
            Err(ZoneFileError::Bad { line: 1, .. })
        ));
    }

    #[test]
    fn render_parse_round_trip() {
        let zone = parse_zone(SAMPLE).unwrap();
        let rendered = render_zone(&zone);
        let reparsed = parse_zone(&rendered).unwrap();
        assert_eq!(reparsed.origin(), zone.origin());
        let mut a: Vec<String> = zone.records().map(|r| r.to_string()).collect();
        let mut b: Vec<String> = reparsed.records().map(|r| r.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn aaaa_and_ptr_round_trip() {
        let zone = parse_zone(
            "$ORIGIN p.test.\nv6 IN AAAA 2001:db8::1\nrev IN PTR host.p.test.\n",
        )
        .unwrap();
        assert_eq!(zone.records().count(), 2);
    }
}
