//! DNS messages: headers, questions, and full query/response structures.

use std::fmt;

use crate::name::Name;
use crate::rdata::{Record, RecordClass, RecordType};

/// Operation codes. Only `Query` is used by the measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Opcode {
    /// Standard query.
    #[default]
    Query,
    /// Anything else, preserved by code point.
    Other(u8),
}

impl Opcode {
    /// The 4-bit code point.
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Other(code) => code & 0x0f,
        }
    }

    /// Construct from a 4-bit code point.
    pub fn from_code(code: u8) -> Opcode {
        match code & 0x0f {
            0 => Opcode::Query,
            other => Opcode::Other(other),
        }
    }
}

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused by policy.
    Refused,
    /// Anything else, preserved by code point.
    Other(u8),
}

impl Rcode {
    /// The 4-bit code point.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(code) => code & 0x0f,
        }
    }

    /// Construct from a 4-bit code point.
    pub fn from_code(code: u8) -> Rcode {
        match code & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Other(code) => write!(f, "RCODE{code}"),
        }
    }
}

/// A DNS message header (RFC 1035 §4.1.1), minus the section counts, which
/// are derived from the message body at encode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Transaction identifier.
    pub id: u16,
    /// `true` for responses.
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Truncated (response did not fit).
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: RecordType,
    /// Queried class.
    pub qclass: RecordClass,
}

impl Question {
    /// An `IN`-class question.
    pub fn new(name: Name, qtype: RecordType) -> Question {
        Question {
            name,
            qtype,
            qclass: RecordClass::In,
        }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} IN {}", self.name, self.qtype)
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    /// Header fields.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section.
    pub additionals: Vec<Record>,
}

impl Message {
    /// A standard recursive query for `name`/`qtype`.
    pub fn query(id: u16, name: Name, qtype: RecordType) -> Message {
        Message {
            header: Header {
                id,
                response: false,
                recursion_desired: true,
                ..Header::default()
            },
            questions: vec![Question::new(name, qtype)],
            ..Message::default()
        }
    }

    /// Start a response to `query`: copies the id, question, opcode and the
    /// recursion-desired flag, and sets the response and authoritative bits.
    pub fn respond_to(query: &Message) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                response: true,
                opcode: query.header.opcode,
                authoritative: true,
                recursion_desired: query.header.recursion_desired,
                ..Header::default()
            },
            questions: query.questions.clone(),
            ..Message::default()
        }
    }

    /// Set the response code, builder-style.
    pub fn with_rcode(mut self, rcode: Rcode) -> Message {
        self.header.rcode = rcode;
        self
    }

    /// Append an answer record, builder-style.
    pub fn with_answer(mut self, record: Record) -> Message {
        self.answers.push(record);
        self
    }

    /// Append an authority record, builder-style.
    pub fn with_authority(mut self, record: Record) -> Message {
        self.authorities.push(record);
        self
    }

    /// The first question, if any — the common case for this codebase.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Answer records matching `rtype`.
    pub fn answers_of_type(&self, rtype: RecordType) -> impl Iterator<Item = &Record> {
        self.answers
            .iter()
            .filter(move |r| r.record_type() == rtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::RData;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn opcode_and_rcode_round_trip() {
        for code in 0..16u8 {
            assert_eq!(Opcode::from_code(code).code(), code);
            assert_eq!(Rcode::from_code(code).code(), code);
        }
    }

    #[test]
    fn query_sets_expected_flags() {
        let q = Message::query(99, name("example.com"), RecordType::TXT);
        assert_eq!(q.header.id, 99);
        assert!(!q.header.response);
        assert!(q.header.recursion_desired);
        assert_eq!(q.question().unwrap().qtype, RecordType::TXT);
    }

    #[test]
    fn respond_to_copies_identity() {
        let q = Message::query(7, name("a.example"), RecordType::A);
        let r = Message::respond_to(&q)
            .with_rcode(Rcode::NxDomain)
            .with_answer(Record::new(
                name("a.example"),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, 1)),
            ));
        assert_eq!(r.header.id, 7);
        assert!(r.header.response);
        assert!(r.header.authoritative);
        assert!(r.header.recursion_desired);
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert_eq!(r.questions, q.questions);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn answers_of_type_filters() {
        let mut m = Message::default();
        m.answers.push(Record::new(
            name("x"),
            1,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        m.answers
            .push(Record::new(name("x"), 1, RData::txt("hello")));
        assert_eq!(m.answers_of_type(RecordType::A).count(), 1);
        assert_eq!(m.answers_of_type(RecordType::TXT).count(), 1);
        assert_eq!(m.answers_of_type(RecordType::MX).count(), 0);
    }

    #[test]
    fn rcode_display() {
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(Rcode::NoError.to_string(), "NOERROR");
    }
}
