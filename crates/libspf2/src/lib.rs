//! Emulation of libSPF2's macro expansion, including the two
//! vulnerabilities the paper discovered — CVE-2021-33912 and
//! CVE-2021-33913 — reproduced mechanistically over a simulated heap.
//!
//! The original bugs (paper §4.1) live in `SPF_record_expand_data`:
//!
//! 1. **URL-encoding `sprintf` overflow (CVE-2021-33912).** The encoding
//!    loop runs `sprintf(p_write, "%%%02x", *p_read)` on a `char*`. For
//!    bytes `0x80..=0xFF` the signed char sign-extends to a 32-bit value,
//!    so instead of the 4 bytes the author expected ("we know we're going
//!    to get 4 characters anyway") `sprintf` emits 10 — e.g. `-2` becomes
//!    `%fffffffe` — overflowing the allocation by 6 bytes per high byte.
//!
//! 2. **Buffer length reassignment (CVE-2021-33913).** When a macro
//!    specifies label *reversal*, the variable tracking the intended buffer
//!    length is overwritten with the (much smaller) length of the truncated
//!    portion. A subsequent URL-encoding pass allocates from the bogus
//!    length and then writes the full — and incorrectly *duplicated* —
//!    reversed expansion into it, overflowing by up to ~100 bytes.
//!
//! The second bug has a benign, *protocol-visible* side effect that makes
//! the paper's whole measurement possible: even without URL encoding the
//! truncation logic mangles the expansion, so `%{d1r}` with sender domain
//! `example.com` expands to `com.com.example` instead of `example`, and
//! the probed server queries `com.com.example.foo.com` — a fingerprint no
//! other implementation produces (§4.2).
//!
//! This crate models those code paths byte-for-byte over a [`MemSim`]
//! heap, so the overflows are *observable events* rather than narration:
//! an allocation has a size, every write is bounds-checked, and writes
//! past the end are recorded (and optionally fault the expansion, the
//! moral equivalent of a crash).
//!
//! [`variants`] additionally provides the merely *non-compliant* expander
//! behaviours the measurement observed in the wild (paper §7.9, Table 7):
//! implementations that skip reversal, skip truncation, skip expansion
//! entirely, and so on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expand;
pub mod memsim;
pub mod variants;

pub use expand::{LibSpf2Config, LibSpf2Expander, LibSpf2Version};
pub use memsim::{AllocId, MemSim, OverflowEvent};
pub use variants::{MacroBehavior, QuirkExpander};
