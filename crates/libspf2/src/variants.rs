//! Non-compliant macro-expansion behaviours observed in the wild.
//!
//! Paper §7.9 reports that ~6% of conclusively measured servers expanded
//! SPF macros *incorrectly but not in the libSPF2 pattern*: some never
//! expanded at all (querying the literal `%{d1r}`), some reversed without
//! truncating, some truncated without reversing, and some ignored the
//! transformers entirely. Each behaviour leaves a distinct query shape at
//! the measurement DNS server, so the classifier can tell them apart.
//!
//! [`QuirkExpander`] implements each behaviour behind the same
//! [`MacroExpander`] trait the compliant and vulnerable expanders use.

use spfail_spf::expand::{
    apply_transform, url_escape, CompliantExpander, ExpandError, MacroContext, MacroExpander,
};
use spfail_spf::macrostring::{MacroString, MacroToken, MacroTransform};

use crate::expand::LibSpf2Expander;

/// The space of macro-expansion behaviours the measurement distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MacroBehavior {
    /// Correct RFC 7208 expansion.
    Compliant,
    /// The vulnerable libSPF2 duplication fingerprint.
    VulnerableLibSpf2,
    /// Patched libSPF2 (compliant output, different implementation).
    PatchedLibSpf2,
    /// No expansion at all: the literal `%{d1r}` goes into the query.
    NoExpansion,
    /// Labels reversed but never truncated (`com.example`).
    ReverseNoTruncate,
    /// Labels truncated but never reversed (`com`).
    TruncateNoReverse,
    /// Transformers ignored wholesale: the raw value (`example.com`).
    IgnoreTransformers,
    /// Macros expand to the empty string (some filters blank them out).
    EmptyExpansion,
    /// Macro-bearing terms abort the whole evaluation (no A queries at
    /// all, only the TXT fetch is visible).
    MacroUnsupported,
}

impl MacroBehavior {
    /// Behaviours whose expansion differs from RFC 7208 output but that
    /// are not the vulnerable fingerprint — the paper's "other erroneous"
    /// bucket.
    pub fn is_erroneous_but_not_vulnerable(self) -> bool {
        matches!(
            self,
            MacroBehavior::NoExpansion
                | MacroBehavior::ReverseNoTruncate
                | MacroBehavior::TruncateNoReverse
                | MacroBehavior::IgnoreTransformers
                | MacroBehavior::EmptyExpansion
                | MacroBehavior::MacroUnsupported
        )
    }

    /// Whether this behaviour is the remotely detectable vulnerable one.
    pub fn is_vulnerable(self) -> bool {
        self == MacroBehavior::VulnerableLibSpf2
    }

    /// A stable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            MacroBehavior::Compliant => "rfc-compliant",
            MacroBehavior::VulnerableLibSpf2 => "vulnerable-libspf2",
            MacroBehavior::PatchedLibSpf2 => "patched-libspf2",
            MacroBehavior::NoExpansion => "no-expansion",
            MacroBehavior::ReverseNoTruncate => "reverse-no-truncate",
            MacroBehavior::TruncateNoReverse => "truncate-no-reverse",
            MacroBehavior::IgnoreTransformers => "ignore-transformers",
            MacroBehavior::EmptyExpansion => "empty-expansion",
            MacroBehavior::MacroUnsupported => "macro-unsupported",
        }
    }

    /// Build the expander implementing this behaviour.
    pub fn expander(self) -> Box<dyn MacroExpander> {
        match self {
            MacroBehavior::Compliant => Box::new(CompliantExpander),
            MacroBehavior::VulnerableLibSpf2 => Box::new(LibSpf2Expander::vulnerable()),
            MacroBehavior::PatchedLibSpf2 => Box::new(LibSpf2Expander::patched()),
            other => Box::new(QuirkExpander::new(other)),
        }
    }
}

/// An expander implementing one of the sloppy behaviours.
#[derive(Debug, Clone, Copy)]
pub struct QuirkExpander {
    behavior: MacroBehavior,
}

impl QuirkExpander {
    /// An expander for `behavior`. Panics on the behaviours that have
    /// dedicated implementations ([`MacroBehavior::expander`] routes those
    /// elsewhere).
    pub fn new(behavior: MacroBehavior) -> QuirkExpander {
        assert!(
            !matches!(
                behavior,
                MacroBehavior::Compliant
                    | MacroBehavior::VulnerableLibSpf2
                    | MacroBehavior::PatchedLibSpf2
            ),
            "behaviour {behavior:?} has a dedicated expander"
        );
        QuirkExpander { behavior }
    }

    fn expand_macro(
        &self,
        raw: &str,
        transform: &MacroTransform,
        escape: bool,
    ) -> Result<String, ExpandError> {
        let out = match self.behavior {
            MacroBehavior::ReverseNoTruncate => {
                // Honour reversal and delimiters; drop the digit count.
                let t = MacroTransform {
                    digits: None,
                    ..transform.clone()
                };
                apply_transform(raw, &t)
            }
            MacroBehavior::TruncateNoReverse => {
                // Honour the digit count; drop reversal.
                let t = MacroTransform {
                    reverse: false,
                    ..transform.clone()
                };
                apply_transform(raw, &t)
            }
            MacroBehavior::IgnoreTransformers => raw.to_string(),
            MacroBehavior::EmptyExpansion => String::new(),
            MacroBehavior::MacroUnsupported => {
                return Err(ExpandError::ImplementationFault(
                    "macros not supported".to_string(),
                ))
            }
            // NoExpansion never reaches here (handled at the token level).
            _ => unreachable!("handled in expand()"),
        };
        Ok(if escape { url_escape(&out) } else { out })
    }
}

impl MacroExpander for QuirkExpander {
    fn expand(
        &mut self,
        ms: &MacroString,
        ctx: &MacroContext,
        _in_exp: bool,
    ) -> Result<String, ExpandError> {
        if self.behavior == MacroBehavior::NoExpansion {
            // The implementation treats the macro text as literal data.
            return Ok(ms.source().to_string());
        }
        let mut out = String::new();
        // Reusable scratch for raw letter values, as in the other
        // expanders' hot paths.
        let mut raw = String::new();
        for token in ms.tokens() {
            match token {
                MacroToken::Literal(text) => out.push_str(text),
                MacroToken::Percent => out.push('%'),
                MacroToken::Space => out.push(' '),
                MacroToken::UrlSpace => out.push_str("%20"),
                MacroToken::Macro {
                    letter,
                    url_escape: escape,
                    transform,
                } => {
                    raw.clear();
                    ctx.write_raw_value(*letter, &mut raw);
                    out.push_str(&self.expand_macro(&raw, transform, *escape)?);
                }
            }
        }
        // Filters that blank out macros often leave a leading dot behind;
        // strip it so the result is still a queryable name.
        if self.behavior == MacroBehavior::EmptyExpansion {
            return Ok(out.trim_start_matches('.').to_string());
        }
        Ok(out)
    }

    fn describe(&self) -> &'static str {
        self.behavior.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MacroContext {
        MacroContext::new("user", "example.com", "192.0.2.3".parse().unwrap())
    }

    fn expand(behavior: MacroBehavior, s: &str) -> String {
        behavior
            .expander()
            .expand(&MacroString::parse(s).unwrap(), &ctx(), false)
            .unwrap()
    }

    /// Paper §4.2's behaviour table, extended to every variant: the same
    /// probe mechanism yields a distinct query name per implementation.
    #[test]
    fn all_behaviours_are_distinguishable() {
        let probe = "%{d1r}.foo.com";
        let outputs = [
            (MacroBehavior::Compliant, "example.foo.com"),
            (MacroBehavior::VulnerableLibSpf2, "com.com.example.foo.com"),
            (MacroBehavior::PatchedLibSpf2, "example.foo.com"),
            (MacroBehavior::NoExpansion, "%{d1r}.foo.com"),
            (MacroBehavior::ReverseNoTruncate, "com.example.foo.com"),
            (MacroBehavior::TruncateNoReverse, "com.foo.com"),
            (MacroBehavior::IgnoreTransformers, "example.com.foo.com"),
            (MacroBehavior::EmptyExpansion, "foo.com"),
        ];
        for (behavior, expected) in outputs {
            assert_eq!(expand(behavior, probe), expected, "{behavior:?}");
        }
        // Modulo patched-vs-compliant (identical on the wire by design),
        // all outputs are pairwise distinct.
        let mut seen: Vec<String> = outputs
            .iter()
            .filter(|(b, _)| *b != MacroBehavior::PatchedLibSpf2)
            .map(|(_, o)| o.to_string())
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn macro_unsupported_faults() {
        let err = MacroBehavior::MacroUnsupported
            .expander()
            .expand(&MacroString::parse("%{d1r}.x").unwrap(), &ctx(), false)
            .unwrap_err();
        assert!(matches!(err, ExpandError::ImplementationFault(_)));
        // ... but pure literals still work.
        let ok = MacroBehavior::MacroUnsupported
            .expander()
            .expand(&MacroString::parse("b.x").unwrap(), &ctx(), false)
            .unwrap();
        assert_eq!(ok, "b.x");
    }

    #[test]
    fn classification_predicates() {
        assert!(MacroBehavior::VulnerableLibSpf2.is_vulnerable());
        assert!(!MacroBehavior::Compliant.is_vulnerable());
        assert!(MacroBehavior::NoExpansion.is_erroneous_but_not_vulnerable());
        assert!(MacroBehavior::ReverseNoTruncate.is_erroneous_but_not_vulnerable());
        assert!(!MacroBehavior::VulnerableLibSpf2.is_erroneous_but_not_vulnerable());
        assert!(!MacroBehavior::Compliant.is_erroneous_but_not_vulnerable());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MacroBehavior::VulnerableLibSpf2.label(), "vulnerable-libspf2");
        assert_eq!(MacroBehavior::NoExpansion.label(), "no-expansion");
    }

    #[test]
    #[should_panic(expected = "dedicated expander")]
    fn quirk_expander_rejects_dedicated_behaviours() {
        let _ = QuirkExpander::new(MacroBehavior::Compliant);
    }

    #[test]
    fn url_escape_applies_to_quirks_too() {
        let ctx = MacroContext::new("a b", "example.com", "192.0.2.3".parse().unwrap());
        let out = MacroBehavior::IgnoreTransformers
            .expander()
            .expand(&MacroString::parse("%{L}").unwrap(), &ctx, false)
            .unwrap();
        assert_eq!(out, "a%20b");
    }
}
