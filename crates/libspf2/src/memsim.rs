//! A simulated heap with bounds-checked writes.
//!
//! Rust will not let us corrupt real memory, which is rather the point of
//! the language — but the reproduction needs the *corruption itself* to be
//! an observable outcome. [`MemSim`] provides C-`malloc`-shaped
//! allocations whose writes are bounds-checked: in-bounds writes land in
//! the buffer, out-of-bounds writes are captured as [`OverflowEvent`]s
//! (the bytes that would have landed in adjacent heap memory).

use std::fmt;

/// Handle to one simulated allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(usize);

/// One byte written past the end of an allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverflowEvent {
    /// The allocation overflowed.
    pub alloc: AllocId,
    /// Offset of the write relative to the allocation start; always
    /// `>= size`.
    pub offset: usize,
    /// The byte that would have corrupted adjacent memory.
    pub value: u8,
}

#[derive(Debug)]
struct Allocation {
    data: Vec<u8>,
    freed: bool,
}

/// A simulated heap.
#[derive(Debug, Default)]
pub struct MemSim {
    allocations: Vec<Allocation>,
    overflows: Vec<OverflowEvent>,
    use_after_free: usize,
}

impl MemSim {
    /// A fresh heap.
    pub fn new() -> MemSim {
        MemSim::default()
    }

    /// `malloc(size)`: the returned allocation is zero-initialised (real
    /// malloc gives garbage; zeroes keep the simulation deterministic).
    pub fn alloc(&mut self, size: usize) -> AllocId {
        self.allocations.push(Allocation {
            data: vec![0; size],
            freed: false,
        });
        AllocId(self.allocations.len() - 1)
    }

    /// The size of an allocation.
    pub fn size_of(&self, id: AllocId) -> usize {
        self.allocations[id.0].data.len()
    }

    /// Write one byte at `offset`. Out-of-bounds writes are recorded as
    /// overflow events instead of landing anywhere.
    pub fn write(&mut self, id: AllocId, offset: usize, value: u8) {
        let alloc = &mut self.allocations[id.0];
        if alloc.freed {
            self.use_after_free += 1;
            return;
        }
        if offset < alloc.data.len() {
            alloc.data[offset] = value;
        } else {
            self.overflows.push(OverflowEvent {
                alloc: id,
                offset,
                value,
            });
        }
    }

    /// Write a byte slice starting at `offset`.
    pub fn write_bytes(&mut self, id: AllocId, offset: usize, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write(id, offset + i, b);
        }
    }

    /// `free(ptr)`. Further writes count as use-after-free.
    pub fn free(&mut self, id: AllocId) {
        self.allocations[id.0].freed = true;
    }

    /// The in-bounds contents of an allocation.
    pub fn read(&self, id: AllocId) -> &[u8] {
        &self.allocations[id.0].data
    }

    /// The in-bounds contents up to the first NUL, as a string — how C
    /// code would consume the buffer.
    pub fn read_cstr(&self, id: AllocId) -> String {
        let data = self.read(id);
        let end = data.iter().position(|&b| b == 0).unwrap_or(data.len());
        String::from_utf8_lossy(&data[..end]).into_owned()
    }

    /// All overflow events so far.
    pub fn overflow_events(&self) -> &[OverflowEvent] {
        &self.overflows
    }

    /// Whether any write went out of bounds.
    pub fn corrupted(&self) -> bool {
        !self.overflows.is_empty() || self.use_after_free > 0
    }

    /// The largest overrun distance past any allocation's end, in bytes.
    pub fn max_overrun(&self) -> usize {
        self.overflows
            .iter()
            .map(|e| e.offset + 1 - self.size_of(e.alloc))
            .max()
            .unwrap_or(0)
    }

    /// The overflowed bytes for one allocation, in write order — the
    /// attacker-controlled data that would have smashed the heap.
    pub fn overflowed_bytes(&self, id: AllocId) -> Vec<u8> {
        self.overflows
            .iter()
            .filter(|e| e.alloc == id)
            .map(|e| e.value)
            .collect()
    }

    /// Number of use-after-free writes observed.
    pub fn use_after_free_count(&self) -> usize {
        self.use_after_free
    }

    /// Forget all allocations and events (fresh heap between expansions).
    pub fn reset(&mut self) {
        self.allocations.clear();
        self.overflows.clear();
        self.use_after_free = 0;
    }
}

impl fmt::Display for MemSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MemSim: {} allocations, {} overflow bytes, max overrun {}",
            self.allocations.len(),
            self.overflows.len(),
            self.max_overrun()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_writes_land() {
        let mut mem = MemSim::new();
        let id = mem.alloc(4);
        mem.write_bytes(id, 0, b"abc\0");
        assert_eq!(mem.read_cstr(id), "abc");
        assert!(!mem.corrupted());
        assert_eq!(mem.max_overrun(), 0);
    }

    #[test]
    fn out_of_bounds_writes_are_events() {
        let mut mem = MemSim::new();
        let id = mem.alloc(4);
        mem.write_bytes(id, 0, b"abcdef");
        assert!(mem.corrupted());
        assert_eq!(mem.overflow_events().len(), 2);
        assert_eq!(mem.overflowed_bytes(id), b"ef");
        assert_eq!(mem.max_overrun(), 2);
        // The in-bounds part is intact.
        assert_eq!(mem.read(id), b"abcd");
    }

    #[test]
    fn use_after_free_is_tracked() {
        let mut mem = MemSim::new();
        let id = mem.alloc(4);
        mem.free(id);
        mem.write(id, 0, b'x');
        assert!(mem.corrupted());
        assert_eq!(mem.use_after_free_count(), 1);
    }

    #[test]
    fn cstr_reads_stop_at_nul() {
        let mut mem = MemSim::new();
        let id = mem.alloc(8);
        mem.write_bytes(id, 0, b"ab\0cd");
        assert_eq!(mem.read_cstr(id), "ab");
    }

    #[test]
    fn reset_clears_everything() {
        let mut mem = MemSim::new();
        let id = mem.alloc(1);
        mem.write(id, 5, 1);
        assert!(mem.corrupted());
        mem.reset();
        assert!(!mem.corrupted());
        assert_eq!(mem.overflow_events().len(), 0);
    }

    #[test]
    fn overrun_distance_counts_from_allocation_end() {
        let mut mem = MemSim::new();
        let id = mem.alloc(10);
        mem.write(id, 25, 0xff);
        assert_eq!(mem.max_overrun(), 16);
    }
}
