//! The libSPF2 expansion engine, modelled byte-for-byte over [`MemSim`].
//!
//! This is a behavioural model of `SPF_record_expand_data` from libSPF2
//! 1.2.10, faithful to the three externally observable properties the
//! paper measures:
//!
//! * **The fingerprint.** With reversal *and* truncation requested
//!   (`%{d1r}`), the truncation logic re-emits the first label of the
//!   reversed sequence before the full reversed sequence: `example.com`
//!   expands to `com.com.example`, never `example`. This is benign —
//!   visible only in the follow-up DNS query — and unique to libSPF2.
//! * **CVE-2021-33913.** In the same reversal path, the variable tracking
//!   the buffer length is overwritten with the length of the *truncated*
//!   portion. The later URL-encoding pass allocates `3 × len + 1` bytes
//!   from that bogus length and then writes the encoding of the full
//!   duplicated expansion, overrunning the allocation by up to ~100
//!   attacker-controlled bytes.
//! * **CVE-2021-33912.** The URL-encoding loop emits each escaped byte
//!   with `sprintf(p, "%%%02x", *p_read)` where `p_read` is a signed
//!   `char*`: bytes `0x80..=0xFF` sign-extend, producing `%ffffffxx`
//!   (9 characters) where the length pass budgeted 3.
//!
//! Memory corruption therefore occurs only when URL encoding is in play
//! (an uppercase macro letter), exactly as §4.2 observes — which is what
//! makes the remote detection *safe*: the probe record uses lowercase
//! `%{d1r}`, eliciting the fingerprint without ever corrupting the target.

use spfail_spf::expand::{ExpandError, MacroContext, MacroExpander};
use spfail_spf::macrostring::{MacroString, MacroToken, MacroTransform};

use crate::memsim::MemSim;

/// libSPF2 releases the simulation distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibSpf2Version {
    /// 1.2.10 — the long-unmaintained release the paper found deployed;
    /// vulnerable to both CVEs and produces the detection fingerprint.
    V1_2_10,
    /// The patched code (the fixes the authors contributed upstream).
    V1_2_11,
}

impl LibSpf2Version {
    /// Whether this version carries the vulnerable expansion logic.
    pub fn is_vulnerable(self) -> bool {
        matches!(self, LibSpf2Version::V1_2_10)
    }
}

/// Expander configuration.
#[derive(Debug, Clone, Copy)]
pub struct LibSpf2Config {
    /// Which release's behaviour to emulate.
    pub version: LibSpf2Version,
    /// When `true`, a heap overflow aborts the expansion with
    /// [`ExpandError::ImplementationFault`] — the simulation's equivalent
    /// of the process crashing. When `false` the corruption is recorded
    /// but the (already-written) expansion is still returned, modelling
    /// the silent-corruption case.
    pub fault_on_overflow: bool,
    /// Bytes the write pass will run past an allocation before the model
    /// stops it (the paper reports up to ~100 bytes reachable).
    pub overrun_cap: usize,
}

impl LibSpf2Config {
    /// The vulnerable release with silent corruption.
    pub fn vulnerable() -> LibSpf2Config {
        LibSpf2Config {
            version: LibSpf2Version::V1_2_10,
            fault_on_overflow: false,
            overrun_cap: 100,
        }
    }

    /// The patched release.
    pub fn patched() -> LibSpf2Config {
        LibSpf2Config {
            version: LibSpf2Version::V1_2_11,
            fault_on_overflow: false,
            overrun_cap: 100,
        }
    }
}

/// The libSPF2 macro expander over a simulated heap.
pub struct LibSpf2Expander {
    config: LibSpf2Config,
    mem: MemSim,
}

impl LibSpf2Expander {
    /// An expander with the given configuration and a fresh heap.
    pub fn new(config: LibSpf2Config) -> LibSpf2Expander {
        LibSpf2Expander {
            config,
            mem: MemSim::new(),
        }
    }

    /// Convenience: the vulnerable 1.2.10 expander.
    pub fn vulnerable() -> LibSpf2Expander {
        LibSpf2Expander::new(LibSpf2Config::vulnerable())
    }

    /// Convenience: the patched expander.
    pub fn patched() -> LibSpf2Expander {
        LibSpf2Expander::new(LibSpf2Config::patched())
    }

    /// The simulated heap, for inspecting corruption after an expansion.
    pub fn heap(&self) -> &MemSim {
        &self.mem
    }

    /// Reset the heap (e.g. between independent SMTP transactions).
    pub fn reset_heap(&mut self) {
        self.mem.reset();
    }

    /// The configured version.
    pub fn version(&self) -> LibSpf2Version {
        self.config.version
    }

    /// Expand one macro token: split, (buggy) reverse/truncate, then the
    /// (buggy) URL-encoding pass, with all buffer traffic going through
    /// the simulated heap. Returns the logical expansion text.
    fn expand_macro(
        &mut self,
        raw: &str,
        transform: &MacroTransform,
        url_escape: bool,
    ) -> Result<String, ExpandError> {
        let delims = transform.delimiters_or_default();
        let mut parts: Vec<&str> = raw.split(|c| delims.contains(&c)).collect();

        let vulnerable = self.config.version.is_vulnerable();
        let (plain_output, len_var) = if transform.reverse {
            parts.reverse();
            let truncated: Vec<&str> = match transform.digits {
                Some(n) => {
                    let keep = (n.max(1) as usize).min(parts.len());
                    parts[parts.len() - keep..].to_vec()
                }
                None => parts.clone(),
            };
            if vulnerable && transform.digits.is_some() {
                // The buggy truncation: the first label of the reversed
                // sequence is emitted again ahead of the full reversed
                // sequence, and `len` is overwritten with the length of
                // the *truncated* portion (CVE-2021-33913).
                let output = format!("{}.{}", parts[0], parts.join("."));
                let bogus_len = truncated.join(".").len();
                (output, bogus_len)
            } else {
                let output = truncated.join(".");
                let len = output.len();
                (output, len)
            }
        } else {
            let truncated: Vec<&str> = match transform.digits {
                Some(n) => {
                    let keep = (n.max(1) as usize).min(parts.len());
                    parts[parts.len() - keep..].to_vec()
                }
                None => parts,
            };
            let output = truncated.join(".");
            let len = output.len();
            (output, len)
        };

        if !url_escape {
            // Plain path: the buffer is sized from the string actually
            // assembled, so nothing overflows — the mangled expansion is
            // purely protocol-visible.
            let buf = self.mem.alloc(plain_output.len() + 1);
            self.mem.write_bytes(buf, 0, plain_output.as_bytes());
            self.mem.write(buf, plain_output.len(), 0);
            return Ok(self.mem.read_cstr(buf));
        }

        // URL-encoding pass. The length pass budgets three bytes per
        // input byte ("%xx" worst case) from the — possibly bogus —
        // `len_var` (CVE-2021-33913), then the write pass sprintf's each
        // byte, sign-extending high bytes (CVE-2021-33912).
        let alloc_size = len_var * 3 + 1;
        let buf = self.mem.alloc(alloc_size);
        let mut offset = 0usize;
        let limit = alloc_size + self.config.overrun_cap;
        let mut truncated_by_cap = false;
        'write: for &b in plain_output.as_bytes() {
            let encoded: Vec<u8> = if b.is_ascii_alphanumeric()
                || matches!(b, b'-' | b'.' | b'_' | b'~')
            {
                vec![b]
            } else if b < 0x80 || !vulnerable {
                // sprintf("%%%02x", c): lowercase hex, 3 bytes.
                format!("%{b:02x}").into_bytes()
            } else {
                // Signed char sign-extension: -2 -> 0xfffffffe -> 10-byte
                // output counting the NUL (9 visible characters).
                let widened = b as i8 as i32 as u32;
                format!("%{widened:08x}").into_bytes()
            };
            for byte in encoded {
                if offset >= limit {
                    truncated_by_cap = true;
                    break 'write;
                }
                self.mem.write(buf, offset, byte);
                offset += 1;
            }
        }
        if offset < limit {
            self.mem.write(buf, offset, 0);
        }

        if self.mem.corrupted() && self.config.fault_on_overflow {
            return Err(ExpandError::ImplementationFault(format!(
                "heap overflow: {} byte(s) past a {}-byte allocation",
                self.mem.max_overrun(),
                alloc_size,
            )));
        }

        // What the caller sees: the logical string the code wrote, which
        // C would read back from the (now possibly smashed) heap.
        let mut logical = self.mem.read_cstr(buf);
        let mut spilled = self.mem.overflowed_bytes(buf);
        if spilled.last() == Some(&0) {
            spilled.pop(); // the terminator, not payload
        }
        logical.push_str(&String::from_utf8_lossy(&spilled));
        if truncated_by_cap {
            // A real process would likely have died here already.
            return Ok(logical);
        }
        Ok(logical)
    }
}

impl MacroExpander for LibSpf2Expander {
    fn expand(
        &mut self,
        ms: &MacroString,
        ctx: &MacroContext,
        in_exp: bool,
    ) -> Result<String, ExpandError> {
        let mut out = String::new();
        // One scratch buffer for the raw letter values, reused across
        // tokens. Only the *input* path is tightened here: the buffer
        // traffic inside `expand_macro` deliberately mirrors the C
        // code's allocation pattern, bugs and all.
        let mut raw = String::new();
        for token in ms.tokens() {
            match token {
                MacroToken::Literal(text) => out.push_str(text),
                MacroToken::Percent => out.push('%'),
                MacroToken::Space => out.push(' '),
                MacroToken::UrlSpace => out.push_str("%20"),
                MacroToken::Macro {
                    letter,
                    url_escape,
                    transform,
                } => {
                    if letter.exp_only() && !in_exp {
                        return Err(ExpandError::ExpOnlyLetter(letter.as_char()));
                    }
                    raw.clear();
                    ctx.write_raw_value(*letter, &mut raw);
                    out.push_str(&self.expand_macro(&raw, transform, *url_escape)?);
                }
            }
        }
        Ok(out)
    }

    fn describe(&self) -> &'static str {
        match self.config.version {
            LibSpf2Version::V1_2_10 => "libspf2-1.2.10",
            LibSpf2Version::V1_2_11 => "libspf2-1.2.11",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_spf::expand::CompliantExpander;

    fn ctx() -> MacroContext {
        MacroContext::new("user", "example.com", "192.0.2.3".parse().unwrap())
    }

    fn expand_with(expander: &mut LibSpf2Expander, s: &str) -> String {
        expander
            .expand(&MacroString::parse(s).unwrap(), &ctx(), false)
            .unwrap()
    }

    /// Paper §4.2: the three-way behavioural split for `a:%{d1r}.foo.com`
    /// with sender `user@example.com`.
    #[test]
    fn paper_fingerprint_three_way() {
        // RFC-compliant behaviour.
        let compliant = CompliantExpander
            .expand(&MacroString::parse("%{d1r}.foo.com").unwrap(), &ctx(), false)
            .unwrap();
        assert_eq!(compliant, "example.foo.com");

        // Vulnerable libSPF2 behaviour.
        let mut vulnerable = LibSpf2Expander::vulnerable();
        assert_eq!(
            expand_with(&mut vulnerable, "%{d1r}.foo.com"),
            "com.com.example.foo.com"
        );
        assert!(
            !vulnerable.heap().corrupted(),
            "the lowercase probe must never corrupt memory — that is what \
             makes the remote detection benign"
        );

        // Patched libSPF2 behaves compliantly.
        let mut patched = LibSpf2Expander::patched();
        assert_eq!(expand_with(&mut patched, "%{d1r}.foo.com"), "example.foo.com");
        assert!(!patched.heap().corrupted());
    }

    #[test]
    fn deeper_domains_duplicate_first_reversed_label() {
        let ctx = MacroContext::new("u", "a.b.c", "192.0.2.3".parse().unwrap());
        let mut vulnerable = LibSpf2Expander::vulnerable();
        let out = vulnerable
            .expand(&MacroString::parse("%{d1r}").unwrap(), &ctx, false)
            .unwrap();
        assert_eq!(out, "c.c.b.a");
        let out2 = vulnerable
            .expand(&MacroString::parse("%{d2r}").unwrap(), &ctx, false)
            .unwrap();
        // Truncation count does not change the mangled output...
        assert_eq!(out2, "c.c.b.a");
    }

    #[test]
    fn reversal_without_truncation_is_correct() {
        let mut vulnerable = LibSpf2Expander::vulnerable();
        assert_eq!(expand_with(&mut vulnerable, "%{dr}"), "com.example");
        assert!(!vulnerable.heap().corrupted());
    }

    #[test]
    fn no_reversal_is_correct() {
        let mut vulnerable = LibSpf2Expander::vulnerable();
        assert_eq!(expand_with(&mut vulnerable, "%{d1}"), "com");
        assert_eq!(expand_with(&mut vulnerable, "%{d}"), "example.com");
        assert!(!vulnerable.heap().corrupted());
    }

    /// CVE-2021-33913: URL encoding + reversal + truncation with a long
    /// domain makes the write pass overrun the undersized allocation.
    #[test]
    fn cve_2021_33913_overflows() {
        let ctx = MacroContext::new(
            "u",
            "label-one.label-two.label-three.label-four.x",
            "192.0.2.3".parse().unwrap(),
        );
        let mut vulnerable = LibSpf2Expander::vulnerable();
        let out = vulnerable
            .expand(&MacroString::parse("%{D1R}").unwrap(), &ctx, false)
            .unwrap();
        // len_var = len("x") = 1 -> alloc 4 bytes; output is the full
        // duplicated reversed string, far larger.
        assert!(out.starts_with("x.x.label-four"));
        assert!(vulnerable.heap().corrupted());
        assert!(vulnerable.heap().max_overrun() > 0);
        assert!(
            vulnerable.heap().max_overrun() <= 100,
            "overrun capped at ~100 bytes as the paper reports"
        );
    }

    /// CVE-2021-33912: URL encoding of bytes >= 0x80 emits %ffffffxx.
    #[test]
    fn cve_2021_33912_sign_extension() {
        // "é" is 0xC3 0xA9 in UTF-8 — both high bytes.
        let ctx = MacroContext::new("caf\u{e9}", "example.com", "192.0.2.3".parse().unwrap());
        let mut vulnerable = LibSpf2Expander::vulnerable();
        let out = vulnerable
            .expand(&MacroString::parse("%{L}").unwrap(), &ctx, false)
            .unwrap();
        assert!(
            out.contains("%ffffffc3") && out.contains("%ffffffa9"),
            "sign-extended escapes, got {out}"
        );
        assert!(
            vulnerable.heap().corrupted(),
            "six extra bytes per high byte overflow the 3-per-byte budget"
        );

        // The patched version encodes correctly and stays in bounds.
        let mut patched = LibSpf2Expander::patched();
        let out = patched
            .expand(&MacroString::parse("%{L}").unwrap(), &ctx, false)
            .unwrap();
        assert_eq!(out, "caf%c3%a9");
        assert!(!patched.heap().corrupted());
    }

    #[test]
    fn low_ascii_escaping_stays_in_bounds() {
        let ctx = MacroContext::new("a/b c", "example.com", "192.0.2.3".parse().unwrap());
        let mut vulnerable = LibSpf2Expander::vulnerable();
        let out = vulnerable
            .expand(&MacroString::parse("%{L}").unwrap(), &ctx, false)
            .unwrap();
        assert_eq!(out, "a%2fb%20c", "lowercase hex, as sprintf %02x emits");
        assert!(!vulnerable.heap().corrupted());
    }

    #[test]
    fn fault_on_overflow_aborts_like_a_crash() {
        let ctx = MacroContext::new("caf\u{e9}", "example.com", "192.0.2.3".parse().unwrap());
        let mut expander = LibSpf2Expander::new(LibSpf2Config {
            version: LibSpf2Version::V1_2_10,
            fault_on_overflow: true,
            overrun_cap: 100,
        });
        let err = expander
            .expand(&MacroString::parse("%{L}").unwrap(), &ctx, false)
            .unwrap_err();
        assert!(matches!(err, ExpandError::ImplementationFault(_)));
    }

    #[test]
    fn overrun_is_capped() {
        // A very long crafted domain would try to run far past the end.
        let long = (0..40).map(|i| format!("l{i}")).collect::<Vec<_>>().join(".");
        let ctx = MacroContext::new("u", &format!("{long}.z"), "192.0.2.3".parse().unwrap());
        let mut vulnerable = LibSpf2Expander::vulnerable();
        let _ = vulnerable
            .expand(&MacroString::parse("%{D1R}").unwrap(), &ctx, false)
            .unwrap();
        assert!(vulnerable.heap().corrupted());
        assert!(vulnerable.heap().max_overrun() <= 100);
    }

    #[test]
    fn heap_reset_between_transactions() {
        let ctx = MacroContext::new("caf\u{e9}", "example.com", "192.0.2.3".parse().unwrap());
        let mut vulnerable = LibSpf2Expander::vulnerable();
        let _ = vulnerable
            .expand(&MacroString::parse("%{L}").unwrap(), &ctx, false)
            .unwrap();
        assert!(vulnerable.heap().corrupted());
        vulnerable.reset_heap();
        assert!(!vulnerable.heap().corrupted());
        assert_eq!(expand_with(&mut vulnerable, "%{d}"), "example.com");
    }

    #[test]
    fn literals_and_escapes_pass_through() {
        let mut vulnerable = LibSpf2Expander::vulnerable();
        assert_eq!(expand_with(&mut vulnerable, "a%%b%_c%-d"), "a%b c%20d");
    }

    #[test]
    fn describe_names_the_version() {
        assert_eq!(LibSpf2Expander::vulnerable().describe(), "libspf2-1.2.10");
        assert_eq!(LibSpf2Expander::patched().describe(), "libspf2-1.2.11");
        assert!(LibSpf2Version::V1_2_10.is_vulnerable());
        assert!(!LibSpf2Version::V1_2_11.is_vulnerable());
    }

    #[test]
    fn custom_delimiters_follow_the_same_buggy_path() {
        let ctx = MacroContext::new("a-b-c", "example.com", "192.0.2.3".parse().unwrap());
        let mut vulnerable = LibSpf2Expander::vulnerable();
        let out = vulnerable
            .expand(&MacroString::parse("%{l1r-}").unwrap(), &ctx, false)
            .unwrap();
        // reversed = [c, b, a]; buggy duplication of first reversed label.
        assert_eq!(out, "c.c.b.a");
    }
}
