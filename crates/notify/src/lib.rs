//! The private-notification campaign (paper §6.4, §7.7).
//!
//! On 2021-11-15 the authors emailed `postmaster@` every vulnerable
//! domain, deduplicating so that a domain with several vulnerable hosts
//! got one email and several domains sharing the same MX set got one
//! email between them. Each message embedded a uniquely identified
//! tracking image; loading it revealed the mail had been opened.
//!
//! The reproduction delivers the notifications *through the simulated
//! SMTP substrate*: a bounce is a real protocol rejection by the target
//! host's configured behaviour, not a coin flip. Opens and their (tiny)
//! patching effect come from the world's pre-sampled patch causes.
//!
//! Paper funnel, for calibration: 6,488 sent; 2,054 (31.6%) undelivered;
//! 512 of 4,434 delivered (12%) opened; 177 openers eventually patched;
//! 9 patched between private and public disclosure; 37 non-recipients
//! patched in that window.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod pixel;

pub use campaign::{
    FormatArm, FormatExperiment, NotificationCampaign, NotificationRecord,
    NotificationReport,
};
pub use pixel::{PixelHit, PixelLog};
