//! The tracking-image log.
//!
//! Each notification email embeds an image URL carrying a unique token;
//! the web server logs a [`PixelHit`] whenever a recipient's mail client
//! loads it. This is the §7.7 open-rate instrument (a lower bound, since
//! clients that do not load images are invisible).

use std::collections::HashMap;

/// One recorded image fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PixelHit {
    /// The unique token from the image URL.
    pub token: String,
    /// Measurement day of the fetch.
    pub day: u16,
}

/// The web server's image-fetch log.
#[derive(Debug, Default, Clone)]
pub struct PixelLog {
    hits: Vec<PixelHit>,
    by_token: HashMap<String, u16>,
}

impl PixelLog {
    /// An empty log.
    pub fn new() -> PixelLog {
        PixelLog::default()
    }

    /// Record a fetch of `token` on `day`.
    pub fn record(&mut self, token: &str, day: u16) {
        self.hits.push(PixelHit {
            token: token.to_string(),
            day,
        });
        self.by_token
            .entry(token.to_string())
            .and_modify(|d| *d = (*d).min(day))
            .or_insert(day);
    }

    /// The first day `token` was fetched, if ever.
    pub fn first_open(&self, token: &str) -> Option<u16> {
        self.by_token.get(token).copied()
    }

    /// Number of distinct tokens fetched.
    pub fn distinct_opens(&self) -> usize {
        self.by_token.len()
    }

    /// All hits.
    pub fn hits(&self) -> &[PixelHit] {
        &self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_first_open_per_token() {
        let mut log = PixelLog::new();
        log.record("abc", 40);
        log.record("abc", 50);
        log.record("def", 45);
        assert_eq!(log.first_open("abc"), Some(40));
        assert_eq!(log.first_open("def"), Some(45));
        assert_eq!(log.first_open("zzz"), None);
        assert_eq!(log.distinct_opens(), 2);
        assert_eq!(log.hits().len(), 3);
    }

    #[test]
    fn earlier_hit_wins_even_out_of_order() {
        let mut log = PixelLog::new();
        log.record("t", 80);
        log.record("t", 36);
        assert_eq!(log.first_open("t"), Some(36));
    }
}
