//! Delivering the notifications and measuring their effect.

use std::collections::{HashMap, HashSet};

use spfail_mta::mta::ConnectDecision;
use spfail_netsim::SimRng;
use spfail_smtp::address::EmailAddress;
use spfail_smtp::command::Command;
use spfail_world::{DomainId, HostId, PatchCause, Population, Timeline, World};

use crate::pixel::PixelLog;

/// One notification email's fate.
#[derive(Debug, Clone)]
pub struct NotificationRecord {
    /// The domain whose postmaster was addressed.
    pub domain: DomainId,
    /// The domains this email covered (shared-MX deduplication).
    pub covered: Vec<DomainId>,
    /// The tracking token embedded in the message.
    pub token: String,
    /// Whether the message was accepted by the receiving MTA.
    pub delivered: bool,
    /// The SMTP reply code that concluded delivery (2xx or the bounce).
    pub final_code: u16,
    /// Day the tracking image was first loaded, if ever.
    pub opened_day: Option<u16>,
}

/// The §7.7 funnel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NotificationReport {
    /// Emails sent.
    pub sent: usize,
    /// Emails returned undelivered.
    pub bounced: usize,
    /// Delivered emails whose tracking image was loaded.
    pub opened: usize,
    /// Opened-and-eventually-patched domains (any time in the study).
    pub opened_then_patched: usize,
    /// Domains patched strictly between private and public disclosure
    /// among openers.
    pub patched_between_disclosures: usize,
    /// Domains that never received the email yet patched between the
    /// disclosures (package-manager effects, §7.7).
    pub unreached_patched_between: usize,
}

/// One arm of the format experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FormatArm {
    /// Emails sent in this arm.
    pub sent: usize,
    /// Emails delivered.
    pub delivered: usize,
    /// Delivered groups that patched between the disclosures.
    pub patched_between: usize,
}

impl FormatArm {
    /// The between-disclosure patch rate among delivered notifications.
    pub fn patch_rate(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.patched_between as f64 / self.delivered as f64
        }
    }
}

/// The HTML-vs-plain-text notification experiment (§7.7's Stock et al.
/// reference, run inside the simulation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FormatExperiment {
    /// HTML with a tracking image.
    pub html: FormatArm,
    /// Plain text, no tracking.
    pub plain: FormatArm,
}

/// The notification campaign driver.
pub struct NotificationCampaign;

impl NotificationCampaign {
    /// Send one notification per vulnerable host-group on the private
    /// notification day and derive the funnel.
    ///
    /// `vulnerable_domains` comes from the measurement campaign's initial
    /// sweep (the notification list is built from measured data, exactly
    /// as in the paper).
    pub fn run(
        world: &dyn Population,
        vulnerable_domains: &[DomainId],
        pixel_log: &mut PixelLog,
    ) -> (Vec<NotificationRecord>, NotificationReport) {
        let runtime = world.runtime();
        let mut rng = runtime.fork_rng("notify");
        runtime
            .clock
            .advance_to(Timeline::day_to_time(Timeline::PRIVATE_NOTIFICATION));

        // The notification infrastructure is separate from the probing
        // infrastructure (§7.7) and its domain publishes an SPF record
        // that *authorizes* the notifier, so receivers' SPF checks pass.
        let origin = spfail_dns::Name::parse("notify.dns-lab.org").expect("static name");
        let zone = spfail_dns::ZoneBuilder::new(origin.clone())
            .txt(&origin, 300, "v=spf1 ip4:198.51.100.53 -all")
            .a(&origin, 300, "198.51.100.53".parse().expect("static address"))
            .build();
        runtime
            .directory
            .register(std::sync::Arc::new(spfail_dns::StaticAuthority::new(zone)));

        // Deduplicate: one email per distinct vulnerable host-set (§7.7).
        let mut seen_hostsets: HashSet<Vec<HostId>> = HashSet::new();
        let mut groups: Vec<(DomainId, Vec<DomainId>)> = Vec::new();
        let mut group_index: HashMap<Vec<HostId>, usize> = HashMap::new();
        for &domain in vulnerable_domains {
            let mut hosts = world.domain(domain).hosts.clone();
            hosts.sort();
            if seen_hostsets.insert(hosts.clone()) {
                group_index.insert(hosts, groups.len());
                groups.push((domain, vec![domain]));
            } else {
                let idx = group_index[&hosts];
                groups[idx].1.push(domain);
            }
        }

        let mut records = Vec::with_capacity(groups.len());
        for (i, (domain, covered)) in groups.into_iter().enumerate() {
            let token = format!("ntfy{i:06}");
            let (delivered, final_code) = Self::deliver(world, &mut rng, domain, &token);
            // Each notification's reader behaviour draws from its own
            // derived stream, so one recipient's dice never depend on
            // how many draws delivery to earlier recipients consumed.
            let mut rng = rng.fork_idx("reader", i as u64);

            // Opens: a lower-bound 12% of delivered mail loads the image
            // (§7.7). Hosts whose ground-truth patch cause is the private
            // notification are, by construction, openers.
            let notification_driven = covered.iter().any(|&d| {
                world.domain(d).hosts.iter().any(|&h| {
                    world.host(h).profile.patch_cause == Some(PatchCause::PrivateNotification)
                })
            });
            let opened_day = if delivered && (notification_driven || rng.chance(0.12)) {
                let day = Timeline::PRIVATE_NOTIFICATION
                    + 1
                    + rng.below(u64::from(
                        Timeline::PUBLIC_DISCLOSURE - Timeline::PRIVATE_NOTIFICATION - 1,
                    )) as u16;
                // Openers who patched because of the mail opened before
                // patching.
                let day = if notification_driven {
                    let earliest_patch = covered
                        .iter()
                        .flat_map(|&d| world.domain(d).hosts.iter())
                        .filter_map(|&h| world.host(h).profile.patch_day)
                        .min()
                        .unwrap_or(day);
                    day.min(earliest_patch.saturating_sub(1)).max(Timeline::PRIVATE_NOTIFICATION + 1)
                } else {
                    day
                };
                pixel_log.record(&token, day);
                Some(day)
            } else {
                None
            };

            records.push(NotificationRecord {
                domain,
                covered,
                token,
                delivered,
                final_code,
                opened_day,
            });
        }

        let report = Self::report(world, &records);
        (records, report)
    }

    /// Deliver one notification through the real SMTP substrate. The
    /// sender is the notification host (distinct from the probing
    /// infrastructure, per §7.7); the recipient is `postmaster@domain`
    /// (RFC 5321 §4.5.1 requires it to exist — bounces are hosts that
    /// violate that).
    fn deliver(
        world: &dyn Population,
        rng: &mut SimRng,
        domain: DomainId,
        token: &str,
    ) -> (bool, u16) {
        let record = world.domain(domain);
        // An SMTP client walks the MX list until one host takes the mail
        // (RFC 5321 §5.1); only exhausting the list bounces.
        let mut last = (false, 0);
        for &host in &record.hosts {
            let mut mta = world.build_mta(host, Timeline::PRIVATE_NOTIFICATION);
            // Greylisting is a "try again later", not a bounce: retry once.
            let attempt = match Self::deliver_once(world, rng, &mut mta, record, token) {
                (false, 450) | (false, 451) => {
                    Self::deliver_once(world, rng, &mut mta, record, token)
                }
                other => other,
            };
            if attempt.0 {
                return attempt;
            }
            last = attempt;
        }
        last
    }

    fn deliver_once(
        _world: &dyn Population,
        rng: &mut SimRng,
        mta: &mut spfail_mta::Mta,
        record: &spfail_world::DomainRecord,
        token: &str,
    ) -> (bool, u16) {
        let notifier_ip = "198.51.100.53".parse().expect("static address");
        match mta.connect(notifier_ip) {
            ConnectDecision::Refused => return (false, 0),
            ConnectDecision::RejectedBanner(reply) => return (false, reply.code),
            ConnectDecision::Proceed => {}
        }
        let (mut session, banner) = mta.open_session();
        if !banner.is_positive() {
            return (false, banner.code);
        }
        let sender = EmailAddress::new("security-notice", "notify.dns-lab.org")
            .expect("static address");
        let rcpt = match EmailAddress::new("postmaster", &record.name) {
            Ok(a) => a,
            Err(_) => return (false, 0),
        };
        for command in [
            Command::Ehlo("notify.dns-lab.org".to_string()),
            Command::MailFrom(sender),
            Command::RcptTo(rcpt),
            Command::Data,
        ] {
            let reply = session.handle(&command);
            if reply.is_failure() {
                return (false, reply.code);
            }
        }
        let body = format!(
            "Subject: Vulnerable libSPF2 on your mail server\r\n\
             \r\n\
             Your server validates SPF with libSPF2 <= 1.2.10, which is\r\n\
             vulnerable to remote heap corruption (disclosure scheduled\r\n\
             2022-01-19). Please update or switch validators.\r\n\
             <img src=\"https://notify.dns-lab.org/pixel/{token}.png\">\r\n\
             Plain-text readers: this message is also readable as text.\r\n"
        );
        let reply = session.handle_message(&body);
        // A small extra bounce source: full mailboxes / later-stage spam
        // filtering that the session model does not capture.
        if reply.is_positive() && rng.chance(0.04) {
            return (false, 552);
        }
        (reply.is_positive(), reply.code)
    }

    /// Extension: the Stock-et-al. format experiment the paper cites in
    /// §7.7 — send half the notifications as HTML-with-tracking and half
    /// as plain text, and compare patch response across arms. The paper
    /// argues (citing Stock et al., NDSS'18) that the format makes only a
    /// marginal difference; with the world's patch behaviour independent
    /// of message format by construction, the simulation reproduces that
    /// null result modulo sampling noise.
    pub fn run_format_experiment(
        world: &World,
        vulnerable_domains: &[DomainId],
    ) -> FormatExperiment {
        let mut rng = world.fork_rng("notify-ab");
        world
            .clock
            .advance_to(Timeline::day_to_time(Timeline::PRIVATE_NOTIFICATION));
        let mut seen_hostsets: HashSet<Vec<HostId>> = HashSet::new();
        let mut experiment = FormatExperiment::default();
        for &domain in vulnerable_domains {
            let mut hosts = world.domain(domain).hosts.clone();
            hosts.sort();
            if !seen_hostsets.insert(hosts) {
                continue;
            }
            let html_arm = rng.chance(0.5);
            let (delivered, _code) =
                Self::deliver(world, &mut rng, domain, "ab-experiment");
            let arm = if html_arm {
                &mut experiment.html
            } else {
                &mut experiment.plain
            };
            arm.sent += 1;
            if !delivered {
                continue;
            }
            arm.delivered += 1;
            // Response: did the group patch between the disclosures?
            let patched_between = world.domain(domain).hosts.iter().any(|&h| {
                world.host(h).profile.patch_day.is_some_and(|d| {
                    d > Timeline::PRIVATE_NOTIFICATION && d <= Timeline::PUBLIC_DISCLOSURE
                })
            });
            if patched_between {
                arm.patched_between += 1;
            }
        }
        experiment
    }

    /// Derive the §7.7 funnel from the records and the world's ground
    /// truth.
    fn report(world: &dyn Population, records: &[NotificationRecord]) -> NotificationReport {
        let mut report = NotificationReport {
            sent: records.len(),
            ..NotificationReport::default()
        };
        let patch_window = |day: u16| {
            day > Timeline::PRIVATE_NOTIFICATION && day < Timeline::PUBLIC_DISCLOSURE
        };
        for record in records {
            let group_patch_day = record
                .covered
                .iter()
                .flat_map(|&d| world.domain(d).hosts.iter())
                .filter(|&&h| world.host(h).profile.initially_vulnerable())
                .map(|&h| world.host(h).profile.patch_day)
                .collect::<Vec<_>>();
            // The group patched when every vulnerable host has a patch day
            // within the study.
            let patched_all = !group_patch_day.is_empty()
                && group_patch_day
                    .iter()
                    .all(|d| d.is_some_and(|day| day <= Timeline::END));
            let earliest = group_patch_day.iter().flatten().min().copied();

            if !record.delivered {
                report.bounced += 1;
                if patched_all && earliest.is_some_and(patch_window) {
                    report.unreached_patched_between += 1;
                }
                continue;
            }
            if record.opened_day.is_some() {
                report.opened += 1;
                if patched_all && earliest.is_some_and(|d| d <= Timeline::END) {
                    report.opened_then_patched += 1;
                }
                if patched_all && earliest.is_some_and(patch_window) {
                    report.patched_between_disclosures += 1;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_world::WorldConfig;

    fn setup() -> (World, Vec<DomainId>) {
        let world = World::generate(WorldConfig {
            scale: 0.01,
            ..WorldConfig::small(99)
        });
        let vulnerable = world.initially_vulnerable_domains();
        (world, vulnerable)
    }

    #[test]
    fn one_email_per_host_group() {
        let (world, vulnerable) = setup();
        let mut pixels = PixelLog::new();
        let (records, report) = NotificationCampaign::run(&world, &vulnerable, &mut pixels);
        assert_eq!(report.sent, records.len());
        assert!(report.sent <= vulnerable.len());
        // Deduplication must actually collapse shared hosting.
        let covered: usize = records.iter().map(|r| r.covered.len()).sum();
        assert_eq!(covered, vulnerable.len());
        assert!(report.sent > 0);
    }

    #[test]
    fn bounce_rate_is_in_a_plausible_band() {
        let (world, vulnerable) = setup();
        let mut pixels = PixelLog::new();
        let (_, report) = NotificationCampaign::run(&world, &vulnerable, &mut pixels);
        let rate = report.bounced as f64 / report.sent.max(1) as f64;
        // Paper: 31.6%. The simulated bounces come from real protocol
        // rejections, so allow a generous band.
        assert!((0.10..0.60).contains(&rate), "bounce rate {rate}");
    }

    #[test]
    fn opens_are_a_minority_and_tracked_in_the_pixel_log() {
        let (world, vulnerable) = setup();
        let mut pixels = PixelLog::new();
        let (records, report) = NotificationCampaign::run(&world, &vulnerable, &mut pixels);
        let delivered = report.sent - report.bounced;
        assert!(report.opened <= delivered);
        if delivered > 50 {
            let rate = report.opened as f64 / delivered as f64;
            assert!((0.03..0.35).contains(&rate), "open rate {rate}");
        }
        assert_eq!(pixels.distinct_opens(), report.opened);
        for r in &records {
            if let Some(day) = r.opened_day {
                assert!(r.delivered);
                assert!(day > Timeline::PRIVATE_NOTIFICATION);
                assert!(day < Timeline::PUBLIC_DISCLOSURE);
                assert_eq!(pixels.first_open(&r.token), Some(day));
            }
        }
    }

    #[test]
    fn notification_effect_is_marginal() {
        let (world, vulnerable) = setup();
        let mut pixels = PixelLog::new();
        let (_, report) = NotificationCampaign::run(&world, &vulnerable, &mut pixels);
        // §7.7: 9 of 6,488 — the between-disclosure patching among openers
        // must be a sliver of everything sent.
        assert!(report.patched_between_disclosures * 20 <= report.sent.max(20));
    }

    #[test]
    fn format_experiment_reproduces_the_null_result() {
        let (world, vulnerable) = setup();
        let experiment = NotificationCampaign::run_format_experiment(&world, &vulnerable);
        assert!(experiment.html.sent + experiment.plain.sent > 0);
        // Arms are roughly balanced.
        let total = (experiment.html.sent + experiment.plain.sent) as f64;
        let html_share = experiment.html.sent as f64 / total;
        assert!((0.3..0.7).contains(&html_share), "html share {html_share}");
        // The format makes no systematic difference: both arms' rates are
        // tiny (patch behaviour is format-independent by construction).
        assert!(experiment.html.patch_rate() < 0.25);
        assert!(experiment.plain.patch_rate() < 0.25);
        assert!(experiment.html.delivered <= experiment.html.sent);
        assert!(experiment.plain.delivered <= experiment.plain.sent);
    }

    #[test]
    fn campaign_is_deterministic() {
        let (world, vulnerable) = setup();
        let mut p1 = PixelLog::new();
        let (_, r1) = NotificationCampaign::run(&world, &vulnerable, &mut p1);
        let (world2, vulnerable2) = setup();
        let mut p2 = PixelLog::new();
        let (_, r2) = NotificationCampaign::run(&world2, &vulnerable2, &mut p2);
        assert_eq!(r1, r2);
    }
}
