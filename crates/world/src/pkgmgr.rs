//! Package-manager patch timelines (paper Table 6) and the patch-wave
//! model derived from them.
//!
//! Table 6 is *input data* for the simulation, not a measured output: the
//! paper compiled it from distribution changelogs. It still appears in the
//! report harness (as the paper prints it), and — more importantly — it
//! drives *when* distro-auto-updating hosts patch in the longitudinal
//! simulation: Gentoo and Arch shipped the fix before public disclosure
//! (explaining part of the proactive window-1 patching), Debian shipped
//! the day after the CVEs went public (the visible step in Figure 7), and
//! Ubuntu/BSD/SUSE never shipped during the measurement.

use spfail_netsim::SimRng;

use crate::timeline::Timeline;

/// A package manager / distribution channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackageManager {
    /// Debian (patched the day after disclosure).
    Debian,
    /// Alpine (patched ~50 days after disclosure — outside the window).
    Alpine,
    /// RedHat family (shipped the fix bundled with CVE-2021-20314).
    RedHat,
    /// Gentoo (bundled fix, 2021-10-25).
    Gentoo,
    /// Arch Linux (bundled fix, 2021-11-22).
    ArchLinux,
    /// Ubuntu (unpatched during the study).
    Ubuntu,
    /// FreeBSD ports (unpatched).
    FreeBsd,
    /// NetBSD (unpatched).
    NetBsd,
    /// SUSE Hub (unpatched).
    Suse,
    /// Anything else / self-built.
    Other,
}

/// One row of Table 6.
#[derive(Debug, Clone, Copy)]
pub struct PkgTimelineRow {
    /// The package manager.
    pub manager: PackageManager,
    /// Display name as printed in the table.
    pub name: &'static str,
    /// Days from CVE-2021-20314 disclosure (2021-08-11) to its patch;
    /// `None` = unpatched during the study.
    pub days_20314: Option<u16>,
    /// Patch date for CVE-2021-20314.
    pub date_20314: Option<&'static str>,
    /// Days from CVE-2021-33912/13 disclosure (2022-01-19) to its patch.
    /// Zero with `bundled = true` means the fix shipped *before*
    /// disclosure, bundled with the earlier CVE's update.
    pub days_33912: Option<u16>,
    /// Patch date for CVE-2021-33912/13.
    pub date_33912: Option<&'static str>,
    /// Whether the 33912/13 fix rode along with the 20314 update.
    pub bundled: bool,
}

/// Table 6, verbatim.
pub const PACKAGE_TIMELINE: [PkgTimelineRow; 9] = [
    PkgTimelineRow {
        manager: PackageManager::Debian,
        name: "Debian",
        days_20314: Some(0),
        date_20314: Some("2021-08-11"),
        days_33912: Some(0),
        date_33912: Some("2022-01-20"),
        bundled: false,
    },
    PkgTimelineRow {
        manager: PackageManager::Alpine,
        name: "Alpine",
        days_20314: Some(0),
        date_20314: Some("2021-08-11"),
        days_33912: Some(50),
        date_33912: Some("2022-03-11"),
        bundled: false,
    },
    PkgTimelineRow {
        manager: PackageManager::RedHat,
        name: "RedHat",
        days_20314: Some(42),
        date_20314: Some("2021-09-22"),
        days_33912: Some(0),
        date_33912: Some("2021-09-22"),
        bundled: true,
    },
    PkgTimelineRow {
        manager: PackageManager::Gentoo,
        name: "Gentoo",
        days_20314: Some(75),
        date_20314: Some("2021-10-25"),
        days_33912: Some(0),
        date_33912: Some("2021-10-25"),
        bundled: true,
    },
    PkgTimelineRow {
        manager: PackageManager::ArchLinux,
        name: "Arch Linux",
        days_20314: Some(103),
        date_20314: Some("2021-11-22"),
        days_33912: Some(0),
        date_33912: Some("2021-11-22"),
        bundled: true,
    },
    PkgTimelineRow {
        manager: PackageManager::Ubuntu,
        name: "Ubuntu",
        days_20314: None,
        date_20314: None,
        days_33912: None,
        date_33912: None,
        bundled: false,
    },
    PkgTimelineRow {
        manager: PackageManager::FreeBsd,
        name: "FreeBSD Ports",
        days_20314: None,
        date_20314: None,
        days_33912: None,
        date_33912: None,
        bundled: false,
    },
    PkgTimelineRow {
        manager: PackageManager::NetBsd,
        name: "NetBSD",
        days_20314: None,
        date_20314: None,
        days_33912: None,
        date_33912: None,
        bundled: false,
    },
    PkgTimelineRow {
        manager: PackageManager::Suse,
        name: "SUSE Hub",
        days_20314: None,
        date_20314: None,
        days_33912: None,
        date_33912: None,
        bundled: false,
    },
];

impl PackageManager {
    /// The measurement day (from [`Timeline`]) on which this channel made
    /// a fixed package available, if it did so during the study window.
    /// RedHat's bundled fix predates the initial measurement — hosts on
    /// it were never observed vulnerable, so it returns `None` here.
    pub fn fix_available_day(self) -> Option<u16> {
        match self {
            // 2021-10-25 = day 14; 2021-11-22 = day 42; 2022-01-20 = 101.
            PackageManager::Gentoo => Some(14),
            PackageManager::ArchLinux => Some(42),
            PackageManager::Debian => Some(Timeline::DEBIAN_PATCH),
            _ => None,
        }
    }

    /// Sample the distro of a host that was still vulnerable on day 0.
    /// RedHat-family hosts are excluded (their fix predates day 0).
    pub fn sample_vulnerable_host_distro(rng: &mut SimRng) -> PackageManager {
        const CHOICES: [(PackageManager, f64); 8] = [
            (PackageManager::Debian, 0.34),
            (PackageManager::Ubuntu, 0.26),
            (PackageManager::Gentoo, 0.04),
            (PackageManager::ArchLinux, 0.04),
            (PackageManager::Alpine, 0.05),
            (PackageManager::FreeBsd, 0.06),
            (PackageManager::Suse, 0.06),
            (PackageManager::Other, 0.15),
        ];
        let weights: Vec<f64> = CHOICES.iter().map(|(_, w)| *w).collect();
        let idx = rng.pick_weighted(&weights).expect("non-empty");
        CHOICES[idx].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_shape() {
        assert_eq!(PACKAGE_TIMELINE.len(), 9);
        let debian = &PACKAGE_TIMELINE[0];
        assert_eq!(debian.days_33912, Some(0));
        assert!(!debian.bundled);
        let unpatched: Vec<&str> = PACKAGE_TIMELINE
            .iter()
            .filter(|r| r.days_33912.is_none())
            .map(|r| r.name)
            .collect();
        assert_eq!(unpatched, vec!["Ubuntu", "FreeBSD Ports", "NetBSD", "SUSE Hub"]);
    }

    #[test]
    fn fix_days_line_up_with_the_calendar() {
        assert_eq!(
            Timeline::date_label(PackageManager::Gentoo.fix_available_day().unwrap()),
            "2021-10-25"
        );
        assert_eq!(
            Timeline::date_label(PackageManager::ArchLinux.fix_available_day().unwrap()),
            "2021-11-22"
        );
        assert_eq!(
            Timeline::date_label(PackageManager::Debian.fix_available_day().unwrap()),
            "2022-01-20"
        );
        assert_eq!(PackageManager::Ubuntu.fix_available_day(), None);
        assert_eq!(PackageManager::RedHat.fix_available_day(), None);
    }

    #[test]
    fn distro_sampling_never_yields_redhat() {
        let mut rng = SimRng::new(5);
        for _ in 0..500 {
            assert_ne!(
                PackageManager::sample_vulnerable_host_distro(&mut rng),
                PackageManager::RedHat
            );
        }
    }
}
