//! Lazy world synthesis: the same population as [`World::generate`],
//! produced one domain at a time.
//!
//! [`LazyWorld`] is an iterator of [`DomainStep`]s. Each step carries one
//! [`DomainRecord`] (in [`DomainId`] order) plus the [`HostRecord`]s that
//! domain caused to be created (in [`HostId`] order). Driving the
//! iterator to completion visits every domain and every host of the
//! eager world exactly once, **bit-for-bit identical** to the records
//! [`World::generate`] materializes — `World::generate` is in fact the
//! collector over this very iterator, so the two cannot drift.
//!
//! The synthesis state is bounded: per-stream RNGs, the shared-hosting
//! pool cursors, and one compact precomputed table (the 2-Week rank
//! shuffle — the only genuinely global draw in generation, O(two-week
//! domains) of `u32`s, independent of host count). Everything else is
//! recomputed per step and freed with the step, which is what makes the
//! streaming campaign's peak heap independent of population size (see
//! DESIGN.md, "Streaming memory model").

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use spfail_dns::{Directory, Name, QueryLog, SpfTestAuthority};
use spfail_libspf2::MacroBehavior;
use spfail_mta::{ConnectPolicy, Mta, SpfStage};
use spfail_netsim::{LatencyModel, Link, SimClock, SimRng};

use crate::config::WorldConfig;
use crate::domains::{DomainId, DomainRecord, SetMembership, TldSampler};
use crate::geo;
use crate::hosting::{sample_patch, sample_profile, HostId, HostRecord};
use crate::timeline::Timeline;
use crate::world::MtaInstrumentation;

/// The world's population-free runtime surface: configuration, the
/// shared simulation clock, the DNS directory with the measurement zone,
/// and the runtime RNG root. [`World`](crate::World) owns one; streaming
/// campaigns construct one without ever materializing the population.
///
/// Cloning is cheap handle semantics: the clone shares the clock,
/// directory, and query log with the original (they are `Arc`-backed
/// handles), and its RNG root forks the same streams — which is what
/// lets the streaming driver hand the live runtime to probers and to
/// the retained [`SparsePopulation`] without a materialized `World`.
#[derive(Clone)]
pub struct WorldRuntime {
    /// The configuration the world is generated from.
    pub config: WorldConfig,
    /// The shared simulation clock.
    pub clock: SimClock,
    /// The DNS directory (holds the measurement zone's authority).
    pub directory: Directory,
    /// The measurement zone's query log.
    pub query_log: QueryLog,
    /// The measurement zone origin (`spf-test.dns-lab.org`).
    pub zone_origin: Name,
    rng_root: SimRng,
}

impl WorldRuntime {
    /// Build the runtime for `config`: fresh clock, directory with the
    /// measurement zone registered, and the `world-runtime` RNG root —
    /// exactly the state [`World::generate`](crate::World::generate)
    /// ends with, derived from the seed alone.
    pub fn new(config: WorldConfig) -> WorldRuntime {
        let clock = SimClock::new();
        let directory = Directory::new();
        let query_log = QueryLog::new();
        let zone_origin = SpfTestAuthority::default_origin();
        directory.register(Arc::new(SpfTestAuthority::new(
            zone_origin.clone(),
            query_log.clone(),
        )));
        let rng_root = SimRng::new(config.seed).fork("world-runtime");
        WorldRuntime {
            config,
            clock,
            directory,
            query_log,
            zone_origin,
            rng_root,
        }
    }

    /// A deterministic RNG stream for a named consumer of this world.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.rng_root.fork(label)
    }

    /// Build the live MTA for `record` (the record of `host`) as of day
    /// `day` — the record-passing core behind
    /// [`World::build_mta_instrumented`](crate::World::build_mta_instrumented).
    /// The MTA's RNG stream depends only on the host id, so any engine
    /// holding the host's record builds exactly the MTA the eager world
    /// would.
    pub fn build_mta_record(
        &self,
        host: HostId,
        record: &HostRecord,
        day: u16,
        directory: Directory,
        clock: SimClock,
        instrumentation: MtaInstrumentation<'_>,
    ) -> Mta {
        let hostname = format!("mx{}.{}", host.0, record.primary_tld);
        let config = record.profile.mta_config(&hostname, day);
        let link = Link::new(
            LatencyModel::ZERO,
            instrumentation.dns_faults,
            clock.clone(),
            instrumentation.metrics,
        );
        let mut rng = self.rng_root.fork_idx("mta", u64::from(host.0));
        if let Some(salt) = instrumentation.reroll {
            rng = rng.fork(salt);
        }
        let mut mta = Mta::with_dns_link(
            config,
            std::net::IpAddr::V4(record.ip),
            directory,
            link,
            clock,
            rng,
        );
        mta.set_dns_tracer(instrumentation.tracer);
        if let Some(cache) = instrumentation.policy_cache {
            mta.set_policy_cache(cache);
        }
        mta
    }
}

/// A population lookup surface: everything the probing, notification,
/// and reporting layers read about hosts and domains. The eager
/// [`World`](crate::World) answers from its vectors; a
/// [`SparsePopulation`] answers from a retained subset — which is how
/// streaming campaigns run their longitudinal rounds, snapshot, and
/// notification phases over O(tracked) memory.
pub trait Population: Sync {
    /// The population-free runtime surface.
    fn runtime(&self) -> &WorldRuntime;

    /// Look up a host. Panics if the host is outside the population
    /// (for a sparse population: outside the retained subset).
    fn host(&self, id: HostId) -> &HostRecord;

    /// Look up a domain. Panics outside the (retained) population.
    fn domain(&self, id: DomainId) -> &DomainRecord;

    /// Resolve a domain's mail hosts as of measurement day `day` — the
    /// paper's MX+A/AAAA resolution step. Short-lived spam domains lose
    /// their MX records before the final snapshot (§7.2).
    fn resolve_mail_hosts(&self, id: DomainId, day: u16) -> Vec<HostId> {
        let d = self.domain(id);
        if d.spam_churn && day >= Timeline::WINDOW2_START {
            return Vec::new();
        }
        d.hosts.clone()
    }

    /// Build an instrumented MTA for `host`; see
    /// [`WorldRuntime::build_mta_record`].
    fn build_mta_instrumented(
        &self,
        host: HostId,
        day: u16,
        directory: Directory,
        clock: SimClock,
        instrumentation: MtaInstrumentation<'_>,
    ) -> Mta {
        self.runtime()
            .build_mta_record(host, self.host(host), day, directory, clock, instrumentation)
    }

    /// Build the live MTA for `host` as of day `day` against the shared
    /// runtime surfaces — the [`Population`] spelling of
    /// [`World::build_mta`](crate::World::build_mta).
    fn build_mta(&self, host: HostId, day: u16) -> Mta {
        let runtime = self.runtime();
        self.build_mta_instrumented(
            host,
            day,
            runtime.directory.clone(),
            runtime.clock.clone(),
            MtaInstrumentation {
                dns_faults: spfail_netsim::FaultPlan::NONE,
                metrics: spfail_netsim::Metrics::new(),
                reroll: None,
                tracer: spfail_trace::Tracer::disabled(),
                policy_cache: None,
            },
        )
    }

    /// The number of hosts in the *full* generated population, or
    /// `None` when this population is a retained subset. The campaign
    /// engine's eager initial sweep needs the host universe; the
    /// streaming engine never asks (its sweep enumerates hosts from the
    /// [`LazyWorld`] stream instead).
    fn full_host_count(&self) -> Option<usize>;

    /// The initially-vulnerable-domain derivation shared by the eager
    /// and streaming campaign engines: every domain (in id order) with
    /// at least one host in `tracked` (which must be sorted). The full
    /// world scans all domains; a retained subset scans exactly the
    /// domains it kept — identical by construction, because the
    /// streaming driver retains precisely the domains this predicate
    /// selects.
    fn derive_vulnerable_domains(&self, tracked: &[HostId]) -> Vec<DomainId>;
}

/// A retained subset of the population, sharing the runtime surface.
///
/// Streaming campaigns keep only the hosts and domains the longitudinal
/// phases actually touch (tracked hosts and initially-vulnerable
/// domains, a few percent of the world); every other record exists only
/// for the lifetime of its [`DomainStep`].
pub struct SparsePopulation {
    /// The runtime surface.
    pub runtime: WorldRuntime,
    hosts: HashMap<HostId, HostRecord>,
    domains: HashMap<DomainId, DomainRecord>,
}

impl SparsePopulation {
    /// An empty sparse population over `runtime`.
    pub fn new(runtime: WorldRuntime) -> SparsePopulation {
        SparsePopulation {
            runtime,
            hosts: HashMap::new(),
            domains: HashMap::new(),
        }
    }

    /// Retain a host record.
    pub fn insert_host(&mut self, id: HostId, record: HostRecord) {
        self.hosts.insert(id, record);
    }

    /// Retain a domain record.
    pub fn insert_domain(&mut self, id: DomainId, record: DomainRecord) {
        self.domains.insert(id, record);
    }

    /// Whether a host is retained.
    pub fn has_host(&self, id: HostId) -> bool {
        self.hosts.contains_key(&id)
    }

    /// Number of retained hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of retained domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }
}

impl Population for SparsePopulation {
    fn runtime(&self) -> &WorldRuntime {
        &self.runtime
    }

    fn host(&self, id: HostId) -> &HostRecord {
        self.hosts
            .get(&id)
            .expect("streaming phases only touch retained hosts")
    }

    fn domain(&self, id: DomainId) -> &DomainRecord {
        self.domains
            .get(&id)
            .expect("streaming phases only touch retained domains")
    }

    fn full_host_count(&self) -> Option<usize> {
        None
    }

    fn derive_vulnerable_domains(&self, tracked: &[HostId]) -> Vec<DomainId> {
        // Sorted after collection, so the HashMap's iteration order
        // never reaches the result.
        let mut ids: Vec<DomainId> = self
            .domains
            .iter()
            .filter(|(_, d)| d.hosts.iter().any(|h| tracked.binary_search(h).is_ok()))
            .map(|(&id, _)| id)
            .collect();
        ids.sort();
        ids
    }
}

/// A population with *no* records at all: just the runtime surface.
///
/// The streaming driver's sweep-phase probers run over this — every
/// host record reaches them from the synthesis stream through the
/// record-passing probe methods, so a lookup would be a bug, and the
/// panic message says which one.
pub struct RuntimePopulation(pub WorldRuntime);

impl Population for RuntimePopulation {
    fn runtime(&self) -> &WorldRuntime {
        &self.0
    }

    fn host(&self, _id: HostId) -> &HostRecord {
        // lint:allow(panic-explicit) trait-contract misuse: the streamed engine passes records by value, so a lookup here is a caller bug the message names
        panic!("RuntimePopulation holds no host records: the streamed sweep passes records")
    }

    fn domain(&self, _id: DomainId) -> &DomainRecord {
        // lint:allow(panic-explicit) trait-contract misuse: the streamed engine passes records by value, so a lookup here is a caller bug the message names
        panic!("RuntimePopulation holds no domain records: the streamed sweep passes records")
    }

    fn full_host_count(&self) -> Option<usize> {
        None
    }

    fn derive_vulnerable_domains(&self, _tracked: &[HostId]) -> Vec<DomainId> {
        // lint:allow(panic-explicit) trait-contract misuse: domain retention runs on the replay passes, never through this accessor
        panic!("RuntimePopulation cannot derive domains: retention happens on the replay passes")
    }
}

impl Population for crate::world::World {
    fn runtime(&self) -> &WorldRuntime {
        crate::world::World::runtime(self)
    }

    fn host(&self, id: HostId) -> &HostRecord {
        crate::world::World::host(self, id)
    }

    fn domain(&self, id: DomainId) -> &DomainRecord {
        crate::world::World::domain(self, id)
    }

    fn full_host_count(&self) -> Option<usize> {
        Some(self.hosts.len())
    }

    fn derive_vulnerable_domains(&self, tracked: &[HostId]) -> Vec<DomainId> {
        (0..self.domains.len() as u32)
            .map(DomainId)
            .filter(|&d| {
                self.domain(d)
                    .hosts
                    .iter()
                    .any(|h| tracked.binary_search(h).is_ok())
            })
            .collect()
    }
}

/// One step of lazy synthesis: a domain, its serving hosts, and the
/// host records this domain caused to be created.
pub struct DomainStep {
    /// The domain's id (steps arrive in id order).
    pub id: DomainId,
    /// The full domain record, `hosts` filled in.
    pub domain: DomainRecord,
    /// Id of the first freshly created host (fresh ids are consecutive).
    pub first_fresh: HostId,
    /// Host records created by this domain, in [`HostId`] order starting
    /// at `first_fresh`. A domain served from a shared-hosting pool
    /// creates at most one fresh host (the pool refill); its
    /// `domain.hosts` may instead reference a host from an earlier step.
    pub fresh: Vec<HostRecord>,
}

/// The provider TLD table (§7.5's twenty top email providers).
const PROVIDER_TLDS: [&str; 20] = [
    "com", "com", "kr", "ru", "pl", "cz", "com", "net", "com", "jp", "de", "fr", "com", "uk",
    "com", "in", "br", "com", "it", "com",
];

/// Lazily synthesizes the world population, domain by domain.
///
/// See the module docs for the identity contract with
/// [`World::generate`](crate::World::generate).
pub struct LazyWorld {
    runtime: WorldRuntime,
    /// Copy of the configuration, split off from `runtime` so the forge
    /// can borrow rates and RNG streams disjointly.
    config: WorldConfig,
    // Domain plan.
    n_alexa: usize,
    n_two_week: usize,
    n_domains: usize,
    n_providers: usize,
    cutoff: usize,
    alexa_tlds: TldSampler,
    two_week_tlds: TldSampler,
    /// Precomputed 2-Week rank per domain index — the rank shuffle is
    /// the one global draw in generation. O(two-week set) `u32`s.
    two_week_rank: HashMap<u32, u32>,
    // Sequential per-domain RNG streams, consumed in domain-id order.
    tld_rng: SimRng,
    churn_rng: SimRng,
    mx_rng: SimRng,
    next_domain: usize,
    // Host forge state (the former eager `Builder`, pools reduced to
    // their live cursor).
    rng: SimRng,
    next_host: u32,
    next_ip: u32,
    parking_last: Option<HostId>,
    parking_slots: u32,
    shared_last: Option<HostId>,
    shared_slots: u32,
    // Per-step scratch, drained into the emitted `DomainStep`.
    first_fresh: u32,
    fresh: Vec<HostRecord>,
}

impl LazyWorld {
    /// Plan lazy synthesis for `config`.
    pub fn new(config: WorldConfig) -> LazyWorld {
        let rng = SimRng::new(config.seed);
        let n_alexa = config.scaled(config.alexa_total);
        let n_two_week = config.scaled(config.two_week_total);
        let cutoff = config.top1000_cutoff();
        let n_providers = config.top_providers.min(PROVIDER_TLDS.len());

        // The 2-Week overlap picks and rank shuffle, exactly as the
        // eager generator draws them (same RNG streams, same order).
        let overlap_total = config.scaled(config.overlap_toplist_two_week).min(n_two_week);
        let overlap_1000 = config
            .scaled(config.overlap_top1000_two_week)
            .min(overlap_total)
            .min(cutoff);
        let mut overlap_rng = rng.fork("overlap");
        let mut picks = pick_distinct(&mut overlap_rng, cutoff.min(n_alexa), overlap_1000);
        if n_alexa > cutoff {
            let lower = pick_distinct(
                &mut overlap_rng,
                n_alexa - cutoff,
                overlap_total - overlap_1000,
            );
            picks.extend(lower.into_iter().map(|i| i + cutoff));
        }
        let mut two_week_members: Vec<usize> = picks;
        let n_two_week_only = n_two_week.saturating_sub(two_week_members.len());
        for i in 0..n_two_week_only {
            two_week_members.push(n_alexa + i);
        }
        let mut rank_rng = rng.fork("two-week-ranks");
        let mut shuffled = two_week_members.clone();
        rank_rng.shuffle(&mut shuffled);
        let two_week_rank: HashMap<u32, u32> = shuffled
            .iter()
            .enumerate()
            .map(|(rank0, idx)| (*idx as u32, rank0 as u32 + 1))
            .collect();

        let alexa_tlds = TldSampler::alexa(&config);
        let two_week_tlds = TldSampler::two_week(&config);
        LazyWorld {
            config: config.clone(),
            n_alexa,
            n_two_week,
            n_domains: n_alexa + n_two_week_only,
            n_providers,
            cutoff,
            alexa_tlds,
            two_week_tlds,
            two_week_rank,
            tld_rng: rng.fork("alexa-tlds"),
            churn_rng: rng.fork("churn"),
            mx_rng: rng.fork("mx"),
            next_domain: 0,
            rng: rng.fork("hosts"),
            next_host: 0,
            next_ip: u32::from(Ipv4Addr::new(11, 0, 0, 1)),
            parking_last: None,
            parking_slots: 0,
            shared_last: None,
            shared_slots: 0,
            first_fresh: 0,
            fresh: Vec::new(),
            runtime: WorldRuntime::new(config),
        }
    }

    /// Total number of domains the stream will emit.
    pub fn domain_count(&self) -> usize {
        self.n_domains
    }

    /// The runtime surface (clock, DNS directory, RNG root).
    pub fn runtime(&self) -> &WorldRuntime {
        &self.runtime
    }

    /// Consume the stream, keeping the runtime surface.
    pub fn into_runtime(self) -> WorldRuntime {
        self.runtime
    }

    // --- The host forge (the eager generator's `Builder`, verbatim     ---
    // --- logic; pools keep only their live cursor).                    ---

    fn alloc_ip(&mut self) -> Ipv4Addr {
        let ip = Ipv4Addr::from(self.next_ip);
        self.next_ip += 1;
        ip
    }

    fn push_host(
        &mut self,
        set: SetMembership,
        tld: &str,
        rank_fraction: f64,
        refuse_override: Option<f64>,
        serves_top1000: bool,
    ) -> HostId {
        let rates = match set {
            SetMembership::Alexa => &self.config.alexa_rates,
            SetMembership::TwoWeek => &self.config.two_week_rates,
            SetMembership::TopProvider => &self.config.top_provider_rates,
        };
        let mut profile = sample_profile(
            &self.config,
            rates,
            tld,
            rank_fraction,
            refuse_override,
            &mut self.rng,
        );
        if serves_top1000 && profile.impls.iter().any(|b| b.is_vulnerable()) {
            // §7.6: Alexa Top 1000 hosts go inconclusive early (blacklist)
            // and only the final snapshot sees the few that patched.
            profile.blacklist_after = Some(4 + self.rng.below(5) as u32);
            let (day, cause) =
                sample_patch(&self.config, tld, true, profile.distro, &mut self.rng);
            profile.patch_day = day;
            profile.patch_cause = cause;
        }
        let ip = self.alloc_ip();
        let geo = geo::locate(tld, &mut self.rng);
        self.fresh.push(HostRecord {
            ip,
            geo,
            primary_set: set,
            primary_tld: tld.to_string(),
            serves_top1000,
            profile,
        });
        let id = HostId(self.next_host);
        self.next_host += 1;
        id
    }

    /// A parked/no-MX host: almost always refuses connections.
    fn parking_host(&mut self, tld: &str) -> HostId {
        if self.parking_slots == 0 {
            let id = self.push_host(SetMembership::Alexa, tld, 0.9, Some(0.92), false);
            self.parking_last = Some(id);
            self.parking_slots = 4 + self.rng.below(6) as u32;
        }
        self.parking_slots -= 1;
        self.parking_last.expect("pool refilled above")
    }

    /// Mail hosts for an ordinary domain: either from a shared-hosting
    /// pool or dedicated server(s).
    fn mail_hosts(
        &mut self,
        set: SetMembership,
        tld: &str,
        rank_fraction: f64,
        serves_top1000: bool,
    ) -> Vec<HostId> {
        // Top-1000 domains self-host; sharing is a long-tail phenomenon.
        if !serves_top1000 && self.rng.chance(0.68) {
            if self.shared_slots == 0 {
                let id = self.push_host(set, tld, rank_fraction, Some(0.22), false);
                self.shared_last = Some(id);
                let span = (self.config.shared_hosting_rate * 4.0) as u32 + 1;
                self.shared_slots = 2 + self.rng.below(u64::from(span)) as u32;
            }
            self.shared_slots -= 1;
            return vec![self.shared_last.expect("pool refilled above")];
        }
        let count = match self.rng.below(20) {
            0..=13 => 1,
            14..=18 => 2,
            _ => 3,
        };
        (0..count)
            .map(|_| self.push_host(set, tld, rank_fraction, None, serves_top1000))
            .collect()
    }

    /// Hosts for a top email provider: several addresses, no refusals.
    fn provider_hosts(&mut self, tld: &str, provider_index: usize) -> Vec<HostId> {
        let count = 2 + self.rng.below(4) as usize;
        // §7.5 names exactly four vulnerable providers; the rest are kept
        // explicitly clean so the reference-set counts stay calibrated.
        let vulnerable = provider_index < self.config.vulnerable_top_providers;
        let first_fresh = self.first_fresh;
        (0..count)
            .map(|_| {
                let id = self.push_host(SetMembership::TopProvider, tld, 0.1, Some(0.0), true);
                let blacklist = Some(5 + self.rng.below(5) as u32);
                let profile = &mut self.fresh[(id.0 - first_fresh) as usize].profile;
                if vulnerable {
                    profile.connect = ConnectPolicy::Accept;
                    profile.quirk = spfail_mta::SmtpQuirk::None;
                    if profile.spf_stage == SpfStage::Never {
                        profile.spf_stage = SpfStage::OnData;
                    }
                    profile.impls = vec![MacroBehavior::VulnerableLibSpf2];
                    // §7.5: none of the vulnerable providers patched during
                    // the four months of measurement.
                    profile.patch_day = None;
                    profile.patch_cause = None;
                    profile.blacklist_after = blacklist;
                } else {
                    for b in &mut profile.impls {
                        if b.is_vulnerable() {
                            *b = MacroBehavior::Compliant;
                        }
                    }
                    profile.patch_day = None;
                    profile.patch_cause = None;
                }
                id
            })
            .collect()
    }
}

impl Iterator for LazyWorld {
    type Item = DomainStep;

    fn next(&mut self) -> Option<DomainStep> {
        let idx = self.next_domain;
        if idx >= self.n_domains {
            return None;
        }
        self.next_domain += 1;

        // --- The domain record (the eager generator's first four       ---
        // --- passes, fused per domain; each RNG stream is its own       ---
        // --- fork, so per-stream draw order is domain-id order in       ---
        // --- both engines).                                             ---
        let mut record = if idx < self.n_alexa {
            let rank = idx + 1;
            // The eager generator samples a TLD for every Alexa rank and
            // then *overwrites* provider ranks; the draw must still be
            // consumed here.
            let tld = self.alexa_tlds.sample(&mut self.tld_rng);
            if rank >= 6 && rank < 6 + self.n_providers {
                let i = rank - 6;
                let tld = PROVIDER_TLDS[i];
                DomainRecord {
                    name: format!("mailprov{i}.{tld}"),
                    tld: tld.to_string(),
                    alexa_rank: Some(rank as u32),
                    two_week_rank: None,
                    top_provider: true,
                    has_mx: true,
                    spam_churn: false,
                    hosts: Vec::new(),
                }
            } else {
                DomainRecord {
                    name: format!("a{rank}.{tld}"),
                    tld: tld.to_string(),
                    alexa_rank: Some(rank as u32),
                    two_week_rank: None,
                    top_provider: false,
                    has_mx: true,
                    spam_churn: false,
                    hosts: Vec::new(),
                }
            }
        } else {
            let i = idx - self.n_alexa;
            let tld = self.two_week_tlds.sample(&mut self.tld_rng);
            DomainRecord {
                name: format!("m{i}.{tld}"),
                tld: tld.to_string(),
                alexa_rank: None,
                two_week_rank: None,
                top_provider: false,
                has_mx: true,
                spam_churn: self.churn_rng.chance(self.config.spam_churn_rate),
                hosts: Vec::new(),
            }
        };
        record.two_week_rank = self.two_week_rank.get(&(idx as u32)).copied();
        if record.alexa_rank.is_some()
            && record.two_week_rank.is_none()
            && !record.top_provider
            && self.mx_rng.chance(self.config.no_mx_rate)
        {
            record.has_mx = false;
        }

        // --- Hosting (the eager generator's fifth pass).               ---
        self.first_fresh = self.next_host;
        self.fresh = Vec::new();
        let set = record.primary_set();
        let rank_fraction = match (record.alexa_rank, record.two_week_rank) {
            (Some(r), _) => f64::from(r) / self.n_alexa.max(1) as f64,
            (None, Some(r)) => f64::from(r) / self.n_two_week.max(1) as f64,
            (None, None) => 0.75,
        };
        let in_top1000 = record.in_alexa_top(self.cutoff);
        let tld = record.tld.clone();
        let host_ids = if record.top_provider {
            // Providers occupy ranks 6..6+P, i.e. indices 5..5+P.
            self.provider_hosts(&tld, idx - 5)
        } else if !record.has_mx {
            vec![self.parking_host(&tld)]
        } else {
            self.mail_hosts(set, &tld, rank_fraction, in_top1000)
        };
        record.hosts = host_ids;

        Some(DomainStep {
            id: DomainId(idx as u32),
            domain: record,
            first_fresh: HostId(self.first_fresh),
            fresh: std::mem::take(&mut self.fresh),
        })
    }
}

/// Pick `count` distinct indices in `[0, bound)`.
///
/// Deterministic for a given `SimRng`: the sparse branch sorts the
/// `HashSet` draw before returning (iteration order of a `HashSet`
/// depends on the per-process hash seed — the ISSUE-4 bug class), and
/// the dense branch is a plain seeded shuffle.
pub(crate) fn pick_distinct(rng: &mut SimRng, bound: usize, count: usize) -> Vec<usize> {
    let count = count.min(bound);
    if count == 0 || bound == 0 {
        return Vec::new();
    }
    if count * 3 >= bound {
        let mut all: Vec<usize> = (0..bound).collect();
        rng.shuffle(&mut all);
        all.truncate(count);
        return all;
    }
    let mut seen = std::collections::HashSet::new();
    while seen.len() < count {
        seen.insert(rng.below(bound as u64) as usize);
    }
    // HashSet iteration order depends on the per-process hash seed; a
    // sort keeps the world identical across runs for the same SimRng.
    let mut out: Vec<usize> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn lazy_stream_matches_eager_world() {
        let config = WorldConfig {
            scale: 0.005,
            ..WorldConfig::small(41)
        };
        let world = World::generate(config.clone());
        let mut hosts_seen = 0usize;
        let mut domains_seen = 0usize;
        for step in LazyWorld::new(config) {
            let d = world.domain(step.id);
            assert_eq!(step.domain.name, d.name);
            assert_eq!(step.domain.tld, d.tld);
            assert_eq!(step.domain.alexa_rank, d.alexa_rank);
            assert_eq!(step.domain.two_week_rank, d.two_week_rank);
            assert_eq!(step.domain.top_provider, d.top_provider);
            assert_eq!(step.domain.has_mx, d.has_mx);
            assert_eq!(step.domain.spam_churn, d.spam_churn);
            assert_eq!(step.domain.hosts, d.hosts);
            assert_eq!(step.first_fresh.0 as usize, hosts_seen);
            for (offset, fresh) in step.fresh.iter().enumerate() {
                let id = HostId(step.first_fresh.0 + offset as u32);
                let h = world.host(id);
                assert_eq!(fresh.ip, h.ip);
                assert_eq!(fresh.geo, h.geo);
                assert_eq!(fresh.primary_tld, h.primary_tld);
                assert_eq!(fresh.profile.patch_day, h.profile.patch_day);
                assert_eq!(fresh.profile.impls, h.profile.impls);
            }
            hosts_seen += step.fresh.len();
            domains_seen += 1;
        }
        assert_eq!(domains_seen, world.domains.len());
        assert_eq!(hosts_seen, world.hosts.len());
    }

    #[test]
    fn pick_distinct_is_sorted_and_deterministic() {
        // Regression pin for the ISSUE-4 bug class: the sparse branch
        // draws into a HashSet whose iteration order is per-process
        // random; the result must not depend on it.
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let x = pick_distinct(&mut a, 10_000, 50);
        let y = pick_distinct(&mut b, 10_000, 50);
        assert_eq!(x, y);
        let mut sorted = x.clone();
        sorted.sort_unstable();
        assert_eq!(x, sorted, "sparse branch must return sorted picks");
        assert_eq!(x.len(), 50);
    }

    #[test]
    fn sparse_population_answers_for_retained_records() {
        let config = WorldConfig {
            scale: 0.002,
            ..WorldConfig::small(43)
        };
        let world = World::generate(config.clone());
        let mut sparse = SparsePopulation::new(WorldRuntime::new(config));
        let d = DomainId(0);
        sparse.insert_domain(d, world.domain(d).clone());
        for &h in &world.domain(d).hosts {
            sparse.insert_host(h, world.host(h).clone());
        }
        let h = world.domain(d).hosts[0];
        assert_eq!(Population::host(&sparse, h).ip, world.host(h).ip);
        assert_eq!(
            Population::resolve_mail_hosts(&sparse, d, 0),
            world.resolve_mail_hosts(d, 0)
        );
        assert_eq!(
            sparse.runtime().zone_origin.to_ascii(),
            world.zone_origin.to_ascii()
        );
    }
}
