//! Domain population records and TLD sampling.

use spfail_netsim::SimRng;

use crate::config::WorldConfig;
use crate::tld::{ALEXA_TLD_WEIGHTS, MISC_TLDS, TWO_WEEK_TLD_WEIGHTS};

/// Index of a domain in [`crate::world::World::domains`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u32);

/// Which measurement set a domain (or a host's primary domain) belongs to;
/// used to pick the per-set behaviour rates of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetMembership {
    /// The Alexa Top List.
    Alexa,
    /// The 2-Week MX set.
    TwoWeek,
    /// The Top Email Providers reference set.
    TopProvider,
}

/// One domain in the simulated population.
#[derive(Debug, Clone)]
pub struct DomainRecord {
    /// The domain name (synthetic, unique).
    pub name: String,
    /// Its TLD.
    pub tld: String,
    /// Rank in the Alexa Top List (1-based), if a member.
    pub alexa_rank: Option<u32>,
    /// Rank by MX-query frequency in the 2-Week MX set (1-based), if a
    /// member.
    pub two_week_rank: Option<u32>,
    /// Whether this is one of the Top Email Providers.
    pub top_provider: bool,
    /// Whether the domain publishes MX records (no-MX domains fall back to
    /// their A record per RFC 5321 and mostly refuse connections).
    pub has_mx: bool,
    /// Whether this is a short-lived spam domain whose MX records vanish
    /// before the final snapshot (§7.2).
    pub spam_churn: bool,
    /// The server addresses hosting this domain's mail.
    pub hosts: Vec<crate::hosting::HostId>,
}

impl DomainRecord {
    /// Whether the domain is in the Alexa Top `cutoff` group.
    pub fn in_alexa_top(&self, cutoff: usize) -> bool {
        self.alexa_rank.is_some_and(|r| (r as usize) <= cutoff)
    }

    /// Whether the domain is in the 2-Week MX set.
    pub fn in_two_week(&self) -> bool {
        self.two_week_rank.is_some()
    }

    /// Whether the domain is in the Alexa Top List at all.
    pub fn in_alexa(&self) -> bool {
        self.alexa_rank.is_some()
    }

    /// The host's primary set for rate selection: top providers first,
    /// then Alexa membership, then 2-Week.
    pub fn primary_set(&self) -> SetMembership {
        if self.top_provider {
            SetMembership::TopProvider
        } else if self.in_alexa() {
            SetMembership::Alexa
        } else {
            SetMembership::TwoWeek
        }
    }
}

/// A weighted TLD sampler for one population.
pub struct TldSampler {
    tlds: Vec<&'static str>,
    weights: Vec<f64>,
}

impl TldSampler {
    /// The Alexa Top List TLD mix: Table 2's fifteen heads plus a
    /// calibrated long tail.
    pub fn alexa(config: &WorldConfig) -> TldSampler {
        Self::build(&ALEXA_TLD_WEIGHTS, config.alexa_total as f64)
    }

    /// The 2-Week MX TLD mix.
    pub fn two_week(config: &WorldConfig) -> TldSampler {
        Self::build(&TWO_WEEK_TLD_WEIGHTS, config.two_week_total as f64)
    }

    fn build(head: &[(&'static str, u32)], population: f64) -> TldSampler {
        let mut tlds: Vec<&'static str> = head.iter().map(|(t, _)| *t).collect();
        let mut weights: Vec<f64> = head.iter().map(|(_, w)| f64::from(*w)).collect();
        // The unlisted remainder is spread across the misc tail in
        // proportion to the tail's own weights.
        let head_total: f64 = weights.iter().sum();
        let remainder = (population - head_total).max(0.0);
        let tail_total: f64 = MISC_TLDS.iter().map(|(_, w)| f64::from(*w)).sum();
        for (tld, weight) in MISC_TLDS {
            if tlds.contains(&tld) {
                continue;
            }
            tlds.push(tld);
            weights.push(remainder * f64::from(weight) / tail_total);
        }
        TldSampler { tlds, weights }
    }

    /// Sample one TLD.
    pub fn sample(&self, rng: &mut SimRng) -> &'static str {
        let idx = rng.pick_weighted(&self.weights).expect("non-empty weights");
        self.tlds[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexa_sampler_matches_table2_proportions() {
        let config = WorldConfig::default();
        let sampler = TldSampler::alexa(&config);
        let mut rng = SimRng::new(1);
        let n = 20_000;
        let com = (0..n)
            .filter(|_| sampler.sample(&mut rng) == "com")
            .count() as f64
            / n as f64;
        // Paper: 230,801 / 418,842 = 55.1%.
        assert!((0.52..0.59).contains(&com), "com share {com}");
    }

    #[test]
    fn two_week_sampler_has_edu_and_gov() {
        let config = WorldConfig::default();
        let sampler = TldSampler::two_week(&config);
        let mut rng = SimRng::new(2);
        let samples: Vec<&str> = (0..5_000).map(|_| sampler.sample(&mut rng)).collect();
        assert!(samples.contains(&"edu"));
        assert!(samples.contains(&"gov") || samples.contains(&"us"));
    }

    #[test]
    fn misc_tail_is_reachable() {
        let config = WorldConfig::default();
        let sampler = TldSampler::alexa(&config);
        let mut rng = SimRng::new(3);
        let samples: Vec<&str> = (0..50_000).map(|_| sampler.sample(&mut rng)).collect();
        // Table 5 TLDs must occur so the patch-rate table is populated.
        for tld in ["za", "gr", "tw", "by"] {
            assert!(samples.contains(&tld), "missing tail tld {tld}");
        }
    }

    #[test]
    fn membership_predicates() {
        let d = DomainRecord {
            name: "a5.com".into(),
            tld: "com".into(),
            alexa_rank: Some(5),
            two_week_rank: Some(12),
            top_provider: false,
            has_mx: true,
            spam_churn: false,
            hosts: vec![],
        };
        assert!(d.in_alexa());
        assert!(d.in_alexa_top(1000));
        assert!(!d.in_alexa_top(4));
        assert!(d.in_two_week());
        assert_eq!(d.primary_set(), SetMembership::Alexa);
    }
}
