//! World calibration constants.
//!
//! Every number here is traceable to a paper exhibit; the doc comment on
//! each field says which. `scale` shrinks populations without touching
//! rates, so tests and benchmarks run the same world in miniature.

/// Per-set behavioural rates (address-level, Table 3 columns).
#[derive(Debug, Clone, Copy)]
pub struct SetRates {
    /// Fraction of addresses refusing TCP connections.
    pub refuse: f64,
    /// Fraction of non-refusing addresses failing mid-SMTP in the NoMsg
    /// test (the "SMTP Failure" row).
    pub smtp_failure: f64,
    /// Fraction of addresses validating SPF at `MAIL FROM` (measurable by
    /// NoMsg).
    pub spf_on_mailfrom: f64,
    /// Fraction validating SPF only at end-of-data (measurable by
    /// BlankMsg).
    pub spf_on_data: f64,
    /// Fraction of BlankMsg-tested addresses failing at DATA/message.
    pub blankmsg_failure: f64,
    /// P(vulnerable libSPF2 | host validates SPF) — Table 4.
    pub vulnerable_given_spf: f64,
    /// P(erroneous-but-not-vulnerable expansion | validates SPF) — §7.9.
    pub erroneous_given_spf: f64,
}

/// Full world configuration.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Root seed; the entire world is a pure function of it.
    pub seed: u64,
    /// Population scale: 1.0 reproduces the paper's set sizes; tests use
    /// much smaller values. Rates are scale-invariant.
    pub scale: f64,

    /// Alexa Top List size at scale 1.0 (418,842 per §5.2).
    pub alexa_total: usize,
    /// 2-Week MX size at scale 1.0 (22,911 per §5.2).
    pub two_week_total: usize,
    /// Domains in both the Alexa Top List and 2-Week MX (2,922, Table 1).
    pub overlap_toplist_two_week: usize,
    /// Domains in both the Alexa Top 1000 and 2-Week MX (135, Table 1).
    pub overlap_top1000_two_week: usize,
    /// The "Top Email Providers" reference set size (20, Table 3).
    pub top_providers: usize,
    /// How many top providers are vulnerable (4 named in §7.5).
    pub vulnerable_top_providers: usize,
    /// Vulnerable domains within the Alexa Top 1000 (28, §7.6).
    pub vulnerable_top1000_domains: usize,

    /// Behaviour rates for Alexa-hosted addresses (Table 3, left).
    pub alexa_rates: SetRates,
    /// Behaviour rates for 2-Week-MX-hosted addresses (Table 3, middle).
    pub two_week_rates: SetRates,
    /// Behaviour rates for the top-provider addresses (Table 3, right).
    pub top_provider_rates: SetRates,

    /// Fraction of SPF-validating hosts running two distinct SPF
    /// implementations (≥2 expansion patterns; 6% per §7.9).
    pub multi_impl_rate: f64,
    /// Fraction of domains without MX records (fall back to A per
    /// RFC 5321); these dominate the refused-connection pool (§7.1).
    pub no_mx_rate: f64,
    /// Mean domains per shared-hosting server; drives the address/domain
    /// fan-in (418K domains onto 175K addresses).
    pub shared_hosting_rate: f64,
    /// Fraction of hosts that greylist first contacts.
    pub greylist_rate: f64,
    /// Fraction of vulnerable hosts that eventually blacklist the prober
    /// (the Figure 5 conclusiveness decay).
    pub blacklist_rate: f64,
    /// Fraction of hosts violating RFC 5321 §4.5.1 by rejecting
    /// `postmaster@` — the dominant §7.7 bounce source.
    pub postmaster_missing_rate: f64,
    /// Per-probe chance of a transient, inconclusive measurement.
    pub flaky_rate: f64,
    /// Fraction of 2-Week-MX-only domains that are short-lived spam
    /// domains whose MX records vanish by February (§7.2).
    pub spam_churn_rate: f64,

    /// Rank multiplier span for Figure 4: the most-lowly-ranked domains
    /// are this much more likely to be vulnerable than the top ranks (~2x).
    pub rank_vulnerability_span: f64,
    /// Fraction of patch events attributable to distro auto-updates (the
    /// rest are manual admin action).
    pub auto_update_share: f64,
    /// Patch probability multiplier for Alexa Top 1000 hosts (under 10%
    /// patched per Figure 2).
    pub top1000_patch_multiplier: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x5bf2_a117,
            scale: 1.0,
            alexa_total: 418_842,
            two_week_total: 22_911,
            overlap_toplist_two_week: 2_922,
            overlap_top1000_two_week: 135,
            top_providers: 20,
            vulnerable_top_providers: 4,
            vulnerable_top1000_domains: 28,
            alexa_rates: SetRates {
                refuse: 0.47,
                smtp_failure: 0.28,
                spf_on_mailfrom: 0.14,
                spf_on_data: 0.46,
                blankmsg_failure: 0.03,
                vulnerable_given_spf: 1.0 / 6.0,
                erroneous_given_spf: 0.042,
            },
            two_week_rates: SetRates {
                refuse: 0.25,
                smtp_failure: 0.20,
                spf_on_mailfrom: 0.24,
                spf_on_data: 0.40,
                blankmsg_failure: 0.05,
                vulnerable_given_spf: 0.10,
                erroneous_given_spf: 0.045,
            },
            top_provider_rates: SetRates {
                refuse: 0.0,
                smtp_failure: 0.10,
                spf_on_mailfrom: 0.25,
                spf_on_data: 0.50,
                blankmsg_failure: 0.15,
                vulnerable_given_spf: 0.20,
                erroneous_given_spf: 0.05,
            },
            multi_impl_rate: 0.06,
            no_mx_rate: 0.30,
            shared_hosting_rate: 2.4,
            greylist_rate: 0.08,
            blacklist_rate: 0.35,
            postmaster_missing_rate: 0.25,
            flaky_rate: 0.08,
            spam_churn_rate: 0.12,
            rank_vulnerability_span: 2.4,
            auto_update_share: 0.55,
            top1000_patch_multiplier: 0.5,
        }
    }
}

impl WorldConfig {
    /// A small world for tests: same rates, ~1/100 the population.
    pub fn small(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            scale: 0.01,
            ..WorldConfig::default()
        }
    }

    /// Scale a population count.
    pub fn scaled(&self, full: usize) -> usize {
        ((full as f64) * self.scale).round().max(1.0) as usize
    }

    /// The scaled Alexa Top N cutoff (1000 at full scale).
    pub fn top1000_cutoff(&self) -> usize {
        self.scaled(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_populations() {
        let config = WorldConfig::default();
        assert_eq!(config.alexa_total, 418_842);
        assert_eq!(config.two_week_total, 22_911);
        assert_eq!(config.overlap_toplist_two_week, 2_922);
        assert_eq!(config.overlap_top1000_two_week, 135);
        assert_eq!(config.top_providers, 20);
    }

    #[test]
    fn scaling() {
        let config = WorldConfig::small(1);
        assert_eq!(config.scaled(418_842), 4_188);
        assert_eq!(config.scaled(10), 1, "never rounds to zero");
        assert_eq!(config.top1000_cutoff(), 10);
    }

    #[test]
    fn rates_are_probabilities() {
        let config = WorldConfig::default();
        for rates in [
            config.alexa_rates,
            config.two_week_rates,
            config.top_provider_rates,
        ] {
            for p in [
                rates.refuse,
                rates.smtp_failure,
                rates.spf_on_mailfrom,
                rates.spf_on_data,
                rates.blankmsg_failure,
                rates.vulnerable_given_spf,
                rates.erroneous_given_spf,
            ] {
                assert!((0.0..=1.0).contains(&p));
            }
            assert!(rates.spf_on_mailfrom + rates.spf_on_data <= 1.0);
        }
    }
}
