//! Host records, behaviour profiles, and the patch-day model.

use std::net::Ipv4Addr;

use spfail_libspf2::MacroBehavior;
use spfail_mta::{ConnectPolicy, MtaConfig, SmtpQuirk, SpfStage};
use spfail_netsim::SimRng;

use crate::config::{SetRates, WorldConfig};
use crate::domains::SetMembership;
use crate::geo::GeoPoint;
use crate::pkgmgr::PackageManager;
use crate::timeline::Timeline;
use crate::tld;

/// Index of a host in [`crate::world::World::hosts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Why a host patched (pre-sampled ground truth the reports correlate
/// against).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatchCause {
    /// The distro shipped a fixed package and the host auto-updated.
    AutoUpdate(PackageManager),
    /// An administrator proactively tracking updates (window-1 patching).
    ProactiveAdmin,
    /// The private notification email (§7.7 — rare).
    PrivateNotification,
    /// Admin action following the public CVE disclosure.
    PublicDisclosure,
}

/// Full behavioural profile of one host.
#[derive(Debug, Clone)]
pub struct HostProfile {
    /// Connection acceptance.
    pub connect: ConnectPolicy,
    /// Mid-SMTP failure behaviour.
    pub quirk: SmtpQuirk,
    /// When SPF validation runs.
    pub spf_stage: SpfStage,
    /// The SPF implementation(s).
    pub impls: Vec<MacroBehavior>,
    /// Greylisting on first contact.
    pub greylist: bool,
    /// Recipient-ladder depth rejected before acceptance.
    pub rcpt_reject_first_n: u8,
    /// Whether the host rejects `postmaster@` (RFC violation, §7.7).
    pub reject_postmaster: bool,
    /// Probe count after which the host blacklists the prober.
    pub blacklist_after: Option<u32>,
    /// Per-probe chance of a transient failure (inconclusive round).
    pub flaky: f64,
    /// The distro channel the host's libSPF2 package comes from.
    pub distro: PackageManager,
    /// Day the host patches (may exceed [`Timeline::END`], i.e. after the
    /// study); `None` = never.
    pub patch_day: Option<u16>,
    /// Why it patches.
    pub patch_cause: Option<PatchCause>,
}

impl HostProfile {
    /// Whether the host runs a vulnerable libSPF2 at the given day.
    pub fn is_vulnerable_on(&self, day: u16) -> bool {
        self.impls.iter().any(|b| b.is_vulnerable())
            && self.patch_day.map_or(true, |patch| day < patch)
    }

    /// Whether the host was vulnerable at the initial measurement.
    pub fn initially_vulnerable(&self) -> bool {
        self.is_vulnerable_on(Timeline::INITIAL)
    }

    /// Whether the host validates SPF at all.
    pub fn validates_spf(&self) -> bool {
        self.spf_stage != SpfStage::Never
    }

    /// The patch-event horizon query: whether the host's observable SPF
    /// status can differ between a probe on day `after` and one on day
    /// `upto`. The only day-keyed event in a host's behaviour model is
    /// its patch day, so the answer is whether that day falls in
    /// `(after, upto]`.
    pub fn status_event_in(&self, after: u16, upto: u16) -> bool {
        self.patch_day.is_some_and(|patch| after < patch && patch <= upto)
    }

    /// Whether re-probing this host is guaranteed to repeat the last
    /// observation absent a patch event: a flaky host rolls fresh
    /// transient failures every probe, and a blacklisting host changes
    /// its answer once the probe counter crosses its threshold, so
    /// neither can be skipped by an incremental round.
    pub fn reprobe_is_deterministic(&self) -> bool {
        self.flaky <= 0.0 && self.blacklist_after.is_none()
    }

    /// Materialise an [`MtaConfig`] for this host as of `day`.
    pub fn mta_config(&self, hostname: &str, day: u16) -> MtaConfig {
        let mut config = MtaConfig {
            hostname: hostname.to_string(),
            connect: self.connect,
            quirk: self.quirk,
            spf_stage: self.spf_stage,
            spf_impls: self.impls.clone(),
            greylist: self.greylist,
            reject_on_spf_fail: true,
            blacklist_after: self.blacklist_after,
            reject_postmaster: self.reject_postmaster,
        };
        if self.patch_day.is_some_and(|patch| day >= patch) {
            config.apply_patch();
        }
        config
    }
}

/// One server address in the simulated Internet.
#[derive(Debug, Clone)]
pub struct HostRecord {
    /// The address.
    pub ip: Ipv4Addr,
    /// Geolocation.
    pub geo: GeoPoint,
    /// The set whose rates generated this host.
    pub primary_set: SetMembership,
    /// TLD of the host's primary domain (drives geo and patch rates).
    pub primary_tld: String,
    /// Whether the host serves an Alexa Top 1000 domain.
    pub serves_top1000: bool,
    /// Behaviour profile.
    pub profile: HostProfile,
}

/// Sample a host behaviour profile.
///
/// `rank_fraction` positions the host's primary domain in its ranking
/// (0 = most popular); Figure 4's rank gradient comes from scaling the
/// vulnerability rate across this value.
pub fn sample_profile(
    config: &WorldConfig,
    rates: &SetRates,
    tld: &str,
    rank_fraction: f64,
    refuse_override: Option<f64>,
    rng: &mut SimRng,
) -> HostProfile {
    let refuse_p = refuse_override.unwrap_or(rates.refuse);
    let connect = if rng.chance(refuse_p) {
        ConnectPolicy::Refuse
    } else {
        ConnectPolicy::Accept
    };

    // Mid-SMTP failures (Table 3 "SMTP Failure" rows).
    let quirk = if connect == ConnectPolicy::Accept && rng.chance(rates.smtp_failure) {
        match rng.below(4) {
            0 => SmtpQuirk::RejectMailFrom(553),
            1 => SmtpQuirk::RejectAllRcpt(550),
            2 => SmtpQuirk::RejectMailFrom(554),
            _ => SmtpQuirk::RejectAllRcpt(554),
        }
    } else if connect == ConnectPolicy::Accept && rng.chance(rates.blankmsg_failure) {
        if rng.chance(0.5) {
            SmtpQuirk::RejectData(554)
        } else {
            SmtpQuirk::RejectMessage(550)
        }
    } else {
        SmtpQuirk::None
    };

    // SPF validation stage. A host that refuses every connection has no
    // observable (or exploitable) SPF behaviour; modelling it as
    // non-validating keeps ground truth aligned with what the paper's
    // "vulnerable" category can mean.
    let stage_roll = rng.unit();
    let spf_stage = if connect == ConnectPolicy::Refuse {
        SpfStage::Never
    } else if stage_roll < rates.spf_on_mailfrom {
        SpfStage::OnMailFrom
    } else if stage_roll < rates.spf_on_mailfrom + rates.spf_on_data {
        SpfStage::OnData
    } else {
        SpfStage::Never
    };

    // SPF implementation mix (Table 4 / Table 7), with the Figure 4 rank
    // gradient: lower-ranked (higher fraction) domains run old software
    // more often.
    let span = config.rank_vulnerability_span;
    let rank_mult = (2.0 / (1.0 + span)) * (1.0 + (span - 1.0) * rank_fraction);
    let vulnerable_p = (rates.vulnerable_given_spf * rank_mult).min(0.9);
    let primary = if spf_stage == SpfStage::Never {
        MacroBehavior::Compliant
    } else if rng.chance(vulnerable_p) {
        MacroBehavior::VulnerableLibSpf2
    } else if rng.chance(rates.erroneous_given_spf / (1.0 - vulnerable_p).max(0.05)) {
        sample_quirk_behavior(rng)
    } else {
        MacroBehavior::Compliant
    };
    let mut impls = vec![primary];
    if spf_stage != SpfStage::Never && rng.chance(config.multi_impl_rate) {
        let second = loop {
            let candidate = match rng.below(10) {
                0 => MacroBehavior::VulnerableLibSpf2,
                1 | 2 => sample_quirk_behavior(rng),
                _ => MacroBehavior::Compliant,
            };
            if candidate != primary {
                break candidate;
            }
        };
        impls.push(second);
    }

    let vulnerable = impls.iter().any(|b| b.is_vulnerable());
    let distro = PackageManager::sample_vulnerable_host_distro(rng);
    let (patch_day, patch_cause) = if vulnerable {
        sample_patch(config, tld, false, distro, rng)
    } else {
        (None, None)
    };

    HostProfile {
        connect,
        quirk,
        spf_stage,
        impls,
        greylist: rng.chance(config.greylist_rate),
        reject_postmaster: rng.chance(config.postmaster_missing_rate),
        rcpt_reject_first_n: match rng.below(10) {
            0..=5 => 0,
            6 | 7 => 1,
            8 => 2,
            _ => 4,
        },
        blacklist_after: {
            // Rounds are every 2 days; thresholds of 4-14 probes spread
            // the conclusiveness decay across the first window (Fig. 5).
            // Both draws are consumed unconditionally (common random
            // numbers; see sample_patch).
            let roll = rng.unit();
            let threshold = 4 + rng.below(11) as u32;
            if vulnerable && roll < config.blacklist_rate {
                Some(threshold)
            } else {
                None
            }
        },
        flaky: config.flaky_rate * (0.5 + rng.unit()),
        distro,
        patch_day,
        patch_cause,
    }
}

/// Sample a non-vulnerable erroneous behaviour (Table 7 mix).
fn sample_quirk_behavior(rng: &mut SimRng) -> MacroBehavior {
    const QUIRKS: [(MacroBehavior, f64); 6] = [
        (MacroBehavior::NoExpansion, 0.34),
        (MacroBehavior::ReverseNoTruncate, 0.24),
        (MacroBehavior::TruncateNoReverse, 0.16),
        (MacroBehavior::IgnoreTransformers, 0.14),
        (MacroBehavior::EmptyExpansion, 0.06),
        (MacroBehavior::MacroUnsupported, 0.06),
    ];
    let weights: Vec<f64> = QUIRKS.iter().map(|(_, w)| *w).collect();
    QUIRKS[rng.pick_weighted(&weights).expect("non-empty")].0
}

/// Sample whether/when a vulnerable host patches.
///
/// The mixture encodes §7.2–§7.8: per-TLD propensities (Table 5), the
/// window-1 proactive wave (partly distro-driven: Gentoo Oct 25, Arch
/// Nov 22), the marginal private-notification effect, and the
/// post-disclosure wave (Debian Jan 20 + manual action).
///
/// **Common random numbers:** every call consumes the same fixed pattern
/// of six uniform draws regardless of configuration, so counterfactual
/// configs (`auto_update_share = 0`, different multipliers, …) perturb
/// only the decisions they actually change — the rest of the world stays
/// byte-identical and scenario differences are attributable.
pub fn sample_patch(
    config: &WorldConfig,
    tld: &str,
    serves_top1000: bool,
    distro: PackageManager,
    rng: &mut SimRng,
) -> (Option<u16>, Option<PatchCause>) {
    let u_patch = rng.unit();
    let u_snapshot_day = rng.unit();
    let u_auto = rng.unit();
    let u_lag = rng.unit();
    let u_mode = rng.unit();
    let u_day = rng.unit();

    let mut p = tld::patch_rate(tld);
    if serves_top1000 {
        p *= config.top1000_patch_multiplier;
    }
    if u_patch >= p {
        return (None, None);
    }

    // Top-1000 hosts that do patch are only caught by the final snapshot
    // (§7.6: no longitudinal patching signal, a handful in the snapshot).
    if serves_top1000 {
        return (
            Some(115 + (u_snapshot_day * 11.0) as u16),
            Some(PatchCause::PublicDisclosure),
        );
    }

    // Distro auto-update, when the channel shipped a fix.
    if u_auto < config.auto_update_share {
        if let Some(day) = distro.fix_available_day() {
            let lag = geometric_icdf(u_lag, 0.25).min(20) as u16;
            return (Some(day + 1 + lag), Some(PatchCause::AutoUpdate(distro)));
        }
    }

    // Manual admin action.
    let w1 = tld::window1_share(tld);
    if u_mode < w1 {
        let span = f64::from(Timeline::WINDOW1_END - Timeline::LONGITUDINAL_START);
        let day = Timeline::LONGITUDINAL_START + (u_day * span) as u16;
        (Some(day), Some(PatchCause::ProactiveAdmin))
    } else if u_mode < w1 + 0.03 {
        // §7.7: 9 of 14k+ vulnerable domains patched between private and
        // public disclosure in response to the notification.
        let span = f64::from(Timeline::PUBLIC_DISCLOSURE - Timeline::PRIVATE_NOTIFICATION - 2);
        let day = Timeline::PRIVATE_NOTIFICATION + 2 + (u_day * span) as u16;
        (Some(day), Some(PatchCause::PrivateNotification))
    } else {
        let lag = geometric_icdf(u_lag, 0.18).min(40) as u16;
        (
            Some(Timeline::PUBLIC_DISCLOSURE + 1 + lag),
            Some(PatchCause::PublicDisclosure),
        )
    }
}

/// Geometric sample (failures before the first success of probability
/// `p`) via the inverse CDF, consuming exactly the one uniform it is
/// given — the building block of the common-random-numbers design.
fn geometric_icdf(u: f64, p: f64) -> u64 {
    if p >= 1.0 || u <= 0.0 {
        return 0;
    }
    let lag = (1.0 - u).ln() / (1.0 - p).ln();
    if lag.is_finite() && lag >= 0.0 {
        lag as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> SetRates {
        WorldConfig::default().alexa_rates
    }

    #[test]
    fn profiles_are_internally_consistent() {
        let config = WorldConfig::default();
        let mut rng = SimRng::new(9);
        for i in 0..2_000 {
            let p = sample_profile(&config, &rates(), "com", 0.5, None, &mut rng);
            if p.spf_stage == SpfStage::Never {
                assert_eq!(p.impls, vec![MacroBehavior::Compliant], "host {i}");
            }
            if p.patch_day.is_some() {
                assert!(p.impls.iter().any(|b| b.is_vulnerable()));
                assert!(p.patch_cause.is_some());
            }
            if p.impls.len() == 2 {
                assert_ne!(p.impls[0], p.impls[1]);
            }
        }
    }

    #[test]
    fn vulnerability_rate_is_near_one_sixth_of_validators() {
        let config = WorldConfig::default();
        let mut rng = SimRng::new(10);
        let mut validators = 0;
        let mut vulnerable = 0;
        for _ in 0..20_000 {
            let p = sample_profile(&config, &rates(), "com", 0.5, None, &mut rng);
            if p.validates_spf() {
                validators += 1;
                if p.impls.iter().any(|b| b.is_vulnerable()) {
                    vulnerable += 1;
                }
            }
        }
        let rate = vulnerable as f64 / validators as f64;
        assert!((0.13..0.21).contains(&rate), "vulnerable rate {rate}");
    }

    #[test]
    fn rank_gradient_doubles_vulnerability() {
        let config = WorldConfig::default();
        let rate_at = |frac: f64, seed: u64| {
            let mut rng = SimRng::new(seed);
            let mut validators = 0;
            let mut vulnerable = 0;
            for _ in 0..30_000 {
                let p = sample_profile(&config, &rates(), "com", frac, None, &mut rng);
                if p.validates_spf() {
                    validators += 1;
                    if p.impls.iter().any(|b| b.is_vulnerable()) {
                        vulnerable += 1;
                    }
                }
            }
            vulnerable as f64 / validators as f64
        };
        let top = rate_at(0.0, 11);
        let bottom = rate_at(1.0, 12);
        let ratio = bottom / top;
        assert!((1.8..3.1).contains(&ratio), "rank ratio {ratio}");
    }

    #[test]
    fn tw_hosts_never_patch_and_za_mostly_do() {
        let config = WorldConfig::default();
        let mut rng = SimRng::new(13);
        let mut za_patched = 0;
        for _ in 0..1_000 {
            let (day, _) = sample_patch(
                &config,
                "tw",
                false,
                PackageManager::Debian,
                &mut rng,
            );
            assert_eq!(day, None, "tw patch rate is 0%");
            let (day, _) = sample_patch(&config, "za", false, PackageManager::Other, &mut rng);
            if day.is_some() {
                za_patched += 1;
            }
        }
        assert!((700..880).contains(&za_patched), "za patched {za_patched}");
    }

    #[test]
    fn za_patches_land_in_window_one() {
        let config = WorldConfig::default();
        let mut rng = SimRng::new(14);
        let mut window1 = 0;
        let mut total = 0;
        for _ in 0..2_000 {
            if let (Some(day), _) =
                sample_patch(&config, "za", false, PackageManager::Other, &mut rng)
            {
                total += 1;
                if day <= Timeline::WINDOW1_END {
                    window1 += 1;
                }
            }
        }
        assert!(total > 0);
        let share = f64::from(window1) / f64::from(total);
        assert!(share > 0.9, "za window-1 share {share}");
    }

    #[test]
    fn top1000_patches_only_in_snapshot_range() {
        let config = WorldConfig::default();
        let mut rng = SimRng::new(15);
        for _ in 0..2_000 {
            if let (Some(day), cause) =
                sample_patch(&config, "com", true, PackageManager::Debian, &mut rng)
            {
                assert!((115..=126).contains(&day), "day {day}");
                assert_eq!(cause, Some(PatchCause::PublicDisclosure));
            }
        }
    }

    #[test]
    fn profile_materialises_patched_config_after_patch_day() {
        let profile = HostProfile {
            connect: ConnectPolicy::Accept,
            quirk: SmtpQuirk::None,
            spf_stage: SpfStage::OnMailFrom,
            impls: vec![MacroBehavior::VulnerableLibSpf2],
            greylist: false,
            rcpt_reject_first_n: 0,
            reject_postmaster: false,
            blacklist_after: None,
            flaky: 0.0,
            distro: PackageManager::Debian,
            patch_day: Some(101),
            patch_cause: Some(PatchCause::AutoUpdate(PackageManager::Debian)),
        };
        assert!(profile.initially_vulnerable());
        assert!(profile.is_vulnerable_on(100));
        assert!(!profile.is_vulnerable_on(101));
        assert!(profile.mta_config("mx.test", 50).is_vulnerable());
        assert!(!profile.mta_config("mx.test", 101).is_vulnerable());
    }

    #[test]
    fn auto_update_waves_follow_package_dates() {
        let config = WorldConfig::default();
        let mut rng = SimRng::new(16);
        let mut debian_days = Vec::new();
        for _ in 0..3_000 {
            if let (Some(day), Some(PatchCause::AutoUpdate(PackageManager::Debian))) =
                sample_patch(&config, "de", false, PackageManager::Debian, &mut rng)
            {
                debian_days.push(day);
            }
        }
        assert!(!debian_days.is_empty());
        assert!(debian_days.iter().all(|&d| d > Timeline::DEBIAN_PATCH));
    }
}
