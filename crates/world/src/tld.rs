//! TLD frequency tables (paper Table 2) and patch propensities (Table 5).

/// Relative TLD weights for the Alexa Top List population (Table 2, left).
/// Counts are the paper's; unlisted TLDs share the `MISC` remainder.
pub const ALEXA_TLD_WEIGHTS: [(&str, u32); 15] = [
    ("com", 230_801),
    ("ru", 19_844),
    ("ir", 17_207),
    ("net", 16_672),
    ("org", 14_427),
    ("in", 7_856),
    ("io", 5_122),
    ("au", 4_685),
    ("vn", 4_326),
    ("co", 4_250),
    ("ua", 4_139),
    ("tr", 4_117),
    ("uk", 3_429),
    ("id", 2_997),
    ("ca", 2_835),
];

/// Relative TLD weights for the 2-Week MX population (Table 2, right).
pub const TWO_WEEK_TLD_WEIGHTS: [(&str, u32); 15] = [
    ("com", 11_182),
    ("org", 3_946),
    ("edu", 2_108),
    ("net", 1_441),
    ("us", 828),
    ("gov", 255),
    ("uk", 241),
    ("cam", 232),
    ("ca", 172),
    ("de", 149),
    ("work", 142),
    ("cn", 99),
    ("au", 92),
    ("it", 90),
    ("top", 86),
];

/// The long tail of TLDs not individually listed in Table 2 but needed for
/// the geographic and patch-rate analyses (Table 5, Figure 3). Weights are
/// plausible tail frequencies.
pub const MISC_TLDS: [(&str, u32); 17] = [
    ("de", 2_600),
    ("pl", 2_000),
    ("cz", 1_300),
    ("kr", 1_200),
    ("jp", 1_500),
    ("fr", 1_800),
    ("br", 1_900),
    ("mx", 900),
    ("za", 700),
    ("gr", 450),
    ("eu", 800),
    ("il", 650),
    ("by", 400),
    ("tw", 550),
    ("nl", 1_400),
    ("se", 700),
    ("it", 1_600),
];

/// Per-TLD fraction of initially vulnerable hosts expected to patch by the
/// end of measurements (paper Table 5, plus the `com` benchmark of §7.3).
/// TLDs not listed use [`DEFAULT_PATCH_RATE`].
pub const TLD_PATCH_RATES: [(&str, f64); 11] = [
    ("za", 0.79),
    ("gr", 0.75),
    ("de", 0.46),
    ("eu", 0.29),
    ("tr", 0.28),
    ("com", 0.15),
    ("ir", 0.03),
    ("il", 0.03),
    ("by", 0.02),
    ("ru", 0.02),
    ("tw", 0.00),
];

/// Patch rate for TLDs without a Table 5 entry.
pub const DEFAULT_PATCH_RATE: f64 = 0.15;

/// Fraction of a TLD's patch events that land in the first measurement
/// window (before public disclosure). §7.3: 98% of `za`'s patches happened
/// in October/November; elsewhere window-1 patching was the minority.
pub fn window1_share(tld: &str) -> f64 {
    match tld {
        "za" => 0.98,
        "gr" => 0.60,
        _ => 0.25,
    }
}

/// The patch rate for a TLD.
pub fn patch_rate(tld: &str) -> f64 {
    TLD_PATCH_RATES
        .iter()
        .find(|(t, _)| *t == tld)
        .map(|(_, r)| *r)
        .unwrap_or(DEFAULT_PATCH_RATE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn com_dominates_both_sets() {
        assert_eq!(ALEXA_TLD_WEIGHTS[0].0, "com");
        assert_eq!(TWO_WEEK_TLD_WEIGHTS[0].0, "com");
        let alexa_total: u32 = ALEXA_TLD_WEIGHTS.iter().map(|(_, w)| w).sum();
        assert!(f64::from(ALEXA_TLD_WEIGHTS[0].1) / f64::from(alexa_total) > 0.5);
    }

    #[test]
    fn patch_rates_match_table5() {
        assert_eq!(patch_rate("za"), 0.79);
        assert_eq!(patch_rate("tw"), 0.00);
        assert_eq!(patch_rate("ru"), 0.02);
        assert_eq!(patch_rate("com"), 0.15);
        assert_eq!(patch_rate("xyz"), DEFAULT_PATCH_RATE);
    }

    #[test]
    fn za_patches_overwhelmingly_in_window_one() {
        assert!(window1_share("za") > 0.9);
        assert!(window1_share("com") < 0.5);
    }
}
