//! World assembly: the full simulated Internet, ready to probe.

use spfail_dns::{Directory, Name, QueryLog};
use spfail_mta::{Mta, PolicyCacheHandle};
use spfail_netsim::{FaultPlan, Metrics, SimClock, SimRng};
use spfail_trace::Tracer;

use crate::config::WorldConfig;
use crate::domains::{DomainId, DomainRecord};
use crate::hosting::{HostId, HostRecord};
use crate::lazy::{LazyWorld, WorldRuntime};
use crate::timeline::Timeline;

/// The assembled simulated Internet.
pub struct World {
    /// The configuration it was generated from.
    pub config: WorldConfig,
    /// All domains, indexed by [`DomainId`].
    pub domains: Vec<DomainRecord>,
    /// All hosts, indexed by [`HostId`].
    pub hosts: Vec<HostRecord>,
    /// Reverse index: domains served by each host.
    pub host_domains: Vec<Vec<DomainId>>,
    /// The shared simulation clock.
    pub clock: SimClock,
    /// The DNS directory (holds the measurement zone's authority).
    pub directory: Directory,
    /// The measurement zone's query log.
    pub query_log: QueryLog,
    /// The measurement zone origin (`spf-test.dns-lab.org`).
    pub zone_origin: Name,
    runtime: WorldRuntime,
}

/// Fault-injection hooks for [`World::build_mta_instrumented`].
#[derive(Debug, Clone)]
pub struct MtaInstrumentation<'a> {
    /// Fault plan applied to the MTA's resolver link.
    pub dns_faults: FaultPlan,
    /// Counter sink the resolver link records into.
    pub metrics: Metrics,
    /// Optional salt forked into the MTA's RNG stream. The prober passes
    /// its probe identity here when DNS faults are active, so a *retried*
    /// probe re-rolls the fault dice instead of replaying the same
    /// timeout forever. With `None` the stream depends only on the host
    /// id, exactly as [`World::build_mta_in`] always derived it.
    pub reroll: Option<&'a str>,
    /// Tracing handle installed on the MTA's resolver, so its SPF-driven
    /// DNS lookups appear as spans in the probing client's trace. The
    /// disabled default costs nothing.
    pub tracer: Tracer,
    /// Shard-shared compiled-policy cache installed on the MTA; `None`
    /// keeps the original interpretive SPF evaluation loop.
    pub policy_cache: Option<PolicyCacheHandle>,
}

impl World {
    /// Generate the world deterministically from `config`.
    ///
    /// This is the eager collector over [`LazyWorld`]: the streaming
    /// synthesizer is the single source of truth for generation, so the
    /// lazy and materialized worlds are identical by construction
    /// (`tests/props.rs` additionally pins host-by-host equality over
    /// random seeds and scales).
    pub fn generate(config: WorldConfig) -> World {
        let mut stream = LazyWorld::new(config);
        let mut domains = Vec::with_capacity(stream.domain_count());
        let mut hosts = Vec::new();
        let mut host_domains: Vec<Vec<DomainId>> = Vec::new();
        for step in &mut stream {
            debug_assert_eq!(step.first_fresh.0 as usize, hosts.len());
            for record in step.fresh {
                hosts.push(record);
                host_domains.push(Vec::new());
            }
            for &h in &step.domain.hosts {
                host_domains[h.0 as usize].push(step.id);
            }
            domains.push(step.domain);
        }
        let runtime = stream.into_runtime();
        World {
            config: runtime.config.clone(),
            domains,
            hosts,
            host_domains,
            clock: runtime.clock.clone(),
            directory: runtime.directory.clone(),
            query_log: runtime.query_log.clone(),
            zone_origin: runtime.zone_origin.clone(),
            runtime,
        }
    }

    /// The population-free runtime surface (clock, DNS directory, RNG
    /// root) shared with the streaming engine.
    pub fn runtime(&self) -> &WorldRuntime {
        &self.runtime
    }

    /// Look up a domain.
    pub fn domain(&self, id: DomainId) -> &DomainRecord {
        &self.domains[id.0 as usize]
    }

    /// Look up a host.
    pub fn host(&self, id: HostId) -> &HostRecord {
        &self.hosts[id.0 as usize]
    }

    /// The domains a host serves.
    pub fn domains_of(&self, id: HostId) -> &[DomainId] {
        &self.host_domains[id.0 as usize]
    }

    /// Resolve a domain's mail hosts as of measurement day `day` — the
    /// paper's MX+A/AAAA resolution step. Short-lived spam domains lose
    /// their MX records before the final snapshot (§7.2).
    pub fn resolve_mail_hosts(&self, id: DomainId, day: u16) -> Vec<HostId> {
        let d = self.domain(id);
        if d.spam_churn && day >= Timeline::WINDOW2_START {
            return Vec::new();
        }
        d.hosts.clone()
    }

    /// The patch-event horizon for a host set: which of `hosts` have a
    /// status-changing event (a patch day) scheduled in `(after, upto]`.
    /// An incremental longitudinal round must re-probe exactly these
    /// hosts plus any whose behaviour is not deterministically
    /// repeatable (see [`crate::HostProfile::reprobe_is_deterministic`]).
    pub fn hosts_with_status_events(
        &self,
        hosts: &[HostId],
        after: u16,
        upto: u16,
    ) -> Vec<HostId> {
        hosts
            .iter()
            .copied()
            .filter(|&h| self.host(h).profile.status_event_in(after, upto))
            .collect()
    }

    /// Hosts that were running vulnerable libSPF2 at the initial
    /// measurement.
    pub fn initially_vulnerable_hosts(&self) -> Vec<HostId> {
        (0..self.hosts.len() as u32)
            .map(HostId)
            .filter(|&h| self.host(h).profile.initially_vulnerable())
            .collect()
    }

    /// Domains with at least one initially vulnerable host.
    pub fn initially_vulnerable_domains(&self) -> Vec<DomainId> {
        (0..self.domains.len() as u32)
            .map(DomainId)
            .filter(|&d| {
                self.domain(d)
                    .hosts
                    .iter()
                    .any(|&h| self.host(h).profile.initially_vulnerable())
            })
            .collect()
    }

    /// Build the live MTA for `host` as of day `day`.
    pub fn build_mta(&self, host: HostId, day: u16) -> Mta {
        self.build_mta_in(host, day, self.directory.clone(), self.clock.clone())
    }

    /// Build an MTA against an explicit DNS directory and clock instead
    /// of the world's shared ones — the sharded campaign engine gives
    /// each shard its own directory/clock so that probing on one worker
    /// never observes another worker's queries or time.
    ///
    /// The MTA's RNG stream depends only on the host id, so a shard
    /// builds exactly the MTA the sequential engine would.
    pub fn build_mta_in(
        &self,
        host: HostId,
        day: u16,
        directory: Directory,
        clock: SimClock,
    ) -> Mta {
        self.build_mta_instrumented(
            host,
            day,
            directory,
            clock,
            MtaInstrumentation {
                dns_faults: FaultPlan::NONE,
                metrics: Metrics::new(),
                reroll: None,
                tracer: Tracer::disabled(),
                policy_cache: None,
            },
        )
    }

    /// [`World::build_mta_in`] with the fault-injection hooks wired up:
    /// the MTA's resolver queries over a zero-latency link carrying the
    /// instrumentation's fault plan and recording into its metrics.
    pub fn build_mta_instrumented(
        &self,
        host: HostId,
        day: u16,
        directory: Directory,
        clock: SimClock,
        instrumentation: MtaInstrumentation<'_>,
    ) -> Mta {
        self.runtime
            .build_mta_record(host, self.host(host), day, directory, clock, instrumentation)
    }

    /// A deterministic RNG stream for a named consumer of this world.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.runtime.fork_rng(label)
    }
}

// The sharded campaign engine shares one `&World` across worker
// threads; keep that capability from silently regressing.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<World>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_mta::ConnectPolicy;

    fn small_world() -> World {
        World::generate(WorldConfig::small(77))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.domains.len(), b.domains.len());
        assert_eq!(a.hosts.len(), b.hosts.len());
        for (x, y) in a.domains.iter().zip(b.domains.iter()).take(500) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.hosts, y.hosts);
        }
        for (x, y) in a.hosts.iter().zip(b.hosts.iter()).take(500) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.profile.patch_day, y.profile.patch_day);
        }
    }

    #[test]
    fn population_sizes_scale() {
        let w = small_world();
        let alexa = w.domains.iter().filter(|d| d.in_alexa()).count();
        let two_week = w.domains.iter().filter(|d| d.in_two_week()).count();
        assert_eq!(alexa, 4_188);
        assert_eq!(two_week, 229);
        // Table 1 overlap, scaled.
        let overlap = w
            .domains
            .iter()
            .filter(|d| d.in_alexa() && d.in_two_week())
            .count();
        assert_eq!(overlap, 29);
    }

    #[test]
    fn fan_in_is_plausible() {
        let w = small_world();
        let ratio = w.domains.len() as f64 / w.hosts.len() as f64;
        // Paper: ~440K domains on ~186K addresses ≈ 2.4.
        assert!((1.6..3.4).contains(&ratio), "domains/host {ratio}");
    }

    #[test]
    fn vulnerable_population_rate() {
        let w = small_world();
        let vulnerable = w.initially_vulnerable_hosts().len() as f64;
        let total = w.hosts.len() as f64;
        // Paper: 7,212 of ~186K addresses ≈ 3.9% of all addresses
        // (17% of *tested* servers).
        let rate = vulnerable / total;
        assert!((0.015..0.09).contains(&rate), "vulnerable host rate {rate}");
        let vulnerable_domains = w.initially_vulnerable_domains().len() as f64;
        let rate_d = vulnerable_domains / w.domains.len() as f64;
        // Paper: 18,660 of ~440K ≈ 4.3%.
        assert!((0.015..0.09).contains(&rate_d), "vulnerable domain rate {rate_d}");
    }

    #[test]
    fn providers_exist_and_some_are_vulnerable() {
        let w = small_world();
        let providers: Vec<&DomainRecord> =
            w.domains.iter().filter(|d| d.top_provider).collect();
        assert_eq!(providers.len(), 20);
        let vulnerable = providers
            .iter()
            .filter(|d| {
                d.hosts
                    .iter()
                    .any(|&h| w.host(h).profile.initially_vulnerable())
            })
            .count();
        assert_eq!(vulnerable, w.config.vulnerable_top_providers);
        // Vulnerable providers never patch (§7.5).
        for d in providers {
            for &h in &d.hosts {
                if w.host(h).profile.initially_vulnerable() {
                    assert_eq!(w.host(h).profile.patch_day, None);
                }
            }
        }
    }

    #[test]
    fn no_mx_domains_park_on_refusing_hosts() {
        let w = small_world();
        let mut parked = 0;
        let mut refusing = 0;
        for d in &w.domains {
            if !d.has_mx {
                parked += 1;
                if w.domain_hosts_refuse(d) {
                    refusing += 1;
                }
            }
        }
        assert!(parked > 0);
        let rate = f64::from(refusing) / f64::from(parked);
        assert!(rate > 0.8, "parked refusal rate {rate}");
    }

    #[test]
    fn spam_churn_domains_lose_mx_by_window2() {
        let w = small_world();
        let churner = (0..w.domains.len() as u32)
            .map(DomainId)
            .find(|&d| w.domain(d).spam_churn)
            .expect("some churners at this scale");
        assert!(!w.resolve_mail_hosts(churner, 0).is_empty());
        assert!(w
            .resolve_mail_hosts(churner, Timeline::WINDOW2_START)
            .is_empty());
    }

    #[test]
    fn build_mta_respects_patch_day() {
        let w = small_world();
        let host = w
            .initially_vulnerable_hosts()
            .into_iter()
            .find(|&h| w.host(h).profile.patch_day.is_some_and(|d| d <= 126))
            .expect("some patching host");
        let patch_day = w.host(host).profile.patch_day.unwrap();
        assert!(w.build_mta(host, patch_day - 1).config().is_vulnerable());
        assert!(!w.build_mta(host, patch_day).config().is_vulnerable());
    }

    #[test]
    fn reverse_index_is_consistent() {
        let w = small_world();
        for (idx, d) in w.domains.iter().enumerate() {
            for &h in &d.hosts {
                assert!(w.domains_of(h).contains(&DomainId(idx as u32)));
            }
        }
    }

    impl World {
        fn domain_hosts_refuse(&self, d: &DomainRecord) -> bool {
            d.hosts
                .iter()
                .all(|&h| self.host(h).profile.connect == ConnectPolicy::Refuse)
        }
    }
}
