//! World assembly: the full simulated Internet, ready to probe.

use std::net::Ipv4Addr;
use std::sync::Arc;

use spfail_dns::{Directory, Name, QueryLog, SpfTestAuthority};
use spfail_libspf2::MacroBehavior;
use spfail_mta::{ConnectPolicy, Mta, PolicyCacheHandle, SpfStage};
use spfail_netsim::{FaultPlan, LatencyModel, Link, Metrics, SimClock, SimRng};
use spfail_trace::Tracer;

use crate::config::WorldConfig;
use crate::domains::{DomainId, DomainRecord, SetMembership, TldSampler};
use crate::geo;
use crate::hosting::{sample_patch, sample_profile, HostId, HostRecord};
use crate::timeline::Timeline;

/// The assembled simulated Internet.
pub struct World {
    /// The configuration it was generated from.
    pub config: WorldConfig,
    /// All domains, indexed by [`DomainId`].
    pub domains: Vec<DomainRecord>,
    /// All hosts, indexed by [`HostId`].
    pub hosts: Vec<HostRecord>,
    /// Reverse index: domains served by each host.
    pub host_domains: Vec<Vec<DomainId>>,
    /// The shared simulation clock.
    pub clock: SimClock,
    /// The DNS directory (holds the measurement zone's authority).
    pub directory: Directory,
    /// The measurement zone's query log.
    pub query_log: QueryLog,
    /// The measurement zone origin (`spf-test.dns-lab.org`).
    pub zone_origin: Name,
    rng_root: SimRng,
}

/// Fault-injection hooks for [`World::build_mta_instrumented`].
#[derive(Debug, Clone)]
pub struct MtaInstrumentation<'a> {
    /// Fault plan applied to the MTA's resolver link.
    pub dns_faults: FaultPlan,
    /// Counter sink the resolver link records into.
    pub metrics: Metrics,
    /// Optional salt forked into the MTA's RNG stream. The prober passes
    /// its probe identity here when DNS faults are active, so a *retried*
    /// probe re-rolls the fault dice instead of replaying the same
    /// timeout forever. With `None` the stream depends only on the host
    /// id, exactly as [`World::build_mta_in`] always derived it.
    pub reroll: Option<&'a str>,
    /// Tracing handle installed on the MTA's resolver, so its SPF-driven
    /// DNS lookups appear as spans in the probing client's trace. The
    /// disabled default costs nothing.
    pub tracer: Tracer,
    /// Shard-shared compiled-policy cache installed on the MTA; `None`
    /// keeps the original interpretive SPF evaluation loop.
    pub policy_cache: Option<PolicyCacheHandle>,
}

impl World {
    /// Generate the world deterministically from `config`.
    pub fn generate(config: WorldConfig) -> World {
        let rng = SimRng::new(config.seed);
        let mut builder = Builder::new(config.clone(), rng.fork("hosts"));
        let mut domains = Vec::new();

        // --- Alexa Top List, ranks 1..=nA -------------------------------
        let n_alexa = config.scaled(config.alexa_total);
        let alexa_tlds = TldSampler::alexa(&config);
        let mut tld_rng = rng.fork("alexa-tlds");
        for rank in 1..=n_alexa {
            let tld = alexa_tlds.sample(&mut tld_rng);
            domains.push(DomainRecord {
                name: format!("a{rank}.{tld}"),
                tld: tld.to_string(),
                alexa_rank: Some(rank as u32),
                two_week_rank: None,
                top_provider: false,
                has_mx: true,
                spam_churn: false,
                hosts: Vec::new(),
            });
        }

        // --- Top Email Providers (replace ranks 6..6+P) ------------------
        const PROVIDER_TLDS: [&str; 20] = [
            "com", "com", "kr", "ru", "pl", "cz", "com", "net", "com", "jp", "de", "fr", "com",
            "uk", "com", "in", "br", "com", "it", "com",
        ];
        let n_providers = config.top_providers.min(PROVIDER_TLDS.len());
        for (i, &tld) in PROVIDER_TLDS.iter().enumerate().take(n_providers) {
            let rank = 6 + i;
            if rank > domains.len() {
                break;
            }
            domains[rank - 1] = DomainRecord {
                name: format!("mailprov{i}.{tld}"),
                tld: tld.to_string(),
                alexa_rank: Some(rank as u32),
                two_week_rank: None,
                top_provider: true,
                has_mx: true,
                spam_churn: false,
                hosts: Vec::new(),
            };
        }

        // --- 2-Week MX: overlap with Alexa (Table 1) ---------------------
        let n_two_week = config.scaled(config.two_week_total);
        let cutoff = config.top1000_cutoff();
        let overlap_total = config.scaled(config.overlap_toplist_two_week).min(n_two_week);
        let overlap_1000 = config
            .scaled(config.overlap_top1000_two_week)
            .min(overlap_total)
            .min(cutoff);
        let mut overlap_rng = rng.fork("overlap");
        let mut two_week_members: Vec<usize> = Vec::new();
        // Distinct ranks within the top cutoff...
        let mut picks = pick_distinct(&mut overlap_rng, cutoff.min(domains.len()), overlap_1000);
        // ... and the rest strictly below the cutoff.
        if domains.len() > cutoff {
            let lower = pick_distinct(
                &mut overlap_rng,
                domains.len() - cutoff,
                overlap_total - overlap_1000,
            );
            picks.extend(lower.into_iter().map(|i| i + cutoff));
        }
        for idx in picks {
            two_week_members.push(idx);
        }

        // --- 2-Week-only domains -----------------------------------------
        let two_week_tlds = TldSampler::two_week(&config);
        let mut churn_rng = rng.fork("churn");
        for i in 0..n_two_week.saturating_sub(two_week_members.len()) {
            let tld = two_week_tlds.sample(&mut tld_rng);
            domains.push(DomainRecord {
                name: format!("m{i}.{tld}"),
                tld: tld.to_string(),
                alexa_rank: None,
                two_week_rank: None,
                top_provider: false,
                has_mx: true,
                spam_churn: churn_rng.chance(config.spam_churn_rate),
                hosts: Vec::new(),
            });
            two_week_members.push(domains.len() - 1);
        }

        // Assign 2-Week ranks (by observed MX-query volume) at random.
        let mut rank_rng = rng.fork("two-week-ranks");
        let mut shuffled = two_week_members.clone();
        rank_rng.shuffle(&mut shuffled);
        for (rank0, idx) in shuffled.iter().enumerate() {
            domains[*idx].two_week_rank = Some(rank0 as u32 + 1);
        }

        // --- No-MX domains (Alexa-only; §7.1) ----------------------------
        let mut mx_rng = rng.fork("mx");
        for d in domains.iter_mut() {
            if d.alexa_rank.is_some()
                && d.two_week_rank.is_none()
                && !d.top_provider
                && mx_rng.chance(config.no_mx_rate)
            {
                d.has_mx = false;
            }
        }

        // --- Hosting ------------------------------------------------------
        let n_alexa_f = n_alexa.max(1) as f64;
        let n_two_week_f = n_two_week.max(1) as f64;
        #[allow(clippy::needless_range_loop)] // indices feed DomainId and mutation
        for idx in 0..domains.len() {
            let (set, rank_fraction, in_top1000) = {
                let d = &domains[idx];
                let set = d.primary_set();
                let frac = match (d.alexa_rank, d.two_week_rank) {
                    (Some(r), _) => f64::from(r) / n_alexa_f,
                    (None, Some(r)) => f64::from(r) / n_two_week_f,
                    (None, None) => 0.75,
                };
                (set, frac, d.in_alexa_top(cutoff))
            };
            let host_ids = if domains[idx].top_provider {
                // Providers occupy ranks 6..6+P, i.e. indices 5..5+P.
                builder.provider_hosts(&domains[idx].tld.clone(), idx - 5)
            } else if !domains[idx].has_mx {
                vec![builder.parking_host(&domains[idx].tld.clone())]
            } else {
                builder.mail_hosts(set, &domains[idx].tld.clone(), rank_fraction, in_top1000)
            };
            for &h in &host_ids {
                builder.host_domains[h.0 as usize].push(DomainId(idx as u32));
            }
            domains[idx].hosts = host_ids;
        }

        // --- DNS -----------------------------------------------------------
        let clock = SimClock::new();
        let directory = Directory::new();
        let query_log = QueryLog::new();
        let zone_origin = SpfTestAuthority::default_origin();
        directory.register(Arc::new(SpfTestAuthority::new(
            zone_origin.clone(),
            query_log.clone(),
        )));

        World {
            config,
            domains,
            hosts: builder.hosts,
            host_domains: builder.host_domains,
            clock,
            directory,
            query_log,
            zone_origin,
            rng_root: rng.fork("world-runtime"),
        }
    }

    /// Look up a domain.
    pub fn domain(&self, id: DomainId) -> &DomainRecord {
        &self.domains[id.0 as usize]
    }

    /// Look up a host.
    pub fn host(&self, id: HostId) -> &HostRecord {
        &self.hosts[id.0 as usize]
    }

    /// The domains a host serves.
    pub fn domains_of(&self, id: HostId) -> &[DomainId] {
        &self.host_domains[id.0 as usize]
    }

    /// Resolve a domain's mail hosts as of measurement day `day` — the
    /// paper's MX+A/AAAA resolution step. Short-lived spam domains lose
    /// their MX records before the final snapshot (§7.2).
    pub fn resolve_mail_hosts(&self, id: DomainId, day: u16) -> Vec<HostId> {
        let d = self.domain(id);
        if d.spam_churn && day >= Timeline::WINDOW2_START {
            return Vec::new();
        }
        d.hosts.clone()
    }

    /// The patch-event horizon for a host set: which of `hosts` have a
    /// status-changing event (a patch day) scheduled in `(after, upto]`.
    /// An incremental longitudinal round must re-probe exactly these
    /// hosts plus any whose behaviour is not deterministically
    /// repeatable (see [`crate::HostProfile::reprobe_is_deterministic`]).
    pub fn hosts_with_status_events(
        &self,
        hosts: &[HostId],
        after: u16,
        upto: u16,
    ) -> Vec<HostId> {
        hosts
            .iter()
            .copied()
            .filter(|&h| self.host(h).profile.status_event_in(after, upto))
            .collect()
    }

    /// Hosts that were running vulnerable libSPF2 at the initial
    /// measurement.
    pub fn initially_vulnerable_hosts(&self) -> Vec<HostId> {
        (0..self.hosts.len() as u32)
            .map(HostId)
            .filter(|&h| self.host(h).profile.initially_vulnerable())
            .collect()
    }

    /// Domains with at least one initially vulnerable host.
    pub fn initially_vulnerable_domains(&self) -> Vec<DomainId> {
        (0..self.domains.len() as u32)
            .map(DomainId)
            .filter(|&d| {
                self.domain(d)
                    .hosts
                    .iter()
                    .any(|&h| self.host(h).profile.initially_vulnerable())
            })
            .collect()
    }

    /// Build the live MTA for `host` as of day `day`.
    pub fn build_mta(&self, host: HostId, day: u16) -> Mta {
        self.build_mta_in(host, day, self.directory.clone(), self.clock.clone())
    }

    /// Build an MTA against an explicit DNS directory and clock instead
    /// of the world's shared ones — the sharded campaign engine gives
    /// each shard its own directory/clock so that probing on one worker
    /// never observes another worker's queries or time.
    ///
    /// The MTA's RNG stream depends only on the host id, so a shard
    /// builds exactly the MTA the sequential engine would.
    pub fn build_mta_in(
        &self,
        host: HostId,
        day: u16,
        directory: Directory,
        clock: SimClock,
    ) -> Mta {
        self.build_mta_instrumented(
            host,
            day,
            directory,
            clock,
            MtaInstrumentation {
                dns_faults: FaultPlan::NONE,
                metrics: Metrics::new(),
                reroll: None,
                tracer: Tracer::disabled(),
                policy_cache: None,
            },
        )
    }

    /// [`World::build_mta_in`] with the fault-injection hooks wired up:
    /// the MTA's resolver queries over a zero-latency link carrying the
    /// instrumentation's fault plan and recording into its metrics.
    pub fn build_mta_instrumented(
        &self,
        host: HostId,
        day: u16,
        directory: Directory,
        clock: SimClock,
        instrumentation: MtaInstrumentation<'_>,
    ) -> Mta {
        let record = self.host(host);
        let hostname = format!("mx{}.{}", host.0, record.primary_tld);
        let config = record.profile.mta_config(&hostname, day);
        let link = Link::new(
            LatencyModel::ZERO,
            instrumentation.dns_faults,
            clock.clone(),
            instrumentation.metrics,
        );
        let mut rng = self.rng_root.fork_idx("mta", u64::from(host.0));
        if let Some(salt) = instrumentation.reroll {
            rng = rng.fork(salt);
        }
        let mut mta = Mta::with_dns_link(
            config,
            std::net::IpAddr::V4(record.ip),
            directory,
            link,
            clock,
            rng,
        );
        mta.set_dns_tracer(instrumentation.tracer);
        if let Some(cache) = instrumentation.policy_cache {
            mta.set_policy_cache(cache);
        }
        mta
    }

    /// A deterministic RNG stream for a named consumer of this world.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.rng_root.fork(label)
    }
}

// The sharded campaign engine shares one `&World` across worker
// threads; keep that capability from silently regressing.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<World>();
};

/// Pick `count` distinct indices in `[0, bound)`.
fn pick_distinct(rng: &mut SimRng, bound: usize, count: usize) -> Vec<usize> {
    let count = count.min(bound);
    if count == 0 || bound == 0 {
        return Vec::new();
    }
    if count * 3 >= bound {
        let mut all: Vec<usize> = (0..bound).collect();
        rng.shuffle(&mut all);
        all.truncate(count);
        return all;
    }
    let mut seen = std::collections::HashSet::new();
    while seen.len() < count {
        seen.insert(rng.below(bound as u64) as usize);
    }
    // HashSet iteration order depends on the per-process hash seed; a
    // sort keeps the world identical across runs for the same SimRng.
    let mut out: Vec<usize> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Incremental host construction with shared-pool bookkeeping.
struct Builder {
    config: WorldConfig,
    rng: SimRng,
    hosts: Vec<HostRecord>,
    host_domains: Vec<Vec<DomainId>>,
    parking_pool: Vec<HostId>,
    parking_slots: u32,
    shared_pool: Vec<HostId>,
    shared_slots: u32,
    next_ip: u32,
}

impl Builder {
    fn new(config: WorldConfig, rng: SimRng) -> Builder {
        Builder {
            config,
            rng,
            hosts: Vec::new(),
            host_domains: Vec::new(),
            parking_pool: Vec::new(),
            parking_slots: 0,
            shared_pool: Vec::new(),
            shared_slots: 0,
            next_ip: u32::from(Ipv4Addr::new(11, 0, 0, 1)),
        }
    }

    fn alloc_ip(&mut self) -> Ipv4Addr {
        let ip = Ipv4Addr::from(self.next_ip);
        self.next_ip += 1;
        ip
    }

    fn push_host(
        &mut self,
        set: SetMembership,
        tld: &str,
        rank_fraction: f64,
        refuse_override: Option<f64>,
        serves_top1000: bool,
    ) -> HostId {
        let rates = match set {
            SetMembership::Alexa => &self.config.alexa_rates,
            SetMembership::TwoWeek => &self.config.two_week_rates,
            SetMembership::TopProvider => &self.config.top_provider_rates,
        };
        let mut profile = sample_profile(
            &self.config,
            rates,
            tld,
            rank_fraction,
            refuse_override,
            &mut self.rng,
        );
        if serves_top1000 && profile.impls.iter().any(|b| b.is_vulnerable()) {
            // §7.6: Alexa Top 1000 hosts go inconclusive early (blacklist)
            // and only the final snapshot sees the few that patched.
            profile.blacklist_after = Some(4 + self.rng.below(5) as u32);
            let (day, cause) =
                sample_patch(&self.config, tld, true, profile.distro, &mut self.rng);
            profile.patch_day = day;
            profile.patch_cause = cause;
        }
        let ip = self.alloc_ip();
        let geo = geo::locate(tld, &mut self.rng);
        self.hosts.push(HostRecord {
            ip,
            geo,
            primary_set: set,
            primary_tld: tld.to_string(),
            serves_top1000,
            profile,
        });
        self.host_domains.push(Vec::new());
        HostId(self.hosts.len() as u32 - 1)
    }

    /// A parked/no-MX host: almost always refuses connections.
    fn parking_host(&mut self, tld: &str) -> HostId {
        if self.parking_slots == 0 {
            let id = self.push_host(SetMembership::Alexa, tld, 0.9, Some(0.92), false);
            self.parking_pool.push(id);
            self.parking_slots = 4 + self.rng.below(6) as u32;
        }
        self.parking_slots -= 1;
        *self.parking_pool.last().expect("pool refilled above")
    }

    /// Mail hosts for an ordinary domain: either from a shared-hosting
    /// pool or dedicated server(s).
    fn mail_hosts(
        &mut self,
        set: SetMembership,
        tld: &str,
        rank_fraction: f64,
        serves_top1000: bool,
    ) -> Vec<HostId> {
        // Top-1000 domains self-host; sharing is a long-tail phenomenon.
        if !serves_top1000 && self.rng.chance(0.68) {
            if self.shared_slots == 0 {
                let id = self.push_host(set, tld, rank_fraction, Some(0.22), false);
                self.shared_pool.push(id);
                self.shared_slots = 2 + self.rng.below(u64::from(
                    (self.config.shared_hosting_rate * 4.0) as u32 + 1,
                )) as u32;
            }
            self.shared_slots -= 1;
            return vec![*self.shared_pool.last().expect("pool refilled above")];
        }
        let count = match self.rng.below(20) {
            0..=13 => 1,
            14..=18 => 2,
            _ => 3,
        };
        (0..count)
            .map(|_| self.push_host(set, tld, rank_fraction, None, serves_top1000))
            .collect()
    }

    /// Hosts for a top email provider: several addresses, no refusals.
    fn provider_hosts(&mut self, tld: &str, provider_index: usize) -> Vec<HostId> {
        let count = 2 + self.rng.below(4) as usize;
        // §7.5 names exactly four vulnerable providers; the rest are kept
        // explicitly clean so the reference-set counts stay calibrated.
        let vulnerable = provider_index < self.config.vulnerable_top_providers;
        (0..count)
            .map(|_| {
                let id = self.push_host(SetMembership::TopProvider, tld, 0.1, Some(0.0), true);
                let blacklist = Some(5 + self.rng.below(5) as u32);
                let profile = &mut self.hosts[id.0 as usize].profile;
                if vulnerable {
                    profile.connect = ConnectPolicy::Accept;
                    profile.quirk = spfail_mta::SmtpQuirk::None;
                    if profile.spf_stage == SpfStage::Never {
                        profile.spf_stage = SpfStage::OnData;
                    }
                    profile.impls = vec![MacroBehavior::VulnerableLibSpf2];
                    // §7.5: none of the vulnerable providers patched during
                    // the four months of measurement.
                    profile.patch_day = None;
                    profile.patch_cause = None;
                    profile.blacklist_after = blacklist;
                } else {
                    for b in &mut profile.impls {
                        if b.is_vulnerable() {
                            *b = MacroBehavior::Compliant;
                        }
                    }
                    profile.patch_day = None;
                    profile.patch_cause = None;
                }
                id
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::generate(WorldConfig::small(77))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.domains.len(), b.domains.len());
        assert_eq!(a.hosts.len(), b.hosts.len());
        for (x, y) in a.domains.iter().zip(b.domains.iter()).take(500) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.hosts, y.hosts);
        }
        for (x, y) in a.hosts.iter().zip(b.hosts.iter()).take(500) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.profile.patch_day, y.profile.patch_day);
        }
    }

    #[test]
    fn population_sizes_scale() {
        let w = small_world();
        let alexa = w.domains.iter().filter(|d| d.in_alexa()).count();
        let two_week = w.domains.iter().filter(|d| d.in_two_week()).count();
        assert_eq!(alexa, 4_188);
        assert_eq!(two_week, 229);
        // Table 1 overlap, scaled.
        let overlap = w
            .domains
            .iter()
            .filter(|d| d.in_alexa() && d.in_two_week())
            .count();
        assert_eq!(overlap, 29);
    }

    #[test]
    fn fan_in_is_plausible() {
        let w = small_world();
        let ratio = w.domains.len() as f64 / w.hosts.len() as f64;
        // Paper: ~440K domains on ~186K addresses ≈ 2.4.
        assert!((1.6..3.4).contains(&ratio), "domains/host {ratio}");
    }

    #[test]
    fn vulnerable_population_rate() {
        let w = small_world();
        let vulnerable = w.initially_vulnerable_hosts().len() as f64;
        let total = w.hosts.len() as f64;
        // Paper: 7,212 of ~186K addresses ≈ 3.9% of all addresses
        // (17% of *tested* servers).
        let rate = vulnerable / total;
        assert!((0.015..0.09).contains(&rate), "vulnerable host rate {rate}");
        let vulnerable_domains = w.initially_vulnerable_domains().len() as f64;
        let rate_d = vulnerable_domains / w.domains.len() as f64;
        // Paper: 18,660 of ~440K ≈ 4.3%.
        assert!((0.015..0.09).contains(&rate_d), "vulnerable domain rate {rate_d}");
    }

    #[test]
    fn providers_exist_and_some_are_vulnerable() {
        let w = small_world();
        let providers: Vec<&DomainRecord> =
            w.domains.iter().filter(|d| d.top_provider).collect();
        assert_eq!(providers.len(), 20);
        let vulnerable = providers
            .iter()
            .filter(|d| {
                d.hosts
                    .iter()
                    .any(|&h| w.host(h).profile.initially_vulnerable())
            })
            .count();
        assert_eq!(vulnerable, w.config.vulnerable_top_providers);
        // Vulnerable providers never patch (§7.5).
        for d in providers {
            for &h in &d.hosts {
                if w.host(h).profile.initially_vulnerable() {
                    assert_eq!(w.host(h).profile.patch_day, None);
                }
            }
        }
    }

    #[test]
    fn no_mx_domains_park_on_refusing_hosts() {
        let w = small_world();
        let mut parked = 0;
        let mut refusing = 0;
        for d in &w.domains {
            if !d.has_mx {
                parked += 1;
                if w.domain_hosts_refuse(d) {
                    refusing += 1;
                }
            }
        }
        assert!(parked > 0);
        let rate = f64::from(refusing) / f64::from(parked);
        assert!(rate > 0.8, "parked refusal rate {rate}");
    }

    #[test]
    fn spam_churn_domains_lose_mx_by_window2() {
        let w = small_world();
        let churner = (0..w.domains.len() as u32)
            .map(DomainId)
            .find(|&d| w.domain(d).spam_churn)
            .expect("some churners at this scale");
        assert!(!w.resolve_mail_hosts(churner, 0).is_empty());
        assert!(w
            .resolve_mail_hosts(churner, Timeline::WINDOW2_START)
            .is_empty());
    }

    #[test]
    fn build_mta_respects_patch_day() {
        let w = small_world();
        let host = w
            .initially_vulnerable_hosts()
            .into_iter()
            .find(|&h| w.host(h).profile.patch_day.is_some_and(|d| d <= 126))
            .expect("some patching host");
        let patch_day = w.host(host).profile.patch_day.unwrap();
        assert!(w.build_mta(host, patch_day - 1).config().is_vulnerable());
        assert!(!w.build_mta(host, patch_day).config().is_vulnerable());
    }

    #[test]
    fn reverse_index_is_consistent() {
        let w = small_world();
        for (idx, d) in w.domains.iter().enumerate() {
            for &h in &d.hosts {
                assert!(w.domains_of(h).contains(&DomainId(idx as u32)));
            }
        }
    }

    impl World {
        fn domain_hosts_refuse(&self, d: &DomainRecord) -> bool {
            d.hosts
                .iter()
                .all(|&h| self.host(h).profile.connect == ConnectPolicy::Refuse)
        }
    }
}
