//! The simulated Internet the measurement runs against.
//!
//! The paper measured two real domain populations — the Alexa Top List
//! (418,842 domains, October 2021) and "2-Week MX" (22,911 email domains
//! observed at a university) — whose mail servers it probed over four
//! months. Neither population nor the 2021 Internet is available to a
//! reproduction, so this crate generates a *calibrated synthetic world*:
//!
//! * [`config`] — every calibration constant, with defaults matching the
//!   paper's observed rates (set sizes, Table 1 overlap, Table 2 TLD mix,
//!   Table 3 outcome rates, Table 4 vulnerability rates, Table 5 per-TLD
//!   patch propensities, §7.5's vulnerable top providers, §7.6 timing).
//! * [`timeline`] — the measurement calendar, mapping simulated days to
//!   the paper's real dates (day 0 = 2021-10-11).
//! * [`tld`] — TLD frequency tables and patch-propensity multipliers.
//! * [`geo`] — a synthetic geolocation model standing in for DbIP.
//! * [`pkgmgr`] — Table 6's package-manager patch timelines and the
//!   patch-wave model derived from them.
//! * [`domains`], [`hosting`] — the population generator: domains with
//!   ranks and TLDs, hosting fan-out onto server IPs, per-host behaviour
//!   profiles, and pre-sampled patch days.
//! * [`world`] — [`world::World`]: the assembled population plus the DNS
//!   directory and measurement zone, ready for the prober.
//!
//! A single `scale` knob shrinks the population for tests and benchmarks
//! while preserving every rate, so percentages in regenerated tables stay
//! comparable to the paper at any size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod domains;
pub mod geo;
pub mod hosting;
pub mod lazy;
pub mod pkgmgr;
pub mod timeline;
pub mod tld;
pub mod world;

pub use config::WorldConfig;
pub use domains::{DomainId, DomainRecord, SetMembership};
pub use geo::GeoPoint;
pub use hosting::{HostId, HostProfile, HostRecord, PatchCause};
pub use lazy::{
    DomainStep, LazyWorld, Population, RuntimePopulation, SparsePopulation, WorldRuntime,
};
pub use pkgmgr::{PackageManager, PkgTimelineRow, PACKAGE_TIMELINE};
pub use timeline::Timeline;
pub use world::{MtaInstrumentation, World};
