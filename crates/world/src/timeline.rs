//! The measurement calendar (paper §5.3 / §6.4).
//!
//! Day 0 is 2021-10-11, the initial measurement. All campaign scheduling
//! is expressed in these day numbers; [`Timeline::date_label`] converts
//! back to calendar dates for report axes.

use spfail_netsim::{SimDuration, SimTime};

/// Milestones of the measurement, as day offsets from 2021-10-11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeline;

impl Timeline {
    /// Initial measurement of all domains (2021-10-11).
    pub const INITIAL: u16 = 0;
    /// Every-2-days longitudinal measurements begin (2021-10-26).
    pub const LONGITUDINAL_START: u16 = 15;
    /// Private notifications sent to vulnerable servers (2021-11-15).
    pub const PRIVATE_NOTIFICATION: u16 = 35;
    /// Measurements paused (2021-11-30).
    pub const WINDOW1_END: u16 = 50;
    /// Measurements resume (2022-01-15).
    pub const WINDOW2_START: u16 = 96;
    /// CVE-2021-33912/33913 public disclosure (2022-01-19).
    pub const PUBLIC_DISCLOSURE: u16 = 100;
    /// Debian ships the patched libSPF2 package (2022-01-20).
    pub const DEBIAN_PATCH: u16 = 101;
    /// Final longitudinal measurement (2022-02-14).
    pub const END: u16 = 126;
    /// Interval between longitudinal measurements.
    pub const ROUND_INTERVAL: u16 = 2;

    /// The measurement days of window 1 (inclusive bounds).
    pub fn window1_days() -> impl Iterator<Item = u16> {
        (Self::LONGITUDINAL_START..=Self::WINDOW1_END).step_by(Self::ROUND_INTERVAL as usize)
    }

    /// The measurement days of window 2 (inclusive bounds).
    pub fn window2_days() -> impl Iterator<Item = u16> {
        (Self::WINDOW2_START..=Self::END).step_by(Self::ROUND_INTERVAL as usize)
    }

    /// All longitudinal measurement days (both windows).
    pub fn all_round_days() -> Vec<u16> {
        Self::window1_days().chain(Self::window2_days()).collect()
    }

    /// Convert a day number to simulated time (midnight of that day).
    pub fn day_to_time(day: u16) -> SimTime {
        SimTime::EPOCH + SimDuration::from_days(u64::from(day))
    }

    /// Convert simulated time back to a day number.
    pub fn time_to_day(t: SimTime) -> u16 {
        t.as_days() as u16
    }

    /// The calendar date of a measurement day, as `YYYY-MM-DD`.
    pub fn date_label(day: u16) -> String {
        // Month lengths from 2021-10-11 onwards.
        const MONTHS: [(u16, u16, u16); 6] = [
            (2021, 10, 31),
            (2021, 11, 30),
            (2021, 12, 31),
            (2022, 1, 31),
            (2022, 2, 28),
            (2022, 3, 31),
        ];
        let mut day_of_month = 11 + day; // start at October 11th
        for (year, month, len) in MONTHS {
            if day_of_month <= len {
                return format!("{year}-{month:02}-{day_of_month:02}");
            }
            day_of_month -= len;
        }
        format!("2022-04-{day_of_month:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milestone_dates_match_the_paper() {
        assert_eq!(Timeline::date_label(Timeline::INITIAL), "2021-10-11");
        assert_eq!(Timeline::date_label(Timeline::LONGITUDINAL_START), "2021-10-26");
        assert_eq!(
            Timeline::date_label(Timeline::PRIVATE_NOTIFICATION),
            "2021-11-15"
        );
        assert_eq!(Timeline::date_label(Timeline::WINDOW1_END), "2021-11-30");
        assert_eq!(Timeline::date_label(Timeline::WINDOW2_START), "2022-01-15");
        assert_eq!(Timeline::date_label(Timeline::PUBLIC_DISCLOSURE), "2022-01-19");
        assert_eq!(Timeline::date_label(Timeline::DEBIAN_PATCH), "2022-01-20");
        assert_eq!(Timeline::date_label(Timeline::END), "2022-02-14");
    }

    #[test]
    fn rounds_are_every_two_days_within_windows() {
        let days = Timeline::all_round_days();
        assert_eq!(days.first(), Some(&15));
        assert!(days.contains(&49));
        assert!(!days.iter().any(|d| (51..96).contains(d)), "gap respected");
        assert!(days.contains(&96));
        assert_eq!(days.last(), Some(&126));
        for pair in days.windows(2) {
            let gap = pair[1] - pair[0];
            assert!(gap == 2 || gap > 40, "either a round step or the pause");
        }
    }

    #[test]
    fn day_time_round_trip() {
        for day in [0u16, 1, 50, 126] {
            assert_eq!(Timeline::time_to_day(Timeline::day_to_time(day)), day);
        }
    }
}
