//! Synthetic geolocation, standing in for the DbIP database (paper §7.3).
//!
//! The paper geolocates each vulnerable IP, buckets coordinates, and draws
//! choropleths of vulnerable and patched hosts (Figure 3). The substitution
//! here maps each host to its country — usually implied by its domain's
//! ccTLD, otherwise drawn from a hosting-weighted global distribution —
//! and each country to a representative coordinate with jitter.

use spfail_netsim::SimRng;

/// A geolocated point with its country code.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoPoint {
    /// ISO-ish country code (we use TLD-style lowercase codes).
    pub country: &'static str,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

/// (country, lat, lon, hosting-weight) for the generic pool used when a
/// domain's TLD implies no country.
const COUNTRIES: [(&str, f64, f64, f64); 24] = [
    ("us", 39.0, -98.0, 30.0),
    ("de", 51.0, 10.0, 9.0),
    ("fr", 46.5, 2.5, 5.0),
    ("nl", 52.2, 5.3, 4.5),
    ("uk", 53.0, -1.5, 5.0),
    ("ru", 57.0, 50.0, 7.0),
    ("cn", 34.0, 104.0, 4.0),
    ("jp", 36.0, 138.0, 3.0),
    ("kr", 36.5, 127.8, 2.0),
    ("in", 21.0, 78.0, 3.5),
    ("br", -10.0, -52.0, 3.0),
    ("ca", 56.0, -106.0, 2.5),
    ("au", -25.0, 134.0, 2.0),
    ("ir", 32.0, 53.0, 2.5),
    ("tr", 39.0, 35.0, 2.0),
    ("ua", 49.0, 31.5, 2.0),
    ("pl", 52.0, 19.5, 2.0),
    ("cz", 49.8, 15.5, 1.0),
    ("za", -29.0, 24.0, 0.8),
    ("gr", 39.0, 22.0, 0.6),
    ("il", 31.5, 34.8, 0.6),
    ("by", 53.5, 28.0, 0.4),
    ("tw", 23.7, 121.0, 0.8),
    ("mx", 23.5, -102.0, 1.2),
];

/// Country-coded TLDs we map directly to a country.
const CC_TLDS: [&str; 22] = [
    "de", "fr", "nl", "uk", "ru", "cn", "jp", "kr", "in", "br", "ca", "au", "ir", "tr", "ua",
    "pl", "cz", "za", "gr", "il", "by", "tw",
];

/// Geolocate a host: ccTLD domains stay in their country with high
/// probability; everything else draws from the hosting-weighted pool.
pub fn locate(tld: &str, rng: &mut SimRng) -> GeoPoint {
    let country_row = if CC_TLDS.contains(&tld) && rng.chance(0.85) {
        COUNTRIES
            .iter()
            .find(|(c, _, _, _)| *c == tld)
            .expect("every ccTLD has a country row")
    } else {
        let weights: Vec<f64> = COUNTRIES.iter().map(|(_, _, _, w)| *w).collect();
        let idx = rng.pick_weighted(&weights).expect("non-empty weights");
        &COUNTRIES[idx]
    };
    let (country, lat, lon, _) = *country_row;
    GeoPoint {
        country,
        lat: lat + (rng.unit() - 0.5) * 6.0,
        lon: lon + (rng.unit() - 0.5) * 6.0,
    }
}

/// Bucket a coordinate into a grid cell of `cell` degrees, for choropleth
/// aggregation.
pub fn bucket(point: &GeoPoint, cell: f64) -> (i32, i32) {
    (
        (point.lat / cell).floor() as i32,
        (point.lon / cell).floor() as i32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cctld_hosts_mostly_stay_home() {
        let mut rng = SimRng::new(42);
        let hits = (0..1000)
            .filter(|_| locate("za", &mut rng).country == "za")
            .count();
        assert!(hits > 750, "za hosts at home: {hits}");
    }

    #[test]
    fn generic_tlds_spread_over_the_pool() {
        let mut rng = SimRng::new(43);
        let us = (0..1000)
            .filter(|_| locate("com", &mut rng).country == "us")
            .count();
        assert!((150..500).contains(&us), "us share of com hosting: {us}");
    }

    #[test]
    fn coordinates_are_jittered_near_the_country() {
        let mut rng = SimRng::new(44);
        for _ in 0..100 {
            let p = locate("tw", &mut rng);
            if p.country == "tw" {
                assert!((p.lat - 23.7).abs() <= 3.0);
                assert!((p.lon - 121.0).abs() <= 3.0);
            }
        }
    }

    #[test]
    fn bucketing_is_stable() {
        let p = GeoPoint {
            country: "us",
            lat: 39.4,
            lon: -98.7,
        };
        assert_eq!(bucket(&p, 10.0), (3, -10));
        assert_eq!(bucket(&p, 5.0), (7, -20));
    }
}
