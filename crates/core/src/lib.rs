//! # SPFail — reproduction of the IMC '22 measurement study
//!
//! This crate is the umbrella entry point for the reproduction of
//! *"SPFail: Discovering, Measuring, and Remediating Vulnerabilities in
//! Email Sender Validation"* (Bennett, Sowards, Deccio — IMC 2022).
//!
//! The paper discovered two heap-overflow vulnerabilities in libSPF2
//! (CVE-2021-33912 and CVE-2021-33913), developed a *benign* technique to
//! detect them remotely — the vulnerable library mangles SPF macro
//! expansion in a unique way that is visible in the DNS queries a mail
//! server sends while validating — and ran a four-month longitudinal
//! measurement of patching across hundreds of thousands of domains.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`netsim`]  | `spfail-netsim`  | deterministic simulation substrate |
//! | [`dns`]     | `spfail-dns`     | names, wire format, zones, resolver, query log |
//! | [`smtp`]    | `spfail-smtp`    | commands, replies, sessions, probe plans |
//! | [`spf`]     | `spfail-spf`     | RFC 7208 records, macros, `check_host()` |
//! | [`libspf2`] | `spfail-libspf2` | the vulnerable expansion over a simulated heap |
//! | [`mta`]     | `spfail-mta`     | probeable mail servers |
//! | [`world`]   | `spfail-world`   | the calibrated synthetic Internet |
//! | [`prober`]  | `spfail-prober`  | NoMsg/BlankMsg probes, classification, campaigns |
//! | [`trace`]   | `spfail-trace`   | deterministic spans, shard-invariant merge, profiles |
//! | [`notify`]  | `spfail-notify`  | the private-notification campaign |
//! | [`report`]  | `spfail-report`  | every table and figure of the paper |
//! | [`conformance`] | `spfail-conformance` | differential oracle, fuzzer, regression corpus |
//!
//! ## Quick taste
//!
//! The paper's entire methodology in four lines — the same macro, three
//! implementations, three different DNS queries:
//!
//! ```
//! use spfail::spf::expand::{CompliantExpander, MacroContext, MacroExpander};
//! use spfail::spf::macrostring::MacroString;
//! use spfail::libspf2::LibSpf2Expander;
//!
//! let ms = MacroString::parse("%{d1r}.foo.com").unwrap();
//! let ctx = MacroContext::new("user", "example.com", "192.0.2.3".parse().unwrap());
//!
//! assert_eq!(CompliantExpander.expand(&ms, &ctx, false).unwrap(),
//!            "example.foo.com");                  // RFC 7208
//! assert_eq!(LibSpf2Expander::vulnerable().expand(&ms, &ctx, false).unwrap(),
//!            "com.com.example.foo.com");          // CVE-2021-33913's fingerprint
//! assert_eq!(LibSpf2Expander::patched().expand(&ms, &ctx, false).unwrap(),
//!            "example.foo.com");                  // after the fix
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `cargo run -p spfail-report --release --bin experiments` to regenerate
//! every exhibit in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spfail_conformance as conformance;
pub use spfail_dns as dns;
pub use spfail_libspf2 as libspf2;
pub use spfail_mta as mta;
pub use spfail_netsim as netsim;
pub use spfail_notify as notify;
pub use spfail_prober as prober;
pub use spfail_report as report;
pub use spfail_smtp as smtp;
pub use spfail_spf as spf;
pub use spfail_trace as trace;
pub use spfail_world as world;

/// The stack-wide probe-failure vocabulary (re-exported from
/// [`netsim`]): every layer — the resolver, the SMTP client, the
/// prober — reports failures in this one enum, and
/// [`ProbeError::is_transient`] is the single source of truth for what
/// a retry policy may answer.
pub use spfail_netsim::ProbeError;

/// The two CVE identifiers this reproduction models.
pub const CVES: [&str; 2] = ["CVE-2021-33912", "CVE-2021-33913"];

#[cfg(test)]
mod tests {
    #[test]
    fn cve_identifiers() {
        assert_eq!(super::CVES.len(), 2);
    }
}
