//! Deterministic structured tracing for the measurement pipeline.
//!
//! The campaign engines promise that a sharded run produces bit-for-bit
//! the data of the sequential reference. This crate extends that promise
//! to *telemetry*: spans and events recorded while probing merge across
//! shards into a trace that is byte-identical to the sequential run's.
//!
//! Two properties make that possible:
//!
//! * **Identity keys, not wall order.** Every probe record carries the
//!   probe's full identity — campaign phase, host, day, test variant,
//!   replayed-connection count, and a per-identity sequence number — and
//!   the merged trace is sorted by that key. How hosts interleave on a
//!   worker, or which worker they land on, never shows in the output.
//! * **Probe-relative timestamps.** The sequential engine serialises all
//!   hosts on one clock while each shard has its own, so *absolute*
//!   sim-times differ between engines. Within one probe, however, every
//!   clock advance is a pure function of the probe's identity (its forked
//!   RNG streams, fixed timeouts, its own host's contact history). Events
//!   are therefore stamped with the offset since their probe span opened,
//!   which is shard-invariant.
//!
//! On top of the raw trace: a self-time/cumulative-time [`Profile`] with
//! per-phase latency [`Histogram`]s, a JSONL exporter, and a
//! collapsed-stack exporter (one `frame;frame;frame count` line per
//! stack, the format flamegraph tooling consumes).
//!
//! The [`Tracer`] handle is cheap to clone and free when disabled: a
//! disabled tracer is a `None` and every recording call returns before
//! formatting anything, so the zero-allocation resolve hot path stays
//! zero-allocation (enforced in `crates/bench/tests/alloc_count.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use spfail_netsim::{Histogram, SimDuration, SimTime};

/// Tracing configuration handed to `CampaignBuilder::trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Whether tracing is on. Off is the default and costs nothing.
    pub enabled: bool,
}

impl TraceConfig {
    /// Tracing switched on.
    pub const fn enabled() -> TraceConfig {
        TraceConfig { enabled: true }
    }

    /// Tracing switched off (the default).
    pub const fn disabled() -> TraceConfig {
        TraceConfig { enabled: false }
    }
}

/// Which campaign phase a probe ran in.
///
/// The derived `Ord` is the canonical phase order: the initial sweep,
/// then the longitudinal rounds by day, then the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The initial sweep over every host.
    Initial,
    /// One longitudinal round, keyed by its measurement day.
    Round(u16),
    /// The final re-resolving snapshot.
    Snapshot,
}

impl Phase {
    /// A stable text label: `initial`, `round-d15`, `snapshot`.
    pub fn label(&self) -> String {
        match self {
            Phase::Initial => "initial".to_string(),
            Phase::Round(day) => format!("round-d{day}"),
            Phase::Snapshot => "snapshot".to_string(),
        }
    }

    /// The inverse of [`Phase::label`].
    pub fn parse_label(s: &str) -> Option<Phase> {
        match s {
            "initial" => Some(Phase::Initial),
            "snapshot" => Some(Phase::Snapshot),
            _ => s
                .strip_prefix("round-d")
                .and_then(|day| day.parse().ok())
                .map(Phase::Round),
        }
    }
}

/// The span vocabulary under a probe span.
///
/// The hierarchy is `campaign → probe → {dns_resolve, smtp_session,
/// retry_wait, greylist_wait, fault}`, with `dns_resolve` nesting inside
/// `smtp_session` whenever SPF validation runs mid-transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One `Resolver::resolve` call (CNAME chain included).
    DnsResolve,
    /// One SMTP conversation, connect through QUIT/hang-up.
    SmtpSession,
    /// A retry-policy backoff wait between probe attempts.
    RetryWait,
    /// The §6.1 greylist wait before the in-transaction retry.
    GreylistWait,
    /// Time (possibly none) consumed by an injected fault: a flaky
    /// host's connect timeout, a closed reachability window, an SMTP
    /// tempfail or reset decision.
    Fault,
}

impl SpanKind {
    /// The stable frame name used in paths and exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::DnsResolve => "dns_resolve",
            SpanKind::SmtpSession => "smtp_session",
            SpanKind::RetryWait => "retry_wait",
            SpanKind::GreylistWait => "greylist_wait",
            SpanKind::Fault => "fault",
        }
    }

    /// The inverse of [`SpanKind::name`].
    pub fn parse_name(s: &str) -> Option<SpanKind> {
        match s {
            "dns_resolve" => Some(SpanKind::DnsResolve),
            "smtp_session" => Some(SpanKind::SmtpSession),
            "retry_wait" => Some(SpanKind::RetryWait),
            "greylist_wait" => Some(SpanKind::GreylistWait),
            "fault" => Some(SpanKind::Fault),
            _ => None,
        }
    }
}

/// Map an outcome string back onto the stack's `&'static str` outcome
/// vocabulary, so a trace restored from a checkpoint compares equal
/// (pointer contents, not provenance) to a live-recorded one.
///
/// Every outcome the resolver, SMTP driver, fault layer, and retry loop
/// emit is matched explicitly; an unrecognised outcome (e.g. from a
/// checkpoint written by a newer vocabulary) is leaked once into a
/// `'static` string rather than rejected.
pub fn intern_outcome(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        // dns_resolve
        "ok",
        "nxdomain",
        "nodata",
        "timeout",
        "servfail",
        "no_authority",
        "cname_loop",
        // smtp_session (TransactionOutcome::label + refused connections)
        "refused",
        "rejected_connect",
        "rejected_hello",
        "rejected_mail_from",
        "rejected_rcpt",
        "rejected_data",
        "transient",
        "connection_reset",
        "nomsg_completed",
        "message_accepted",
        "message_rejected",
        // fault
        "flaky",
        "window_closed",
        "smtp_tempfail",
        "smtp_reset",
        // retry_wait / greylist_wait
        "backoff",
        "greylisted",
    ];
    match KNOWN.iter().find(|&&k| k == s) {
        Some(&k) => k,
        None => Box::leak(s.to_string().into_boxed_str()),
    }
}

/// One recorded event, stamped relative to its probe span's start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds of simulated time since the probe span opened.
    pub at_us: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Span boundary events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened.
    Enter {
        /// The span's kind.
        span: SpanKind,
        /// Optional detail (e.g. the DNS question), built only when
        /// tracing is enabled.
        label: Option<String>,
    },
    /// The innermost open span closed.
    Exit {
        /// The span's kind (must match the innermost open span).
        span: SpanKind,
        /// How the span concluded (`"ok"`, `"timeout"`, ...).
        outcome: &'static str,
    },
}

/// Everything one probe recorded: its identity key plus its events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeRecord {
    /// Campaign phase the probe ran in.
    pub phase: Phase,
    /// Probed host id.
    pub host: u32,
    /// Scheduled measurement day.
    pub day: u16,
    /// Test-variant tag (0 = NoMsg, 1 = BlankMsg).
    pub test: u8,
    /// Replayed-connection count (the blacklisting counter).
    pub extra: u32,
    /// Sequence number among probes with the same identity in the same
    /// phase (a snapshot host probed twice gets 0 then 1).
    pub seq: u32,
    /// Total simulated microseconds the probe span covered.
    pub duration_us: u64,
    /// The probe's events, in recording order.
    pub events: Vec<TraceEvent>,
}

impl ProbeRecord {
    /// The identity-order sort key shard merging uses.
    fn key(&self) -> (Phase, u32, u16, u8, u32, u32) {
        (self.phase, self.host, self.day, self.test, self.extra, self.seq)
    }

    /// The test variant's stable name.
    pub fn test_name(&self) -> &'static str {
        match self.test {
            0 => "nomsg",
            1 => "blankmsg",
            _ => "other",
        }
    }

    /// Check the record's structural invariants: event times are
    /// monotone and within the probe interval, spans are strictly
    /// well-parenthesized, and every child interval lies inside its
    /// parent's.
    pub fn validate(&self) -> Result<(), String> {
        let mut stack: Vec<(SpanKind, u64)> = Vec::new();
        let mut last_at = 0u64;
        for (i, event) in self.events.iter().enumerate() {
            if event.at_us < last_at {
                return Err(format!("event {i} goes back in time"));
            }
            if event.at_us > self.duration_us {
                return Err(format!("event {i} is outside the probe interval"));
            }
            last_at = event.at_us;
            match &event.kind {
                TraceEventKind::Enter { span, .. } => stack.push((*span, event.at_us)),
                TraceEventKind::Exit { span, .. } => {
                    let Some((open, opened_at)) = stack.pop() else {
                        return Err(format!("event {i} exits with no open span"));
                    };
                    if open != *span {
                        return Err(format!(
                            "event {i} exits {:?} while {open:?} is open",
                            span
                        ));
                    }
                    if event.at_us < opened_at {
                        return Err(format!("event {i} closes before it opened"));
                    }
                }
            }
        }
        if let Some((open, _)) = stack.last() {
            return Err(format!("span {open:?} never closed"));
        }
        Ok(())
    }

    /// Serialise the record onto one line of the checkpoint wire form:
    ///
    /// ```text
    /// <phase> <host> <day> <test> <extra> <seq> <duration_us> <event>...
    /// ```
    ///
    /// with each event either `+span@at[=label]` (enter) or
    /// `-span@at=outcome` (exit); labels and outcomes are percent-escaped
    /// so the line stays whitespace-delimited.
    pub fn to_wire(&self) -> String {
        let mut out = format!(
            "{} {} {} {} {} {} {}",
            self.phase.label(),
            self.host,
            self.day,
            self.test,
            self.extra,
            self.seq,
            self.duration_us,
        );
        for event in &self.events {
            match &event.kind {
                TraceEventKind::Enter { span, label } => {
                    let _ = write!(out, " +{}@{}", span.name(), event.at_us);
                    if let Some(label) = label {
                        let _ = write!(out, "={}", escape_field(label));
                    }
                }
                TraceEventKind::Exit { span, outcome } => {
                    let _ = write!(
                        out,
                        " -{}@{}={}",
                        span.name(),
                        event.at_us,
                        escape_field(outcome)
                    );
                }
            }
        }
        out
    }

    /// Parse one [`ProbeRecord::to_wire`] line. Exit outcomes are
    /// re-interned through [`intern_outcome`], so the restored record
    /// compares equal to the live-recorded original.
    pub fn from_wire(line: &str) -> Result<ProbeRecord, String> {
        let mut fields = line.split(' ');
        let mut next = |what: &str| {
            fields
                .next()
                .ok_or_else(|| format!("trace record: missing {what}"))
        };
        let phase = next("phase")?;
        let phase = Phase::parse_label(phase).ok_or_else(|| format!("bad phase {phase:?}"))?;
        let host = parse_num(next("host")?, "host")?;
        let day = parse_num(next("day")?, "day")?;
        let test = parse_num(next("test")?, "test")?;
        let extra = parse_num(next("extra")?, "extra")?;
        let seq = parse_num(next("seq")?, "seq")?;
        let duration_us = parse_num(next("duration_us")?, "duration_us")?;
        let mut events = Vec::new();
        for field in fields {
            let (enter, rest) = if let Some(rest) = field.strip_prefix('+') {
                (true, rest)
            } else if let Some(rest) = field.strip_prefix('-') {
                (false, rest)
            } else {
                return Err(format!("bad event field {field:?}"));
            };
            let (span, rest) = rest
                .split_once('@')
                .ok_or_else(|| format!("bad event field {field:?}"))?;
            let span =
                SpanKind::parse_name(span).ok_or_else(|| format!("bad span {span:?}"))?;
            let (at, detail) = match rest.split_once('=') {
                Some((at, detail)) => (at, Some(detail)),
                None => (rest, None),
            };
            let at_us = parse_num(at, "event time")?;
            let kind = if enter {
                TraceEventKind::Enter {
                    span,
                    label: detail.map(unescape_field),
                }
            } else {
                let outcome = detail.ok_or_else(|| format!("exit without outcome: {field:?}"))?;
                TraceEventKind::Exit {
                    span,
                    outcome: intern_outcome(&unescape_field(outcome)),
                }
            };
            events.push(TraceEvent { at_us, kind });
        }
        Ok(ProbeRecord {
            phase,
            host,
            day,
            test,
            extra,
            seq,
            duration_us,
            events,
        })
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: {s:?}"))
}

/// Percent-escape a free-form field into pure printable ASCII with no
/// whitespace or separator bytes: `%`, space, `=`, control characters,
/// and every non-ASCII byte become `%XX`.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'%' | b' ' | b'=' | 0..=0x1f | 0x7f.. => {
                let _ = write!(out, "%{b:02x}");
            }
            _ => out.push(b as char),
        }
    }
    out
}

/// Undo [`escape_field`]. Malformed escapes pass through literally.
pub fn unescape_field(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let escaped = (bytes[i] == b'%' && i + 3 <= bytes.len())
            .then(|| std::str::from_utf8(&bytes[i + 1..i + 3]).ok())
            .flatten()
            .and_then(|hex| u8::from_str_radix(hex, 16).ok());
        match escaped {
            Some(b) => {
                out.push(b);
                i += 3;
            }
            None => {
                out.push(bytes[i]);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

#[derive(Debug, Default)]
struct TraceBuf {
    phase: Option<Phase>,
    seq: HashMap<(Phase, u32, u16, u8, u32), u32>,
    open: Option<OpenProbe>,
    records: Vec<ProbeRecord>,
}

#[derive(Debug)]
struct OpenProbe {
    start: SimTime,
    record: ProbeRecord,
}

impl TraceBuf {
    fn close_open(&mut self, now: SimTime) {
        if let Some(mut open) = self.open.take() {
            open.record.duration_us = now.since(open.start).as_micros();
            self.records.push(open.record);
        }
    }
}

/// A cheap-to-clone recording handle threaded through `ProbeContext`
/// into the resolver, the SMTP driver, the retry loop, and the fault
/// layer. All clones append into one per-worker buffer.
///
/// A disabled tracer (the default) holds nothing; every method returns
/// immediately without formatting or allocating.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceBuf>>>,
}

impl Tracer {
    /// A tracer honouring `config`: recording when enabled, a free
    /// no-op handle otherwise.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            inner: config
                .enabled
                .then(|| Arc::new(Mutex::new(TraceBuf::default()))),
        }
    }

    /// The no-op handle.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Set the campaign phase stamped onto subsequently opened probes.
    pub fn set_phase(&self, phase: Phase) {
        if let Some(inner) = &self.inner {
            inner.lock().phase = Some(phase);
        }
    }

    /// Open a probe span for the given probe identity at `now`.
    /// Subsequent child spans and the closing [`Tracer::end_probe`] are
    /// stamped relative to this instant.
    pub fn begin_probe(&self, now: SimTime, host: u32, day: u16, test: u8, extra: u32) {
        let Some(inner) = &self.inner else { return };
        let mut buf = inner.lock();
        // Defensive: a dangling open probe is finalised rather than lost.
        buf.close_open(now);
        let phase = buf.phase.unwrap_or(Phase::Initial);
        let seq_slot = buf.seq.entry((phase, host, day, test, extra)).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        buf.open = Some(OpenProbe {
            start: now,
            record: ProbeRecord {
                phase,
                host,
                day,
                test,
                extra,
                seq,
                duration_us: 0,
                events: Vec::new(),
            },
        });
    }

    /// Close the open probe span at `now`.
    pub fn end_probe(&self, now: SimTime) {
        let Some(inner) = &self.inner else { return };
        inner.lock().close_open(now);
    }

    /// Open a child span. Events outside an open probe are dropped —
    /// background resolver traffic has no identity to merge under.
    pub fn enter(&self, now: SimTime, span: SpanKind) {
        self.push(now, |_| TraceEventKind::Enter { span, label: None });
    }

    /// Open a child span with a lazily built label. The closure runs
    /// only when the tracer is enabled *and* a probe is open, so the
    /// disabled path never pays for the formatting.
    pub fn enter_labeled(&self, now: SimTime, span: SpanKind, label: impl FnOnce() -> String) {
        self.push(now, |_| TraceEventKind::Enter {
            span,
            label: Some(label()),
        });
    }

    /// Close the innermost open span with an outcome tag.
    pub fn exit(&self, now: SimTime, span: SpanKind, outcome: &'static str) {
        self.push(now, |_| TraceEventKind::Exit { span, outcome });
    }

    #[inline]
    fn push(&self, now: SimTime, make: impl FnOnce(&ProbeRecord) -> TraceEventKind) {
        let Some(inner) = &self.inner else { return };
        let mut buf = inner.lock();
        let Some(open) = buf.open.as_mut() else { return };
        let at_us = now.since(open.start).as_micros();
        let kind = make(&open.record);
        open.record.events.push(TraceEvent { at_us, kind });
    }

    /// Drain everything recorded so far into a normalised [`Trace`]
    /// (records sorted in identity order). The handle stays usable.
    pub fn finish(&self) -> Trace {
        let Some(inner) = &self.inner else {
            return Trace::default();
        };
        let mut buf = inner.lock();
        let records = std::mem::take(&mut buf.records);
        buf.seq.clear();
        buf.open = None;
        let mut trace = Trace { records };
        trace.normalize();
        trace
    }
}

/// A finished trace: probe records in canonical identity order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// The records, sorted by `(phase, host, day, test, extra, seq)`.
    pub records: Vec<ProbeRecord>,
}

impl Trace {
    /// Sort records into identity order.
    fn normalize(&mut self) {
        self.records.sort_by_key(ProbeRecord::key);
    }

    /// Merge per-shard traces. Because the result is sorted by probe
    /// identity (which is unique across shards — each host lives on
    /// exactly one), the merged trace is byte-identical to the
    /// sequential engine's for the same campaign.
    pub fn merge(parts: impl IntoIterator<Item = Trace>) -> Trace {
        let mut merged = Trace::default();
        for part in parts {
            merged.records.extend(part.records);
        }
        merged.normalize();
        merged
    }

    /// Number of probe records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialise as JSONL: one `probe` object per record followed by one
    /// object per event. Fully deterministic — hand-formatted with keys
    /// in fixed order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            let _ = writeln!(
                out,
                "{{\"type\":\"probe\",\"phase\":\"{}\",\"host\":{},\"day\":{},\
                 \"test\":\"{}\",\"extra\":{},\"seq\":{},\"duration_us\":{}}}",
                record.phase.label(),
                record.host,
                record.day,
                record.test_name(),
                record.extra,
                record.seq,
                record.duration_us,
            );
            for event in &record.events {
                match &event.kind {
                    TraceEventKind::Enter { span, label } => {
                        let _ = write!(
                            out,
                            "{{\"type\":\"enter\",\"span\":\"{}\",\"at_us\":{}",
                            span.name(),
                            event.at_us,
                        );
                        if let Some(label) = label {
                            let _ = write!(out, ",\"label\":\"{}\"", escape_json(label));
                        }
                        out.push_str("}\n");
                    }
                    TraceEventKind::Exit { span, outcome } => {
                        let _ = writeln!(
                            out,
                            "{{\"type\":\"exit\",\"span\":\"{}\",\"at_us\":{},\
                             \"outcome\":\"{}\"}}",
                            span.name(),
                            event.at_us,
                            outcome,
                        );
                    }
                }
            }
        }
        out
    }

    /// The aggregated latency profile.
    pub fn profile(&self) -> Profile {
        let mut profile = Profile::default();
        for record in &self.records {
            profile.add_record(record);
        }
        profile
    }

    /// Collapsed-stack output of [`Trace::profile`].
    pub fn to_collapsed(&self) -> String {
        self.profile().to_collapsed()
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Aggregated totals for one stack path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileRow {
    /// Spans observed on this path.
    pub count: u64,
    /// Cumulative simulated microseconds (span durations summed).
    pub total_us: u64,
    /// Self time: cumulative minus time spent in child spans.
    pub self_us: u64,
    /// Distribution of individual span durations.
    pub hist: Histogram,
}

impl ProfileRow {
    fn add(&mut self, total_us: u64, self_us: u64) {
        self.count += 1;
        self.total_us += total_us;
        self.self_us += self_us;
        self.hist.record(total_us);
    }

    fn merged(&self, other: &ProfileRow) -> ProfileRow {
        ProfileRow {
            count: self.count + other.count,
            total_us: self.total_us + other.total_us,
            self_us: self.self_us + other.self_us,
            hist: self.hist.merge(&other.hist),
        }
    }
}

/// Where the simulated makespan went: cumulative and self time per stack
/// path, plus a per-phase histogram of whole-probe latencies.
///
/// Merging is associative and commutative (every field is a sum or a
/// histogram merge), so per-shard or per-record profiles combine in any
/// order — `tests/props.rs` pins this.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    /// Per-path totals, keyed by `probe;...` stack paths.
    rows: BTreeMap<String, ProfileRow>,
    /// Whole-probe duration distribution per campaign phase.
    phases: BTreeMap<Phase, Histogram>,
}

impl Profile {
    /// Fold one probe record into the profile.
    fn add_record(&mut self, record: &ProbeRecord) {
        self.phases
            .entry(record.phase)
            .or_default()
            .record(record.duration_us);
        // Walk the event stream with a span stack; `child_us` accumulates
        // direct children's durations for self-time subtraction.
        let mut stack: Vec<(SpanKind, u64, u64)> = Vec::new();
        let mut probe_child_us = 0u64;
        for event in &record.events {
            match &event.kind {
                TraceEventKind::Enter { span, .. } => stack.push((*span, event.at_us, 0)),
                TraceEventKind::Exit { .. } => {
                    let Some((kind, opened_at, child_us)) = stack.pop() else {
                        continue;
                    };
                    let total = event.at_us.saturating_sub(opened_at);
                    let mut path = String::from("probe");
                    for (parent, _, _) in &stack {
                        path.push(';');
                        path.push_str(parent.name());
                    }
                    path.push(';');
                    path.push_str(kind.name());
                    self.rows
                        .entry(path)
                        .or_default()
                        .add(total, total.saturating_sub(child_us));
                    match stack.last_mut() {
                        Some(parent) => parent.2 += total,
                        None => probe_child_us += total,
                    }
                }
            }
        }
        self.rows.entry("probe".to_string()).or_default().add(
            record.duration_us,
            record.duration_us.saturating_sub(probe_child_us),
        );
    }

    /// The per-path rows in path order.
    pub fn rows(&self) -> impl Iterator<Item = (&str, &ProfileRow)> {
        self.rows.iter().map(|(path, row)| (path.as_str(), row))
    }

    /// The per-phase whole-probe latency histograms, in phase order.
    pub fn phases(&self) -> impl Iterator<Item = (&Phase, &Histogram)> {
        self.phases.iter()
    }

    /// Total probes profiled.
    pub fn probe_count(&self) -> u64 {
        self.rows.get("probe").map_or(0, |row| row.count)
    }

    /// Combine two profiles path-by-path and phase-by-phase.
    #[must_use]
    pub fn merge(&self, other: &Profile) -> Profile {
        let mut rows = self.rows.clone();
        for (path, row) in &other.rows {
            match rows.get_mut(path) {
                Some(existing) => *existing = existing.merged(row),
                None => {
                    rows.insert(path.clone(), row.clone());
                }
            }
        }
        let mut phases = self.phases.clone();
        for (phase, hist) in &other.phases {
            match phases.get_mut(phase) {
                Some(existing) => *existing = existing.merge(hist),
                None => {
                    phases.insert(*phase, hist.clone());
                }
            }
        }
        Profile { rows, phases }
    }

    /// Collapsed-stack (flamegraph-compatible) output: one
    /// `frame;frame;... self_us` line per path with nonzero self time,
    /// in path order.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for (path, row) in &self.rows {
            if row.self_us > 0 {
                let _ = writeln!(out, "{path} {}", row.self_us);
            }
        }
        out
    }
}

/// Parse collapsed-stack text back into `(path, count)` pairs — the
/// round-trip counterpart of [`Profile::to_collapsed`], also handy for
/// feeding externally produced stacks into comparisons.
pub fn parse_collapsed(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (path, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no count field", i + 1))?;
        let count: u64 = count
            .parse()
            .map_err(|_| format!("line {}: bad count {count:?}", i + 1))?;
        out.push((path.to_string(), count));
    }
    Ok(out)
}

/// Render a microsecond total the way the rest of the stack prints
/// simulated durations.
pub fn format_us(us: u64) -> String {
    SimDuration::from_micros(us).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfail_netsim::SimClock;

    fn micros(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    /// One probe with an smtp_session containing a dns_resolve.
    fn sample_trace() -> Trace {
        let tracer = Tracer::new(TraceConfig::enabled());
        let clock = SimClock::new();
        tracer.set_phase(Phase::Initial);
        tracer.begin_probe(clock.now(), 7, 0, 0, 0);
        tracer.enter(clock.now(), SpanKind::SmtpSession);
        clock.advance(micros(10));
        tracer.enter_labeled(clock.now(), SpanKind::DnsResolve, || "TXT spf.test".into());
        clock.advance(micros(30));
        tracer.exit(clock.now(), SpanKind::DnsResolve, "ok");
        clock.advance(micros(5));
        tracer.exit(clock.now(), SpanKind::SmtpSession, "nomsg_completed");
        clock.advance(micros(2));
        tracer.end_probe(clock.now());
        tracer.finish()
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let clock = SimClock::new();
        tracer.set_phase(Phase::Snapshot);
        tracer.begin_probe(clock.now(), 1, 0, 0, 0);
        tracer.enter(clock.now(), SpanKind::SmtpSession);
        tracer.exit(clock.now(), SpanKind::SmtpSession, "ok");
        tracer.end_probe(clock.now());
        assert!(!tracer.is_enabled());
        assert!(tracer.finish().is_empty());
    }

    #[test]
    fn events_are_probe_relative_and_validate() {
        let trace = sample_trace();
        assert_eq!(trace.len(), 1);
        let record = &trace.records[0];
        assert_eq!(record.duration_us, 47);
        assert_eq!(record.events[0].at_us, 0);
        assert_eq!(record.events[1].at_us, 10);
        assert_eq!(record.events[2].at_us, 40);
        assert_eq!(record.events[3].at_us, 45);
        record.validate().expect("well-formed record");
    }

    #[test]
    fn events_outside_probes_are_dropped() {
        let tracer = Tracer::new(TraceConfig::enabled());
        let clock = SimClock::new();
        tracer.enter(clock.now(), SpanKind::DnsResolve);
        tracer.exit(clock.now(), SpanKind::DnsResolve, "ok");
        assert!(tracer.finish().is_empty());
    }

    #[test]
    fn merge_sorts_by_identity_not_arrival() {
        let make = |host: u32, phase: Phase| {
            let tracer = Tracer::new(TraceConfig::enabled());
            let clock = SimClock::new();
            tracer.set_phase(phase);
            tracer.begin_probe(clock.now(), host, 0, 0, 0);
            clock.advance(micros(1));
            tracer.end_probe(clock.now());
            tracer.finish()
        };
        let merged = Trace::merge([
            make(9, Phase::Snapshot),
            make(4, Phase::Initial),
            make(2, Phase::Round(15)),
            make(1, Phase::Round(17)),
        ]);
        let keys: Vec<(Phase, u32)> =
            merged.records.iter().map(|r| (r.phase, r.host)).collect();
        assert_eq!(
            keys,
            vec![
                (Phase::Initial, 4),
                (Phase::Round(15), 2),
                (Phase::Round(17), 1),
                (Phase::Snapshot, 9),
            ]
        );
    }

    #[test]
    fn repeat_probes_get_sequence_numbers() {
        let tracer = Tracer::new(TraceConfig::enabled());
        let clock = SimClock::new();
        tracer.set_phase(Phase::Snapshot);
        for _ in 0..2 {
            tracer.begin_probe(clock.now(), 3, 126, 1, 0);
            clock.advance(micros(10));
            tracer.end_probe(clock.now());
        }
        let trace = tracer.finish();
        assert_eq!(trace.records[0].seq, 0);
        assert_eq!(trace.records[1].seq, 1);
    }

    #[test]
    fn jsonl_is_stable_and_escaped() {
        let trace = sample_trace();
        let jsonl = trace.to_jsonl();
        assert!(jsonl.starts_with(
            "{\"type\":\"probe\",\"phase\":\"initial\",\"host\":7,\"day\":0,\
             \"test\":\"nomsg\",\"extra\":0,\"seq\":0,\"duration_us\":47}\n"
        ));
        assert!(jsonl.contains("\"label\":\"TXT spf.test\""));
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn wire_form_round_trips() {
        let trace = sample_trace();
        for record in &trace.records {
            let line = record.to_wire();
            assert!(!line.contains('\n'));
            let back = ProbeRecord::from_wire(&line).expect("parses");
            assert_eq!(&back, record);
        }
        // Labels with separator bytes survive the escaping.
        let mut record = trace.records[0].clone();
        record.events[1] = TraceEvent {
            at_us: 10,
            kind: TraceEventKind::Enter {
                span: SpanKind::DnsResolve,
                label: Some("TXT sp%f =weird\nlabel\u{fc}".into()),
            },
        };
        let back = ProbeRecord::from_wire(&record.to_wire()).expect("parses");
        assert_eq!(back, record);
        // Malformed lines are rejected, not misparsed.
        assert!(ProbeRecord::from_wire("initial 1 0 0 0").is_err());
        assert!(ProbeRecord::from_wire("nonsense 1 0 0 0 0 0").is_err());
        assert!(ProbeRecord::from_wire("initial 1 0 0 0 0 0 ~what@3").is_err());
        assert!(ProbeRecord::from_wire("initial 1 0 0 0 0 0 -fault@3").is_err());
    }

    #[test]
    fn outcome_interning_covers_the_vocabulary() {
        for outcome in ["ok", "nomsg_completed", "greylisted", "window_closed"] {
            // The interned pointer is the canonical constant, so restored
            // records compare equal to live ones even under pointer-based
            // shortcuts.
            assert_eq!(intern_outcome(&String::from(outcome)), outcome);
        }
        assert_eq!(intern_outcome("never_seen_before"), "never_seen_before");
    }

    #[test]
    fn phase_and_span_labels_round_trip() {
        for phase in [Phase::Initial, Phase::Round(15), Phase::Round(126), Phase::Snapshot] {
            assert_eq!(Phase::parse_label(&phase.label()), Some(phase));
        }
        assert_eq!(Phase::parse_label("round-dX"), None);
        for span in [
            SpanKind::DnsResolve,
            SpanKind::SmtpSession,
            SpanKind::RetryWait,
            SpanKind::GreylistWait,
            SpanKind::Fault,
        ] {
            assert_eq!(SpanKind::parse_name(span.name()), Some(span));
        }
        assert_eq!(SpanKind::parse_name("other"), None);
    }

    #[test]
    fn profile_attributes_self_and_cumulative_time() {
        let profile = sample_trace().profile();
        let rows: BTreeMap<&str, &ProfileRow> = profile.rows().collect();
        assert_eq!(rows["probe"].total_us, 47);
        assert_eq!(rows["probe"].self_us, 2, "47 - 45 in smtp_session");
        assert_eq!(rows["probe;smtp_session"].total_us, 45);
        assert_eq!(rows["probe;smtp_session"].self_us, 15, "45 - 30 in dns");
        assert_eq!(rows["probe;smtp_session;dns_resolve"].self_us, 30);
        let phases: Vec<_> = profile.phases().collect();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].1.count(), 1);
        assert_eq!(profile.probe_count(), 1);
    }

    #[test]
    fn collapsed_output_round_trips() {
        let profile = sample_trace().profile();
        let collapsed = profile.to_collapsed();
        let parsed = parse_collapsed(&collapsed).expect("parses");
        let expected: Vec<(String, u64)> = profile
            .rows()
            .filter(|(_, row)| row.self_us > 0)
            .map(|(path, row)| (path.to_string(), row.self_us))
            .collect();
        assert_eq!(parsed, expected);
        assert!(parse_collapsed("probe notanumber").is_err());
    }

    #[test]
    fn profile_merge_has_identity() {
        let profile = sample_trace().profile();
        assert_eq!(profile.merge(&Profile::default()), profile);
        assert_eq!(Profile::default().merge(&profile), profile);
    }
}
