//! The rule catalog.
//!
//! Every rule is a pure function over one file's token stream plus the
//! workspace [`Config`] that scopes it. Rules are deliberately
//! token-level (see DESIGN.md): each one matches a *shape* the
//! workspace has agreed never to write, and anything the shape
//! over-approximates is answered with a `// lint:allow(<rule-id>) reason`
//! at the site — visible, justified, and counted.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::engine::{FileCtx, FileMeta, Finding};
use crate::lex::TokKind;

/// One rule: identity, one-line contract, scope predicate, checker.
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
    pub applies: fn(&Config, &FileMeta) -> bool,
    pub check: fn(&FileCtx, &Config) -> Vec<Finding>,
}

/// The full catalog, in diagnostic-id order.
pub const ALL_RULES: &[Rule] = &[
    Rule {
        id: "alloc-hot-path",
        summary: "no String/Vec/format! construction in allocation-budget regions",
        applies: |cfg, meta| cfg.alloc_scope(meta).is_some(),
        check: check_alloc_hot_path,
    },
    Rule {
        id: "det-entropy",
        summary: "no OS entropy or randomly-seeded hashers in simulation crates",
        applies: |cfg, meta| cfg.in_sim_scope(meta),
        check: check_entropy,
    },
    Rule {
        id: "det-float-field",
        summary: "no float fields in mergeable aggregates (u128 moment squares are the house style)",
        applies: |cfg, meta| cfg.aggregate_files.contains(&meta.rel_path),
        check: check_float_field,
    },
    Rule {
        id: "det-hash-iter",
        summary: "no HashMap/HashSet iteration outside an ordered-collect idiom",
        applies: |cfg, meta| cfg.in_sim_scope(meta),
        check: check_hash_iter,
    },
    Rule {
        id: "det-wall-clock",
        summary: "no wall-clock reads (Instant/SystemTime) in simulation crates",
        applies: |cfg, meta| cfg.in_sim_scope(meta),
        check: check_wall_clock,
    },
    Rule {
        id: "ethics-probe-budget",
        summary: "probe-emitting functions must reference the ethics budget",
        applies: |cfg, meta| {
            !meta.is_bin && cfg.ethics_crates.contains(&meta.crate_name)
        },
        check: check_ethics_budget,
    },
    Rule {
        id: "panic-empty-expect",
        summary: "expect() must state the invariant it relies on",
        applies: |cfg, meta| cfg.in_panic_scope(meta),
        check: check_empty_expect,
    },
    Rule {
        id: "panic-explicit",
        summary: "no panic!/todo!/unimplemented! in library crates",
        applies: |cfg, meta| cfg.in_panic_scope(meta),
        check: check_explicit_panic,
    },
    Rule {
        id: "panic-unwrap",
        summary: "no bare unwrap() in library crates",
        applies: |cfg, meta| cfg.in_panic_scope(meta),
        check: check_unwrap,
    },
];

/// Look up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    ALL_RULES.iter().find(|r| r.id == id)
}

// ---------------------------------------------------------------------------
// det-wall-clock / det-entropy: forbidden identifiers
// ---------------------------------------------------------------------------

const WALL_CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom", "RandomState"];

fn check_forbidden_idents(
    ctx: &FileCtx,
    rule: &'static str,
    words: &[&str],
    why: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if tok.kind != TokKind::Ident || ctx.in_test_code(tok.start) {
            continue;
        }
        let text = tok.text(ctx.source);
        if words.contains(&text) {
            out.push(ctx.finding(i, rule, format!("`{text}` {why}")));
        }
    }
    out
}

fn check_wall_clock(ctx: &FileCtx, _cfg: &Config) -> Vec<Finding> {
    let mut out = check_forbidden_idents(
        ctx,
        "det-wall-clock",
        WALL_CLOCK_IDENTS,
        "reads the host's wall clock — simulation crates must advance `SimClock` only, \
         or sharded runs diverge from sequential ones",
    );
    // `std::time` / `core::time` paths (e.g. `std::time::Duration`).
    for i in 0..ctx.tokens.len().saturating_sub(3) {
        if (ctx.is_ident(i, "std") || ctx.is_ident(i, "core"))
            && ctx.is_punct(i + 1, ':')
            && ctx.is_punct(i + 2, ':')
            && ctx.is_ident(i + 3, "time")
            && !ctx.in_test_code(ctx.tokens[i].start)
        {
            out.push(ctx.finding(
                i,
                "det-wall-clock",
                "`std::time` in a simulation crate — use `SimClock`/`SimDuration` so time \
                 is a deterministic function of the event stream"
                    .to_string(),
            ));
        }
    }
    out
}

fn check_entropy(ctx: &FileCtx, _cfg: &Config) -> Vec<Finding> {
    check_forbidden_idents(
        ctx,
        "det-entropy",
        ENTROPY_IDENTS,
        "draws OS entropy — all randomness must come from identity-derived `SimRng` \
         streams or runs stop being reproducible",
    )
}

// ---------------------------------------------------------------------------
// det-float-field: float members of mergeable aggregates
// ---------------------------------------------------------------------------

fn check_float_field(ctx: &FileCtx, _cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < ctx.tokens.len() {
        if !ctx.is_ident(i, "struct") || ctx.in_test_code(ctx.tokens[i].start) {
            i += 1;
            continue;
        }
        // Find the body: `{ … }` for named fields, `( … )` for tuple
        // structs; a `;` first is a unit struct.
        let mut j = i + 1;
        let (open, close) = loop {
            match ctx.tokens.get(j).map(|t| t.text(ctx.source)) {
                Some("{") => break ("{", "}"),
                Some("(") => break ("(", ")"),
                Some(";") | None => break ("", ""),
                _ => j += 1,
            }
        };
        if open.is_empty() {
            i = j + 1;
            continue;
        }
        let mut depth = 0usize;
        while j < ctx.tokens.len() {
            let text = ctx.text(j);
            if text == open {
                depth += 1;
            } else if text == close {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth > 0
                && ctx.tokens[j].kind == TokKind::Ident
                && (text == "f64" || text == "f32")
            {
                out.push(ctx.finding(
                    j,
                    "det-float-field",
                    format!(
                        "`{text}` field in a mergeable aggregate — float accumulation is not \
                         associative across shard merges; keep integer sums and u128 moment \
                         squares, deriving floats only in accessors"
                    ),
                ));
            }
            j += 1;
        }
        i = j + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// det-hash-iter: unordered iteration over hash collections
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Tokens that make an iteration's result independent of visit order:
/// explicit sorts, ordered target collections, and order-insensitive
/// terminal operations.
const ORDER_REDEEMERS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "len",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "contains",
    "contains_key",
    "is_empty",
];

/// Names in this file bound to a `HashMap`/`HashSet`: let bindings,
/// struct fields, and parameters, found by walking back from each
/// `HashMap`/`HashSet` type mention to the `name :` / `name =` that
/// owns it. Flow-insensitive by design — a shadowed reuse of the name
/// with another type is a tolerable over-approximation.
fn hash_typed_names(ctx: &FileCtx) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for h in 0..ctx.tokens.len() {
        if !(ctx.is_ident(h, "HashMap") || ctx.is_ident(h, "HashSet")) {
            continue;
        }
        let mut j = h;
        while j > 0 {
            j -= 1;
            let t = &ctx.tokens[j];
            let text = t.text(ctx.source);
            match text {
                ";" | "{" | "}" | "(" | ")" | "," | "." => break,
                ">"
                    // `-> HashMap` return type or `=>` match arm: no binding.
                    if j > 0 => {
                        let prev = ctx.text(j - 1);
                        if prev == "-" || prev == "=" {
                            break;
                        }
                    }
                ":" => {
                    // Skip `::` paths (`std::collections::HashMap`).
                    if j > 0 && ctx.is_punct(j - 1, ':') {
                        j -= 1;
                        continue;
                    }
                    if ctx.is_punct(j + 1, ':') {
                        continue;
                    }
                    if j > 0 && ctx.tokens[j - 1].kind == TokKind::Ident {
                        names.insert(ctx.text(j - 1).to_string());
                    }
                    break;
                }
                "=" => {
                    let arm = ctx.is_punct(j + 1, '>')
                        || (j > 0
                            && matches!(ctx.text(j - 1), "=" | "!" | "<" | ">" | "+" | "-"));
                    if arm {
                        break;
                    }
                    if j > 0 && ctx.tokens[j - 1].kind == TokKind::Ident {
                        names.insert(ctx.text(j - 1).to_string());
                    }
                    break;
                }
                _ => {}
            }
        }
    }
    names
}

/// The redemption window around a flagged call at token `i`: the rest
/// of the enclosing statement plus the following statement (covering
/// the `let v: Vec<_> = m.iter().collect(); v.sort();` idiom), and
/// backward to the statement start (covering `let m: BTreeMap<_,_> =
/// … .collect()`).
fn window_redeems(ctx: &FileCtx, i: usize) -> bool {
    let redeem = |ix: usize| {
        ctx.tokens[ix].kind == TokKind::Ident && ORDER_REDEEMERS.contains(&ctx.text(ix))
    };
    // Backward to the statement opener. One `{` may be crossed: a
    // single-expression body's ordering contract often sits in the fn
    // signature (`-> BTreeMap<…>`), just past the body's brace.
    let mut j = i;
    let mut crossed_brace = false;
    while j > 0 {
        j -= 1;
        match ctx.text(j) {
            "{" if !crossed_brace => crossed_brace = true,
            ";" | "{" | "}" => break,
            _ => {
                if redeem(j) {
                    return true;
                }
            }
        }
    }
    // Forward across this statement and the next.
    let mut depth = 0i32;
    let mut semis = 0;
    let mut k = i;
    while k + 1 < ctx.tokens.len() && k < i + 400 {
        k += 1;
        match ctx.text(k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            ";" if depth == 0 => {
                semis += 1;
                if semis == 2 {
                    return false;
                }
            }
            _ => {
                if redeem(k) {
                    return true;
                }
            }
        }
    }
    false
}

fn check_hash_iter(ctx: &FileCtx, _cfg: &Config) -> Vec<Finding> {
    let names = hash_typed_names(ctx);
    let marked = |ix: usize| {
        ctx.tokens[ix].kind == TokKind::Ident
            && (names.contains(ctx.text(ix)) || matches!(ctx.text(ix), "HashMap" | "HashSet"))
    };
    let mut out = Vec::new();
    for i in 0..ctx.tokens.len() {
        if ctx.in_test_code(ctx.tokens[i].start) {
            continue;
        }
        // `map.iter()` / `set.drain()` / `self.cache.keys()` …
        if ctx.tokens[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&ctx.text(i))
            && i >= 2
            && ctx.is_punct(i - 1, '.')
            && marked(i - 2)
            && ctx.is_punct(i + 1, '(')
        {
            if !window_redeems(ctx, i) {
                out.push(ctx.finding(
                    i,
                    "det-hash-iter",
                    format!(
                        "`{}.{}()` iterates a hash collection in per-process seed order — \
                         sort the collected items (or collect into a BTree collection) \
                         before the order can reach any output",
                        ctx.text(i - 2),
                        ctx.text(i)
                    ),
                ));
            }
            continue;
        }
        // `for x in map { … }` — flagged unconditionally: a loop body
        // that observes order cannot be redeemed after the fact.
        if ctx.is_ident(i, "for") {
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut in_ix = None;
            while j < ctx.tokens.len() && j < i + 60 {
                match ctx.text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    "in" if depth == 0 && ctx.tokens[j].kind == TokKind::Ident => {
                        in_ix = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(start) = in_ix else { continue };
            let mut k = start + 1;
            let mut depth = 0i32;
            while k < ctx.tokens.len() && k < start + 60 {
                match ctx.text(k) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {
                        if marked(k) {
                            // `for x in map.len()`-style calls on non-iter
                            // methods are fine; bare `&map` or `map.iter()`
                            // feed the loop the hash order itself.
                            let non_iter_call = ctx.is_punct(k + 1, '.')
                                && k + 2 < ctx.tokens.len()
                                && !ITER_METHODS.contains(&ctx.text(k + 2));
                            // `outcome.records()` — a *method* that merely
                            // shares its name with a hash-typed binding is
                            // a call, not a container reference.
                            let is_called_method = k >= 1
                                && ctx.is_punct(k - 1, '.')
                                && ctx.is_punct(k + 1, '(')
                                && !ITER_METHODS.contains(&ctx.text(k));
                            if !non_iter_call && !is_called_method {
                                out.push(ctx.finding(
                                    i,
                                    "det-hash-iter",
                                    format!(
                                        "`for … in {}` visits a hash collection in \
                                         per-process seed order — sort into a Vec (or use \
                                         a BTree collection) before looping",
                                        ctx.text(k)
                                    ),
                                ));
                                break;
                            }
                        }
                    }
                }
                k += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// ethics-probe-budget
// ---------------------------------------------------------------------------

/// Tokens that emit SMTP traffic at a host: opening a session, pushing
/// a message body, or dialing a connection.
const EMISSION_IDENTS: &[&str] = &["open_session", "handle_message"];

fn check_ethics_budget(ctx: &FileCtx, _cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for &(name_ix, body_start, body_end) in ctx.fn_bodies {
        if ctx.in_test_code(body_start) {
            continue;
        }
        let body: Vec<usize> = (0..ctx.tokens.len())
            .filter(|&i| ctx.tokens[i].start >= body_start && ctx.tokens[i].end <= body_end)
            .collect();
        let references_ethics = body.iter().any(|&i| {
            ctx.tokens[i].kind == TokKind::Ident
                && matches!(ctx.text(i), "ethics" | "EthicsGuard" | "ethics_mut")
        });
        if references_ethics {
            continue;
        }
        for &i in &body {
            if ctx.tokens[i].kind != TokKind::Ident {
                continue;
            }
            let text = ctx.text(i);
            let emits = EMISSION_IDENTS.contains(&text)
                || (text == "connect" && i >= 1 && ctx.is_punct(i - 1, '.'));
            if emits {
                out.push(ctx.finding(
                    i,
                    "ethics-probe-budget",
                    format!(
                        "fn `{}` emits SMTP traffic (`{}`) without referencing the ethics \
                         budget — route the transaction through `EthicsGuard` (admit/release) \
                         or assert a slot is already held",
                        ctx.text(name_ix),
                        text
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// panic hygiene
// ---------------------------------------------------------------------------

fn check_unwrap(ctx: &FileCtx, _cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 2..ctx.tokens.len() {
        if ctx.is_ident(i, "unwrap")
            && ctx.is_punct(i - 1, '.')
            && ctx.is_punct(i + 1, '(')
            && ctx.is_punct(i + 2, ')')
            && !ctx.in_test_code(ctx.tokens[i].start)
        {
            out.push(ctx.finding(
                i,
                "panic-unwrap",
                "bare `unwrap()` in library code — state the invariant with \
                 `expect(\"…\")`, or propagate a real error through `ProbeError`"
                    .to_string(),
            ));
        }
    }
    out
}

fn check_empty_expect(ctx: &FileCtx, _cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 2..ctx.tokens.len() {
        if !(ctx.is_ident(i, "expect") && ctx.is_punct(i - 1, '.') && ctx.is_punct(i + 1, '(')) {
            continue;
        }
        if ctx.in_test_code(ctx.tokens[i].start) {
            continue;
        }
        let Some(arg) = ctx.tokens.get(i + 2) else { continue };
        if arg.kind == TokKind::Str
            && !arg.text(ctx.source).bytes().any(|b| b.is_ascii_alphanumeric())
        {
            out.push(ctx.finding(
                i,
                "panic-empty-expect",
                "`expect` with an empty message — the message must name the invariant \
                 that makes the failure impossible"
                    .to_string(),
            ));
        }
    }
    out
}

fn check_explicit_panic(ctx: &FileCtx, _cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..ctx.tokens.len().saturating_sub(1) {
        let is_panic_macro = (ctx.is_ident(i, "panic")
            || ctx.is_ident(i, "todo")
            || ctx.is_ident(i, "unimplemented"))
            && ctx.is_punct(i + 1, '!');
        if is_panic_macro && !ctx.in_test_code(ctx.tokens[i].start) {
            out.push(ctx.finding(
                i,
                "panic-explicit",
                format!(
                    "`{}!` in library code — return an error through the `ProbeError` \
                     vocabulary, or prove the branch impossible and say so with \
                     `unreachable!(\"…\")`",
                    ctx.text(i)
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// alloc-hot-path
// ---------------------------------------------------------------------------

const ALLOC_TYPE_CTORS: &[&str] = &["new", "with_capacity", "from", "from_utf8"];
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "join", "collect"];

fn check_alloc_hot_path(ctx: &FileCtx, cfg: &Config) -> Vec<Finding> {
    let Some(fns) = cfg.alloc_scope(ctx.meta) else {
        return Vec::new();
    };
    // An empty fn list covers the whole file; otherwise only the named
    // functions' bodies are under the budget.
    let spans: Vec<(usize, usize)> = if fns.is_empty() {
        vec![(0, ctx.source.len())]
    } else {
        ctx.fn_bodies
            .iter()
            .filter(|&&(name_ix, _, _)| fns.iter().any(|f| f == ctx.text(name_ix)))
            .map(|&(_, s, e)| (s, e))
            .collect()
    };
    let in_scope =
        |at: usize| spans.iter().any(|&(s, e)| at >= s && at < e) && !ctx.in_test_code(at);
    let mut out = Vec::new();
    for i in 0..ctx.tokens.len() {
        if !in_scope(ctx.tokens[i].start) || ctx.tokens[i].kind != TokKind::Ident {
            continue;
        }
        let text = ctx.text(i);
        let flagged = match text {
            "String" | "Vec" | "Box" => {
                ctx.is_punct(i + 1, ':')
                    && ctx.is_punct(i + 2, ':')
                    && ctx
                        .tokens
                        .get(i + 3)
                        .is_some_and(|t| ALLOC_TYPE_CTORS.contains(&t.text(ctx.source)))
            }
            "format" | "vec" => ctx.is_punct(i + 1, '!'),
            m if ALLOC_METHODS.contains(&m) => {
                i >= 1 && ctx.is_punct(i - 1, '.') && {
                    // `.collect::<…>` or `.collect(` both construct.
                    ctx.is_punct(i + 1, '(') || ctx.is_punct(i + 1, ':')
                }
            }
            _ => false,
        };
        if flagged {
            out.push(ctx.finding(
                i,
                "alloc-hot-path",
                format!(
                    "`{text}` constructs on the heap inside an allocation-budget region — \
                     write into a reusable scratch buffer, or justify the cold-path \
                     allocation at this site"
                ),
            ));
        }
    }
    out
}
