//! `cargo run -p lint` — scan the workspace and exit nonzero on any
//! unsuppressed finding.
//!
//! Flags:
//! * `--deny-all`    also fail on suppressions that silence nothing
//! * `--list-rules`  print the rule catalog and exit
//! * `--quiet`       findings only, no summary banner

use lint::{lint_workspace, workspace_root, Config, ALL_RULES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny_all = args.iter().any(|a| a == "--deny-all");
    let quiet = args.iter().any(|a| a == "--quiet");
    if args.iter().any(|a| a == "--list-rules") {
        for rule in ALL_RULES {
            println!("{:<20} {}", rule.id, rule.summary);
        }
        return;
    }
    if let Some(unknown) = args
        .iter()
        .find(|a| !matches!(a.as_str(), "--deny-all" | "--quiet"))
    {
        eprintln!("unknown argument `{unknown}` (try --deny-all, --list-rules, --quiet)");
        std::process::exit(2);
    }

    let root = workspace_root();
    let report = lint_workspace(&root, &Config::workspace());
    for finding in &report.findings {
        println!("{finding}");
    }
    let mut failures = report.findings.len();
    if deny_all {
        for s in &report.unused {
            println!(
                "{}:{}: [unused-suppression] `lint:allow({})` no longer suppresses anything — \
                 remove it or re-justify",
                s.file, s.line, s.rule
            );
        }
        failures += report.unused.len();
    }
    if !quiet {
        eprintln!(
            "lint: {} files, {} finding(s), {} suppressed ({} suppression(s){})",
            report.files,
            report.findings.len(),
            report.suppressed,
            report.suppressions.len(),
            if deny_all {
                format!(", {} unused", report.unused.len())
            } else {
                String::new()
            }
        );
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
