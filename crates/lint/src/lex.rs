//! A hand-rolled Rust lexer.
//!
//! The offline vendor set has no `syn`, and the invariants this linter
//! enforces are all expressible over the token stream anyway — so the
//! lexer's one job is to split source into tokens *reliably*, never
//! mistaking a string body, a comment, a lifetime, or a char literal
//! for code. It handles the constructs that trip naive scanners:
//!
//! * nested block comments (`/* /* */ */`),
//! * raw strings with arbitrary `#` fences (`r##"…"##`), byte and
//!   C strings (`b"…"`, `br#"…"#`, `c"…"`),
//! * raw identifiers (`r#type`),
//! * lifetimes vs. char literals (`'a` vs `'a'`, `'\u{1F600}'`),
//! * numeric literals with underscores, exponents, and suffixes,
//!   without eating the dots of `0..n` ranges or `1.max(2)` calls.
//!
//! Tokens carry byte spans into the original source, so the stream
//! round-trips: concatenating every token's text with the whitespace
//! gaps between spans reproduces the input byte for byte (tested in
//! `tests/lexer.rs`).

use std::fmt;

/// What a token is. Comments are tokens here — suppression directives
/// live in them — and keywords are just idents whose text matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw identifiers).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `b'\n'`, `'\u{1F600}'`.
    Char,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A numeric literal, including suffix: `0x3FFF`, `1_000u64`, `2.5e-3`.
    Num,
    /// `// …` to end of line (including doc `///` and `//!`).
    LineComment,
    /// `/* … */`, nesting respected.
    BlockComment,
    /// A single punctuation byte: `.`, `:`, `{`, `!`, …
    Punct,
}

/// One token: a kind plus its byte span and source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

/// A lexing failure: unterminated string/comment or a stray byte. The
/// linter treats these as findings in their own right — a file the
/// lexer cannot finish is a file no rule can vouch for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

struct Cursor<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    /// Byte offset where the current line starts.
    line_start: usize,
}

impl<'s> Cursor<'s> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn col(&self, at: usize) -> u32 {
        (at - self.line_start) as u32 + 1
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `source` into a full token stream, or fail with the position of
/// the first construct the lexer could not close.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let start = cur.pos;
        let line = cur.line;
        let col = cur.col(start);
        let kind = lex_one(&mut cur, b).map_err(|message| LexError { line, col, message })?;
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    Ok(out)
}

fn lex_one(cur: &mut Cursor, b: u8) -> Result<TokKind, String> {
    match b {
        b'/' if cur.peek(1) == Some(b'/') => {
            while let Some(n) = cur.peek(0) {
                if n == b'\n' {
                    break;
                }
                cur.bump();
            }
            Ok(TokKind::LineComment)
        }
        b'/' if cur.peek(1) == Some(b'*') => lex_block_comment(cur),
        b'r' | b'b' | b'c' => lex_prefixed(cur, b),
        b'"' => lex_string(cur),
        b'\'' => lex_quote(cur),
        _ if b.is_ascii_digit() => lex_number(cur),
        _ if is_ident_start(b) => {
            lex_ident(cur);
            Ok(TokKind::Ident)
        }
        _ => {
            cur.bump();
            Ok(TokKind::Punct)
        }
    }
}

fn lex_block_comment(cur: &mut Cursor) -> Result<TokKind, String> {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => return Err("unterminated block comment".to_string()),
        }
    }
    Ok(TokKind::BlockComment)
}

/// `r`, `b`, or `c` can open a raw string, byte string, byte char, raw
/// ident, or just be the first letter of a plain identifier.
fn lex_prefixed(cur: &mut Cursor, b: u8) -> Result<TokKind, String> {
    match (b, cur.peek(1), cur.peek(2)) {
        // r"..."  c"..."  b"..."
        (_, Some(b'"'), _) => {
            cur.bump();
            if b == b'r' {
                lex_raw_string(cur, 0)
            } else {
                lex_string(cur)
            }
        }
        // r#"..."#  (any number of #)  — but r#ident is a raw identifier.
        (b'r', Some(b'#'), Some(n)) if n == b'#' || n == b'"' => {
            cur.bump(); // r
            let mut hashes = 0usize;
            while cur.peek(0) == Some(b'#') {
                cur.bump();
                hashes += 1;
            }
            if cur.peek(0) != Some(b'"') {
                return Err("expected '\"' after raw string fence".to_string());
            }
            lex_raw_string(cur, hashes)
        }
        (b'r', Some(b'#'), Some(n)) if is_ident_start(n) => {
            cur.bump(); // r
            cur.bump(); // #
            lex_ident(cur);
            Ok(TokKind::Ident)
        }
        // br"..." / br#"..."# / cr"..."
        (b'b' | b'c', Some(b'r'), Some(b'"' | b'#')) => {
            cur.bump(); // b / c
            cur.bump(); // r
            let mut hashes = 0usize;
            while cur.peek(0) == Some(b'#') {
                cur.bump();
                hashes += 1;
            }
            if cur.peek(0) != Some(b'"') {
                return Err("expected '\"' after raw string fence".to_string());
            }
            lex_raw_string(cur, hashes)
        }
        // b'x' byte char
        (b'b', Some(b'\''), _) => {
            cur.bump(); // b
            lex_quote(cur)
        }
        _ => {
            lex_ident(cur);
            Ok(TokKind::Ident)
        }
    }
}

fn lex_ident(cur: &mut Cursor) {
    while let Some(n) = cur.peek(0) {
        if is_ident_continue(n) {
            cur.bump();
        } else {
            break;
        }
    }
}

fn lex_string(cur: &mut Cursor) -> Result<TokKind, String> {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some(b'\\') => {
                cur.bump(); // whatever follows is escaped
            }
            Some(b'"') => return Ok(TokKind::Str),
            Some(_) => {}
            None => return Err("unterminated string literal".to_string()),
        }
    }
}

/// The cursor sits on the opening `"`; `hashes` fence `#`s were consumed.
fn lex_raw_string(cur: &mut Cursor, hashes: usize) -> Result<TokKind, String> {
    cur.bump(); // opening quote
    'scan: loop {
        match cur.bump() {
            Some(b'"') => {
                for i in 0..hashes {
                    if cur.peek(i) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                return Ok(TokKind::Str);
            }
            Some(_) => {}
            None => return Err("unterminated raw string literal".to_string()),
        }
    }
}

/// The cursor sits on a `'`: lifetime or char literal.
///
/// Disambiguation: `'` followed by an escape is always a char. `'`
/// followed by one character and a closing `'` is a char. Otherwise an
/// identifier-shaped tail is a lifetime (`'a`, `'static`, `'_`).
fn lex_quote(cur: &mut Cursor) -> Result<TokKind, String> {
    cur.bump(); // '
    match cur.peek(0) {
        Some(b'\\') => {
            // Escaped char literal: consume until the closing quote.
            cur.bump(); // backslash
            cur.bump(); // escaped byte (n, ', u, x, …)
            // `\u{…}` carries a braced payload.
            if cur.peek(0) == Some(b'{') {
                while let Some(n) = cur.bump() {
                    if n == b'}' {
                        break;
                    }
                }
            }
            // Hex escapes (`\x41`) and anything else: scan to the quote.
            while let Some(n) = cur.peek(0) {
                if n == b'\'' {
                    cur.bump();
                    return Ok(TokKind::Char);
                }
                if n == b'\n' {
                    break;
                }
                cur.bump();
            }
            Err("unterminated char literal".to_string())
        }
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            // Could be 'x' (char) or 'ident (lifetime). Scan the
            // ident-shaped run, then look for a closing quote.
            let mut len = 1;
            // Multi-byte UTF-8 scalar: consume its continuation bytes as
            // part of the same "one character".
            while cur.peek(len).is_some_and(|n| n & 0xC0 == 0x80) {
                len += 1;
            }
            if cur.peek(len) == Some(b'\'') {
                for _ in 0..=len {
                    cur.bump();
                }
                return Ok(TokKind::Char);
            }
            if !is_ident_start(c) {
                return Err("digit cannot start a lifetime".to_string());
            }
            lex_ident(cur);
            Ok(TokKind::Lifetime)
        }
        Some(_) => {
            // `'('`-style punctuation char literal.
            let ch = cur.bump();
            debug_assert!(ch.is_some());
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
                Ok(TokKind::Char)
            } else {
                Err("unterminated char literal".to_string())
            }
        }
        None => Err("stray quote at end of input".to_string()),
    }
}

fn lex_number(cur: &mut Cursor) -> Result<TokKind, String> {
    // Leading digits (or 0x/0o/0b radix bodies — alphanumerics cover it).
    while cur.peek(0).is_some_and(|n| n.is_ascii_alphanumeric() || n == b'_') {
        // Exponent sign: `1e-3` / `2.5E+7`.
        let n = cur.bump();
        if matches!(n, Some(b'e') | Some(b'E'))
            && matches!(cur.peek(0), Some(b'+') | Some(b'-'))
            && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
        {
            cur.bump();
        }
    }
    // A fractional part only when the dot is followed by a digit —
    // `0..n` and `1.max(2)` keep their dots.
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|n| n.is_ascii_digit()) {
        cur.bump(); // .
        while cur.peek(0).is_some_and(|n| n.is_ascii_alphanumeric() || n == b'_') {
            let n = cur.bump();
            if matches!(n, Some(b'e') | Some(b'E'))
                && matches!(cur.peek(0), Some(b'+') | Some(b'-'))
                && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                cur.bump();
            }
        }
    } else if cur.peek(0) == Some(b'.')
        && cur.peek(1) != Some(b'.')
        && !cur.peek(1).is_some_and(is_ident_start)
    {
        // Trailing-dot float: `2.` (not a range, not a method call).
        cur.bump();
    }
    Ok(TokKind::Num)
}
