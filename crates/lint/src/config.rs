//! Which rules watch which code.
//!
//! Scoping is data, not code: the workspace config below is the single
//! place that says "these crates simulate, these modules are mergeable
//! aggregates, these files live under the allocation budget". Fixture
//! tests build their own `Config` to aim a rule at a snippet.

use crate::engine::FileMeta;

/// Per-workspace rule scoping.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose library code must be wall-clock- and entropy-free:
    /// every crate that participates in the deterministic simulation.
    /// (`bench` reads real time by design; `lint` is tooling.)
    pub sim_crates: Vec<String>,
    /// Files whose structs are mergeable aggregates: merged across
    /// shards, so sums must be integers (`u128` moment squares are the
    /// house style) — float fields break merge associativity.
    pub aggregate_files: Vec<String>,
    /// Files under the allocation-budget regime, with an optional list
    /// of function names; an empty list covers the whole file.
    pub alloc_files: Vec<(String, Vec<String>)>,
    /// Crates whose probe-emitting functions must reference the ethics
    /// budget.
    pub ethics_crates: Vec<String>,
    /// Crates exempt from the panic-hygiene rules (tooling and bench
    /// harness code, where a panic is an acceptable failure mode).
    pub panic_exempt_crates: Vec<String>,
}

impl Config {
    /// The scoping for *this* workspace.
    pub fn workspace() -> Config {
        let sim = [
            "conformance",
            "core",
            "dns",
            "libspf2",
            "mta",
            "netsim",
            "notify",
            "prober",
            "report",
            "smtp",
            "spf",
            "trace",
            "world",
        ];
        Config {
            sim_crates: sim.iter().map(|s| s.to_string()).collect(),
            aggregate_files: vec![
                "crates/netsim/src/metrics.rs".to_string(),
                "crates/prober/src/aggregate.rs".to_string(),
            ],
            alloc_files: vec![
                ("crates/dns/src/wire.rs".to_string(), Vec::new()),
                // Only the streaming cores; `raw_value`/`apply_transform`/
                // `url_escape` are documented allocating conveniences over
                // their `*_into` counterparts.
                (
                    "crates/spf/src/expand.rs".to_string(),
                    vec![
                        "write_raw_value".to_string(),
                        "apply_transform_into".to_string(),
                        "url_escape_into".to_string(),
                        "expand".to_string(),
                    ],
                ),
                (
                    "crates/dns/src/resolver.rs".to_string(),
                    vec![
                        "resolve".to_string(),
                        "resolve_traced".to_string(),
                        "resolve_chain".to_string(),
                        "resolve_one".to_string(),
                        "replay_resolve".to_string(),
                    ],
                ),
            ],
            ethics_crates: vec!["prober".to_string()],
            panic_exempt_crates: vec!["lint".to_string(), "bench".to_string()],
        }
    }

    /// Whether `meta` is simulation library code (det rules' scope).
    pub fn in_sim_scope(&self, meta: &FileMeta) -> bool {
        !meta.is_bin && self.sim_crates.contains(&meta.crate_name)
    }

    /// Whether `meta` is library code subject to panic hygiene.
    pub fn in_panic_scope(&self, meta: &FileMeta) -> bool {
        !meta.is_bin && !self.panic_exempt_crates.contains(&meta.crate_name)
    }

    /// The configured function list for `meta` under the allocation
    /// budget, or `None` when the file is outside the regime.
    pub fn alloc_scope(&self, meta: &FileMeta) -> Option<&[String]> {
        self.alloc_files
            .iter()
            .find(|(f, _)| *f == meta.rel_path)
            .map(|(_, fns)| fns.as_slice())
    }
}
